//! TPC-C (NewOrder + Payment, 50:50) on BionicDB — a miniature of the
//! paper's Fig. 9b workload, showing stored-procedure execution with data
//! dependencies, cross-partition transactions over the on-chip channels,
//! timestamp-CC aborts and client-side retries.
//!
//! Run with: `cargo run --release --example tpcc`

use bionicdb::{BionicConfig, ExecMode, TxnStatus};
use bionicdb_workloads::tpcc::TpccBionic;
use bionicdb_workloads::TpccSpec;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let spec = TpccSpec {
        customers_per_district: 300,
        items: 2_000,
        ..TpccSpec::default()
    };
    let workers = 4; // one warehouse per partition worker
    let cfg = BionicConfig {
        workers,
        mode: ExecMode::Interleaved,
        max_batch: 2,
        ..BionicConfig::default()
    };
    let mut sys = TpccBionic::build(cfg, spec);
    let mut rng = SmallRng::seed_from_u64(7);

    let per_worker = 60;
    let mut blocks = Vec::new();
    let start = sys.machine.now();
    for w in 0..workers {
        for i in 0..per_worker {
            if i % 2 == 0 {
                let blk = sys
                    .machine
                    .alloc_block(w, TpccBionic::neworder_block_size());
                sys.submit_neworder(w, blk, &mut rng);
                blocks.push((w, blk));
            } else {
                let blk = sys.machine.alloc_block(w, TpccBionic::payment_block_size());
                sys.submit_payment(w, blk, &mut rng);
                blocks.push((w, blk));
            }
        }
    }
    sys.machine.run_to_quiescence();

    // Retry aborted transactions (the input block is preserved through
    // execution, so a retry is a status reset + resubmit).
    let mut retry_rounds = 0;
    loop {
        let pending: Vec<_> = blocks
            .iter()
            .copied()
            .filter(|&(_, b)| sys.machine.block_status(b) == TxnStatus::Aborted)
            .collect();
        if pending.is_empty() {
            break;
        }
        retry_rounds += 1;
        for (w, blk) in pending {
            sys.machine.resubmit(w, blk);
        }
        sys.machine.run_to_quiescence();
    }
    let cycles = sys.machine.now() - start;
    let stats = sys.machine.stats();
    let committed = blocks.len() as u64;
    println!("TPC-C on BionicDB ({workers} warehouses/workers):");
    println!(
        "  {} committed ({} aborts across {} retry rounds) in {:.2} ms simulated",
        committed,
        stats.aborted,
        retry_rounds,
        sys.machine.config().fpga.cycles_to_secs(cycles) * 1e3
    );
    println!(
        "  throughput {:.0} kTps",
        committed as f64 * sys.machine.config().fpga.clock_hz as f64 / cycles as f64 / 1e3
    );
    let noc = sys.machine.noc().stats();
    println!(
        "  on-chip messages: {} (mean latency {:.1} cycles) — cross-partition stock/customer accesses",
        noc.sent,
        if noc.sent > 0 { noc.total_latency as f64 / noc.sent as f64 } else { 0.0 }
    );

    // Consistency audit: district next_o_id advances match committed orders.
    let mut orders = 0u64;
    for w in 0..workers {
        for d in 0..sys.spec.districts_per_warehouse {
            let key = bionicdb_workloads::spec::district_key(w as u64, d);
            let tables = sys.tables;
            let loader = sys.machine.loader(w);
            let addr = loader.lookup(tables.district, &key.to_le_bytes()).unwrap();
            let pay = loader.payload(tables.district, addr);
            orders += u64::from_le_bytes(pay[..8].try_into().unwrap()) - 1;
        }
    }
    println!(
        "  audit: {} orders recorded == {} committed NewOrders",
        orders,
        committed / 2
    );
    assert_eq!(orders, committed / 2);
}
