//! Command-logging recovery (paper §4.8): run transactions, persist the
//! command log, "crash", then rebuild from the checkpoint and replay the
//! committed transaction blocks in commit-timestamp order.
//!
//! Run with: `cargo run --release --example recovery`

use bionicdb::recovery::Checkpoint;
use bionicdb::{asm::assemble, BionicConfig, CommandLog, SystemBuilder, TableMeta, TxnStatus};

fn build_system() -> (bionicdb::Machine, bionicdb::TableId, bionicdb::ProcId) {
    let mut builder = SystemBuilder::new(BionicConfig::small(2));
    let counters = builder.table(TableMeta::hash("counters", 8, 8, 1 << 8));
    let add = builder.proc(
        assemble(
            r#"
proc add
logic:
    update 0, 0, c0
commit:
    ret g0, c0
    cmp g0, 0
    blt abort
    load g1, [blk+8]
    load g2, [g0+72]
    add g2, g1
    store g2, [g0+72]
    getts g3
    store g3, [g0+8]
    mov g4, 0
    store g4, [g0+24]
    commit
abort:
    abort
"#,
        )
        .unwrap(),
    );
    (builder.build(), counters, add)
}

fn main() {
    // ---- 1. Normal operation ----
    let (mut db, counters, add) = build_system();
    for w in 0..2 {
        for k in 0..4u64 {
            db.loader(w)
                .insert(counters, &k.to_le_bytes(), &0u64.to_le_bytes());
        }
    }
    // The checkpoint image is taken after loading (the "last checkpoint").
    let checkpoint = Checkpoint::dump(&db);

    let mut log = CommandLog::new();
    let mut executed = Vec::new();
    for round in 0..5u64 {
        for w in 0..2 {
            let blk = db.alloc_block(w, 128);
            db.init_block(blk, add);
            db.write_block_u64(blk, 0, round % 4); // counter key
            db.write_block_u64(blk, 8, 10 + round); // increment
            db.submit(w, blk);
            executed.push((w, blk));
        }
        db.run_to_quiescence();
        // The host persists executed blocks before acking clients (§4.8).
        for &(w, blk) in executed.iter().rev().take(2) {
            log.capture(&db, w, blk);
        }
    }
    let committed: usize = executed
        .iter()
        .filter(|&&(_, b)| db.block_status(b) == TxnStatus::Committed)
        .count();
    println!(
        "before crash: {} committed transactions, {} log records",
        committed,
        log.len()
    );

    // Persist to the simulated durable medium and read it back.
    let durable_bytes = log.to_bytes();
    println!("durable command log: {} bytes", durable_bytes.len());
    let state_before = Checkpoint::dump(&db);
    drop(db); // ---- 2. Crash! ----

    // ---- 3. Recovery ----
    let recovered_log = CommandLog::from_bytes(&durable_bytes).expect("valid log");
    let (mut db2, _, _) = build_system();
    checkpoint.load_into(&mut db2); // load the last checkpoint image
    let replayed = recovered_log.replay(&mut db2); // replay in commit-ts order
    println!("replayed {replayed} committed transactions");

    // ---- 4. Verify: the logical database state matches exactly ----
    let state_after = Checkpoint::dump(&db2);
    assert_eq!(
        state_before, state_after,
        "recovered state == pre-crash state"
    );
    println!("recovered state verified identical to pre-crash state ✓");
}
