//! Quickstart: a tiny key-value bank on BionicDB.
//!
//! Builds a two-worker machine, registers an `accounts` table and a
//! `deposit` stored procedure written in the text assembler, bulk-loads a
//! few accounts, runs transactions through the full simulated pipeline
//! (softcore → index coprocessor → timestamp CC → commit), and reads the
//! results back.
//!
//! Run with: `cargo run --release --example quickstart`

use bionicdb::{asm::assemble, BionicConfig, BlockStatus, SystemBuilder, TableMeta};

fn main() {
    // 1. Describe the system: two partition workers, one hash table.
    let mut builder = SystemBuilder::new(BionicConfig::small(2));
    let accounts = builder.table(TableMeta::hash("accounts", 8, 16, 1 << 10));

    // 2. Upload a stored procedure (pre-compiled, like the paper's clients
    //    do). `deposit` looks up an account via UPDATE (which runs the
    //    write-permission visibility check in the index pipeline and marks
    //    the tuple dirty), then the commit handler applies the in-place
    //    write, stamps the write timestamp, clears the dirty bit and
    //    commits. Offsets: user[0..8] = key, user[8..16] = amount.
    let deposit = builder.proc(
        assemble(
            r#"
proc deposit
logic:
    update 0, 0, c0         ; table 0, key at user offset 0 -> c0
commit:
    ret g0, c0              ; tuple address (or negative error)
    cmp g0, 0
    blt abort
    load g1, [blk+8]        ; amount
    load g2, [g0+72]        ; tuple payload field 0 = balance
    add g2, g1
    store g2, [g0+72]
    getts g3                ; stamp the write timestamp (paper 4.7)
    store g3, [g0+8]
    mov g4, 0
    store g4, [g0+24]       ; clear dirty flag
    commit
abort:
    abort
"#,
        )
        .unwrap(),
    );
    let mut db = builder.build();

    // 3. Bulk-load accounts on worker 0 (host-side, untimed — the way the
    //    paper populates databases before starting the clock).
    let mut payload = [0u8; 16];
    payload[..8].copy_from_slice(&1000u64.to_le_bytes()); // initial balance
    for account in 0..8u64 {
        db.loader(0)
            .insert(accounts, &account.to_le_bytes(), &payload);
    }

    // 4. Submit deposit transactions and run the machine to quiescence.
    let mut blocks = Vec::new();
    for account in 0..8u64 {
        let blk = db.alloc_block(0, 128);
        db.init_block(blk, deposit);
        db.write_block(blk, 0, &account.to_le_bytes());
        db.write_block_u64(blk, 8, 42 + account);
        db.submit(0, blk);
        blocks.push(blk);
    }
    let cycles = db.run_to_quiescence();

    // 5. Inspect results.
    for (account, blk) in blocks.iter().enumerate() {
        assert!(db.block_status(*blk).is_committed());
        let addr = db
            .loader(0)
            .lookup(accounts, &(account as u64).to_le_bytes())
            .unwrap();
        let balance_bytes = db.loader(0).payload(accounts, addr);
        let balance = u64::from_le_bytes(balance_bytes[..8].try_into().unwrap());
        println!("account {account}: balance {balance}");
        assert_eq!(balance, 1000 + 42 + account as u64);
    }
    let stats = db.stats();
    println!(
        "\ncommitted {} transactions in {} cycles ({:.1} µs at 125 MHz)",
        stats.committed,
        cycles,
        db.config().fpga.cycles_to_ns(cycles) / 1e3,
    );
}
