//! Multisite transactions over the on-chip message-passing channels — a
//! cross-partition bank transfer (the scenario paper §4.6 is built for).
//!
//! A transfer debits an account on the local partition and credits an
//! account on a *remote* partition. The remote UPDATE travels over the
//! request channel, runs as a background request in the remote worker's
//! index coprocessor, and its result returns over the response channel
//! into the initiator's CP register — 6 cycles of communication instead of
//! a software message queue.
//!
//! Run with: `cargo run --release --example multisite`

use bionicdb::{asm::assemble, BionicConfig, BlockStatus, SystemBuilder, TableMeta, Topology};

fn main() {
    let mut builder = SystemBuilder::new(BionicConfig {
        topology: Topology::Crossbar,
        ..BionicConfig::small(2)
    });
    let accounts = builder.table(TableMeta::hash("accounts", 8, 16, 1 << 10));

    // transfer(from @ local, to @ remote, amount):
    //   user[0..8]  = from key     user[8..16] = to key
    //   user[16..24] = remote home  user[24..32] = amount
    //   user[32..40] = UNDO: original from-balance
    //   user[40..48] = UNDO: original to-balance
    let transfer = builder.proc(
        assemble(
            r#"
proc transfer
logic:
    update 0, 0, c0             ; debit side, local partition
    load g5, [blk+16]
    update 0, 8, c1, home=g5    ; credit side, remote partition
commit:
    ret g0, c0
    cmp g0, 0
    blt abort
    ret g1, c1
    cmp g1, 0
    blt abort
    load g2, [blk+24]           ; amount
    ; debit (with UNDO backup, paper Fig. 3)
    load g3, [g0+72]
    store g3, [blk+32]
    sub g3, g2
    store g3, [g0+72]
    ; credit the remote tuple (the FPGA DRAM is physically shared; the
    ; dirty mark taken by the remote coprocessor isolates the write)
    load g4, [g1+72]
    store g4, [blk+40]
    add g4, g2
    store g4, [g1+72]
    ; stamp write timestamps and clear dirty bits on both
    getts g6
    store g6, [g0+8]
    store g6, [g1+8]
    mov g7, 0
    store g7, [g0+24]
    store g7, [g1+24]
    commit
abort:
    ; clear dirty marks on whichever update succeeded; payloads untouched
    ret g0, c0
    cmp g0, 0
    blt skip_from
    mov g7, 0
    store g7, [g0+24]
skip_from:
    ret g1, c1
    cmp g1, 0
    blt skip_to
    mov g7, 0
    store g7, [g1+24]
skip_to:
    abort
"#,
        )
        .unwrap(),
    );
    let mut db = builder.build();

    // Load one account per partition with 10 000 units each.
    let mut payload = [0u8; 16];
    payload[..8].copy_from_slice(&10_000u64.to_le_bytes());
    db.loader(0).insert(accounts, &1u64.to_le_bytes(), &payload);
    db.loader(1).insert(accounts, &2u64.to_le_bytes(), &payload);

    // Fire 10 transfers of 100 from account 1 (partition 0) to account 2
    // (partition 1).
    let mut blocks = Vec::new();
    for _ in 0..10 {
        let blk = db.alloc_block(0, 128);
        db.init_block(blk, transfer);
        db.write_block_u64(blk, 0, 1); // from key
        db.write_block_u64(blk, 8, 2); // to key
        db.write_block_u64(blk, 16, 1); // remote home partition
        db.write_block_u64(blk, 24, 100); // amount
        db.submit(0, blk);
        blocks.push(blk);
    }
    db.run_to_quiescence();

    // Transfers all touch the same two accounts, so within an interleaving
    // batch only the first wins the dirty-mark race (paper §4.7); the
    // client retries the rest — each retry round commits one more.
    let mut rounds = 0;
    loop {
        let pending: Vec<_> = blocks
            .iter()
            .copied()
            .filter(|&b| !db.block_status(b).is_committed())
            .collect();
        if pending.is_empty() || rounds > 32 {
            break;
        }
        rounds += 1;
        for blk in pending {
            db.resubmit(0, blk);
        }
        db.run_to_quiescence();
    }
    println!("all transfers committed after {rounds} retry rounds");

    let committed = blocks
        .iter()
        .filter(|b| db.block_status(**b).is_committed())
        .count();
    let balance = |db: &mut bionicdb::Machine, w: usize, key: u64| {
        let addr = db.loader(w).lookup(accounts, &key.to_le_bytes()).unwrap();
        u64::from_le_bytes(
            db.loader(w).payload(accounts, addr)[..8]
                .try_into()
                .unwrap(),
        )
    };
    let from = balance(&mut db, 0, 1);
    let to = balance(&mut db, 1, 2);
    println!("{committed}/10 transfers committed");
    println!("account 1 (partition 0): {from}");
    println!("account 2 (partition 1): {to}");
    assert_eq!(from + to, 20_000, "money is conserved");
    assert_eq!(from, 10_000 - 100 * committed as u64);

    let noc = db.noc().stats();
    println!(
        "on-chip channels: {} messages, mean latency {:.1} cycles ({:.0} ns) — paper Table 3: 3 cycles / 24 ns",
        noc.sent,
        noc.total_latency as f64 / noc.sent as f64,
        db.config().fpga.cycles_to_ns(noc.total_latency) / noc.sent as f64,
    );
}
