//! YCSB-C on BionicDB vs. the modelled Silo baseline — a miniature of the
//! paper's Fig. 9a experiment.
//!
//! Run with: `cargo run --release --example ycsb`

use bionicdb::{BionicConfig, ExecMode};
use bionicdb_cpu_model::{CoreModel, CpuConfig};
use bionicdb_workloads::ycsb::{BlockPool, YcsbBionic, YcsbKind, YcsbSilo};
use bionicdb_workloads::YcsbSpec;

fn main() {
    let spec = YcsbSpec {
        records_per_partition: 20_000,
        payload_len: 256,
        ..YcsbSpec::default()
    };
    let workers = 4;

    // ---- BionicDB: cycle-accurate simulation ----
    let cfg = BionicConfig {
        workers,
        mode: ExecMode::Interleaved,
        ..BionicConfig::default()
    };
    let mut y = YcsbBionic::build(cfg, spec.clone(), 60);
    let txns_per_worker = 200;
    let size = y.block_size(YcsbKind::ReadLocal);
    let mut pools: Vec<BlockPool> = (0..workers)
        .map(|w| BlockPool::new(&mut y.machine, w, txns_per_worker, size))
        .collect();
    let mut rng = YcsbBionic::rng(42);
    let start = y.machine.now();
    for (w, pool) in pools.iter_mut().enumerate() {
        for _ in 0..txns_per_worker {
            let blk = pool.take();
            y.submit_txn(w, blk, YcsbKind::ReadLocal, &mut rng);
        }
    }
    y.machine.run_to_quiescence();
    let cycles = y.machine.now() - start;
    let stats = y.machine.stats();
    let tput = stats.committed as f64 * y.machine.config().fpga.clock_hz as f64 / cycles as f64;
    println!("BionicDB ({workers} workers @125 MHz):");
    println!(
        "  {} txns in {:.2} ms simulated -> {:.0} kTps",
        stats.committed,
        y.machine.config().fpga.cycles_to_secs(cycles) * 1e3,
        tput / 1e3
    );
    println!(
        "  {} DB instructions dispatched, {} batches",
        stats.db_insts, stats.batches
    );
    print!("{}", y.machine.utilization_report());

    // ---- Silo baseline under the Xeon timing model ----
    let silo = YcsbSilo::build(spec, workers);
    let mut model = CoreModel::new(CpuConfig::default());
    let mut rng = YcsbBionic::rng(43);
    let n = 500;
    for _ in 0..n {
        silo.run_read_txn(&mut model, &mut rng, None);
    }
    let per_core = n as f64 / model.secs();
    println!("\nSilo on the modelled Xeon E7-4807:");
    println!(
        "  one core: {:.0} kTps ({:.1} µs/txn)",
        per_core / 1e3,
        1e6 / per_core
    );
    println!(
        "  {} memory accesses traced, {} to DRAM",
        model.stats().accesses,
        model.stats().dram_accesses
    );
    println!(
        "\nBionicDB/worker vs Silo/core speedup: {:.1}x",
        tput / workers as f64 / per_core
    );
}
