//! Timing constants for the simulated FPGA fabric.
//!
//! Every constant cites where it comes from. The paper's absolute numbers
//! are tied to a 2008-era Virtex-5 + Convey HC-2 memory system; the defaults
//! here are calibrated so that the *shapes* of the paper's figures (speedup
//! ratios, saturation points, crossovers) reproduce. The benchmark harness
//! never hard-codes a constant; it always goes through [`FpgaConfig`].

/// A simulation timestamp, measured in FPGA clock cycles.
pub type Cycle = u64;

/// Configuration of the simulated FPGA fabric.
///
/// The defaults model the hardware described in the paper (§4.1, §5.2):
/// a single Virtex-5 LX330 at 125 MHz with 8 memory controllers of the
/// Convey HC-2 memory subsystem.
#[derive(Debug, Clone, PartialEq)]
pub struct FpgaConfig {
    /// Clock frequency in Hz. Paper §5.2: "The clock frequency of BionicDB
    /// was set to 125MHz" — 8 ns per cycle.
    pub clock_hz: u64,
    /// Round-trip latency of a random DRAM access, in cycles.
    ///
    /// The HC-2's scatter-gather DDR2 subsystem is optimized for bandwidth,
    /// not latency; random 64-bit reads observe on the order of two hundred
    /// nanoseconds. The default (24 cycles = 192 ns) is calibrated so that
    /// a serial hash probe (3–4 dependent accesses) costs ~100 cycles and
    /// pipelined throughput saturates between 8 and 16 in-flight requests,
    /// matching paper Fig. 10a. Bursts add one bus cycle per 64-byte line.
    pub dram_latency: Cycle,
    /// Number of memory controllers. Paper §4.1: the HC-2 card has
    /// 8 memory controllers (BionicDB uses 8 of the 16 DIMMs).
    pub dram_controllers: usize,
    /// Maximum outstanding requests per controller. Bounds memory-level
    /// parallelism exactly as a real controller's request queue does.
    pub dram_max_outstanding: usize,
    /// One-way latency of an on-chip message-passing hop, in cycles.
    /// Paper Table 3: 24 ns per primitive = 3 cycles at 125 MHz, 48 ns
    /// (6 cycles) for a request/response pair.
    pub noc_hop_latency: Cycle,
    /// Cycles for the softcore to save one transaction context and restore
    /// the next from the BRAM context table. Paper §4.5: "a single switch
    /// takes 10 cycles".
    pub context_switch: Cycle,
    /// Cycles per non-memory CPU instruction on the softcore. The softcore
    /// is a simple 5-step RISC core with no instruction pipelining
    /// (paper §4.3 rules out ILP as unhelpful for OLTP).
    pub cpu_inst_cycles: Cycle,
    /// Cycles for the Prepare+Dispatch steps of a DB instruction
    /// (paper Fig. 4); the dispatch is asynchronous.
    pub db_dispatch_cycles: Cycle,
    /// Capacity of the FIFOs between index-pipeline stages. Shallow FIFOs
    /// are what make back-pressure (and hence pipeline balance) visible.
    pub stage_fifo_depth: usize,
    /// Maximum number of in-flight DB instructions over one index
    /// coprocessor. This is the "index parallelism" knob swept on the
    /// x-axis of paper Figs. 10 and 11.
    pub max_inflight_db: usize,
    /// Number of Traverse stages in the hash pipeline (paper §4.4.1 suggests
    /// populating multiple Traverse stages when hash conflicts are frequent).
    pub hash_traverse_stages: usize,
    /// Number of skiplist pipeline stages (paper §5.5 instantiates 8).
    pub skiplist_stages: usize,
    /// Number of dedicated scanner modules after the bottom skiplist stage
    /// (paper §5.5 uses 1 and observes it bottlenecks Fig. 11c; §4.4.2
    /// suggests redundant scanners, which we support as an ablation).
    pub skiplist_scanners: usize,
    /// Maximum tower height of the skiplist (paper §5.5: 20).
    pub skiplist_max_level: usize,
    /// Number of GP (and CP) registers per softcore. Paper §4.3: 256 each,
    /// implemented on BRAM.
    pub num_registers: usize,
}

impl Default for FpgaConfig {
    fn default() -> Self {
        FpgaConfig {
            clock_hz: 125_000_000,
            dram_latency: 24,
            dram_controllers: 8,
            dram_max_outstanding: 16,
            noc_hop_latency: 3,
            context_switch: 10,
            cpu_inst_cycles: 5,
            db_dispatch_cycles: 3,
            stage_fifo_depth: 8,
            max_inflight_db: 24,
            hash_traverse_stages: 1,
            skiplist_stages: 8,
            skiplist_scanners: 1,
            skiplist_max_level: 20,
            num_registers: 256,
        }
    }
}

impl FpgaConfig {
    /// Nanoseconds per clock cycle.
    pub fn ns_per_cycle(&self) -> f64 {
        1e9 / self.clock_hz as f64
    }

    /// Convert a cycle count to seconds of simulated time.
    pub fn cycles_to_secs(&self, cycles: Cycle) -> f64 {
        cycles as f64 / self.clock_hz as f64
    }

    /// Convert a cycle count to nanoseconds of simulated time.
    pub fn cycles_to_ns(&self, cycles: Cycle) -> f64 {
        cycles as f64 * self.ns_per_cycle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_clock_is_125mhz() {
        let cfg = FpgaConfig::default();
        assert_eq!(cfg.clock_hz, 125_000_000);
        assert!((cfg.ns_per_cycle() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn noc_pair_latency_matches_paper_table3() {
        // Paper Table 3: one message = 24 ns, request/response pair = 48 ns.
        let cfg = FpgaConfig::default();
        assert!((cfg.cycles_to_ns(cfg.noc_hop_latency) - 24.0).abs() < 1e-9);
        assert!((cfg.cycles_to_ns(2 * cfg.noc_hop_latency) - 48.0).abs() < 1e-9);
    }

    #[test]
    fn cycles_to_secs_roundtrip() {
        let cfg = FpgaConfig::default();
        assert!((cfg.cycles_to_secs(cfg.clock_hz) - 1.0).abs() < 1e-12);
    }
}
