//! Minimal little-endian wire codec for the fleet transport.
//!
//! The multi-process fleet simulator (`bionicdb::machine` fleet mode) ships
//! statistics, NoC traffic, and DRAM write journals between a coordinator
//! and its chip processes. Everything that crosses that boundary implements
//! [`Wire`]: a fixed, self-describing-enough little-endian layout with no
//! serde dependency, mirroring how the durable formats (`CommandLog`,
//! `Checkpoint`) are hand-framed.
//!
//! The transport is trusted — both ends are the same binary forked from the
//! same process image — so decoding panics on malformed input instead of
//! threading `Result`s through the scheduler hot path: a framing bug must
//! fail loudly, never limp along as divergent state.

/// A cursor over a received message body.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Take the next `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> &'a [u8] {
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        s
    }

    /// Decode the next value.
    pub fn get<T: Wire>(&mut self) -> T {
        T::get(self)
    }

    /// Assert the whole message was consumed (framing check).
    pub fn finish(self) {
        assert_eq!(self.pos, self.buf.len(), "trailing bytes in wire message");
    }
}

/// A value with a fixed little-endian wire form.
pub trait Wire: Sized {
    /// Append the encoding of `self` to `out`.
    fn put(&self, out: &mut Vec<u8>);
    /// Decode one value from the cursor.
    fn get(r: &mut Reader<'_>) -> Self;
}

macro_rules! wire_int {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn put(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn get(r: &mut Reader<'_>) -> Self {
                <$t>::from_le_bytes(r.bytes(std::mem::size_of::<$t>()).try_into().expect("sized"))
            }
        }
    )*};
}
wire_int!(u8, u16, u32, u64, i64);

impl Wire for usize {
    fn put(&self, out: &mut Vec<u8>) {
        (*self as u64).put(out);
    }
    fn get(r: &mut Reader<'_>) -> Self {
        u64::get(r) as usize
    }
}

impl Wire for bool {
    fn put(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn get(r: &mut Reader<'_>) -> Self {
        match u8::get(r) {
            0 => false,
            1 => true,
            b => panic!("bad bool byte {b}"),
        }
    }
}

impl<T: Wire> Wire for Option<T> {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            None => false.put(out),
            Some(v) => {
                true.put(out);
                v.put(out);
            }
        }
    }
    fn get(r: &mut Reader<'_>) -> Self {
        if bool::get(r) {
            Some(T::get(r))
        } else {
            None
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn put(&self, out: &mut Vec<u8>) {
        (self.len() as u64).put(out);
        for v in self {
            v.put(out);
        }
    }
    fn get(r: &mut Reader<'_>) -> Self {
        let n = u64::get(r) as usize;
        (0..n).map(|_| T::get(r)).collect()
    }
}

impl Wire for String {
    fn put(&self, out: &mut Vec<u8>) {
        (self.len() as u64).put(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn get(r: &mut Reader<'_>) -> Self {
        let n = u64::get(r) as usize;
        String::from_utf8(r.bytes(n).to_vec()).expect("utf8 string on the wire")
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn put(&self, out: &mut Vec<u8>) {
        self.0.put(out);
        self.1.put(out);
    }
    fn get(r: &mut Reader<'_>) -> Self {
        let a = A::get(r);
        let b = B::get(r);
        (a, b)
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn put(&self, out: &mut Vec<u8>) {
        self.0.put(out);
        self.1.put(out);
        self.2.put(out);
    }
    fn get(r: &mut Reader<'_>) -> Self {
        let a = A::get(r);
        let b = B::get(r);
        let c = C::get(r);
        (a, b, c)
    }
}

/// Encode one value into a fresh buffer.
pub fn encode<T: Wire>(v: &T) -> Vec<u8> {
    let mut out = Vec::new();
    v.put(&mut out);
    out
}

/// Decode one value from a whole buffer, asserting full consumption.
pub fn decode<T: Wire>(buf: &[u8]) -> T {
    let mut r = Reader::new(buf);
    let v = T::get(&mut r);
    r.finish();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut out = Vec::new();
        42u8.put(&mut out);
        7u16.put(&mut out);
        9u32.put(&mut out);
        u64::MAX.put(&mut out);
        (-3i64).put(&mut out);
        true.put(&mut out);
        let mut r = Reader::new(&out);
        assert_eq!(u8::get(&mut r), 42);
        assert_eq!(u16::get(&mut r), 7);
        assert_eq!(u32::get(&mut r), 9);
        assert_eq!(u64::get(&mut r), u64::MAX);
        assert_eq!(i64::get(&mut r), -3);
        assert!(bool::get(&mut r));
        r.finish();
    }

    #[test]
    fn composite_roundtrip() {
        let v: Vec<(u64, Option<String>)> = vec![
            (1, Some("abc".to_string())),
            (2, None),
            (u64::MAX, Some(String::new())),
        ];
        assert_eq!(decode::<Vec<(u64, Option<String>)>>(&encode(&v)), v);
    }

    #[test]
    #[should_panic(expected = "trailing bytes")]
    fn trailing_bytes_panic() {
        decode::<u8>(&[1, 2]);
    }
}
