//! BRAM lock tables for pipeline hazard prevention.
//!
//! Paper §4.4.1/§4.4.2: in-flight index operations that could conflict
//! (inserts to the same hash bucket, skiplist inserts sharing a traversal
//! entry point) are tracked in a small on-chip table; a stage encountering a
//! locked entry stalls until the terminal stage of the conflicting operation
//! removes the lock. The table lives in BRAM, so lookup/insert/remove are
//! single-cycle.

use std::collections::HashMap;
use std::hash::Hash;

/// A bounded single-cycle lock table keyed by `K`.
///
/// Each entry carries a hold count so that, if desired, several cooperating
/// operations may hold the same entry (the index pipelines only ever use a
/// count of one, but the re-entrant form keeps the table general).
#[derive(Debug, Clone)]
pub struct LockTable<K: Eq + Hash + Clone> {
    entries: HashMap<K, u32>,
    capacity: usize,
    peak: usize,
}

impl<K: Eq + Hash + Clone> LockTable<K> {
    /// Create a lock table with room for `capacity` distinct keys. The
    /// capacity bound models the fixed BRAM budget; callers must size it at
    /// least as large as the maximum number of in-flight operations.
    pub fn new(capacity: usize) -> Self {
        LockTable {
            entries: HashMap::with_capacity(capacity),
            capacity,
            peak: 0,
        }
    }

    /// Attempt to acquire `key`. Fails if the key is already held by another
    /// operation or the table is full.
    pub fn try_lock(&mut self, key: K) -> bool {
        if self.entries.contains_key(&key) || self.entries.len() >= self.capacity {
            return false;
        }
        self.entries.insert(key, 1);
        self.peak = self.peak.max(self.entries.len());
        true
    }

    /// True if `key` is currently locked.
    pub fn is_locked(&self, key: &K) -> bool {
        self.entries.contains_key(key)
    }

    /// Release `key`. Panics if the key is not held — the terminal pipeline
    /// stage releasing a lock it never took is a simulator bug.
    pub fn unlock(&mut self, key: &K) {
        let n = self
            .entries
            .get_mut(key)
            .expect("unlock of key that is not locked");
        *n -= 1;
        if *n == 0 {
            self.entries.remove(key);
        }
    }

    /// Number of currently held keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no keys are held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Highest simultaneous occupancy observed.
    pub fn peak(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_blocks_duplicate() {
        let mut t = LockTable::new(4);
        assert!(t.try_lock(42u64));
        assert!(!t.try_lock(42u64));
        assert!(t.is_locked(&42));
        t.unlock(&42);
        assert!(!t.is_locked(&42));
        assert!(t.try_lock(42u64));
    }

    #[test]
    fn capacity_bound_enforced() {
        let mut t = LockTable::new(2);
        assert!(t.try_lock(1u32));
        assert!(t.try_lock(2u32));
        assert!(!t.try_lock(3u32));
        t.unlock(&1);
        assert!(t.try_lock(3u32));
        assert_eq!(t.peak(), 2);
    }

    #[test]
    #[should_panic(expected = "not locked")]
    fn unlock_unheld_panics() {
        let mut t = LockTable::new(2);
        t.unlock(&9u64);
    }
}
