//! Bump-allocated address regions over the simulated DRAM.
//!
//! The database image (tuple heaps, hash-table arrays, skiplist towers) and
//! the per-transaction blocks all live in FPGA-side DRAM. A [`Region`] is a
//! contiguous slice of that address space with a simple bump allocator —
//! the same arrangement the paper implies: the host carves the on-board
//! memory into one partition per worker plus an input area for transaction
//! blocks, and nothing is ever freed during a run (aborted inserts leave
//! garbage towers/tuples behind, reclaimed only by reloading).

/// A contiguous DRAM address range with a bump allocator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    base: u64,
    size: u64,
    brk: u64,
}

impl Region {
    /// Create a region spanning `[base, base + size)`.
    pub fn new(base: u64, size: u64) -> Self {
        Region {
            base,
            size,
            brk: base,
        }
    }

    /// Allocate `len` bytes aligned to `align` (a power of two). Returns the
    /// address of the allocation.
    ///
    /// # Panics
    /// Panics if the region is exhausted — on the real hardware this is an
    /// out-of-memory condition the host must handle by provisioning a larger
    /// partition, and in the simulator it is always a configuration error.
    pub fn alloc(&mut self, len: u64, align: u64) -> u64 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let addr = (self.brk + align - 1) & !(align - 1);
        assert!(
            addr + len <= self.base + self.size,
            "region exhausted: need {len} bytes at {addr:#x}, region ends at {:#x}",
            self.base + self.size
        );
        self.brk = addr + len;
        addr
    }

    /// First address of the region.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Size of the region in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Bytes allocated so far (including alignment padding).
    pub fn used(&self) -> u64 {
        self.brk - self.base
    }

    /// Current bump cursor (the next unaligned allocation address).
    pub fn brk(&self) -> u64 {
        self.brk
    }

    /// Overwrite the bump cursor. The fleet simulator uses this to mirror a
    /// chip process's allocator state onto the coordinator's stale copy of
    /// the same region; the cursor must stay inside `[base, base + size]`.
    pub fn set_brk(&mut self, brk: u64) {
        assert!(
            brk >= self.base && brk <= self.base + self.size,
            "brk {brk:#x} outside region [{:#x}, {:#x}]",
            self.base,
            self.base + self.size
        );
        self.brk = brk;
    }

    /// Bytes still available.
    pub fn remaining(&self) -> u64 {
        self.base + self.size - self.brk
    }

    /// Split off a sub-region of `size` bytes from the front of the unused
    /// space, aligned to `align`.
    pub fn carve(&mut self, size: u64, align: u64) -> Region {
        let base = self.alloc(size, align);
        Region::new(base, size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_bumps_and_aligns() {
        let mut r = Region::new(100, 1000);
        assert_eq!(r.alloc(10, 1), 100);
        // Next allocation aligned up to 16.
        assert_eq!(r.alloc(8, 16), 112);
        assert_eq!(r.used(), 20);
    }

    #[test]
    fn carve_produces_disjoint_subregions() {
        let mut r = Region::new(0, 4096);
        let a = r.carve(1024, 64);
        let b = r.carve(1024, 64);
        assert_eq!(a.base(), 0);
        assert_eq!(b.base(), 1024);
        assert!(a.base() + a.size() <= b.base());
    }

    #[test]
    #[should_panic(expected = "region exhausted")]
    fn exhaustion_panics() {
        let mut r = Region::new(0, 16);
        r.alloc(32, 8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_alignment_panics() {
        let mut r = Region::new(0, 64);
        r.alloc(8, 3);
    }
}
