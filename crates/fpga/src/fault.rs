//! Deterministic fault injection.
//!
//! Real hardware fails in ways a clean simulation never shows: the machine
//! dies mid-batch, the tail of a log write is torn, a bit flips on the
//! durable medium, the interconnect drops or delays a packet, a DRAM read
//! takes an ECC-correction detour. A [`FaultPlan`] is a *seeded schedule* of
//! such faults, fixed before the run starts. Components consult the plan on
//! their existing tick paths, so:
//!
//! * a [`FaultPlan::none`] run is bit-for-bit identical to a run without any
//!   fault machinery (the equivalence suite in `tests/fast_forward.rs`
//!   proves it), and
//! * a faulted run is *perfectly reproducible*: the same plan on the same
//!   workload injects the same faults at the same cycles — something real
//!   hardware can never offer. This is what makes crash-consistency testing
//!   tractable: every chaos failure replays exactly.
//!
//! The plan is split by fault domain. NoC and DRAM faults are indexed by
//! *event ordinal* (the nth accepted send, the nth read) rather than by
//! cycle, so a schedule always lands on a real event regardless of timing.
//! Durable-medium faults ([`TornWrite`], [`CorruptByte`]) are applied to the
//! serialized log/checkpoint bytes when the crash snapshot is taken.

/// Flip bits of one byte of a serialized durable image.
///
/// `offset` is reduced modulo the image length, so seeded plans need not
/// know the image size in advance. An `xor` of zero is a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorruptByte {
    /// Byte position (taken modulo the image length).
    pub offset: u64,
    /// Bit pattern XORed into the byte.
    pub xor: u8,
}

impl CorruptByte {
    /// Apply a list of corruptions to an image in place.
    pub fn apply_all(list: &[CorruptByte], bytes: &mut [u8]) {
        if bytes.is_empty() {
            return;
        }
        for c in list {
            let i = (c.offset % bytes.len() as u64) as usize;
            bytes[i] ^= c.xor;
        }
    }
}

/// A torn log write: the crash interrupted the append of record `record`,
/// leaving only its first `valid_bytes` bytes on the durable medium (and
/// nothing after it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TornWrite {
    /// Index of the record whose append was interrupted.
    pub record: u64,
    /// Bytes of that record's serialization that reached the medium.
    pub valid_bytes: u64,
}

/// Delay the nth accepted NoC send by extra cycles (a transient link stall).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NocDelay {
    /// Ordinal of the accepted send (0-based, counted across all links).
    pub nth_send: u64,
    /// Extra in-flight cycles added on top of the topology latency.
    pub extra_cycles: u64,
}

/// NoC fault schedule: drops and delays indexed by accepted-send ordinal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NocFaults {
    /// Ordinals of accepted sends that vanish in flight.
    pub drops: Vec<u64>,
    /// Sends that arrive late.
    pub delays: Vec<NocDelay>,
}

impl NocFaults {
    /// True when no NoC fault is scheduled.
    pub fn is_empty(&self) -> bool {
        self.drops.is_empty() && self.delays.is_empty()
    }

    /// Should the `n`th accepted send be dropped?
    pub fn drop_for(&self, n: u64) -> bool {
        self.drops.contains(&n)
    }

    /// Extra latency for the `n`th accepted send, if scheduled.
    pub fn delay_for(&self, n: u64) -> Option<u64> {
        self.delays
            .iter()
            .find(|d| d.nth_send == n)
            .map(|d| d.extra_cycles)
    }
}

/// A transient DRAM fault: the nth read is detected and corrected (ECC
/// scrub + controller retry), surfacing as extra response latency. The
/// functional bytes are unaffected — an *uncorrectable* fault is modelled
/// as a crash plus durable-medium corruption instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramTransient {
    /// Ordinal of the accepted read request (0-based).
    pub nth_read: u64,
    /// Extra cycles before the response is delivered.
    pub extra_cycles: u64,
}

/// DRAM fault schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DramFaults {
    /// Scheduled transient (corrected) faults.
    pub transients: Vec<DramTransient>,
}

impl DramFaults {
    /// True when no DRAM fault is scheduled.
    pub fn is_empty(&self) -> bool {
        self.transients.is_empty()
    }

    /// Extra latency for the `n`th accepted read, if scheduled.
    pub fn extra_latency_for(&self, n: u64) -> Option<u64> {
        self.transients
            .iter()
            .find(|t| t.nth_read == n)
            .map(|t| t.extra_cycles)
    }
}

/// A deterministic, pre-committed schedule of faults for one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Hard-stop the whole machine at this cycle (power loss).
    pub crash_at: Option<u64>,
    /// The crash interrupted the append of a log record.
    pub torn_log: Option<TornWrite>,
    /// Bit flips on the durable log image.
    pub corrupt_log: Vec<CorruptByte>,
    /// Bit flips on the durable checkpoint image.
    pub corrupt_checkpoint: Vec<CorruptByte>,
    /// Interconnect faults.
    pub noc: NocFaults,
    /// Memory faults.
    pub dram: DramFaults,
}

impl FaultPlan {
    /// The empty plan: injects nothing, perturbs nothing.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// True when the plan schedules no fault at all.
    pub fn is_none(&self) -> bool {
        self.crash_at.is_none()
            && self.torn_log.is_none()
            && self.corrupt_log.is_empty()
            && self.corrupt_checkpoint.is_empty()
            && self.noc.is_empty()
            && self.dram.is_empty()
    }

    /// Schedule a crash (power loss) at `cycle`.
    pub fn crash_at(mut self, cycle: u64) -> Self {
        self.crash_at = Some(cycle);
        self
    }

    /// Tear the append of log record `record` after `valid_bytes` bytes.
    pub fn torn_log_write(mut self, record: u64, valid_bytes: u64) -> Self {
        self.torn_log = Some(TornWrite {
            record,
            valid_bytes,
        });
        self
    }

    /// Flip bits of one byte of the durable log image.
    pub fn corrupt_log_byte(mut self, offset: u64, xor: u8) -> Self {
        self.corrupt_log.push(CorruptByte { offset, xor });
        self
    }

    /// Flip bits of one byte of the durable checkpoint image.
    pub fn corrupt_checkpoint_byte(mut self, offset: u64, xor: u8) -> Self {
        self.corrupt_checkpoint.push(CorruptByte { offset, xor });
        self
    }

    /// Drop the `n`th accepted NoC send.
    pub fn drop_nth_send(mut self, n: u64) -> Self {
        self.noc.drops.push(n);
        self
    }

    /// Delay the `n`th accepted NoC send by `extra_cycles`.
    pub fn delay_nth_send(mut self, n: u64, extra_cycles: u64) -> Self {
        self.noc.delays.push(NocDelay {
            nth_send: n,
            extra_cycles,
        });
        self
    }

    /// Add a transient (corrected) DRAM fault on the `n`th read.
    pub fn dram_transient(mut self, nth_read: u64, extra_cycles: u64) -> Self {
        self.dram.transients.push(DramTransient {
            nth_read,
            extra_cycles,
        });
        self
    }

    /// Generate a randomized plan from a seed and a fault budget. The same
    /// `(seed, budget)` pair always produces the same plan.
    pub fn seeded(seed: u64, budget: &FaultBudget) -> FaultPlan {
        let mut rng = SplitMix(seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut plan = FaultPlan::none();
        if let Some((lo, hi)) = budget.crash_window {
            plan.crash_at = Some(lo + rng.below(hi.saturating_sub(lo).max(1)));
        }
        for _ in 0..budget.noc_drops {
            plan.noc.drops.push(rng.below(budget.noc_send_window.max(1)));
        }
        for _ in 0..budget.noc_delays {
            plan.noc.delays.push(NocDelay {
                nth_send: rng.below(budget.noc_send_window.max(1)),
                extra_cycles: 1 + rng.below(budget.max_delay_cycles.max(1)),
            });
        }
        for _ in 0..budget.dram_transients {
            plan.dram.transients.push(DramTransient {
                nth_read: rng.below(budget.dram_read_window.max(1)),
                extra_cycles: 1 + rng.below(budget.max_delay_cycles.max(1)),
            });
        }
        for _ in 0..budget.log_corruptions {
            plan.corrupt_log.push(CorruptByte {
                offset: rng.next(),
                xor: 1u8 << (rng.below(8) as u32),
            });
        }
        plan
    }
}

/// How many faults of each kind [`FaultPlan::seeded`] may schedule, and the
/// event windows it draws ordinals from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultBudget {
    /// Crash cycle range `[lo, hi)`, if a crash is wanted.
    pub crash_window: Option<(u64, u64)>,
    /// Number of NoC drops to schedule.
    pub noc_drops: u32,
    /// Number of NoC delays to schedule.
    pub noc_delays: u32,
    /// Send ordinals are drawn from `[0, noc_send_window)`.
    pub noc_send_window: u64,
    /// Number of transient DRAM faults to schedule.
    pub dram_transients: u32,
    /// Read ordinals are drawn from `[0, dram_read_window)`.
    pub dram_read_window: u64,
    /// Delays are drawn from `[1, max_delay_cycles]`.
    pub max_delay_cycles: u64,
    /// Number of random single-byte log corruptions.
    pub log_corruptions: u32,
}

impl Default for FaultBudget {
    fn default() -> Self {
        FaultBudget {
            crash_window: None,
            noc_drops: 0,
            noc_delays: 0,
            noc_send_window: 64,
            dram_transients: 0,
            dram_read_window: 1024,
            max_delay_cycles: 64,
            log_corruptions: 0,
        }
    }
}

/// Splitmix64: a tiny self-contained generator so the plan needs no
/// external RNG dependency. Only used to expand seeds into schedules.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_none() {
        assert!(FaultPlan::none().is_none());
        assert!(!FaultPlan::none().crash_at(5).is_none());
        assert!(!FaultPlan::none().drop_nth_send(0).is_none());
    }

    #[test]
    fn corruptions_wrap_and_apply() {
        let mut img = vec![0u8; 4];
        CorruptByte::apply_all(
            &[
                CorruptByte { offset: 1, xor: 0xff },
                CorruptByte { offset: 6, xor: 0x01 },
                CorruptByte { offset: 0, xor: 0x00 },
            ],
            &mut img,
        );
        assert_eq!(img, vec![0, 0xff, 1, 0]);
        // Empty images are a no-op, not a division by zero.
        CorruptByte::apply_all(&[CorruptByte { offset: 3, xor: 1 }], &mut []);
    }

    #[test]
    fn schedules_match_by_ordinal() {
        let plan = FaultPlan::none()
            .drop_nth_send(3)
            .delay_nth_send(5, 40)
            .dram_transient(7, 100);
        assert!(plan.noc.drop_for(3));
        assert!(!plan.noc.drop_for(4));
        assert_eq!(plan.noc.delay_for(5), Some(40));
        assert_eq!(plan.noc.delay_for(3), None);
        assert_eq!(plan.dram.extra_latency_for(7), Some(100));
        assert_eq!(plan.dram.extra_latency_for(8), None);
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        let budget = FaultBudget {
            crash_window: Some((100, 10_000)),
            noc_drops: 3,
            noc_delays: 2,
            dram_transients: 2,
            ..FaultBudget::default()
        };
        let a = FaultPlan::seeded(42, &budget);
        let b = FaultPlan::seeded(42, &budget);
        let c = FaultPlan::seeded(43, &budget);
        assert_eq!(a, b, "same seed, same plan");
        assert_ne!(a, c, "different seed, different plan");
        assert_eq!(a.noc.drops.len(), 3);
        assert!(a.crash_at.unwrap() >= 100 && a.crash_at.unwrap() < 10_000);
    }
}
