//! Bounded FIFOs connecting pipeline stages.
//!
//! On the FPGA these are small BRAM/LUT-RAM queues between the finite-state
//! machines that implement pipeline stages (paper §4.4). Their bounded depth
//! is load-bearing: a full downstream FIFO back-pressures the upstream stage,
//! which is exactly the stall behaviour the paper relies on for hazard
//! prevention and the cause of the "unbalanced dataflow" effects visible in
//! Fig. 11.

use std::collections::VecDeque;

/// A bounded single-producer single-consumer queue with single-cycle
/// semantics: pushes fail (back-pressure) when full.
#[derive(Debug, Clone)]
pub struct Fifo<T> {
    items: VecDeque<T>,
    capacity: usize,
    /// High-water mark, for occupancy reporting.
    peak: usize,
}

impl<T> Fifo<T> {
    /// Create a FIFO holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "FIFO capacity must be positive");
        Fifo {
            items: VecDeque::with_capacity(capacity),
            capacity,
            peak: 0,
        }
    }

    /// Attempt to enqueue; returns the item back if the FIFO is full.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.items.len() >= self.capacity {
            return Err(item);
        }
        self.items.push_back(item);
        self.peak = self.peak.max(self.items.len());
        Ok(())
    }

    /// True if a push would currently succeed.
    pub fn has_space(&self) -> bool {
        self.items.len() < self.capacity
    }

    /// Dequeue the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Peek at the oldest item without removing it.
    pub fn peek(&self) -> Option<&T> {
        self.items.front()
    }

    /// Current number of queued items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Highest occupancy observed since creation.
    pub fn peak(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_fifo_order() {
        let mut f = Fifo::new(3);
        f.push(1).unwrap();
        f.push(2).unwrap();
        assert_eq!(f.pop(), Some(1));
        assert_eq!(f.pop(), Some(2));
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn full_fifo_backpressures() {
        let mut f = Fifo::new(2);
        f.push('a').unwrap();
        f.push('b').unwrap();
        assert!(!f.has_space());
        assert_eq!(f.push('c'), Err('c'));
        f.pop();
        assert!(f.has_space());
        f.push('c').unwrap();
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut f = Fifo::new(4);
        f.push(1).unwrap();
        f.push(2).unwrap();
        f.pop();
        f.push(3).unwrap();
        assert_eq!(f.peak(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Fifo::<u8>::new(0);
    }
}
