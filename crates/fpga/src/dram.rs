//! The simulated FPGA-side DRAM.
//!
//! Models the Convey HC-2's on-board DDR2 memory subsystem (paper §4.1):
//! a byte-addressable memory behind a set of memory controllers, each with a
//! bounded request queue. Components (softcore, index-pipeline stages,
//! scanners) own [`PortId`]s; they issue [`MemRequest`]s and later drain
//! [`MemResponse`]s from their port.
//!
//! # Functional vs. timing model
//!
//! The *functional* state (the bytes) is updated at issue time; the *timing*
//! is modelled by delaying the response by the configured DRAM latency.
//! Because the whole machine ticks components in a fixed order, simulations
//! are deterministic. Pipeline hazards (e.g. the insert-after-insert hazard
//! of paper Fig. 6) are still faithfully expressible: a stage that reads a
//! hash-bucket head while another stage's install is in flight observes the
//! stale value, exactly as on the real fabric — the BRAM lock tables exist
//! to prevent that, and the tests in `bionicdb-coproc` demonstrate the
//! anomaly when the lock table is disabled.
//!
//! # Host access
//!
//! [`Dram::host_read`] / [`Dram::host_write`] bypass the timing model. They
//! model the host CPU populating transaction blocks and the database image
//! over PCIe before the run starts (§5.1 of the paper does exactly this).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};

use crate::fault::DramFaults;
use crate::timing::{Cycle, FpgaConfig};

/// Size of one lazily-allocated memory page.
const PAGE_SIZE: usize = 1 << 16;

/// The functional byte image, shared between a [`Dram`] and every bank
/// created from it with [`Dram::bank`]. Pages are lazily allocated on first
/// write ([`OnceLock`] makes the allocation race-free) and hold [`AtomicU8`]
/// so banks on different threads can touch memory without `unsafe`.
///
/// All accesses use [`Ordering::Relaxed`]: the epoch-parallel scheduler
/// guarantees that any two accesses to the *same* byte from different
/// workers are separated by an epoch barrier (a message must cross the NoC
/// first, and the barrier's lock provides the happens-before edge), so the
/// atomics only have to make the byte-level sharing defined, not ordered.
struct PageStore {
    pages: Vec<OnceLock<Box<[AtomicU8]>>>,
}

impl PageStore {
    fn new(npages: usize) -> Self {
        PageStore {
            pages: (0..npages).map(|_| OnceLock::new()).collect(),
        }
    }

    fn capacity(&self) -> u64 {
        (self.pages.len() * PAGE_SIZE) as u64
    }

    /// The page backing `idx`, allocated (zeroed) on first use.
    fn page(&self, idx: usize) -> &[AtomicU8] {
        assert!(
            idx < self.pages.len(),
            "DRAM address out of range (page {idx})"
        );
        self.pages[idx].get_or_init(|| {
            let mut v = Vec::with_capacity(PAGE_SIZE);
            v.resize_with(PAGE_SIZE, || AtomicU8::new(0));
            v.into_boxed_slice()
        })
    }

    fn write(&self, addr: u64, data: &[u8]) {
        let mut addr = addr as usize;
        let mut data = data;
        while !data.is_empty() {
            let page = self.page(addr / PAGE_SIZE);
            let off = addr % PAGE_SIZE;
            let n = (PAGE_SIZE - off).min(data.len());
            for (dst, &b) in page[off..off + n].iter().zip(&data[..n]) {
                dst.store(b, Ordering::Relaxed);
            }
            addr += n;
            data = &data[n..];
        }
    }

    /// Read without allocating: unwritten pages yield zeros and stay
    /// unallocated, so reads never perturb the [`PageStore::digest`].
    fn read_into(&self, addr: u64, out: &mut [u8]) {
        let len = out.len();
        let mut addr = addr as usize;
        let mut filled = 0;
        while filled < len {
            let page = addr / PAGE_SIZE;
            let off = addr % PAGE_SIZE;
            let n = (PAGE_SIZE - off).min(len - filled);
            assert!(
                page < self.pages.len(),
                "DRAM address out of range (page {page})"
            );
            if let Some(p) = self.pages[page].get() {
                for (dst, src) in out[filled..filled + n].iter_mut().zip(&p[off..off + n]) {
                    *dst = src.load(Ordering::Relaxed);
                }
            } else {
                out[filled..filled + n].fill(0);
            }
            addr += n;
            filled += n;
        }
    }

    /// FNV-1a over allocated pages; see [`Dram::image_digest`].
    fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |b: u8| {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        };
        for (idx, page) in self.pages.iter().enumerate() {
            if let Some(p) = page.get() {
                for b in (idx as u64).to_le_bytes() {
                    eat(b);
                }
                for b in p.iter() {
                    eat(b.load(Ordering::Relaxed));
                }
            }
        }
        h
    }
}

impl std::fmt::Debug for PageStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let allocated = self.pages.iter().filter(|p| p.get().is_some()).count();
        f.debug_struct("PageStore")
            .field("pages", &self.pages.len())
            .field("allocated", &allocated)
            .finish()
    }
}

/// Identifies a requester port on the memory interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PortId(pub(crate) u32);

/// An opaque routing tag chosen by the issuer; returned verbatim in the
/// response so the issuer can route it to the right pipeline stage / slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tag(pub u64);

/// Largest read that fits in a [`MemData`] without a heap allocation. Sized
/// for the hot paths: 8-byte pointer/word reads, record headers, and the
/// 80-byte skiplist tower-header bursts all fit; only payload bursts
/// (up to the configured payload length, e.g. 1 KiB) spill to the heap.
pub const INLINE_DATA: usize = 128;

/// Response payload: a fixed inline buffer for line-sized reads, spilling to
/// the heap only for multi-line payload bursts. Keeps the per-response
/// allocation out of the simulator's hottest loop.
#[derive(Clone)]
pub enum MemData {
    /// Up to [`INLINE_DATA`] bytes stored inline.
    Inline {
        /// Valid prefix length of `buf`.
        len: u8,
        /// Inline storage.
        buf: [u8; INLINE_DATA],
    },
    /// A burst larger than [`INLINE_DATA`] bytes.
    Heap(Box<[u8]>),
}

impl MemData {
    /// An empty payload (write acknowledgements).
    pub const fn empty() -> Self {
        MemData::Inline {
            len: 0,
            buf: [0; INLINE_DATA],
        }
    }

    /// Copy `src` into a payload, inline when it fits.
    pub fn from_slice(src: &[u8]) -> Self {
        if src.len() <= INLINE_DATA {
            let mut buf = [0u8; INLINE_DATA];
            buf[..src.len()].copy_from_slice(src);
            MemData::Inline {
                len: src.len() as u8,
                buf,
            }
        } else {
            MemData::Heap(src.into())
        }
    }

    /// The payload bytes.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            MemData::Inline { len, buf } => &buf[..*len as usize],
            MemData::Heap(b) => b,
        }
    }

    /// Copy out into an owned vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl std::ops::Deref for MemData {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for MemData {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for MemData {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for MemData {}

impl std::fmt::Debug for MemData {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("MemData").field(&self.as_slice()).finish()
    }
}

impl From<&[u8]> for MemData {
    fn from(src: &[u8]) -> Self {
        MemData::from_slice(src)
    }
}

/// The operation carried by a memory request.
#[derive(Debug, Clone, PartialEq)]
pub enum MemKind {
    /// Read `len` bytes.
    Read {
        /// Number of bytes to read.
        len: u32,
    },
    /// Write the given bytes.
    Write {
        /// Bytes to store at the request address.
        data: Vec<u8>,
    },
}

/// A memory request issued by a component.
#[derive(Debug, Clone, PartialEq)]
pub struct MemRequest {
    /// Byte address in FPGA-side DRAM.
    pub addr: u64,
    /// Read or write.
    pub kind: MemKind,
    /// Opaque routing tag, echoed in the response.
    pub tag: Tag,
}

/// A memory response delivered to the issuing port after the DRAM latency.
#[derive(Debug, Clone, PartialEq)]
pub struct MemResponse {
    /// Address of the completed request.
    pub addr: u64,
    /// Data for reads; empty for writes.
    pub data: MemData,
    /// The tag from the matching request.
    pub tag: Tag,
}

/// Error returned when a controller cannot accept a request this cycle.
///
/// The issuer is expected to retry on a later cycle; this is how memory
/// back-pressure propagates into pipeline stalls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemBusy;

#[derive(Debug, Default)]
struct Controller {
    /// Requests in flight: `(ready_cycle, port, response, is_posted_ack)`.
    /// Completion times are monotone per controller (issue order + uniform
    /// latency + serialized bursts), so this stays sorted by construction.
    /// An injected transient fault may push one entry's ready time past its
    /// successors'; delivery then head-of-line blocks on it (the retrying
    /// controller stalls its queue), which `tick`/`next_event` model by
    /// only ever examining the front. Entries flagged as posted-write
    /// acknowledgements are **cancelled** at completion instead of
    /// buffered: every consumer in the machine discards them unread, all
    /// statistics are charged at issue time, and back-pressure
    /// (`busy_until`, queue depth) is checked only at issue — so dropping
    /// the dead response is invisible to machine state while sparing the
    /// fast-forward and epoch schedulers a wake-up per posted write.
    inflight: VecDeque<(Cycle, PortId, MemResponse, bool)>,
    /// The controller's data bus is occupied until this cycle (bursts).
    busy_until: Cycle,
}

/// Aggregate DRAM statistics, used by the benchmark harness.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DramStats {
    /// Completed read requests.
    pub reads: u64,
    /// Completed write requests.
    pub writes: u64,
    /// Bytes moved (read + written).
    pub bytes: u64,
    /// Requests rejected because a controller was saturated.
    pub rejections: u64,
    /// Injected transient faults (ECC-corrected retries) observed.
    pub transient_faults: u64,
}

impl crate::wire::Wire for DramStats {
    fn put(&self, out: &mut Vec<u8>) {
        self.reads.put(out);
        self.writes.put(out);
        self.bytes.put(out);
        self.rejections.put(out);
        self.transient_faults.put(out);
    }
    fn get(r: &mut crate::wire::Reader<'_>) -> Self {
        DramStats {
            reads: r.get(),
            writes: r.get(),
            bytes: r.get(),
            rejections: r.get(),
            transient_faults: r.get(),
        }
    }
}

/// Number of buckets in the [`PortStats::mlp_hist`] occupancy histogram.
pub const MLP_BUCKETS: usize = 8;

/// Bucket index for an outstanding-read count `n ≥ 1`: 1, 2, 3–4, 5–8,
/// 9–16, 17–32, 33–64, 65+.
pub fn mlp_bucket(n: u64) -> usize {
    match n {
        0 | 1 => 0,
        2 => 1,
        3..=4 => 2,
        5..=8 => 3,
        9..=16 => 4,
        17..=32 => 5,
        33..=64 => 6,
        _ => 7,
    }
}

/// Per-port DRAM accounting: who is generating the memory traffic. All
/// counters are updated at issue time, so they are identical under strict
/// stepping and fast-forward. (The MLP fields sample the port's
/// outstanding-read occupancy at issue time too; the live count they sample
/// decrements at response delivery, which the fast-forward scheduler hits
/// on exactly the same cycles as strict ticking.)
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PortStats {
    /// Accepted read requests issued by this port.
    pub reads: u64,
    /// Accepted write requests issued by this port.
    pub writes: u64,
    /// Bytes moved on behalf of this port (read + written).
    pub bytes: u64,
    /// Controller bus cycles this port's bursts occupied (per-controller
    /// share of each transfer; the paper's bandwidth-occupancy proxy).
    pub occupancy_cycles: Cycle,
    /// Outstanding-read (memory-level-parallelism) occupancy histogram:
    /// each accepted read samples how many of this port's reads are then
    /// in flight (itself included) into [`mlp_bucket`]'s buckets. Only
    /// populated when [`Dram::set_mlp_tracking`] armed the sampler — all
    /// zeros otherwise, and the report layer omits all-zero histograms, so
    /// the default is schema- and byte-inert.
    pub mlp_hist: [u64; MLP_BUCKETS],
    /// Peak simultaneous outstanding reads sampled on this port.
    pub mlp_peak: u64,
}

impl crate::wire::Wire for PortStats {
    fn put(&self, out: &mut Vec<u8>) {
        self.reads.put(out);
        self.writes.put(out);
        self.bytes.put(out);
        self.occupancy_cycles.put(out);
        for b in &self.mlp_hist {
            b.put(out);
        }
        self.mlp_peak.put(out);
    }
    fn get(r: &mut crate::wire::Reader<'_>) -> Self {
        let reads = r.get();
        let writes = r.get();
        let bytes = r.get();
        let occupancy_cycles = r.get();
        let mut mlp_hist = [0u64; MLP_BUCKETS];
        for b in &mut mlp_hist {
            *b = r.get();
        }
        PortStats {
            reads,
            writes,
            bytes,
            occupancy_cycles,
            mlp_hist,
            mlp_peak: r.get(),
        }
    }
}

/// One journaled functional write: `(address, bytes)`. The fleet simulator
/// replays these on remote copies of the page store to keep the functional
/// memory image coherent across process boundaries.
pub type WriteJournal = Vec<(u64, Vec<u8>)>;

/// The simulated FPGA-side DRAM: functional byte store plus timing model.
///
/// The byte image lives in a [`PageStore`] shared by reference: [`Dram::bank`]
/// creates additional views with private controllers/ports over the same
/// bytes, which is how the machine gives every partition worker its own
/// memory channel (the HC-2's DIMM groups are physically partitioned the
/// same way) — and what lets the epoch-parallel scheduler hand each worker's
/// bank to its own thread.
pub struct Dram {
    store: Arc<PageStore>,
    controllers: Vec<Controller>,
    responses: Vec<VecDeque<MemResponse>>,
    port_stats: Vec<PortStats>,
    latency: Cycle,
    max_outstanding: usize,
    stats: DramStats,
    /// Injected fault schedule (empty by default; see [`crate::fault`]).
    faults: DramFaults,
    /// Accepted read requests so far — the ordinal the fault schedule
    /// matches against.
    reads_seen: u64,
    /// Posted-write acknowledgements cancelled at completion instead of
    /// delivered (see [`Controller::inflight`]). Simulator instrumentation,
    /// deliberately **not** part of [`DramStats`]: the machine never
    /// observes these responses, so the report schema stays byte-identical
    /// with and without cancellation.
    cancelled_acks: u64,
    /// When armed, every functional write through this view is also
    /// recorded here (all timed writes funnel through [`Dram::host_write`]
    /// at issue time, so this captures the complete mutation stream). The
    /// fleet simulator arms it per-process and ships the journal at epoch
    /// barriers; `None` (the default) is bit-inert.
    journal: Option<WriteJournal>,
    /// When armed, accepted reads sample their port's outstanding-read
    /// occupancy into [`PortStats::mlp_hist`]. Off (the default) leaves
    /// every statistic untouched.
    mlp_tracking: bool,
    /// Live outstanding-read count per port (parallel to `port_stats`).
    /// Kept outside [`PortStats`] so [`Dram::reset_stats`] can clear the
    /// histogram without corrupting in-flight accounting.
    mlp_live: Vec<u64>,
}

impl Dram {
    /// Create a DRAM of `size_bytes` capacity (rounded up to whole pages)
    /// with the timing parameters from `cfg`.
    pub fn new(cfg: &FpgaConfig, size_bytes: u64) -> Self {
        let npages = (size_bytes as usize).div_ceil(PAGE_SIZE);
        Dram {
            store: Arc::new(PageStore::new(npages)),
            controllers: (0..cfg.dram_controllers)
                .map(|_| Controller::default())
                .collect(),
            responses: Vec::new(),
            port_stats: Vec::new(),
            latency: cfg.dram_latency,
            max_outstanding: cfg.dram_max_outstanding,
            stats: DramStats::default(),
            faults: DramFaults::default(),
            reads_seen: 0,
            cancelled_acks: 0,
            journal: None,
            mlp_tracking: false,
            mlp_live: Vec::new(),
        }
    }

    /// A new bank over the *same* functional bytes: private controllers,
    /// ports, statistics, and fault ordinals, shared [`PageStore`]. A write
    /// through any bank is immediately visible to reads through every other
    /// (functional effects apply at issue time, as always).
    pub fn bank(&self) -> Dram {
        Dram {
            store: Arc::clone(&self.store),
            controllers: (0..self.controllers.len())
                .map(|_| Controller::default())
                .collect(),
            responses: Vec::new(),
            port_stats: Vec::new(),
            latency: self.latency,
            max_outstanding: self.max_outstanding,
            stats: DramStats::default(),
            faults: DramFaults::default(),
            reads_seen: 0,
            cancelled_acks: 0,
            journal: None,
            mlp_tracking: self.mlp_tracking,
            mlp_live: Vec::new(),
        }
    }

    /// Arm (or disarm) outstanding-read occupancy sampling on this view
    /// (see [`PortStats::mlp_hist`]). Off by default; arming it changes
    /// statistics only, never functional bytes or timing.
    pub fn set_mlp_tracking(&mut self, on: bool) {
        self.mlp_tracking = on;
    }

    /// Install an injected fault schedule (see [`crate::fault`]). An empty
    /// schedule leaves every access bit-identical to an unfaulted run.
    pub fn set_faults(&mut self, faults: DramFaults) {
        self.faults = faults;
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.store.capacity()
    }

    /// Register a new requester port and return its id.
    pub fn register_port(&mut self) -> PortId {
        let id = PortId(self.responses.len() as u32);
        self.responses.push(VecDeque::new());
        self.port_stats.push(PortStats::default());
        self.mlp_live.push(0);
        id
    }

    /// Per-port accounting, indexed by [`PortId`].
    pub fn port_stats(&self) -> &[PortStats] {
        &self.port_stats
    }

    /// Number of registered ports.
    pub fn num_ports(&self) -> usize {
        self.responses.len()
    }

    /// Snapshot of the aggregate statistics.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Reset statistics (used between benchmark phases).
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
        for p in &mut self.port_stats {
            *p = PortStats::default();
        }
    }

    fn controller_for(&self, addr: u64) -> usize {
        // Interleave controllers on 64-byte granules, like the HC-2's
        // scatter-gather DIMM interleaving.
        ((addr >> 6) as usize) % self.controllers.len()
    }

    /// Issue a request at cycle `now` from `port`. On success the functional
    /// effect is applied immediately and a response will be delivered to the
    /// port after the access latency plus the burst-transfer time (one bus
    /// cycle per 64-byte line — large transfers occupy the controller, which
    /// is how payload copies consume bandwidth). Returns [`MemBusy`] if the
    /// responsible controller is saturated; the caller retries next cycle.
    pub fn issue(&mut self, now: Cycle, port: PortId, req: MemRequest) -> Result<(), MemBusy> {
        let cidx = self.controller_for(req.addr);
        let latency = self.latency;
        let max_outstanding = self.max_outstanding;
        let len = match &req.kind {
            MemKind::Read { len } => *len as u64,
            MemKind::Write { data } => data.len() as u64,
        };
        let lines = len.div_ceil(64).max(1);
        // A multi-line transfer stripes over a group of consecutive
        // controllers (scatter-gather interleaving across a DIMM group),
        // occupying each touched controller for its share of the burst.
        let n = (self.controllers.len() as u64).min(4);
        let occupy = lines.div_ceil(n).max(1);
        let touched = lines.min(n) as usize;
        {
            for k in 0..touched {
                let ctl = &self.controllers[(cidx + k) % self.controllers.len()];
                if ctl.busy_until > now {
                    self.stats.rejections += 1;
                    return Err(MemBusy);
                }
            }
            if self.controllers[cidx].inflight.len() >= max_outstanding {
                self.stats.rejections += 1;
                return Err(MemBusy);
            }
        }
        // Injected transient faults (ECC scrub + controller retry): the nth
        // accepted read pays extra response latency. Functional bytes are
        // untouched; with no schedule installed this is a counter bump only.
        let mut fault_extra = 0;
        let is_read = matches!(req.kind, MemKind::Read { .. });
        let resp = match req.kind {
            MemKind::Read { len } => {
                let n = self.reads_seen;
                self.reads_seen += 1;
                if let Some(extra) = self.faults.extra_latency_for(n) {
                    fault_extra = extra;
                    self.stats.transient_faults += 1;
                }
                let data = self.read_data(req.addr, len as usize);
                self.stats.reads += 1;
                self.stats.bytes += u64::from(len);
                MemResponse {
                    addr: req.addr,
                    data,
                    tag: req.tag,
                }
            }
            MemKind::Write { data } => {
                self.host_write(req.addr, &data);
                self.stats.writes += 1;
                self.stats.bytes += data.len() as u64;
                MemResponse {
                    addr: req.addr,
                    data: MemData::empty(),
                    tag: req.tag,
                }
            }
        };
        for k in 0..touched {
            let i = (cidx + k) % self.controllers.len();
            self.controllers[i].busy_until = now + occupy;
        }
        if let Some(ps) = self.port_stats.get_mut(port.0 as usize) {
            if is_read {
                ps.reads += 1;
            } else {
                ps.writes += 1;
            }
            ps.bytes += len;
            ps.occupancy_cycles += occupy;
            if self.mlp_tracking && is_read {
                let live = &mut self.mlp_live[port.0 as usize];
                *live += 1;
                ps.mlp_hist[mlp_bucket(*live)] += 1;
                ps.mlp_peak = ps.mlp_peak.max(*live);
            }
        }
        self.controllers[cidx].inflight.push_back((
            now + latency + occupy - 1 + fault_extra,
            port,
            resp,
            !is_read,
        ));
        Ok(())
    }

    /// Advance the DRAM to cycle `now`, delivering any responses whose
    /// latency has elapsed into their issuing port's response queue.
    /// Posted-write acknowledgements are cancelled here instead of
    /// delivered (see [`Controller::inflight`]): they leave the in-flight
    /// queue at exactly the cycle they always did — so issue-time
    /// back-pressure is unchanged — but no consumer ever has to wake up
    /// just to discard them.
    pub fn tick(&mut self, now: Cycle) {
        for ctl in &mut self.controllers {
            while let Some((ready, _, _, _)) = ctl.inflight.front() {
                if *ready > now {
                    break;
                }
                let (_, port, resp, is_ack) = ctl.inflight.pop_front().expect("front checked");
                if is_ack {
                    self.cancelled_acks += 1;
                } else {
                    if self.mlp_tracking {
                        if let Some(live) = self.mlp_live.get_mut(port.0 as usize) {
                            *live = live.saturating_sub(1);
                        }
                    }
                    self.responses[port.0 as usize].push_back(resp);
                }
            }
        }
    }

    /// Pop the next delivered response for `port`, if any.
    pub fn pop_response(&mut self, port: PortId) -> Option<MemResponse> {
        self.responses[port.0 as usize].pop_front()
    }

    /// Number of delivered-but-unconsumed responses on `port`.
    pub fn pending_responses(&self, port: PortId) -> usize {
        self.responses[port.0 as usize].len()
    }

    /// Total requests currently in flight across all controllers.
    pub fn inflight(&self) -> usize {
        self.controllers.iter().map(|c| c.inflight.len()).sum()
    }

    /// The earliest future cycle at which an in-flight request completes
    /// *observably* — i.e. buffers a response some consumer will read — or
    /// `None` when nothing observable is in flight. Each controller's queue
    /// is sorted by completion time (see [`Controller::inflight`]) except
    /// for injected read-fault extras, and delivery is in queue order, so
    /// the first non-ack entry bounds when its controller next buffers a
    /// response. Leading posted-write acknowledgements are skipped: they
    /// cancel silently at completion, so waking a scheduler for them would
    /// be a dead (though harmless) tick — this is what stops abort-heavy
    /// runs from dragging dead bank events across epoch rounds.
    pub fn next_event(&self) -> Option<Cycle> {
        self.controllers
            .iter()
            .filter_map(|c| {
                c.inflight.iter().find_map(|&(ready, _, _, is_ack)| {
                    if is_ack {
                        None
                    } else {
                        Some(ready)
                    }
                })
            })
            .min()
    }

    /// Posted-write acknowledgements cancelled at completion. Simulator
    /// instrumentation, not machine state (never part of [`DramStats`]).
    pub fn cancelled_acks(&self) -> u64 {
        self.cancelled_acks
    }

    /// True when any port has a delivered-but-unconsumed response. While this
    /// holds, a component could consume a response on the very next cycle, so
    /// the fast-forward scheduler must not skip ahead.
    pub fn has_buffered_responses(&self) -> bool {
        self.responses.iter().any(|q| !q.is_empty())
    }

    /// FNV-1a digest over the allocated memory image (page index + contents
    /// of every materialized page). Two runs that performed identical write
    /// sequences allocate identical pages, so equal digests mean equal
    /// functional memory state; used by the strict-vs-fast-forward
    /// equivalence tests.
    pub fn image_digest(&self) -> u64 {
        self.store.digest()
    }

    /// Untimed write, modelling host/PCIe population of memory.
    ///
    /// Every functional mutation of the byte image funnels through here —
    /// timed writes apply their bytes at issue time via this method — so an
    /// armed write journal (see [`Dram::set_write_journal`]) captures the
    /// complete mutation stream of this view.
    pub fn host_write(&mut self, addr: u64, data: &[u8]) {
        if let Some(j) = self.journal.as_mut() {
            j.push((addr, data.to_vec()));
        }
        self.store.write(addr, data);
    }

    /// Arm (or disarm) the write journal on this view. Journaling is pure
    /// host-side bookkeeping: no cycle, statistic, or functional byte
    /// depends on whether it is armed.
    pub fn set_write_journal(&mut self, on: bool) {
        self.journal = if on { Some(Vec::new()) } else { None };
    }

    /// Drain the armed journal (empty when disarmed).
    pub fn take_write_journal(&mut self) -> WriteJournal {
        match self.journal.as_mut() {
            Some(j) => std::mem::take(j),
            None => Vec::new(),
        }
    }

    /// Replay a journal captured on another view of (a copy of) this image.
    /// Applies directly to the page store, bypassing this view's own
    /// journal — a relayed write must not echo back into the next journal.
    pub fn apply_write_journal(&mut self, entries: &[(u64, Vec<u8>)]) {
        for (addr, data) in entries {
            self.store.write(*addr, data);
        }
    }

    /// Read `out.len()` bytes starting at `addr` into a caller-provided
    /// buffer, without allocating. Unwritten memory reads as zero.
    pub fn read_into(&self, addr: u64, out: &mut [u8]) {
        self.store.read_into(addr, out);
    }

    /// Read `len` bytes into a [`MemData`], inline when the burst fits.
    fn read_data(&self, addr: u64, len: usize) -> MemData {
        if len <= INLINE_DATA {
            let mut buf = [0u8; INLINE_DATA];
            self.read_into(addr, &mut buf[..len]);
            MemData::Inline {
                len: len as u8,
                buf,
            }
        } else {
            let mut out = vec![0u8; len];
            self.read_into(addr, &mut out);
            MemData::Heap(out.into_boxed_slice())
        }
    }

    /// Untimed read, modelling host/PCIe inspection of memory. Unwritten
    /// memory reads as zero.
    pub fn host_read(&self, addr: u64, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        self.read_into(addr, &mut out);
        out
    }

    /// Untimed 8-byte little-endian read.
    pub fn host_read_u64(&self, addr: u64) -> u64 {
        let b = self.host_read(addr, 8);
        u64::from_le_bytes(b.try_into().expect("8 bytes"))
    }

    /// Untimed 8-byte little-endian write.
    pub fn host_write_u64(&mut self, addr: u64, value: u64) {
        self.host_write(addr, &value.to_le_bytes());
    }
}

impl std::fmt::Debug for Dram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dram")
            .field("capacity", &self.capacity())
            .field("controllers", &self.controllers.len())
            .field("ports", &self.responses.len())
            .field("inflight", &self.inflight())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_dram() -> Dram {
        Dram::new(&FpgaConfig::default(), 1 << 20)
    }

    #[test]
    fn host_rw_roundtrip() {
        let mut d = small_dram();
        d.host_write(100, &[1, 2, 3, 4]);
        assert_eq!(d.host_read(100, 4), vec![1, 2, 3, 4]);
        // Unwritten memory reads as zero.
        assert_eq!(d.host_read(104, 2), vec![0, 0]);
    }

    #[test]
    fn host_rw_spans_pages() {
        let mut d = small_dram();
        let addr = (PAGE_SIZE - 3) as u64;
        let data: Vec<u8> = (0..10).collect();
        d.host_write(addr, &data);
        assert_eq!(d.host_read(addr, 10), data);
    }

    #[test]
    fn u64_roundtrip() {
        let mut d = small_dram();
        d.host_write_u64(64, 0xdead_beef_cafe_f00d);
        assert_eq!(d.host_read_u64(64), 0xdead_beef_cafe_f00d);
    }

    #[test]
    fn read_response_arrives_after_latency() {
        let cfg = FpgaConfig::default();
        let mut d = Dram::new(&cfg, 1 << 20);
        let p = d.register_port();
        d.host_write_u64(8, 42);
        d.issue(
            0,
            p,
            MemRequest {
                addr: 8,
                kind: MemKind::Read { len: 8 },
                tag: Tag(7),
            },
        )
        .unwrap();
        // Not ready one cycle before the latency elapses.
        d.tick(cfg.dram_latency - 1);
        assert!(d.pop_response(p).is_none());
        d.tick(cfg.dram_latency);
        let r = d.pop_response(p).expect("response due");
        assert_eq!(r.tag, Tag(7));
        assert_eq!(u64::from_le_bytes(r.data.as_slice().try_into().unwrap()), 42);
    }

    #[test]
    fn write_applies_functionally_at_issue() {
        let mut d = small_dram();
        let p = d.register_port();
        d.issue(
            0,
            p,
            MemRequest {
                addr: 0,
                kind: MemKind::Write { data: vec![9; 8] },
                tag: Tag(0),
            },
        )
        .unwrap();
        // Visible immediately to a functional read even though the response
        // has not been delivered yet.
        assert_eq!(d.host_read(0, 8), vec![9; 8]);
    }

    #[test]
    fn controller_issue_width_limits_per_cycle() {
        let cfg = FpgaConfig::default(); // issue width 1
        let mut d = Dram::new(&cfg, 1 << 20);
        let p = d.register_port();
        // Two requests to the same 64-byte granule hit the same controller.
        let req = |tag| MemRequest {
            addr: 16,
            kind: MemKind::Read { len: 8 },
            tag: Tag(tag),
        };
        assert!(d.issue(5, p, req(1)).is_ok());
        assert_eq!(d.issue(5, p, req(2)), Err(MemBusy));
        // Next cycle the controller accepts again.
        assert!(d.issue(6, p, req(3)).is_ok());
        assert_eq!(d.stats().rejections, 1);
    }

    #[test]
    fn controller_outstanding_limit() {
        let cfg = FpgaConfig {
            dram_max_outstanding: 2,
            ..FpgaConfig::default()
        };
        let mut d = Dram::new(&cfg, 1 << 20);
        let p = d.register_port();
        let req = |tag| MemRequest {
            addr: 0,
            kind: MemKind::Read { len: 8 },
            tag: Tag(tag),
        };
        assert!(d.issue(0, p, req(1)).is_ok());
        assert!(d.issue(1, p, req(2)).is_ok());
        assert_eq!(d.issue(2, p, req(3)), Err(MemBusy), "outstanding limit");
        // Draining in-flight requests frees capacity.
        d.tick(cfg.dram_latency + 1);
        assert!(d.issue(cfg.dram_latency + 2, p, req(4)).is_ok());
    }

    #[test]
    fn bursts_occupy_the_controller() {
        let cfg = FpgaConfig::default();
        let mut d = Dram::new(&cfg, 1 << 20);
        let p = d.register_port();
        // A 1 KiB read occupies its controller for 16 bus cycles.
        d.issue(
            0,
            p,
            MemRequest {
                addr: 0,
                kind: MemKind::Read { len: 1024 },
                tag: Tag(1),
            },
        )
        .unwrap();
        // 16 lines stripe over a 4-controller group: each busy 4 cycles.
        let small = MemRequest {
            addr: 0,
            kind: MemKind::Read { len: 8 },
            tag: Tag(2),
        };
        assert_eq!(d.issue(1, p, small.clone()), Err(MemBusy), "bus still busy");
        assert_eq!(d.issue(3, p, small.clone()), Err(MemBusy), "bus still busy");
        assert!(d.issue(4, p, small).is_ok());
        // The burst's response lands later than a single-line access.
        d.tick(cfg.dram_latency + 2);
        assert!(
            d.pop_response(p).is_none(),
            "burst not complete at base latency"
        );
        d.tick(cfg.dram_latency + 3);
        assert_eq!(d.pop_response(p).unwrap().tag, Tag(1));
    }

    #[test]
    fn responses_route_to_correct_port() {
        let cfg = FpgaConfig::default();
        let mut d = Dram::new(&cfg, 1 << 20);
        let p1 = d.register_port();
        let p2 = d.register_port();
        // Different granules so both are accepted in the same cycle.
        d.issue(
            0,
            p1,
            MemRequest {
                addr: 0,
                kind: MemKind::Read { len: 1 },
                tag: Tag(1),
            },
        )
        .unwrap();
        d.issue(
            0,
            p2,
            MemRequest {
                addr: 128,
                kind: MemKind::Read { len: 1 },
                tag: Tag(2),
            },
        )
        .unwrap();
        d.tick(cfg.dram_latency);
        assert_eq!(d.pop_response(p1).unwrap().tag, Tag(1));
        assert_eq!(d.pop_response(p2).unwrap().tag, Tag(2));
        assert!(d.pop_response(p1).is_none());
    }

    #[test]
    fn stats_count_reads_writes_bytes() {
        let mut d = small_dram();
        let p = d.register_port();
        d.issue(
            0,
            p,
            MemRequest {
                addr: 0,
                kind: MemKind::Read { len: 8 },
                tag: Tag(0),
            },
        )
        .unwrap();
        d.issue(
            1,
            p,
            MemRequest {
                addr: 64,
                kind: MemKind::Write { data: vec![0; 16] },
                tag: Tag(1),
            },
        )
        .unwrap();
        let s = d.stats();
        assert_eq!((s.reads, s.writes, s.bytes), (1, 1, 24));
    }

    #[test]
    fn transient_fault_delays_the_scheduled_read_only() {
        use crate::fault::FaultPlan;
        let cfg = FpgaConfig::default();
        let mut d = Dram::new(&cfg, 1 << 20);
        d.set_faults(FaultPlan::none().dram_transient(1, 10).dram);
        let p = d.register_port();
        let req = |addr, tag| MemRequest {
            addr,
            kind: MemKind::Read { len: 8 },
            tag: Tag(tag),
        };
        // Different granules so both issue at cycle 0.
        d.issue(0, p, req(0, 0)).unwrap();
        d.issue(0, p, req(64, 1)).unwrap();
        d.tick(cfg.dram_latency);
        assert_eq!(d.pop_response(p).unwrap().tag, Tag(0), "read 0 on time");
        assert!(d.pop_response(p).is_none(), "read 1 held by ECC retry");
        d.tick(cfg.dram_latency + 10);
        assert_eq!(d.pop_response(p).unwrap().tag, Tag(1));
        assert_eq!(d.stats().transient_faults, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_access_panics() {
        let mut d = small_dram();
        d.host_write(2 << 20, &[1]);
    }

    #[test]
    fn banks_share_bytes_but_not_timing() {
        let mut d = small_dram();
        let mut bank = d.bank();
        // Functional bytes are shared both ways, immediately.
        d.host_write(100, &[7; 4]);
        assert_eq!(bank.host_read(100, 4), vec![7; 4]);
        let p = bank.register_port();
        bank.issue(
            0,
            p,
            MemRequest {
                addr: 200,
                kind: MemKind::Write { data: vec![5; 8] },
                tag: Tag(0),
            },
        )
        .unwrap();
        assert_eq!(d.host_read(200, 8), vec![5; 8]);
        assert_eq!(d.image_digest(), bank.image_digest());
        // Timing state is private: the parent saw no traffic.
        assert_eq!(d.stats(), DramStats::default());
        assert_eq!(bank.stats().writes, 1);
        assert_eq!(d.inflight(), 0);
        assert_eq!(bank.inflight(), 1);
        // A port registered on one bank does not exist on the other.
        assert_eq!(d.num_ports(), 0);
        assert_eq!(bank.num_ports(), 1);
    }

    #[test]
    fn unallocated_reads_do_not_perturb_the_digest() {
        let mut d = small_dram();
        d.host_write(0, &[1]);
        let before = d.image_digest();
        // Reading a never-written page returns zeros without allocating it.
        assert_eq!(d.host_read(5 * PAGE_SIZE as u64, 16), vec![0; 16]);
        assert_eq!(d.image_digest(), before);
    }
}
