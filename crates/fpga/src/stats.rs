//! Simulation statistics shared by the higher-level crates.

use crate::timing::Cycle;

/// Cycle-accurate utilization counter for a pipeline stage or functional
/// unit: tracks how many of the elapsed cycles the unit did useful work,
/// stalled on memory, or stalled on back-pressure.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StageStats {
    /// Cycles in which the unit completed useful work.
    pub busy: Cycle,
    /// Cycles stalled waiting for a memory response or lock.
    pub stalled: Cycle,
    /// Cycles with nothing to do (empty input, no in-flight op). Kept
    /// separate from `stalled` so utilization reflects genuine contention:
    /// the fast-forward scheduler skips exactly these cycles, and folding
    /// them into `stalled` would make strict and fast-forward runs disagree
    /// on what "stalled" means.
    pub idle: Cycle,
    /// Items processed (stage-specific meaning).
    pub items: u64,
}

impl crate::wire::Wire for StageStats {
    fn put(&self, out: &mut Vec<u8>) {
        self.busy.put(out);
        self.stalled.put(out);
        self.idle.put(out);
        self.items.put(out);
    }
    fn get(r: &mut crate::wire::Reader<'_>) -> Self {
        StageStats {
            busy: r.get(),
            stalled: r.get(),
            idle: r.get(),
            items: r.get(),
        }
    }
}

impl StageStats {
    /// Record one busy cycle and `items` processed items.
    pub fn work(&mut self, items: u64) {
        self.busy += 1;
        self.items += items;
    }

    /// Record one stalled cycle.
    pub fn stall(&mut self) {
        self.stalled += 1;
    }

    /// Record one idle cycle (no input, no in-flight op).
    pub fn idle(&mut self) {
        self.idle += 1;
    }

    /// Record one cycle of a stage that holds a multi-probe *wave* under
    /// the unified accounting rule (DESIGN.md §16): a cycle in which the
    /// wave made progress (issued reads, resolved responses, launched or
    /// retired a batch) is `busy`; a cycle holding work that could not
    /// progress (all reads outstanding, a lock blocking the wave) is
    /// `stalled`; a cycle with nothing held is `idle`. `retired` counts
    /// probes completed this cycle. The legacy per-probe pipelines keep
    /// their historical counters bit-for-bit (goldens depend on them) but
    /// route their fast-forward accounting through [`Self::wave_skip`] so
    /// both code paths share one definition of each bucket.
    pub fn wave_tick(&mut self, state: WaveState, retired: u64) {
        self.items += retired;
        match state {
            WaveState::Progressing => self.busy += 1,
            WaveState::Waiting => self.stalled += 1,
            WaveState::Empty => self.idle += 1,
        }
    }

    /// Bulk form of [`Self::wave_tick`] for fast-forwarded spans: account
    /// `k` cycles spent in one unchanging wave state (no items retire
    /// during a skipped span by construction — retiring work is an event).
    pub fn wave_skip(&mut self, state: WaveState, k: Cycle) {
        match state {
            WaveState::Progressing => self.busy += k,
            WaveState::Waiting => self.stalled += k,
            WaveState::Empty => self.idle += k,
        }
    }

    /// Fraction of observed cycles that were busy.
    pub fn utilization(&self) -> f64 {
        let total = self.busy + self.stalled + self.idle;
        if total == 0 {
            0.0
        } else {
            self.busy as f64 / total as f64
        }
    }
}

/// What a wave-holding stage did during one cycle (or one fast-forwarded
/// span); see [`StageStats::wave_tick`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaveState {
    /// Nothing held: no pending probes, no active wave.
    Empty,
    /// Work held but no forward progress (memory or lock wait).
    Waiting,
    /// The wave progressed: reads issued/resolved, probes launched/retired.
    Progressing,
}

/// A simple throughput accumulator: operations completed over a cycle span.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct Throughput {
    /// Operations (or transactions) completed.
    pub ops: u64,
    /// Simulated cycles elapsed.
    pub cycles: Cycle,
}

impl Throughput {
    /// Operations per second at the given clock frequency.
    pub fn per_sec(&self, clock_hz: u64) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.ops as f64 * clock_hz as f64 / self.cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_ratio() {
        let mut s = StageStats::default();
        s.work(1);
        s.work(1);
        s.stall();
        assert!((s.utilization() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.items, 2);
    }

    #[test]
    fn idle_counts_against_utilization_but_not_stalls() {
        let mut s = StageStats::default();
        s.work(1);
        s.idle();
        s.idle();
        s.idle();
        assert_eq!(s.stalled, 0);
        assert_eq!(s.idle, 3);
        assert!((s.utilization() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn wave_accounting_maps_states_to_buckets() {
        let mut s = StageStats::default();
        s.wave_tick(WaveState::Progressing, 3);
        s.wave_tick(WaveState::Waiting, 0);
        s.wave_tick(WaveState::Empty, 0);
        s.wave_skip(WaveState::Empty, 5);
        assert_eq!((s.busy, s.stalled, s.idle, s.items), (1, 1, 6, 3));
    }

    #[test]
    fn throughput_per_sec() {
        let t = Throughput {
            ops: 250,
            cycles: 125_000_000,
        };
        assert!((t.per_sec(125_000_000) - 250.0).abs() < 1e-9);
    }

    #[test]
    fn empty_counters_are_zero() {
        assert_eq!(StageStats::default().utilization(), 0.0);
        assert_eq!(Throughput::default().per_sec(125_000_000), 0.0);
    }
}
