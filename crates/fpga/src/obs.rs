//! Host-side observability primitives: latency histograms, transaction
//! lifecycle events, and trace sinks.
//!
//! The paper's evaluation leans on latency and utilization evidence (Table
//! 3's 6-cycle message pair, §5's per-stage occupancy, the utilization-driven
//! power model), so the reproduction needs to *see* where cycles go. This
//! module supplies the shared building blocks:
//!
//! * [`LatencyHistogram`] — a log2-bucketed histogram of cycle counts with
//!   exact count/sum/min/max and interpolated percentiles. Merging per-worker
//!   histograms is exact (bucket-wise addition), so per-worker collection and
//!   whole-machine reporting agree.
//! * [`TxnEvent`] — the lifecycle timestamps of one finished transaction
//!   (submit → logic start/end → commit start → finish), recorded by the
//!   softcore when a context retires.
//! * [`AbortReasons`] — per-cause abort counters keyed by the DB error the
//!   transaction last observed.
//! * [`TraceSink`] — a consumer of [`TxnEvent`]s. The default [`NullSink`]
//!   is *bit-inert*: every counter and histogram above is host-side
//!   bookkeeping collected unconditionally, and the only thing a real sink
//!   adds is event buffering — no simulated cycle, DRAM byte, or commit
//!   decision depends on which sink is installed (the equivalence tests in
//!   the umbrella crate prove this).
//!
//! Everything here is deliberately simulation-passive: recording into a
//! histogram or a sink never touches `Dram`, FIFOs, or any timing state.

use crate::timing::Cycle;

/// Number of log2 buckets. Bucket 0 holds exact zeros; bucket `b >= 1`
/// covers `[2^(b-1), 2^b - 1]`; the last bucket is unbounded above.
const BUCKETS: usize = 64;

/// A log2-bucketed latency histogram over `u64` cycle counts.
///
/// Recording is O(1); percentiles interpolate linearly inside the winning
/// bucket and are clamped to the exact observed `[min, max]` range, so
/// single-value histograms report that value exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl crate::wire::Wire for LatencyHistogram {
    fn put(&self, out: &mut Vec<u8>) {
        for b in &self.buckets {
            b.put(out);
        }
        self.count.put(out);
        self.sum.put(out);
        self.min.put(out);
        self.max.put(out);
    }
    fn get(r: &mut crate::wire::Reader<'_>) -> Self {
        let mut h = LatencyHistogram::default();
        for b in &mut h.buckets {
            *b = r.get();
        }
        h.count = r.get();
        h.sum = r.get();
        h.min = r.get();
        h.max = r.get();
        h
    }
}

/// Bucket index for a value: 0 for 0, else `64 - leading_zeros`, capped.
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(BUCKETS - 1)
    }
}

/// Inclusive value range covered by bucket `b`.
fn bucket_range(b: usize) -> (u64, u64) {
    if b == 0 {
        (0, 0)
    } else if b >= BUCKETS - 1 {
        (1u64 << (b - 1), u64::MAX)
    } else {
        (1u64 << (b - 1), (1u64 << b) - 1)
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation of `v` cycles.
    pub fn record(&mut self, v: Cycle) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold `other` into `self`. Merging is exact: the merged histogram is
    /// identical to one that recorded both observation streams directly.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `p`-th percentile (`p` in 0..=100), linearly interpolated inside
    /// the winning log2 bucket and clamped to the observed `[min, max]`.
    /// Returns 0.0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (p / 100.0).clamp(0.0, 1.0) * self.count as f64;
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if (seen + c) as f64 >= rank {
                let (lo, hi) = bucket_range(b);
                let frac = ((rank - seen as f64) / c as f64).clamp(0.0, 1.0);
                let v = lo as f64 + frac * (hi - lo) as f64;
                return v.clamp(self.min as f64, self.max as f64);
            }
            seen += c;
        }
        self.max as f64
    }

    /// Median shortcut.
    pub fn p50(&self) -> f64 {
        self.percentile(50.0)
    }

    /// 95th percentile shortcut.
    pub fn p95(&self) -> f64 {
        self.percentile(95.0)
    }

    /// 99th percentile shortcut.
    pub fn p99(&self) -> f64 {
        self.percentile(99.0)
    }

    /// Append this histogram's summary as JSON object members (no braces)
    /// into `out`: `"count":..,"min":..,"max":..,"mean":..,"p50":..` etc.
    pub fn write_json_fields(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{:.3},\"p50\":{:.1},\"p95\":{:.1},\"p99\":{:.1}",
            self.count,
            self.sum,
            self.min(),
            self.max,
            self.mean(),
            self.p50(),
            self.p95(),
            self.p99()
        );
    }
}

/// Per-cause abort counters, keyed by the DB error status the aborting
/// transaction last collected through a `RET` (none → `other`: a voluntary
/// abort or a CPU exception such as divide-by-zero).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AbortReasons {
    /// Aborts after observing `NotFound`.
    pub not_found: u64,
    /// Aborts after observing a timestamp-CC conflict.
    pub cc_conflict: u64,
    /// Aborts after observing a dirty (uncommitted) tuple.
    pub dirty: u64,
    /// Aborts after observing a malformed-request rejection.
    pub bad_request: u64,
    /// Aborts after a synthesized interconnect timeout.
    pub timeout: u64,
    /// Aborts with no recorded DB error (voluntary abort, CPU exception).
    pub other: u64,
}

impl AbortReasons {
    /// Fold `other` into `self`.
    pub fn merge(&mut self, o: &AbortReasons) {
        self.not_found += o.not_found;
        self.cc_conflict += o.cc_conflict;
        self.dirty += o.dirty;
        self.bad_request += o.bad_request;
        self.timeout += o.timeout;
        self.other += o.other;
    }

    /// Total aborts across every cause.
    pub fn total(&self) -> u64 {
        self.not_found + self.cc_conflict + self.dirty + self.bad_request + self.timeout + self.other
    }

    /// Append the counters as JSON object members (no braces) into `out`.
    pub fn write_json_fields(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "\"not_found\":{},\"cc_conflict\":{},\"dirty\":{},\"bad_request\":{},\"timeout\":{},\"other\":{}",
            self.not_found, self.cc_conflict, self.dirty, self.bad_request, self.timeout, self.other
        );
    }
}

impl crate::wire::Wire for AbortReasons {
    fn put(&self, out: &mut Vec<u8>) {
        for v in [
            self.not_found,
            self.cc_conflict,
            self.dirty,
            self.bad_request,
            self.timeout,
            self.other,
        ] {
            v.put(out);
        }
    }
    fn get(r: &mut crate::wire::Reader<'_>) -> Self {
        AbortReasons {
            not_found: r.get(),
            cc_conflict: r.get(),
            dirty: r.get(),
            bad_request: r.get(),
            timeout: r.get(),
            other: r.get(),
        }
    }
}

/// The lifecycle timestamps of one finished transaction, recorded by the
/// softcore when the context retires in the commit phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnEvent {
    /// Worker/partition that executed the transaction.
    pub worker: u16,
    /// DRAM address of the transaction block (stable client handle).
    pub block_addr: u64,
    /// Cycle the host submitted the block to the input queue.
    pub submitted_at: Cycle,
    /// Cycle the transaction logic started executing (ingest).
    pub logic_start: Cycle,
    /// Cycle the logic phase ended (YIELD / exception).
    pub logic_end: Cycle,
    /// Cycle the commit/abort handler started.
    pub commit_start: Cycle,
    /// Cycle the context retired (COMMIT/ABORT executed).
    pub finished_at: Cycle,
    /// Whether the transaction committed.
    pub committed: bool,
}

impl crate::wire::Wire for TxnEvent {
    fn put(&self, out: &mut Vec<u8>) {
        self.worker.put(out);
        self.block_addr.put(out);
        self.submitted_at.put(out);
        self.logic_start.put(out);
        self.logic_end.put(out);
        self.commit_start.put(out);
        self.finished_at.put(out);
        self.committed.put(out);
    }
    fn get(r: &mut crate::wire::Reader<'_>) -> Self {
        TxnEvent {
            worker: r.get(),
            block_addr: r.get(),
            submitted_at: r.get(),
            logic_start: r.get(),
            logic_end: r.get(),
            commit_start: r.get(),
            finished_at: r.get(),
            committed: r.get(),
        }
    }
}

/// A consumer of transaction lifecycle events.
///
/// Implementations must be simulation-passive: a sink only ever observes
/// copies of host-side data. The machine guarantees (and the equivalence
/// tests assert) that swapping sinks never changes cycle counts, the DRAM
/// image, or any statistic.
pub trait TraceSink {
    /// Whether this sink wants events at all. When `false` (the default),
    /// the softcores skip event buffering entirely.
    fn enabled(&self) -> bool {
        false
    }

    /// Consume one finished-transaction event.
    fn txn(&mut self, _ev: &TxnEvent) {}

    /// Export everything collected so far as a JSON document, if this sink
    /// produces one.
    fn export_json(&self) -> Option<String> {
        None
    }
}

/// The default no-op sink: provably bit-inert (it is never even called).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {}

/// A sink that buffers every event and exports Chrome trace-event JSON
/// (loadable in `chrome://tracing` and Perfetto). Each transaction emits
/// complete ("X") slices for its queue, logic, commit-wait and commit
/// phases, with `tid` = worker and timestamps in cycles (the viewer's "us"
/// unit reads as cycles).
#[derive(Debug, Default, Clone)]
pub struct ChromeTraceSink {
    events: Vec<TxnEvent>,
}

impl ChromeTraceSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Events collected so far.
    pub fn events(&self) -> &[TxnEvent] {
        &self.events
    }
}

impl TraceSink for ChromeTraceSink {
    fn enabled(&self) -> bool {
        true
    }

    fn txn(&mut self, ev: &TxnEvent) {
        self.events.push(*ev);
    }

    fn export_json(&self) -> Option<String> {
        use std::fmt::Write as _;
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        for ev in &self.events {
            let outcome = if ev.committed { "commit" } else { "abort" };
            let phases = [
                ("queue", ev.submitted_at, ev.logic_start),
                ("logic", ev.logic_start, ev.logic_end),
                ("commit-wait", ev.logic_end, ev.commit_start),
                (outcome, ev.commit_start, ev.finished_at),
            ];
            for (name, start, end) in phases {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"block\":{}}}}}",
                    name,
                    ev.worker,
                    start,
                    end.saturating_sub(start),
                    ev.block_addr
                );
            }
        }
        out.push_str("],\"displayTimeUnit\":\"ns\"}");
        Some(out)
    }
}

/// Escape a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        // Exact zeros land in bucket 0; powers of two open a new bucket.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 2 + 1);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        for b in 0..BUCKETS {
            let (lo, hi) = bucket_range(b);
            assert_eq!(bucket_of(lo), b, "low edge of bucket {b}");
            assert_eq!(bucket_of(hi), b, "high edge of bucket {b}");
        }
    }

    #[test]
    fn single_value_percentiles_are_exact() {
        let mut h = LatencyHistogram::new();
        h.record(37);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 37);
        assert_eq!(h.max(), 37);
        assert!((h.mean() - 37.0).abs() < 1e-12);
        // Clamping to [min, max] makes every percentile exact here.
        assert_eq!(h.p50(), 37.0);
        assert_eq!(h.p99(), 37.0);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(99.0), 0.0);
    }

    #[test]
    fn percentile_interpolation_is_monotone_and_bounded() {
        let mut h = LatencyHistogram::new();
        for v in [1u64, 2, 3, 5, 8, 13, 100, 1000, 5000] {
            h.record(v);
        }
        let mut prev = 0.0;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0] {
            let v = h.percentile(p);
            assert!(v >= prev, "percentiles monotone (p={p}: {v} < {prev})");
            assert!((1.0..=5000.0).contains(&v), "bounded by observed range");
            prev = v;
        }
        // p100 is the max exactly; p0 at most the min's bucket top.
        assert_eq!(h.percentile(100.0), 5000.0);
    }

    #[test]
    fn merge_is_associative_and_exact() {
        let samples: Vec<u64> = (0..300).map(|i| (i * i * 7 + 3) % 10_000).collect();
        let mut whole = LatencyHistogram::new();
        let mut parts = [LatencyHistogram::new(); 3];
        for (i, &v) in samples.iter().enumerate() {
            whole.record(v);
            parts[i % 3].record(v);
        }
        // (a + b) + c == a + (b + c) == whole.
        let mut left = parts[0];
        left.merge(&parts[1]);
        left.merge(&parts[2]);
        let mut right = parts[2];
        right.merge(&parts[1]);
        right.merge(&parts[0]);
        assert_eq!(left, right, "merge order irrelevant");
        assert_eq!(left, whole, "merged parts equal the whole-run histogram");
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut h = LatencyHistogram::new();
        h.record(5);
        h.record(500);
        let before = h;
        h.merge(&LatencyHistogram::new());
        assert_eq!(h, before);
        let mut e = LatencyHistogram::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn abort_reasons_total_and_merge() {
        let mut a = AbortReasons {
            cc_conflict: 3,
            dirty: 1,
            ..AbortReasons::default()
        };
        let b = AbortReasons {
            timeout: 2,
            other: 4,
            ..AbortReasons::default()
        };
        a.merge(&b);
        assert_eq!(a.total(), 10);
        assert_eq!(a.cc_conflict, 3);
        assert_eq!(a.timeout, 2);
    }

    #[test]
    fn chrome_sink_exports_valid_slices() {
        let mut sink = ChromeTraceSink::new();
        assert!(sink.enabled());
        sink.txn(&TxnEvent {
            worker: 1,
            block_addr: 0x1000,
            submitted_at: 0,
            logic_start: 10,
            logic_end: 30,
            commit_start: 40,
            finished_at: 55,
            committed: true,
        });
        let json = sink.export_json().expect("chrome sink exports");
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"logic\""));
        assert!(json.contains("\"name\":\"commit\""));
        assert!(json.contains("\"tid\":1"));
        // Balanced braces: a crude well-formedness check.
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn null_sink_is_disabled() {
        assert!(!NullSink.enabled());
        assert!(NullSink.export_json().is_none());
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Splitting an observation stream across per-worker histograms and
        /// merging them back equals recording the whole run in one.
        #[test]
        fn merged_shards_equal_whole(
            values in proptest::collection::vec(0u64..1_000_000, 0..400),
            shards in 1usize..8,
        ) {
            let mut whole = LatencyHistogram::new();
            let mut parts = vec![LatencyHistogram::new(); shards];
            for (i, &v) in values.iter().enumerate() {
                whole.record(v);
                parts[i % shards].record(v);
            }
            let mut merged = LatencyHistogram::new();
            for p in &parts {
                merged.merge(p);
            }
            prop_assert_eq!(merged, whole);
        }

        /// Percentiles stay within the observed value range.
        #[test]
        fn percentiles_within_range(
            values in proptest::collection::vec(0u64..1_000_000, 1..200),
            p in 0u64..=100,
        ) {
            let mut h = LatencyHistogram::new();
            for &v in &values { h.record(v); }
            let lo = *values.iter().min().unwrap() as f64;
            let hi = *values.iter().max().unwrap() as f64;
            let got = h.percentile(p as f64);
            prop_assert!(got >= lo && got <= hi, "{got} outside [{lo}, {hi}]");
        }
    }
}
