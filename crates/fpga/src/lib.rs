//! Cycle-level FPGA fabric simulation substrate for BionicDB.
//!
//! The paper builds BionicDB on a Xilinx Virtex-5 LX330 (125 MHz) sitting on a
//! Micron/Convey HC-2 card with on-board DDR2 DRAM. This crate is the
//! software stand-in for that fabric: a deterministic, cycle-stepped
//! simulation substrate that the higher-level crates (`bionicdb-softcore`,
//! `bionicdb-coproc`, `bionicdb-noc`, `bionicdb`) compose into a full
//! partition-per-worker OLTP machine.
//!
//! What is modelled, and why it is enough (see DESIGN.md §2):
//!
//! * **Clock** — a global cycle counter at a configurable frequency
//!   (125 MHz by default, 8 ns per cycle).
//! * **DRAM** ([`Dram`]) — a byte-addressable, sparsely paged memory with a
//!   DDR2-class timing model: fixed random-access latency, a configurable
//!   number of memory controllers, bounded outstanding requests per
//!   controller, and per-port response queues. Functional state (the bytes)
//!   updates at *issue* time; timing is modelled by delaying the response.
//!   All of the paper's headline effects (index pipelining, memory-level
//!   parallelism, saturation of throughput vs. in-flight requests) fall out
//!   of this latency/overlap model.
//! * **FIFOs** ([`Fifo`]) — bounded queues that connect pipeline stages.
//!   Back-pressure (a full FIFO) is what creates pipeline stalls.
//! * **BRAM lock tables** ([`LockTable`]) — single-cycle on-chip tables used
//!   by the index pipelines for hazard prevention (paper §4.4.1/§4.4.2).
//! * **Regions** ([`Region`]) — bump allocators over DRAM address ranges,
//!   used to lay out partitions, tuple heaps and transaction blocks.
//! * **Stats** ([`stats::StageStats`], [`stats::Throughput`]) — counters for DRAM utilization and
//!   stage occupancy, used by the benchmark harness.
//!
//! The substrate is deliberately free of threads: one `tick` of the machine
//! advances every component by one FPGA cycle in a fixed order, so every
//! simulation is deterministic and reproducible.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod dram;
pub mod fault;
pub mod fifo;
pub mod lock_table;
pub mod obs;
pub mod region;
pub mod stats;
pub mod timing;
pub mod wire;

pub use dram::{
    mlp_bucket, Dram, DramStats, MemData, MemKind, MemRequest, MemResponse, PortId, PortStats,
    Tag, MLP_BUCKETS,
};
pub use obs::{
    AbortReasons, ChromeTraceSink, LatencyHistogram, NullSink, TraceSink, TxnEvent,
};
pub use fault::{CorruptByte, DramFaults, FaultBudget, FaultPlan, NocFaults, TornWrite};
pub use fifo::Fifo;
pub use lock_table::LockTable;
pub use region::Region;
pub use timing::{Cycle, FpgaConfig};
