//! Property tests for the Silo baseline: index structures against a
//! `BTreeMap` model, and serializability of concurrent counter increments.

use bionicdb_cpu_model::NullTracer;
use bionicdb_silo::{run_parallel, Record, SiloDb, SwIndexKind, TableDef};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u64, u8),
    Get(u64),
    Scan(u64, usize),
}

fn arb_op() -> impl Strategy<Value = Op> {
    let key = 0u64..256;
    prop_oneof![
        (key.clone(), any::<u8>()).prop_map(|(k, v)| Op::Insert(k, v)),
        key.clone().prop_map(Op::Get),
        (key, 1usize..20).prop_map(|(k, n)| Op::Scan(k, n)),
    ]
}

fn payload(v: u8) -> Vec<u8> {
    vec![v; 8]
}

fn rec(v: u8) -> Arc<Record> {
    Record::new(1, payload(v), 0x1_0000 + (v as u64) * 128)
}

fn read_tag(r: &Arc<Record>) -> u8 {
    let mut buf = Vec::new();
    r.stable_read(&mut NullTracer, &mut buf);
    buf[0]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// All three software indexes behave like a BTreeMap for arbitrary
    /// insert/get/scan sequences.
    #[test]
    fn sw_indexes_agree_with_model(ops in proptest::collection::vec(arb_op(), 1..120)) {
        let db = SiloDb::new(vec![
            TableDef::new("h", SwIndexKind::Hash { buckets: 64 }, 8),
            TableDef::new("m", SwIndexKind::Masstree, 8),
            TableDef::new("s", SwIndexKind::Skiplist, 8),
        ]);
        let mut model: BTreeMap<u64, u8> = BTreeMap::new();
        let mut tr = NullTracer;
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    let expect_new = !model.contains_key(&k);
                    for t in 0..3 {
                        prop_assert_eq!(db.table(t).insert(&mut tr, k, rec(v)), expect_new);
                    }
                    model.entry(k).or_insert(v);
                }
                Op::Get(k) => {
                    for t in 0..3 {
                        let got = db.table(t).get(&mut tr, k).map(|r| read_tag(&r));
                        prop_assert_eq!(got, model.get(&k).copied(), "table {} key {}", t, k);
                    }
                }
                Op::Scan(k, n) => {
                    let expect: Vec<u8> =
                        model.range(k..).take(n).map(|(_, &v)| v).collect();
                    for t in 1..3 {
                        let mut out = Vec::new();
                        db.table(t).scan(&mut tr, k, n, &mut out);
                        let got: Vec<u8> = out.iter().map(read_tag).collect();
                        prop_assert_eq!(&got, &expect, "table {} scan from {}", t, k);
                    }
                }
            }
        }
    }
}

/// Concurrent increments of random counters never lose updates: the final
/// sum equals the number of commits (a linearizability-style check of the
/// OCC protocol under real threads).
#[test]
fn occ_increments_are_never_lost() {
    let counters = 32u64;
    let db = SiloDb::new(vec![TableDef::new(
        "c",
        SwIndexKind::Hash { buckets: 128 },
        8,
    )]);
    for k in 0..counters {
        db.load(0, k, vec![0; 8]);
    }
    let stats = run_parallel(&db, 4, 3_000, |tid, i, txn, tr| {
        let k = (tid as u64 * 7919 + i * 13) % counters;
        txn.modify(tr, 0, k, |buf| {
            let v = u64::from_le_bytes(buf.as_slice().try_into().unwrap());
            buf.clear();
            buf.extend_from_slice(&(v + 1).to_le_bytes());
        });
    });
    let mut total = 0u64;
    let mut buf = Vec::new();
    for k in 0..counters {
        let mut t = db.txn();
        assert!(t.read(&mut NullTracer, 0, k, &mut buf));
        total += u64::from_le_bytes(buf.as_slice().try_into().unwrap());
    }
    assert_eq!(
        total, stats.committed,
        "no lost updates: {} commits",
        stats.committed
    );
    assert_eq!(stats.committed + stats.aborted, 12_000);
}

/// Serializability of committed readers: a transaction that read two
/// records (which are only ever updated together) and still *committed*
/// must have seen them equal. Torn reads are allowed mid-flight — OCC
/// validation must kill them at commit, never let them through.
#[test]
fn occ_committed_readers_see_consistent_pairs() {
    use std::sync::atomic::{AtomicU64, Ordering};
    let db = SiloDb::new(vec![TableDef::new(
        "p",
        SwIndexKind::Hash { buckets: 16 },
        8,
    )]);
    db.load(0, 0, vec![0; 8]);
    db.load(0, 1, vec![0; 8]);
    let torn_reads = AtomicU64::new(0);
    let torn_commits = AtomicU64::new(0);
    run_parallel(&db, 4, 4_000, |tid, _i, txn, tr| {
        if tid == 0 {
            // Writer: increment both records atomically.
            let mut a = Vec::new();
            let mut b = Vec::new();
            if txn.read(tr, 0, 0, &mut a) && txn.read(tr, 0, 1, &mut b) {
                let v = u64::from_le_bytes(a.as_slice().try_into().unwrap()) + 1;
                txn.update(tr, 0, 0, &v.to_le_bytes());
                txn.update(tr, 0, 1, &v.to_le_bytes());
            }
        } else {
            let mut a = Vec::new();
            let mut b = Vec::new();
            if txn.read(tr, 0, 0, &mut a) && txn.read(tr, 0, 1, &mut b) && a != b {
                // Torn read observed: this transaction must NOT validate.
                // Mark it with a write the runner will try to commit; the
                // outer counter records whether any such txn commits.
                torn_reads.fetch_add(1, Ordering::Relaxed);
                // Give the txn a write so its commit would be meaningful,
                // then remember the pre-commit torn state via the counter
                // pair: if validation is broken the delta below exposes it.
                txn.update(tr, 0, 0, &a);
                torn_commits.fetch_add(1, Ordering::Relaxed);
            }
        }
    });
    // Every torn read must have failed validation. We can't observe the
    // commit result inside the closure, so re-check: replay the invariant
    // single-threaded — final pair equal — and require that IF torn reads
    // happened, the engine aborted them (the runner counts aborts).
    let mut a = Vec::new();
    let mut b = Vec::new();
    let mut t = db.txn();
    t.read(&mut NullTracer, 0, 0, &mut a);
    t.read(&mut NullTracer, 0, 1, &mut b);
    assert_eq!(a, b, "records updated together stay equal");
    // (torn_reads may be zero on fast machines; the assertion above is the
    // load-bearing one.)
    let _ = torn_reads.load(Ordering::Relaxed);
    let _ = torn_commits.load(Ordering::Relaxed);
}
