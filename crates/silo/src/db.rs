//! The Silo database: tables + epoch management.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bionicdb_cpu_model::Tracer;

use crate::index::{HashIndex, Masstree, SwSkipList};
use crate::record::Record;
use crate::txn::Txn;

/// Which software index backs a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwIndexKind {
    /// Chained hash table with the given bucket count.
    Hash {
        /// Number of buckets.
        buckets: usize,
    },
    /// Software skiplist.
    Skiplist,
    /// Masstree-like B+ tree.
    Masstree,
}

/// Table definition.
#[derive(Debug, Clone)]
pub struct TableDef {
    /// Human-readable name.
    pub name: String,
    /// Index structure.
    pub kind: SwIndexKind,
    /// Fixed payload length in bytes.
    pub payload_len: usize,
}

impl TableDef {
    /// Convenience constructor.
    pub fn new(name: &str, kind: SwIndexKind, payload_len: usize) -> Self {
        TableDef {
            name: name.into(),
            kind,
            payload_len,
        }
    }
}

/// One table's index.
#[derive(Debug)]
pub enum TableSw {
    /// Hash-indexed.
    Hash(HashIndex),
    /// Skiplist-indexed.
    Skip(SwSkipList),
    /// B+ tree indexed.
    Mass(Masstree),
}

impl TableSw {
    /// Point lookup.
    pub fn get<T: Tracer>(&self, tr: &mut T, key: u64) -> Option<Arc<Record>> {
        match self {
            TableSw::Hash(i) => i.get(tr, key),
            TableSw::Skip(i) => i.get(tr, key),
            TableSw::Mass(i) => i.get(tr, key),
        }
    }

    /// Insert; false on duplicate.
    pub fn insert<T: Tracer>(&self, tr: &mut T, key: u64, rec: Arc<Record>) -> bool {
        match self {
            TableSw::Hash(i) => i.insert(tr, key, rec),
            TableSw::Skip(i) => i.insert(tr, key, rec),
            TableSw::Mass(i) => i.insert(tr, key, rec),
        }
    }

    /// Ordered scan (panics on hash tables, mirroring BionicDB's
    /// BadRequest for SCAN on a hash index).
    pub fn scan<T: Tracer>(&self, tr: &mut T, start: u64, n: usize, out: &mut Vec<Arc<Record>>) {
        match self {
            TableSw::Hash(_) => panic!("range scan on a hash-indexed table"),
            TableSw::Skip(i) => i.scan(tr, start, n, out),
            TableSw::Mass(i) => i.scan(tr, start, n, out),
        }
    }
}

/// Arena stride per database: 2^40 bytes, power-of-two aligned so every
/// database's records land on the same cache-set offsets.
const DB_ARENA_BYTES: u64 = 1 << 40;

/// Next database arena base (starts above every index `vbase` range).
static NEXT_DB_ARENA: AtomicU64 = AtomicU64::new(1 << 44);

/// The Silo-style database.
#[derive(Debug)]
pub struct SiloDb {
    defs: Vec<TableDef>,
    tables: Vec<TableSw>,
    epoch: AtomicU64,
    /// Bump allocator for record virtual addresses (timing model). Each
    /// database claims a giant power-of-two-aligned arena, so identically
    /// built databases see identical cache-set mappings regardless of how
    /// many came before — model timings depend only on build/run order.
    vaddr_next: AtomicU64,
    /// Greatest commit TID handed out so far. Full Silo keeps this
    /// per-worker; a global fetch-max keeps the invariant (commit TIDs are
    /// monotone) with one atomic per commit, which is fine for a baseline.
    last_tid: AtomicU64,
}

impl SiloDb {
    /// Build a database with the given tables.
    pub fn new(defs: Vec<TableDef>) -> Self {
        let tables = defs
            .iter()
            .map(|d| match d.kind {
                SwIndexKind::Hash { buckets } => TableSw::Hash(HashIndex::new(buckets)),
                SwIndexKind::Skiplist => TableSw::Skip(SwSkipList::new()),
                SwIndexKind::Masstree => TableSw::Mass(Masstree::new()),
            })
            .collect();
        SiloDb {
            defs,
            tables,
            epoch: AtomicU64::new(1),
            last_tid: AtomicU64::new(0),
            vaddr_next: AtomicU64::new(NEXT_DB_ARENA.fetch_add(DB_ARENA_BYTES, Ordering::Relaxed)),
        }
    }

    /// Claim a virtual record slot: one cache line for the TID word plus
    /// the payload rounded up to a line (see `record::PAYLOAD_OFFSET`).
    pub(crate) fn alloc_vaddr(&self, payload_len: usize) -> u64 {
        let slot = crate::record::PAYLOAD_OFFSET + (payload_len as u64).next_multiple_of(64);
        self.vaddr_next.fetch_add(slot, Ordering::Relaxed)
    }

    /// Current global epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Advance the global epoch (the runner does this periodically, playing
    /// Silo's epoch thread).
    pub fn advance_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// Table definitions.
    pub fn defs(&self) -> &[TableDef] {
        &self.defs
    }

    /// Access a table's index.
    pub fn table(&self, idx: usize) -> &TableSw {
        &self.tables[idx]
    }

    /// Bulk-load a committed record (pre-benchmark population).
    pub fn load(&self, table: usize, key: u64, data: Vec<u8>) {
        assert_eq!(data.len(), self.defs[table].payload_len, "payload length");
        let vaddr = self.alloc_vaddr(data.len());
        let rec = Record::new(self.epoch(), data, vaddr);
        let ok = self.tables[table].insert(&mut bionicdb_cpu_model::NullTracer, key, rec);
        assert!(ok, "duplicate key {key} during load of table {table}");
    }

    /// Claim a commit TID at least as large as `floor`, globally monotone.
    pub(crate) fn claim_commit_tid(&self, floor: u64, epoch: u64) -> u64 {
        let last = self.last_tid.load(Ordering::Acquire);
        let tid = crate::tid::next_commit_tid(floor.max(last), last, epoch);
        self.last_tid.fetch_max(tid, Ordering::AcqRel);
        tid
    }

    /// Start a transaction.
    pub fn txn(&self) -> Txn<'_> {
        Txn::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_and_epoch() {
        let db = SiloDb::new(vec![
            TableDef::new("h", SwIndexKind::Hash { buckets: 64 }, 8),
            TableDef::new("s", SwIndexKind::Skiplist, 8),
        ]);
        db.load(0, 1, vec![0; 8]);
        db.load(1, 1, vec![0; 8]);
        assert!(db
            .table(0)
            .get(&mut bionicdb_cpu_model::NullTracer, 1)
            .is_some());
        let e = db.epoch();
        db.advance_epoch();
        assert_eq!(db.epoch(), e + 1);
    }

    #[test]
    #[should_panic(expected = "range scan on a hash")]
    fn scan_on_hash_panics() {
        let db = SiloDb::new(vec![TableDef::new(
            "h",
            SwIndexKind::Hash { buckets: 64 },
            8,
        )]);
        let mut out = Vec::new();
        db.table(0)
            .scan(&mut bionicdb_cpu_model::NullTracer, 0, 1, &mut out);
    }
}
