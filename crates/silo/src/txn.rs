//! Silo transactions: optimistic execution + the three-phase commit
//! protocol (lock write set in global order, validate read set, install).

use std::sync::Arc;

use bionicdb_cpu_model::Tracer;

use crate::db::SiloDb;
use crate::deadline::CancelToken;
use crate::record::Record;
use crate::tid;

/// The transaction failed validation (or hit a duplicate insert) and was
/// rolled back; the caller may retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Abort;

/// An in-flight optimistic transaction.
pub struct Txn<'a> {
    db: &'a SiloDb,
    reads: Vec<(Arc<Record>, u64)>,
    writes: Vec<(Arc<Record>, Vec<u8>)>,
    inserts: Vec<(usize, u64, Vec<u8>)>,
    cancel: Option<CancelToken>,
}

impl<'a> Txn<'a> {
    pub(crate) fn new(db: &'a SiloDb) -> Self {
        Txn {
            db,
            reads: Vec::new(),
            writes: Vec::new(),
            inserts: Vec::new(),
            cancel: None,
        }
    }

    /// Attach a cancellation token: [`commit`](Txn::commit) aborts — before
    /// taking any write lock — when the token is cancelled or its deadline
    /// has passed. The serving layer uses this to stop doomed transactions
    /// from occupying workers under overload.
    pub fn set_cancel(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// Whether the attached token (if any) has fired. Long transaction
    /// bodies can poll this between operations to bail out early; the
    /// commit protocol checks it unconditionally.
    pub fn cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// Read `key` from `table` into `out`. Returns false when absent.
    /// Reads-own-writes: buffered updates are visible.
    pub fn read<T: Tracer>(
        &mut self,
        tr: &mut T,
        table: usize,
        key: u64,
        out: &mut Vec<u8>,
    ) -> bool {
        tr.begin_chain();
        let rec = self.db.table(table).get(tr, key);
        let found = match rec {
            Some(rec) => {
                if let Some((_, data)) = self.writes.iter().find(|(r, _)| Arc::ptr_eq(r, &rec)) {
                    out.clear();
                    out.extend_from_slice(data);
                    true
                } else {
                    let observed = rec.stable_read(tr, out);
                    if tid::is_absent(observed) {
                        false
                    } else {
                        self.reads.push((rec, observed));
                        true
                    }
                }
            }
            None => false,
        };
        tr.end_chain();
        found
    }

    /// Buffer an update of `key` in `table`. Returns false when absent.
    pub fn update<T: Tracer>(&mut self, tr: &mut T, table: usize, key: u64, data: &[u8]) -> bool {
        assert_eq!(
            data.len(),
            self.db.defs()[table].payload_len,
            "payload length"
        );
        tr.begin_chain();
        let rec = self.db.table(table).get(tr, key);
        tr.end_chain();
        let Some(rec) = rec else { return false };
        if rec.is_absent() {
            return false;
        }
        // Also validate the version we based the update on.
        let mut scratch = Vec::new();
        let observed = rec.stable_read(tr, &mut scratch);
        self.reads.push((Arc::clone(&rec), observed));
        if let Some(entry) = self.writes.iter_mut().find(|(r, _)| Arc::ptr_eq(r, &rec)) {
            entry.1.clear();
            entry.1.extend_from_slice(data);
        } else {
            self.writes.push((rec, data.to_vec()));
        }
        true
    }

    /// Read-modify-write helper: read, apply `f`, buffer the write back.
    pub fn modify<T: Tracer>(
        &mut self,
        tr: &mut T,
        table: usize,
        key: u64,
        f: impl FnOnce(&mut Vec<u8>),
    ) -> bool {
        let mut buf = Vec::new();
        if !self.read(tr, table, key, &mut buf) {
            return false;
        }
        f(&mut buf);
        self.update(tr, table, key, &buf)
    }

    /// Buffer an insert (applied, with duplicate detection, at commit).
    pub fn insert(&mut self, table: usize, key: u64, data: Vec<u8>) {
        assert_eq!(
            data.len(),
            self.db.defs()[table].payload_len,
            "payload length"
        );
        self.inserts.push((table, key, data));
    }

    /// Ordered scan of up to `n` payloads with key ≥ `start`. Scanned
    /// records join the read set (no phantom protection — see crate docs).
    pub fn scan<T: Tracer>(
        &mut self,
        tr: &mut T,
        table: usize,
        start: u64,
        n: usize,
        out: &mut Vec<Vec<u8>>,
    ) {
        tr.begin_chain();
        let mut recs = Vec::with_capacity(n);
        self.db.table(table).scan(tr, start, n, &mut recs);
        tr.end_chain();
        for rec in recs {
            let mut buf = Vec::new();
            let observed = rec.stable_read(tr, &mut buf);
            if !tid::is_absent(observed) {
                self.reads.push((rec, observed));
                out.push(buf);
            }
        }
    }

    /// Run the Silo commit protocol. On success returns the commit TID.
    ///
    /// Aborts immediately — holding no locks — when an attached
    /// [`CancelToken`] has fired: a request past its deadline must not pay
    /// for validation and install it cannot use.
    pub fn commit<T: Tracer>(mut self, tr: &mut T) -> Result<u64, Abort> {
        if self.cancelled() {
            return Err(Abort);
        }
        // Phase 1: lock the write set in global (address) order.
        self.writes.sort_by_key(|(r, _)| r.addr());
        self.writes.dedup_by(|a, b| {
            Arc::ptr_eq(&a.0, &b.0)
                .then(|| b.1 = std::mem::take(&mut a.1))
                .is_some()
        });
        for (rec, _) in &self.writes {
            rec.lock();
            tr.write(rec.addr(), 8);
        }
        let epoch = self.db.epoch();

        // Phase 2: validate the read set.
        let mut max_tid = 0u64;
        for (rec, observed) in &self.reads {
            let cur = rec.tid();
            tr.read(rec.addr(), 8);
            let locked_by_me = self.writes.iter().any(|(w, _)| Arc::ptr_eq(w, rec));
            if tid::version(cur) != tid::version(*observed)
                || (tid::is_locked(cur) && !locked_by_me)
            {
                for (r, _) in &self.writes {
                    r.unlock();
                }
                return Err(Abort);
            }
            max_tid = max_tid.max(tid::version(cur));
        }
        for (rec, _) in &self.writes {
            max_tid = max_tid.max(tid::version(rec.tid()));
        }

        // Phase 2b: apply inserts (duplicate key => abort).
        let mut inserted: Vec<(usize, Arc<Record>)> = Vec::new();
        let commit_preview = self.db.claim_commit_tid(max_tid, epoch);
        for (table, key, data) in std::mem::take(&mut self.inserts) {
            let vaddr = self.db.alloc_vaddr(data.len());
            let rec = Record::new(epoch, data, vaddr);
            rec.lock();
            if self.db.table(table).insert(tr, key, Arc::clone(&rec)) {
                inserted.push((table, rec));
            } else {
                // Roll back: newly inserted records become absent.
                for (_, r) in &inserted {
                    r.mark_absent(commit_preview);
                }
                for (r, _) in &self.writes {
                    r.unlock();
                }
                return Err(Abort);
            }
        }

        // Phase 3: install.
        let commit_tid = if inserted.is_empty() {
            self.db.claim_commit_tid(max_tid, epoch)
        } else {
            commit_preview
        };
        for (rec, data) in &self.writes {
            rec.install(tr, data, commit_tid);
        }
        for (_, rec) in &inserted {
            rec.install(tr, &[], commit_tid);
        }
        Ok(commit_tid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::{SwIndexKind, TableDef};
    use bionicdb_cpu_model::NullTracer;

    fn db() -> SiloDb {
        let db = SiloDb::new(vec![
            TableDef::new("accounts", SwIndexKind::Hash { buckets: 256 }, 8),
            TableDef::new("ordered", SwIndexKind::Masstree, 8),
        ]);
        for k in 0..100u64 {
            db.load(0, k, k.to_le_bytes().to_vec());
            db.load(1, k, k.to_le_bytes().to_vec());
        }
        db
    }

    #[test]
    fn read_committed_data() {
        let db = db();
        let mut t = db.txn();
        let mut buf = Vec::new();
        assert!(t.read(&mut NullTracer, 0, 42, &mut buf));
        assert_eq!(u64::from_le_bytes(buf.clone().try_into().unwrap()), 42);
        assert!(!t.read(&mut NullTracer, 0, 4242, &mut buf));
        t.commit(&mut NullTracer).unwrap();
    }

    #[test]
    fn update_visible_after_commit_and_to_self() {
        let db = db();
        let mut t = db.txn();
        assert!(t.update(&mut NullTracer, 0, 7, &99u64.to_le_bytes()));
        let mut buf = Vec::new();
        assert!(t.read(&mut NullTracer, 0, 7, &mut buf), "read-own-write");
        assert_eq!(u64::from_le_bytes(buf.clone().try_into().unwrap()), 99);
        t.commit(&mut NullTracer).unwrap();

        let mut t2 = db.txn();
        t2.read(&mut NullTracer, 0, 7, &mut buf);
        assert_eq!(u64::from_le_bytes(buf.clone().try_into().unwrap()), 99);
    }

    #[test]
    fn conflicting_update_aborts_reader() {
        let db = db();
        // T1 reads key 5; T2 updates key 5 and commits; T1's commit must
        // fail validation.
        let mut t1 = db.txn();
        let mut buf = Vec::new();
        t1.read(&mut NullTracer, 0, 5, &mut buf);
        t1.update(&mut NullTracer, 0, 6, &1u64.to_le_bytes()); // give T1 a write

        let mut t2 = db.txn();
        t2.update(&mut NullTracer, 0, 5, &123u64.to_le_bytes());
        t2.commit(&mut NullTracer).unwrap();

        assert_eq!(t1.commit(&mut NullTracer), Err(Abort));
    }

    #[test]
    fn blind_writers_do_not_conflict_on_disjoint_keys() {
        let db = db();
        let mut t1 = db.txn();
        let mut t2 = db.txn();
        t1.update(&mut NullTracer, 0, 1, &11u64.to_le_bytes());
        t2.update(&mut NullTracer, 0, 2, &22u64.to_le_bytes());
        t1.commit(&mut NullTracer).unwrap();
        t2.commit(&mut NullTracer).unwrap();
    }

    #[test]
    fn insert_then_duplicate_insert_aborts() {
        let db = db();
        let mut t = db.txn();
        t.insert(0, 1000, 5u64.to_le_bytes().to_vec());
        t.commit(&mut NullTracer).unwrap();

        let mut buf = Vec::new();
        let mut t2 = db.txn();
        assert!(t2.read(&mut NullTracer, 0, 1000, &mut buf));

        let mut t3 = db.txn();
        t3.insert(0, 1000, 9u64.to_le_bytes().to_vec());
        assert_eq!(t3.commit(&mut NullTracer), Err(Abort));
    }

    #[test]
    fn scan_sees_committed_prefix() {
        let db = db();
        let mut t = db.txn();
        let mut out = Vec::new();
        t.scan(&mut NullTracer, 1, 10, 5, &mut out);
        assert_eq!(out.len(), 5);
        assert_eq!(u64::from_le_bytes(out[0].clone().try_into().unwrap()), 10);
        t.commit(&mut NullTracer).unwrap();
    }

    #[test]
    fn cancelled_commit_aborts_without_installing() {
        let db = db();
        let mut t = db.txn();
        let token = CancelToken::manual();
        t.set_cancel(token.clone());
        assert!(t.update(&mut NullTracer, 0, 3, &77u64.to_le_bytes()));
        token.cancel();
        assert_eq!(t.commit(&mut NullTracer), Err(Abort));

        // Nothing installed, nothing left locked: a follow-up writer to the
        // same key commits cleanly and readers see the old value first.
        let mut buf = Vec::new();
        let mut r = db.txn();
        assert!(r.read(&mut NullTracer, 0, 3, &mut buf));
        assert_eq!(u64::from_le_bytes(buf.clone().try_into().unwrap()), 3);
        let mut w = db.txn();
        assert!(w.update(&mut NullTracer, 0, 3, &88u64.to_le_bytes()));
        w.commit(&mut NullTracer).unwrap();
    }

    #[test]
    fn live_token_does_not_disturb_commit() {
        let db = db();
        let mut t = db.txn();
        t.set_cancel(CancelToken::manual());
        assert!(t.update(&mut NullTracer, 0, 9, &1u64.to_le_bytes()));
        t.commit(&mut NullTracer).unwrap();
    }

    #[test]
    fn commit_tids_increase() {
        let db = db();
        let mut last = 0;
        for i in 0..5u64 {
            let mut t = db.txn();
            t.update(&mut NullTracer, 0, i, &i.to_le_bytes());
            let tid = t.commit(&mut NullTracer).unwrap();
            assert!(tid > last, "tid {tid} after {last}");
            last = tid;
        }
    }
}
