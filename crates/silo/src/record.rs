//! Records: a TID word plus the payload bytes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bionicdb_cpu_model::Tracer;
use parking_lot::RwLock;

use crate::tid;

/// One record: the Silo TID word and the payload.
///
/// Payload mutation happens only while the TID lock bit is held (commit
/// protocol); readers copy the payload and validate the TID afterwards.
/// The payload lives behind a `RwLock` purely to stay in safe Rust — the
/// OCC protocol, not the lock, is what provides isolation, and the timing
/// model charges only the memory traffic.
#[derive(Debug)]
pub struct Record {
    tid: AtomicU64,
    /// Deterministic virtual address for the timing model (see
    /// [`Record::addr`]). The TID word lives at `vaddr`, the payload at
    /// `vaddr + PAYLOAD_OFFSET`.
    vaddr: u64,
    data: RwLock<Box<[u8]>>,
}

/// Payload bytes start one cache line past the TID word in the record's
/// virtual slot.
pub const PAYLOAD_OFFSET: u64 = 64;

impl Record {
    /// Create a committed record with `data` and the initial TID for
    /// `epoch`, at virtual address `vaddr` (from
    /// [`SiloDb::alloc_vaddr`](crate::db::SiloDb)'s per-database arena).
    pub fn new(epoch: u64, data: Vec<u8>, vaddr: u64) -> Arc<Record> {
        Arc::new(Record {
            tid: AtomicU64::new(tid::epoch_base(epoch) + 8),
            vaddr,
            data: RwLock::new(data.into_boxed_slice()),
        })
    }

    /// The record's address as seen by the timing model — a *virtual*
    /// slot assigned deterministically at creation, not the host heap
    /// location, so model timings are identical across runs and hosts
    /// (the `servecheck` golden depends on this). Also the global lock
    /// order for the commit protocol.
    pub fn addr(&self) -> u64 {
        self.vaddr
    }

    /// Virtual address of the payload bytes.
    fn payload_addr(&self) -> u64 {
        self.vaddr + PAYLOAD_OFFSET
    }

    /// Current TID word.
    pub fn tid(&self) -> u64 {
        self.tid.load(Ordering::Acquire)
    }

    /// Payload length.
    pub fn len(&self) -> usize {
        self.data.read().len()
    }

    /// True when the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Silo's stable read: copy the payload, retrying until the TID is
    /// stable and unlocked around the copy. Returns the observed TID.
    pub fn stable_read<T: Tracer>(self: &Arc<Self>, tr: &mut T, buf: &mut Vec<u8>) -> u64 {
        loop {
            let t1 = self.tid();
            tr.read(self.addr(), 8);
            if tid::is_locked(t1) {
                std::hint::spin_loop();
                continue;
            }
            {
                let data = self.data.read();
                buf.clear();
                buf.extend_from_slice(&data);
                tr.read(self.payload_addr(), data.len() as u64);
            }
            let t2 = self.tid();
            if t1 == t2 {
                return t1;
            }
        }
    }

    /// Try to set the lock bit (commit protocol). Returns false if already
    /// locked.
    pub fn try_lock(&self) -> bool {
        let cur = self.tid.load(Ordering::Acquire);
        if tid::is_locked(cur) {
            return false;
        }
        self.tid
            .compare_exchange(cur, cur | tid::LOCK, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Spin until the lock is acquired.
    pub fn lock(&self) {
        while !self.try_lock() {
            std::hint::spin_loop();
        }
    }

    /// Release the lock without changing the version (aborts).
    pub fn unlock(&self) {
        let cur = self.tid.load(Ordering::Acquire);
        debug_assert!(tid::is_locked(cur));
        self.tid.store(cur & !tid::LOCK, Ordering::Release);
    }

    /// Install new data and release the lock with the commit TID.
    pub fn install<T: Tracer>(&self, tr: &mut T, new_data: &[u8], commit_tid: u64) {
        debug_assert!(tid::is_locked(self.tid()));
        {
            let mut data = self.data.write();
            let n = new_data.len().min(data.len());
            data[..n].copy_from_slice(&new_data[..n]);
            tr.write(self.payload_addr(), n as u64);
        }
        self.tid.store(tid::version(commit_tid), Ordering::Release);
        tr.write(self.addr(), 8);
    }

    /// Mark the record absent (logical delete) and release the lock.
    pub fn mark_absent(&self, commit_tid: u64) {
        debug_assert!(tid::is_locked(self.tid()));
        self.tid
            .store(tid::version(commit_tid) | tid::ABSENT, Ordering::Release);
    }

    /// True when logically deleted.
    pub fn is_absent(&self) -> bool {
        tid::is_absent(self.tid())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bionicdb_cpu_model::NullTracer;

    #[test]
    fn stable_read_returns_data_and_tid() {
        let r = Record::new(1, vec![7; 16], 0x1000);
        let mut buf = Vec::new();
        let t = r.stable_read(&mut NullTracer, &mut buf);
        assert_eq!(buf, vec![7; 16]);
        assert_eq!(t, r.tid());
        assert!(!tid::is_locked(t));
    }

    #[test]
    fn lock_install_bumps_version() {
        let r = Record::new(1, vec![0; 8], 0x2000);
        let before = r.tid();
        r.lock();
        assert!(!r.try_lock(), "double lock fails");
        let commit = tid::next_commit_tid(before, before, 1);
        r.install(&mut NullTracer, &[9; 8], commit);
        assert!(!tid::is_locked(r.tid()));
        assert!(r.tid() > before);
        let mut buf = Vec::new();
        r.stable_read(&mut NullTracer, &mut buf);
        assert_eq!(buf, vec![9; 8]);
    }

    #[test]
    fn unlock_preserves_version() {
        let r = Record::new(2, vec![0; 4], 0x3000);
        let before = r.tid();
        r.lock();
        r.unlock();
        assert_eq!(r.tid(), before);
    }

    #[test]
    fn absent_flag() {
        let r = Record::new(1, vec![1], 0x4000);
        r.lock();
        r.mark_absent(tid::next_commit_tid(r.tid(), 0, 1));
        assert!(r.is_absent());
    }
}
