//! Software in-memory indexes for the Silo baseline.
//!
//! Three structures, mirroring the paper's comparisons:
//!
//! * [`HashIndex`] — chained hash table (vs. BionicDB's hash pipeline);
//! * [`SwSkipList`] — Pugh skiplist (paper Fig. 11d "SW skiplist");
//! * [`Masstree`] — a B+ tree; with 64-bit keys Masstree degenerates to a
//!   single trie layer, which *is* a B+ tree, so this implements the
//!   structure the paper's Fig. 11d Masstree numbers exercise.
//!
//! Every traversal reports its memory touches through a
//! [`Tracer`]: one dependent read per pointer hop, sized by the node
//! footprint, so the Xeon cache model observes exactly the pointer-chasing
//! behaviour the paper's §3.1 argues is the CPU's OLTP bottleneck.
//!
//! The skiplist and B+ tree are arena-based (indices, not pointers), which
//! keeps the crate in safe Rust; traced "addresses" are stable virtual
//! addresses derived from the arena slot.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bionicdb_cpu_model::Tracer;
use parking_lot::RwLock;

use crate::record::Record;

/// Distinct virtual address spaces for arena-based structures.
static NEXT_VBASE: AtomicU64 = AtomicU64::new(1 << 40);

fn fresh_vbase() -> u64 {
    NEXT_VBASE.fetch_add(1 << 33, Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Hash index
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct HashNode {
    key: u64,
    rec: Arc<Record>,
    /// Stable virtual address for the timing model (insertion-order slot
    /// in the index's address space — never a real heap pointer, so
    /// identically built tables trace identical cache behaviour).
    vaddr: u64,
    next: Option<Box<HashNode>>,
}

/// Footprint of one hash chain node, for the timing model.
const HASH_NODE_BYTES: u64 = 32;

/// A chained hash table with per-bucket read-write locks.
#[derive(Debug)]
pub struct HashIndex {
    buckets: Vec<RwLock<Option<Box<HashNode>>>>,
    mask: u64,
    /// Base of this table's virtual address space: bucket headers live at
    /// `vbase + b * 64`, chain nodes above `vbase + (1 << 30)`.
    vbase: u64,
    next_slot: AtomicU64,
}

impl HashIndex {
    /// Create a table with `buckets` buckets (rounded up to a power of
    /// two).
    pub fn new(buckets: usize) -> Self {
        let n = buckets.next_power_of_two().max(16);
        HashIndex {
            buckets: (0..n).map(|_| RwLock::new(None)).collect(),
            mask: n as u64 - 1,
            vbase: fresh_vbase(),
            next_slot: AtomicU64::new(0),
        }
    }

    fn bucket(&self, key: u64) -> usize {
        // fibonacci hashing; cheap like the FPGA's sdbm.
        ((key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 16) & self.mask) as usize
    }

    fn bucket_addr(&self, b: usize) -> u64 {
        self.vbase + b as u64 * 64
    }

    /// Point lookup.
    pub fn get<T: Tracer>(&self, tr: &mut T, key: u64) -> Option<Arc<Record>> {
        let b = self.bucket(key);
        let guard = self.buckets[b].read();
        tr.read(self.bucket_addr(b), 8);
        let mut cur = guard.as_deref();
        while let Some(node) = cur {
            tr.read(node.vaddr, HASH_NODE_BYTES);
            if node.key == key {
                return Some(Arc::clone(&node.rec));
            }
            cur = node.next.as_deref();
        }
        None
    }

    /// Insert; returns false on duplicate key.
    pub fn insert<T: Tracer>(&self, tr: &mut T, key: u64, rec: Arc<Record>) -> bool {
        let b = self.bucket(key);
        let mut guard = self.buckets[b].write();
        tr.read(self.bucket_addr(b), 8);
        let mut cur = guard.as_deref();
        while let Some(node) = cur {
            tr.read(node.vaddr, HASH_NODE_BYTES);
            if node.key == key {
                return false;
            }
            cur = node.next.as_deref();
        }
        let vaddr = self.vbase
            + (1 << 30)
            + self.next_slot.fetch_add(1, Ordering::Relaxed) * 64;
        let node = Box::new(HashNode {
            key,
            rec,
            vaddr,
            next: guard.take(),
        });
        tr.write(vaddr, HASH_NODE_BYTES);
        *guard = Some(node);
        true
    }
}

// ---------------------------------------------------------------------------
// Software skiplist
// ---------------------------------------------------------------------------

const SKIP_MAX_LEVEL: usize = 20;
const NIL: u32 = u32::MAX;
/// Virtual footprint of one tower, for the timing model.
const SKIP_NODE_BYTES: u64 = 128;

#[derive(Debug)]
struct SkipNode {
    key: u64,
    rec: Arc<Record>,
    nexts: Vec<u32>,
}

#[derive(Debug, Default)]
struct SkipInner {
    arena: Vec<SkipNode>,
    head: Vec<u32>,
}

/// A Pugh skiplist guarded by a read-write lock (readers scale; inserts
/// serialize, which matches its role as a scan baseline).
#[derive(Debug)]
pub struct SwSkipList {
    inner: RwLock<SkipInner>,
    vbase: u64,
}

/// Deterministic geometric tower height from the key (reproducible runs).
fn skip_height(key: u64) -> usize {
    let mut z = key.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xdead_beef;
    z ^= z >> 33;
    z = z.wrapping_mul(0xff51_afd7_ed55_8ccd);
    z ^= z >> 33;
    ((z.trailing_ones() as usize) + 1).min(SKIP_MAX_LEVEL)
}

impl Default for SwSkipList {
    fn default() -> Self {
        Self::new()
    }
}

impl SwSkipList {
    /// Create an empty skiplist.
    pub fn new() -> Self {
        SwSkipList {
            inner: RwLock::new(SkipInner {
                arena: Vec::new(),
                head: vec![NIL; SKIP_MAX_LEVEL],
            }),
            vbase: fresh_vbase(),
        }
    }

    fn node_addr(&self, idx: u32) -> u64 {
        self.vbase + idx as u64 * SKIP_NODE_BYTES
    }

    /// Point lookup.
    pub fn get<T: Tracer>(&self, tr: &mut T, key: u64) -> Option<Arc<Record>> {
        let g = self.inner.read();
        let mut cur: Option<u32> = None; // None = head
        for level in (0..SKIP_MAX_LEVEL).rev() {
            loop {
                let next = match cur {
                    None => g.head[level],
                    Some(i) => g.arena[i as usize].nexts[level],
                };
                if next == NIL {
                    break;
                }
                tr.read(self.node_addr(next), SKIP_NODE_BYTES);
                let nk = g.arena[next as usize].key;
                match nk.cmp(&key) {
                    std::cmp::Ordering::Less => cur = Some(next),
                    std::cmp::Ordering::Equal if level == 0 => {
                        return Some(Arc::clone(&g.arena[next as usize].rec))
                    }
                    _ => break,
                }
            }
        }
        None
    }

    /// Insert; returns false on duplicate key.
    pub fn insert<T: Tracer>(&self, tr: &mut T, key: u64, rec: Arc<Record>) -> bool {
        let mut g = self.inner.write();
        let mut preds = [NIL; SKIP_MAX_LEVEL];
        let mut cur: Option<u32> = None;
        for level in (0..SKIP_MAX_LEVEL).rev() {
            loop {
                let next = match cur {
                    None => g.head[level],
                    Some(i) => g.arena[i as usize].nexts[level],
                };
                if next == NIL {
                    break;
                }
                tr.read(self.node_addr(next), SKIP_NODE_BYTES);
                match g.arena[next as usize].key.cmp(&key) {
                    std::cmp::Ordering::Less => cur = Some(next),
                    std::cmp::Ordering::Equal => return false,
                    std::cmp::Ordering::Greater => break,
                }
            }
            preds[level] = cur.unwrap_or(NIL);
        }
        let h = skip_height(key);
        let idx = g.arena.len() as u32;
        let mut nexts = vec![NIL; h];
        for (level, next) in nexts.iter_mut().enumerate().take(h) {
            *next = if preds[level] == NIL {
                g.head[level]
            } else {
                g.arena[preds[level] as usize].nexts[level]
            };
        }
        g.arena.push(SkipNode { key, rec, nexts });
        tr.write(self.node_addr(idx), SKIP_NODE_BYTES);
        for (level, &pred) in preds.iter().enumerate().take(h) {
            if pred == NIL {
                g.head[level] = idx;
            } else {
                g.arena[pred as usize].nexts[level] = idx;
            }
            tr.write(self.node_addr(pred.min(idx)), 8);
        }
        true
    }

    /// Collect up to `n` records with key ≥ `start`, in key order.
    pub fn scan<T: Tracer>(&self, tr: &mut T, start: u64, n: usize, out: &mut Vec<Arc<Record>>) {
        let g = self.inner.read();
        let mut cur: Option<u32> = None;
        for level in (0..SKIP_MAX_LEVEL).rev() {
            loop {
                let next = match cur {
                    None => g.head[level],
                    Some(i) => g.arena[i as usize].nexts[level],
                };
                if next == NIL {
                    break;
                }
                tr.read(self.node_addr(next), SKIP_NODE_BYTES);
                if g.arena[next as usize].key < start {
                    cur = Some(next);
                } else {
                    break;
                }
            }
        }
        let mut node = match cur {
            None => g.head[0],
            Some(i) => g.arena[i as usize].nexts[0],
        };
        while node != NIL && out.len() < n {
            tr.read(self.node_addr(node), SKIP_NODE_BYTES);
            out.push(Arc::clone(&g.arena[node as usize].rec));
            node = g.arena[node as usize].nexts[0];
        }
    }
}

// ---------------------------------------------------------------------------
// Masstree-like B+ tree
// ---------------------------------------------------------------------------

/// Fanout of one node (keys per node).
const BT_ORDER: usize = 14;
/// Virtual footprint of one B+ node (two cache lines of keys + pointers).
const BT_NODE_BYTES: u64 = 256;

#[derive(Debug)]
enum BNode {
    Internal {
        keys: Vec<u64>,
        children: Vec<u32>,
    },
    Leaf {
        keys: Vec<u64>,
        recs: Vec<Arc<Record>>,
        next: u32,
    },
}

#[derive(Debug)]
struct BtInner {
    arena: Vec<BNode>,
    root: u32,
}

/// A cache-conscious B+ tree standing in for Masstree (see module docs).
#[derive(Debug)]
pub struct Masstree {
    inner: RwLock<BtInner>,
    vbase: u64,
}

impl Default for Masstree {
    fn default() -> Self {
        Self::new()
    }
}

impl Masstree {
    /// Create an empty tree.
    pub fn new() -> Self {
        Masstree {
            inner: RwLock::new(BtInner {
                arena: vec![BNode::Leaf {
                    keys: Vec::new(),
                    recs: Vec::new(),
                    next: NIL,
                }],
                root: 0,
            }),
            vbase: fresh_vbase(),
        }
    }

    fn node_addr(&self, idx: u32) -> u64 {
        self.vbase + idx as u64 * BT_NODE_BYTES
    }

    fn descend<T: Tracer>(&self, tr: &mut T, g: &BtInner, key: u64) -> u32 {
        let mut idx = g.root;
        loop {
            tr.read(self.node_addr(idx), BT_NODE_BYTES);
            match &g.arena[idx as usize] {
                BNode::Internal { keys, children } => {
                    let pos = keys.partition_point(|&k| k <= key);
                    idx = children[pos];
                }
                BNode::Leaf { .. } => return idx,
            }
        }
    }

    /// Point lookup.
    pub fn get<T: Tracer>(&self, tr: &mut T, key: u64) -> Option<Arc<Record>> {
        let g = self.inner.read();
        let leaf = self.descend(tr, &g, key);
        let BNode::Leaf { keys, recs, .. } = &g.arena[leaf as usize] else {
            unreachable!()
        };
        keys.binary_search(&key).ok().map(|i| Arc::clone(&recs[i]))
    }

    /// Insert; returns false on duplicate key.
    pub fn insert<T: Tracer>(&self, tr: &mut T, key: u64, rec: Arc<Record>) -> bool {
        let mut g = self.inner.write();
        // Path of internal nodes from root to leaf.
        let mut path = Vec::new();
        let mut idx = g.root;
        loop {
            tr.read(self.node_addr(idx), BT_NODE_BYTES);
            match &g.arena[idx as usize] {
                BNode::Internal { keys, children } => {
                    let pos = keys.partition_point(|&k| k <= key);
                    path.push((idx, pos));
                    idx = children[pos];
                }
                BNode::Leaf { .. } => break,
            }
        }
        let leaf = idx;
        {
            let BNode::Leaf { keys, recs, .. } = &mut g.arena[leaf as usize] else {
                unreachable!()
            };
            match keys.binary_search(&key) {
                Ok(_) => return false,
                Err(pos) => {
                    keys.insert(pos, key);
                    recs.insert(pos, rec);
                }
            }
        }
        tr.write(self.node_addr(leaf), BT_NODE_BYTES);
        // Split upward while overfull.
        let mut child = leaf;
        loop {
            let overfull = match &g.arena[child as usize] {
                BNode::Leaf { keys, .. } | BNode::Internal { keys, .. } => keys.len() > BT_ORDER,
            };
            if !overfull {
                break;
            }
            let (sep, right_idx) = self.split(tr, &mut g, child);
            match path.pop() {
                Some((parent, pos)) => {
                    let BNode::Internal { keys, children } = &mut g.arena[parent as usize] else {
                        unreachable!()
                    };
                    keys.insert(pos, sep);
                    children.insert(pos + 1, right_idx);
                    tr.write(self.node_addr(parent), BT_NODE_BYTES);
                    child = parent;
                }
                None => {
                    // New root.
                    let new_root = g.arena.len() as u32;
                    g.arena.push(BNode::Internal {
                        keys: vec![sep],
                        children: vec![child, right_idx],
                    });
                    g.root = new_root;
                    tr.write(self.node_addr(new_root), BT_NODE_BYTES);
                    break;
                }
            }
        }
        true
    }

    fn split<T: Tracer>(&self, tr: &mut T, g: &mut BtInner, idx: u32) -> (u64, u32) {
        let right_idx = g.arena.len() as u32;
        let (sep, right) = match &mut g.arena[idx as usize] {
            BNode::Leaf { keys, recs, next } => {
                let mid = keys.len() / 2;
                let rk: Vec<u64> = keys.split_off(mid);
                let rr: Vec<Arc<Record>> = recs.split_off(mid);
                let sep = rk[0];
                let right = BNode::Leaf {
                    keys: rk,
                    recs: rr,
                    next: *next,
                };
                *next = right_idx;
                (sep, right)
            }
            BNode::Internal { keys, children } => {
                let mid = keys.len() / 2;
                let mut rk: Vec<u64> = keys.split_off(mid);
                let rc: Vec<u32> = children.split_off(mid + 1);
                let sep = rk.remove(0);
                (
                    sep,
                    BNode::Internal {
                        keys: rk,
                        children: rc,
                    },
                )
            }
        };
        g.arena.push(right);
        tr.write(self.node_addr(idx), BT_NODE_BYTES);
        tr.write(self.node_addr(right_idx), BT_NODE_BYTES);
        (sep, right_idx)
    }

    /// Collect up to `n` records with key ≥ `start`, in key order.
    pub fn scan<T: Tracer>(&self, tr: &mut T, start: u64, n: usize, out: &mut Vec<Arc<Record>>) {
        let g = self.inner.read();
        let mut leaf = self.descend(tr, &g, start);
        while leaf != NIL && out.len() < n {
            let BNode::Leaf { keys, recs, next } = &g.arena[leaf as usize] else {
                unreachable!()
            };
            let from = keys.partition_point(|&k| k < start);
            for rec in &recs[from..] {
                if out.len() >= n {
                    return;
                }
                out.push(Arc::clone(rec));
            }
            leaf = *next;
            if leaf != NIL {
                tr.read(self.node_addr(leaf), BT_NODE_BYTES);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bionicdb_cpu_model::NullTracer;

    fn rec(v: u8) -> Arc<Record> {
        Record::new(1, vec![v; 8], 0x1_0000 + (v as u64) * 128)
    }

    #[test]
    fn hash_get_insert_dup() {
        let idx = HashIndex::new(64);
        let mut tr = NullTracer;
        assert!(idx.insert(&mut tr, 5, rec(1)));
        assert!(!idx.insert(&mut tr, 5, rec(2)), "duplicate rejected");
        assert!(idx.get(&mut tr, 5).is_some());
        assert!(idx.get(&mut tr, 6).is_none());
        // Collisions: fill beyond bucket count.
        for k in 100..400u64 {
            assert!(idx.insert(&mut tr, k, rec(0)));
        }
        for k in 100..400u64 {
            assert!(idx.get(&mut tr, k).is_some(), "key {k}");
        }
    }

    #[test]
    fn skiplist_ordered_scan() {
        let sl = SwSkipList::new();
        let mut tr = NullTracer;
        for k in (0..200u64).rev() {
            assert!(sl.insert(&mut tr, k * 2, rec(0)));
        }
        assert!(!sl.insert(&mut tr, 10, rec(0)));
        assert!(sl.get(&mut tr, 198).is_some());
        assert!(sl.get(&mut tr, 199).is_none());
        let mut out = Vec::new();
        sl.scan(&mut tr, 101, 10, &mut out);
        assert_eq!(out.len(), 10);
        // Scan starts at first key >= 101 = 102.
        let mut buf = Vec::new();
        out[0].stable_read(&mut NullTracer, &mut buf);
    }

    #[test]
    fn masstree_bulk_and_scan() {
        let mt = Masstree::new();
        let mut tr = NullTracer;
        let keys: Vec<u64> = (0..5000).map(|i| (i * 2654435761u64) % 1_000_000).collect();
        let mut uniq: Vec<u64> = keys.clone();
        uniq.sort_unstable();
        uniq.dedup();
        let mut inserted = 0;
        for &k in &keys {
            if mt.insert(&mut tr, k, rec(0)) {
                inserted += 1;
            }
        }
        assert_eq!(inserted, uniq.len());
        for &k in uniq.iter().step_by(97) {
            assert!(mt.get(&mut tr, k).is_some(), "key {k}");
        }
        assert!(mt.get(&mut tr, 1_000_001).is_none());
        let mut out = Vec::new();
        mt.scan(&mut tr, 0, 100, &mut out);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn masstree_scan_matches_sorted_keys() {
        let mt = Masstree::new();
        let mut tr = NullTracer;
        for k in [9u64, 3, 7, 1, 5, 8, 2, 6, 4, 0] {
            mt.insert(&mut tr, k, Record::new(1, k.to_le_bytes().to_vec(), 0x2_0000 + k * 128));
        }
        let mut out = Vec::new();
        mt.scan(&mut tr, 3, 4, &mut out);
        let got: Vec<u64> = out
            .iter()
            .map(|r| {
                let mut b = Vec::new();
                r.stable_read(&mut NullTracer, &mut b);
                u64::from_le_bytes(b.try_into().unwrap())
            })
            .collect();
        assert_eq!(got, vec![3, 4, 5, 6]);
    }

    #[test]
    fn traced_lookup_touches_nodes() {
        let mt = Masstree::new();
        let mut tr = NullTracer;
        for k in 0..2000u64 {
            mt.insert(&mut tr, k, rec(0));
        }
        let mut model = bionicdb_cpu_model::CoreModel::new(Default::default());
        mt.get(&mut model, 1234);
        assert!(model.stats().accesses >= 3, "root + internal + leaf");
    }
}
