//! The software OLTP baseline: a Silo-style in-memory engine.
//!
//! The paper compares BionicDB against **Silo** (Tu et al., SOSP'13)
//! running on four Xeon E7-4807 chips. This crate implements a faithful
//! small-scale Silo: optimistic concurrency control with per-record TID
//! words, read-set validation, write locking in global address order, and
//! epoch-based commit timestamps. Three in-memory indexes are provided:
//!
//! * [`index::HashIndex`] — a chained hash table (the point-access
//!   counterpart of BionicDB's hash pipeline);
//! * [`index::SwSkipList`] — a software skiplist (paper Fig. 11d's
//!   "SW skiplist");
//! * [`index::Masstree`] — a B+-tree in the spirit of Masstree (with
//!   64-bit keys a Masstree is a single trie layer, i.e. exactly a B+
//!   tree; paper Fig. 11d's scan baseline).
//!
//! Every index and transaction operation is generic over
//! [`bionicdb_cpu_model::Tracer`]: with [`bionicdb_cpu_model::NullTracer`]
//! the engine runs at full native speed on real threads (see [`runner`]);
//! with [`bionicdb_cpu_model::CoreModel`] each pointer hop and payload copy
//! is charged against the paper's Xeon cache hierarchy, producing the
//! model-time numbers used in the figure reproductions.
//!
//! Simplifications relative to full Silo (documented, immaterial to the
//! reproduced figures): no phantom-protection node versions (scans are only
//! used in scan-only workloads, as the paper itself modified YCSB-E to be),
//! no logging/GC, and keys are 64-bit (composite TPC-C keys are packed —
//! the same trick BionicDB's byte keys use).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod db;
pub mod deadline;
pub mod index;
pub mod record;
pub mod runner;
pub mod tid;
pub mod txn;

pub use db::{SiloDb, SwIndexKind, TableDef};
pub use deadline::CancelToken;
pub use record::Record;
pub use runner::run_parallel;
pub use txn::{Abort, Txn};
