//! Multi-threaded wall-clock runner for the Silo baseline.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use bionicdb_cpu_model::NullTracer;
use bionicdb_fpga::obs::LatencyHistogram;

use crate::db::SiloDb;
use crate::txn::Txn;

/// Outcome of a parallel run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunStats {
    /// Transactions committed.
    pub committed: u64,
    /// Transactions aborted (not retried).
    pub aborted: u64,
    /// Wall-clock seconds.
    pub secs: f64,
    /// Per-transaction wall latency in nanoseconds (body + commit, both
    /// outcomes). Per-thread histograms are merged exactly, so the
    /// percentiles equal those of one histogram recording every
    /// transaction.
    pub latency: LatencyHistogram,
}

impl RunStats {
    /// Committed transactions per second.
    pub fn throughput(&self) -> f64 {
        if self.secs == 0.0 {
            0.0
        } else {
            self.committed as f64 / self.secs
        }
    }

    /// Median per-transaction latency, nanoseconds.
    pub fn p50_ns(&self) -> f64 {
        self.latency.p50()
    }

    /// 95th-percentile per-transaction latency, nanoseconds.
    pub fn p95_ns(&self) -> f64 {
        self.latency.p95()
    }

    /// 99th-percentile per-transaction latency, nanoseconds.
    pub fn p99_ns(&self) -> f64 {
        self.latency.p99()
    }
}

/// Epoch advance period, in commits per thread (plays Silo's epoch thread).
const EPOCH_PERIOD: u64 = 4096;

/// Run `txns_per_thread` transactions on each of `threads` worker threads.
///
/// `body` receives `(thread_id, txn_index, &mut Txn, &mut NullTracer)` and
/// populates the transaction's operations; the runner commits it and counts
/// the outcome. Aborted transactions are not retried (the benchmark
/// workloads have negligible contention, like the paper's). Every
/// transaction's wall latency lands in [`RunStats::latency`].
pub fn run_parallel<F>(db: &SiloDb, threads: usize, txns_per_thread: u64, body: F) -> RunStats
where
    F: Fn(usize, u64, &mut Txn<'_>, &mut NullTracer) + Sync,
{
    let committed = AtomicU64::new(0);
    let aborted = AtomicU64::new(0);
    let latency = Mutex::new(LatencyHistogram::new());
    let start = Instant::now();
    std::thread::scope(|scope| {
        for tid in 0..threads {
            let body = &body;
            let committed = &committed;
            let aborted = &aborted;
            let latency = &latency;
            scope.spawn(move || {
                let mut tracer = NullTracer;
                let mut ok = 0u64;
                let mut bad = 0u64;
                let mut lat = LatencyHistogram::new();
                for i in 0..txns_per_thread {
                    let t0 = Instant::now();
                    let mut txn = db.txn();
                    body(tid, i, &mut txn, &mut tracer);
                    match txn.commit(&mut tracer) {
                        Ok(_) => ok += 1,
                        Err(_) => bad += 1,
                    }
                    lat.record(t0.elapsed().as_nanos() as u64);
                    if ok.is_multiple_of(EPOCH_PERIOD) && tid == 0 {
                        db.advance_epoch();
                    }
                }
                committed.fetch_add(ok, Ordering::Relaxed);
                aborted.fetch_add(bad, Ordering::Relaxed);
                latency.lock().expect("latency histogram").merge(&lat);
            });
        }
    });
    RunStats {
        committed: committed.load(Ordering::Relaxed),
        aborted: aborted.load(Ordering::Relaxed),
        secs: start.elapsed().as_secs_f64(),
        latency: latency.into_inner().expect("latency histogram"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::{SwIndexKind, TableDef};

    #[test]
    fn parallel_disjoint_updates_all_commit() {
        let db = SiloDb::new(vec![TableDef::new(
            "t",
            SwIndexKind::Hash { buckets: 1 << 12 },
            8,
        )]);
        for k in 0..4096u64 {
            db.load(0, k, vec![0; 8]);
        }
        let stats = run_parallel(&db, 4, 1000, |tid, i, txn, tr| {
            // Thread-disjoint key ranges: no conflicts.
            let key = (tid as u64 * 1000 + i) % 4096;
            let _ = txn.update(tr, 0, key, &key.to_le_bytes());
        });
        assert_eq!(stats.committed, 4000);
        assert_eq!(stats.aborted, 0);
        assert!(stats.throughput() > 0.0);
        // Every transaction was timed, and the percentiles are ordered.
        assert_eq!(stats.latency.count(), 4000);
        assert!(stats.p50_ns() > 0.0);
        assert!(stats.p50_ns() <= stats.p95_ns());
        assert!(stats.p95_ns() <= stats.p99_ns());
    }

    #[test]
    fn contended_updates_preserve_consistency() {
        // All threads increment the same counter; some abort, but the final
        // value equals the number of commits (no lost updates).
        let db = SiloDb::new(vec![TableDef::new(
            "t",
            SwIndexKind::Hash { buckets: 64 },
            8,
        )]);
        db.load(0, 0, vec![0; 8]);
        let stats = run_parallel(&db, 4, 2000, |_tid, _i, txn, tr| {
            txn.modify(tr, 0, 0, |buf| {
                let v = u64::from_le_bytes(buf.as_slice().try_into().unwrap());
                buf.clear();
                buf.extend_from_slice(&(v + 1).to_le_bytes());
            });
        });
        let mut t = db.txn();
        let mut buf = Vec::new();
        t.read(&mut NullTracer, 0, 0, &mut buf);
        let v = u64::from_le_bytes(buf.try_into().unwrap());
        assert_eq!(v, stats.committed, "counter equals commit count");
        assert_eq!(stats.committed + stats.aborted, 8000);
        assert_eq!(stats.latency.count(), 8000, "aborts are timed too");
    }
}
