//! Silo TID words.
//!
//! Each record carries a 64-bit transaction-id word:
//!
//! ```text
//! bit 63..35 : epoch
//! bit 34..3  : sequence number within the epoch
//! bit 2      : absent (logically deleted)
//! bit 1      : (reserved)
//! bit 0      : lock
//! ```
//!
//! Commit TIDs are chosen larger than (a) every TID in the transaction's
//! read and write sets, (b) the worker's last commit TID, and (c) the
//! current global epoch — exactly Silo's rule.

/// Lock bit.
pub const LOCK: u64 = 1;
/// Absent (deleted) bit.
pub const ABSENT: u64 = 1 << 2;
/// All status bits.
pub const STATUS_MASK: u64 = 0b111;

/// Shift of the epoch field.
pub const EPOCH_SHIFT: u32 = 35;

/// Strip status bits: the version part used for validation comparisons.
pub fn version(tid: u64) -> u64 {
    tid & !STATUS_MASK
}

/// True if the lock bit is set.
pub fn is_locked(tid: u64) -> bool {
    tid & LOCK != 0
}

/// True if the absent bit is set.
pub fn is_absent(tid: u64) -> bool {
    tid & ABSENT != 0
}

/// The epoch encoded in a TID.
pub fn epoch_of(tid: u64) -> u64 {
    tid >> EPOCH_SHIFT
}

/// Construct the smallest valid TID in `epoch`.
pub fn epoch_base(epoch: u64) -> u64 {
    epoch << EPOCH_SHIFT
}

/// Next commit TID given the observed maxima (Silo §3.3 step 3).
pub fn next_commit_tid(max_observed: u64, last_tid: u64, epoch: u64) -> u64 {
    let floor = version(max_observed)
        .max(version(last_tid))
        .max(epoch_base(epoch));
    // Bump the sequence field: versions advance by 8 (past the status bits).
    floor + 8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_bits_do_not_leak_into_version() {
        let t = epoch_base(3) + 8 * 5;
        assert_eq!(version(t | LOCK | ABSENT), t);
        assert!(is_locked(t | LOCK));
        assert!(!is_locked(t));
        assert!(is_absent(t | ABSENT));
    }

    #[test]
    fn commit_tid_exceeds_all_inputs_and_epoch() {
        let tid = next_commit_tid(epoch_base(2) + 64, epoch_base(2) + 32, 2);
        assert!(version(tid) > epoch_base(2) + 64);
        assert_eq!(epoch_of(tid), 2);
        // Epoch advance dominates.
        let tid2 = next_commit_tid(tid, tid, 7);
        assert_eq!(epoch_of(tid2), 7);
    }
}
