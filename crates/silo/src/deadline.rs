//! Request deadlines and cooperative transaction cancellation.
//!
//! A serving layer that admits more work than the engine can finish needs a
//! way to stop a doomed transaction from occupying a worker: once the
//! client's deadline has passed, committing is pure waste (the client has
//! already given up), and under overload that waste compounds into the
//! classic goodput collapse. A [`CancelToken`] is the engine-side half of
//! that contract: the serving layer attaches one to a [`crate::Txn`]
//! (`Txn::set_cancel`) and the commit protocol refuses to run — before
//! taking a single write lock — when the token reports cancelled.
//!
//! Two flavours:
//!
//! * [`CancelToken::manual`] — an explicit flag another thread flips
//!   (administrative kill, client disconnect);
//! * [`CancelToken::deadline`] — self-expiring at a wall-clock [`Instant`];
//!   no watchdog thread is needed, the transaction checks its own clock at
//!   the commit boundary.
//!
//! The check sits at commit entry rather than inside every read on purpose:
//! reads are the hot path and return domain answers (`found`/absent) that
//! must not be conflated with cancellation, while commit is where locks are
//! taken and the expensive install happens. Long transaction bodies can
//! poll [`Txn::cancelled`](crate::Txn::cancelled) between operations to bail
//! out earlier.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

#[derive(Debug)]
enum Inner {
    /// Explicitly flipped by the owner.
    Flag(AtomicBool),
    /// Expires on its own when the wall clock passes `at`.
    Deadline { at: Instant },
}

/// A shared cancellation token observed by in-flight transactions.
///
/// Cheap to clone (one `Arc`); cancellation is one-way — once cancelled (or
/// expired) a token never reverts.
#[derive(Debug, Clone)]
pub struct CancelToken(Arc<Inner>);

impl CancelToken {
    /// A token that stays live until [`cancel`](CancelToken::cancel) is
    /// called.
    pub fn manual() -> CancelToken {
        CancelToken(Arc::new(Inner::Flag(AtomicBool::new(false))))
    }

    /// A token that expires when the wall clock reaches `at`.
    pub fn deadline(at: Instant) -> CancelToken {
        CancelToken(Arc::new(Inner::Deadline { at }))
    }

    /// Cancel a manual token (no-op on deadline tokens: their clock is the
    /// sole authority, which keeps expiry race-free).
    pub fn cancel(&self) {
        if let Inner::Flag(f) = &*self.0 {
            f.store(true, Ordering::Release);
        }
    }

    /// Whether the token has been cancelled / has expired.
    pub fn is_cancelled(&self) -> bool {
        match &*self.0 {
            Inner::Flag(f) => f.load(Ordering::Acquire),
            Inner::Deadline { at } => Instant::now() >= *at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn manual_token_flips_once() {
        let t = CancelToken::manual();
        assert!(!t.is_cancelled());
        let c = t.clone();
        c.cancel();
        assert!(t.is_cancelled(), "clones share the flag");
    }

    #[test]
    fn deadline_token_expires() {
        let t = CancelToken::deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!t.is_cancelled(), "an hour away: live");
        let past = CancelToken::deadline(Instant::now() - Duration::from_millis(1));
        assert!(past.is_cancelled(), "already past: expired");
        past.cancel(); // no-op, must not panic
        assert!(past.is_cancelled());
    }
}
