//! Transaction blocks (paper §4.3, Fig. 3).
//!
//! A client invokes a registered transaction by submitting a *transaction
//! block*: a chunk of FPGA-side DRAM containing the transaction ID, the
//! input data, and buffers for result sets, intermediate data and UNDO logs.
//! After execution, BionicDB writes the commit state and the commit
//! timestamp back into the block — which is also what makes command-logging
//! recovery possible (paper §4.8).
//!
//! Layout (all fields 8-byte little-endian):
//!
//! ```text
//! offset  0: proc id (the "transaction ID" selecting the stored procedure)
//! offset  8: status   (0 = pending, 1 = committed, 2 = aborted)
//! offset 16: commit timestamp
//! offset 24: user area (inputs, outputs, scratch, UNDO buffer — the layout
//!            within the user area is a contract between the client and the
//!            stored procedure, exactly as in paper Fig. 3)
//! ```

use bionicdb_fpga::Dram;

use crate::catalogue::ProcId;

/// Size of the fixed block header that precedes the user area.
pub const BLOCK_HEADER_SIZE: u64 = 24;

/// Block-relative offset of the status word.
pub const STATUS_OFFSET: u64 = 8;
/// Block-relative offset of the commit-timestamp word.
pub const COMMIT_TS_OFFSET: u64 = 16;

/// Transaction status values stored in the block header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnStatus {
    /// Not yet executed.
    Pending,
    /// Committed; the commit timestamp field is valid.
    Committed,
    /// Aborted.
    Aborted,
}

impl TxnStatus {
    /// Decode from the header word.
    pub fn from_u64(v: u64) -> Option<TxnStatus> {
        match v {
            0 => Some(TxnStatus::Pending),
            1 => Some(TxnStatus::Committed),
            2 => Some(TxnStatus::Aborted),
            _ => None,
        }
    }

    /// Encode to the header word.
    pub fn to_u64(self) -> u64 {
        match self {
            TxnStatus::Pending => 0,
            TxnStatus::Committed => 1,
            TxnStatus::Aborted => 2,
        }
    }
}

/// A host-side handle to one transaction block in DRAM. Used by clients to
/// populate inputs before submission and to read results after completion
/// (the paper's experiments pre-populate blocks from the host, §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnBlock {
    addr: u64,
    size: u64,
}

impl TxnBlock {
    /// View the block at `addr` spanning `size` bytes.
    pub fn new(addr: u64, size: u64) -> Self {
        assert!(size >= BLOCK_HEADER_SIZE, "block smaller than its header");
        TxnBlock { addr, size }
    }

    /// DRAM address of the block.
    pub fn addr(&self) -> u64 {
        self.addr
    }

    /// Size of the block in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Initialize the header for a fresh invocation of `proc`.
    pub fn init(&self, dram: &mut Dram, proc: ProcId) {
        dram.host_write_u64(self.addr, proc.0 as u64);
        dram.host_write_u64(self.addr + STATUS_OFFSET, TxnStatus::Pending.to_u64());
        dram.host_write_u64(self.addr + COMMIT_TS_OFFSET, 0);
    }

    /// Write `data` into the user area at `user_off`.
    pub fn write_user(&self, dram: &mut Dram, user_off: u64, data: &[u8]) {
        let addr = self.user_addr(user_off, data.len() as u64);
        dram.host_write(addr, data);
    }

    /// Write a u64 into the user area at `user_off`.
    pub fn write_user_u64(&self, dram: &mut Dram, user_off: u64, v: u64) {
        self.write_user(dram, user_off, &v.to_le_bytes());
    }

    /// Read `len` bytes from the user area at `user_off`.
    pub fn read_user(&self, dram: &Dram, user_off: u64, len: u64) -> Vec<u8> {
        let addr = self.user_addr(user_off, len);
        dram.host_read(addr, len as usize)
    }

    /// Read a u64 from the user area at `user_off`.
    pub fn read_user_u64(&self, dram: &Dram, user_off: u64) -> u64 {
        let b = self.read_user(dram, user_off, 8);
        u64::from_le_bytes(b.try_into().expect("8 bytes"))
    }

    /// The procedure this block invokes.
    pub fn proc_id(&self, dram: &Dram) -> ProcId {
        ProcId(dram.host_read_u64(self.addr) as u32)
    }

    /// The execution status written back by the softcore.
    pub fn status(&self, dram: &Dram) -> TxnStatus {
        TxnStatus::from_u64(dram.host_read_u64(self.addr + STATUS_OFFSET))
            .expect("corrupt status word")
    }

    /// The commit timestamp (valid when committed).
    pub fn commit_ts(&self, dram: &Dram) -> u64 {
        dram.host_read_u64(self.addr + COMMIT_TS_OFFSET)
    }

    fn user_addr(&self, user_off: u64, len: u64) -> u64 {
        let addr = self.addr + BLOCK_HEADER_SIZE + user_off;
        assert!(
            addr + len <= self.addr + self.size,
            "user access at offset {user_off} (+{len}) exceeds block size {}",
            self.size
        );
        addr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bionicdb_fpga::FpgaConfig;

    #[test]
    fn header_init_and_readback() {
        let mut dram = Dram::new(&FpgaConfig::default(), 1 << 20);
        let blk = TxnBlock::new(4096, 256);
        blk.init(&mut dram, ProcId(7));
        assert_eq!(blk.proc_id(&dram), ProcId(7));
        assert_eq!(blk.status(&dram), TxnStatus::Pending);
        assert_eq!(blk.commit_ts(&dram), 0);
    }

    #[test]
    fn user_area_rw() {
        let mut dram = Dram::new(&FpgaConfig::default(), 1 << 20);
        let blk = TxnBlock::new(0, 128);
        blk.write_user_u64(&mut dram, 0, 99);
        blk.write_user(&mut dram, 8, b"hello");
        assert_eq!(blk.read_user_u64(&dram, 0), 99);
        assert_eq!(blk.read_user(&dram, 8, 5), b"hello");
    }

    #[test]
    #[should_panic(expected = "exceeds block size")]
    fn user_overflow_panics() {
        let mut dram = Dram::new(&FpgaConfig::default(), 1 << 20);
        let blk = TxnBlock::new(0, 32);
        blk.write_user_u64(&mut dram, 8, 1); // header 24 + 8 + 8 > 32
    }

    #[test]
    fn status_roundtrip() {
        for s in [TxnStatus::Pending, TxnStatus::Committed, TxnStatus::Aborted] {
            assert_eq!(TxnStatus::from_u64(s.to_u64()), Some(s));
        }
        assert_eq!(TxnStatus::from_u64(9), None);
    }
}
