//! The BionicDB softcore: a custom microprocessor built on the
//! reconfigurable fabric (paper §4.3).
//!
//! BionicDB takes a hybrid processor–accelerator approach: heavy
//! control-flow (transaction logic) runs on a small custom RISC-style core,
//! while index operations are dispatched asynchronously to the index
//! coprocessor. This crate implements:
//!
//! * the instruction set of paper Table 2 ([`isa`]) — CPU instructions
//!   executed in five non-pipelined steps, plus DB instructions that
//!   encapsulate index operations;
//! * a binary wire format for uploading stored procedures to the catalogue
//!   ([`isa::encode`] / [`isa::decode`]);
//! * a small text assembler ([`asm`]) and a typed procedure builder
//!   ([`builder`]) — the paper uses manually written stored procedures and
//!   leaves the SQL compiler out of scope, and so do we;
//! * the catalogue of procedures and table metadata ([`catalogue`]);
//! * the transaction-block layout that clients submit ([`txnblock`]);
//! * the softcore execution engine itself ([`core`]), including the
//!   two-phase batch execution with **transaction interleaving** of
//!   paper §4.5 and the register-renaming batch grouping.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod asm;
pub mod builder;
pub mod catalogue;
#[allow(clippy::module_inception)]
pub mod core;
pub mod isa;
pub mod key;
pub mod request;
pub mod result;
pub mod txnblock;

pub use builder::ProcBuilder;
pub use catalogue::{Catalogue, IndexKind, ProcId, TableId, TableMeta};
pub use core::{ExecMode, Softcore, SoftcoreObs, SoftcoreStats};
pub use isa::{AluOp, Cond, Cp, Gp, Inst, MemBase, Operand, Procedure};
pub use key::IndexKey;
pub use request::{BatchMode, CpSlot, DbOp, DbRequest, PartitionId};
pub use result::{DbResult, DbStatus};
pub use txnblock::{TxnBlock, BLOCK_HEADER_SIZE};
