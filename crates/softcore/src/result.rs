//! Encoding of DB instruction results.
//!
//! Paper §4.7: "If a DB instruction passes the visibility check, the address
//! of the matching tuple with a 'success' return code is written back to the
//! CP register specified in the DB instruction. Otherwise, an error code is
//! written."
//!
//! We encode results as a signed 64-bit value so that generated commit
//! handlers can branch on errors with a single `CMP rd, 0; BLT abort`:
//! successes are non-negative (a tuple address, or a scan count), failures
//! are small negative error codes.

/// Status of a completed DB instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DbStatus {
    /// Operation succeeded; the payload is an address or a count.
    Ok,
    /// No tuple with the search key exists (paper §4.4.1 "NotFound").
    NotFound,
    /// Visibility check rejected the access (timestamp order violation).
    CcConflict,
    /// The tuple is uncommitted (dirty); accesses are blindly rejected
    /// (paper §4.7).
    Dirty,
    /// The request was malformed (bad table, wrong index kind for the op).
    BadRequest,
    /// A remote request exhausted its retry budget without a response
    /// (injected interconnect loss; see the worker glue's bounded-retry
    /// path). Synthesized by the *initiating* worker, never by an index
    /// pipeline, so the transaction aborts cleanly instead of wedging.
    Timeout,
}

/// A decoded DB result: either a successful value or an error status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DbResult {
    /// Success carrying a tuple address or scan count.
    Ok(u64),
    /// Failure with the reason.
    Err(DbStatus),
}

impl DbResult {
    /// Encode into the signed CP-register representation.
    pub fn encode(self) -> i64 {
        match self {
            DbResult::Ok(v) => {
                assert!(v <= i64::MAX as u64, "result value exceeds encodable range");
                v as i64
            }
            DbResult::Err(s) => match s {
                DbStatus::Ok => unreachable!("Ok is not an error status"),
                DbStatus::NotFound => -1,
                DbStatus::CcConflict => -2,
                DbStatus::Dirty => -3,
                DbStatus::BadRequest => -4,
                DbStatus::Timeout => -5,
            },
        }
    }

    /// Decode from the signed CP-register representation.
    pub fn decode(v: i64) -> Self {
        match v {
            v if v >= 0 => DbResult::Ok(v as u64),
            -1 => DbResult::Err(DbStatus::NotFound),
            -2 => DbResult::Err(DbStatus::CcConflict),
            -3 => DbResult::Err(DbStatus::Dirty),
            -5 => DbResult::Err(DbStatus::Timeout),
            _ => DbResult::Err(DbStatus::BadRequest),
        }
    }

    /// True when the result is a success.
    pub fn is_ok(&self) -> bool {
        matches!(self, DbResult::Ok(_))
    }

    /// The success value, if any.
    pub fn value(&self) -> Option<u64> {
        match self {
            DbResult::Ok(v) => Some(*v),
            DbResult::Err(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_success_and_errors() {
        for r in [
            DbResult::Ok(0),
            DbResult::Ok(0x0000_7fff_ffff_ffff),
            DbResult::Err(DbStatus::NotFound),
            DbResult::Err(DbStatus::CcConflict),
            DbResult::Err(DbStatus::Dirty),
            DbResult::Err(DbStatus::BadRequest),
            DbResult::Err(DbStatus::Timeout),
        ] {
            assert_eq!(DbResult::decode(r.encode()), r);
        }
    }

    #[test]
    fn errors_are_negative_for_single_branch_dispatch() {
        assert!(DbResult::Err(DbStatus::NotFound).encode() < 0);
        assert!(DbResult::Err(DbStatus::Dirty).encode() < 0);
        assert!(DbResult::Ok(12345).encode() >= 0);
    }
}
