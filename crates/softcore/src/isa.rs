//! The BionicDB instruction set (paper Table 2).
//!
//! Two instruction classes exist:
//!
//! * **CPU instructions** — executed directly by the softcore in five steps
//!   (IFetch, Decode, Execute, Memory, Writeback) like a simple RISC CPU.
//!   The paper deliberately rules out instruction pipelining and
//!   out-of-order execution (prior work shows they do not pay off for OLTP).
//! * **DB instructions** — encapsulate index operations. The softcore
//!   collects metadata in a Prepare step and Dispatches the instruction
//!   asynchronously to the local index coprocessor or, via the on-chip
//!   communication channels, to a remote worker.
//!
//! The paper's table lists: INSERT, SEARCH, SCAN, UPDATE, REMOVE (DB) and
//! ADD/SUB/MUL/DIV/MOV, CMP, LOAD/STORE, JMP/BE/BLE/BLT/BGT/BGE, RET,
//! COMMIT/ABORT (CPU). We add two implementation instructions the paper
//! implies but does not name: `YIELD` (marks the end of the
//! transaction-logic phase, where the softcore saves the context and
//! switches to the next transaction) and `BNE` (branch not-equal, for
//! convenience in generated commit handlers).

use crate::catalogue::TableId;

/// A general-purpose register index (paper §4.3: 256 GP registers on BRAM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Gp(pub u8);

/// A coprocessor register index (paper §4.3: results of DB instructions are
/// returned asynchronously into CP registers; 256 per softcore).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cp(pub u8);

/// A source operand: either a GP register or an immediate inlined into the
/// instruction (paper §4.3, addressing-mode discussion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// Contents of a GP register.
    Reg(Gp),
    /// An immediate value.
    Imm(i64),
}

/// Base register selection for LOAD/STORE. The paper's base-offset
/// addressing sets a base register to the start of the transaction block;
/// `Block` names that implicit base, `Reg` uses an arbitrary GP register
/// (e.g. a tuple address returned by SEARCH).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemBase {
    /// The start address of the current transaction block.
    Block,
    /// An arbitrary base address held in a GP register.
    Reg(Gp),
}

/// Arithmetic/move operations (two-operand form: `rd = rd op rs`; MOV is
/// `rd = rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Signed division. Division by zero raises a softcore exception, which
    /// aborts the transaction.
    Div,
    /// Move.
    Mov,
}

/// Branch conditions, evaluated against the flags set by the last CMP
/// (signed comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cond {
    /// Equal (BE).
    Eq,
    /// Not equal (BNE; implementation addition).
    Ne,
    /// Less or equal (BLE).
    Le,
    /// Less than (BLT).
    Lt,
    /// Greater than (BGT).
    Gt,
    /// Greater or equal (BGE).
    Ge,
}

/// One BionicDB instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inst {
    // ----- DB instructions (paper Table 2, type DB) -----
    /// Insert a tuple: key bytes at block offset `key_off`, payload bytes at
    /// block offset `payload_off`. Result (tuple address or error) to `cp`.
    Insert {
        /// Target table.
        table: TableId,
        /// Block-relative offset of the key bytes.
        key_off: Operand,
        /// Block-relative offset of the payload bytes.
        payload_off: Operand,
        /// Destination partition (worker id); immediate or register.
        home: Operand,
        /// CP register receiving the result.
        cp: Cp,
    },
    /// Point lookup; returns the tuple address or an error code.
    Search {
        /// Target table.
        table: TableId,
        /// Block-relative offset of the key bytes.
        key_off: Operand,
        /// Destination partition.
        home: Operand,
        /// CP register receiving the result.
        cp: Cp,
    },
    /// Range scan from the key at `key_off`, collecting up to `count`
    /// visible tuples into the block-relative buffer at `out_off`; the
    /// number of tuples collected is returned in `cp`.
    Scan {
        /// Target table (must be skiplist-indexed).
        table: TableId,
        /// Block-relative offset of the start key bytes.
        key_off: Operand,
        /// Maximum tuples to collect.
        count: Operand,
        /// Block-relative offset of the result buffer.
        out_off: Operand,
        /// Destination partition.
        home: Operand,
        /// CP register receiving the result count.
        cp: Cp,
    },
    /// Locate a tuple for update: performs the write-permission visibility
    /// check, marks the tuple dirty and returns its address; the softcore
    /// performs the in-place write later (paper §4.7).
    Update {
        /// Target table.
        table: TableId,
        /// Block-relative offset of the key bytes.
        key_off: Operand,
        /// Destination partition.
        home: Operand,
        /// CP register receiving the result.
        cp: Cp,
    },
    /// Mark a tuple removed (dirty + tombstone bits; paper §4.7).
    Remove {
        /// Target table.
        table: TableId,
        /// Block-relative offset of the key bytes.
        key_off: Operand,
        /// Destination partition.
        home: Operand,
        /// CP register receiving the result.
        cp: Cp,
    },

    // ----- CPU instructions (paper Table 2, type CPU) -----
    /// ADD/SUB/MUL/DIV/MOV.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination (and first source) register.
        rd: Gp,
        /// Second source operand.
        rs: Operand,
    },
    /// Compare `ra` with `rb` and set the status flags.
    Cmp {
        /// Left-hand register.
        ra: Gp,
        /// Right-hand operand.
        rb: Operand,
    },
    /// `rd = mem64[base + off]`.
    Load {
        /// Destination register.
        rd: Gp,
        /// Base address selection.
        base: MemBase,
        /// Byte offset from the base.
        off: Operand,
    },
    /// `mem64[base + off] = rs`.
    Store {
        /// Source register.
        rs: Gp,
        /// Base address selection.
        base: MemBase,
        /// Byte offset from the base.
        off: Operand,
    },
    /// Unconditional jump to an absolute instruction index.
    Jmp {
        /// Target instruction index in the procedure's flat code array.
        target: u32,
    },
    /// Conditional branch (BE/BNE/BLE/BLT/BGT/BGE).
    Br {
        /// Condition against the current flags.
        cond: Cond,
        /// Target instruction index.
        target: u32,
    },
    /// Read the current transaction's begin timestamp (the hardware-clock
    /// value assigned at transaction start) into `rd`. The paper's commit
    /// handlers overwrite tuple write-times with the begin timestamp
    /// (§4.7), which requires exactly this special-register read.
    GetTs {
        /// Destination register.
        rd: Gp,
    },
    /// Collect the result of a DB instruction: blocks until CP register
    /// `cp` holds a value, then copies it into `rd`. Every DB instruction
    /// must be paired with a RET on the same CP register (paper §4.3).
    Ret {
        /// GP register receiving the value.
        rd: Gp,
        /// CP register to read.
        cp: Cp,
    },
    /// Commit the transaction: writes the committed status and commit
    /// timestamp into the transaction block and finishes the context.
    Commit,
    /// Abort the transaction: writes the aborted status into the
    /// transaction block and finishes the context.
    Abort,
    /// End of the transaction-logic phase: the softcore saves the context
    /// and switches to the next transaction without waiting for outstanding
    /// DB instructions (paper §4.5).
    Yield,
}

impl Inst {
    /// True for DB instructions (dispatched to the index coprocessor).
    pub fn is_db(&self) -> bool {
        matches!(
            self,
            Inst::Insert { .. }
                | Inst::Search { .. }
                | Inst::Scan { .. }
                | Inst::Update { .. }
                | Inst::Remove { .. }
        )
    }
}

/// A compiled stored procedure: a flat code array with three entry points
/// (transaction logic at index 0, commit handler, abort handler — paper
/// §4.3/Fig. 3) plus the register footprint used for batch grouping
/// (paper §4.5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Procedure {
    /// Human-readable name (diagnostics only).
    pub name: String,
    /// Flat instruction array. Branch targets are absolute indices.
    pub code: Vec<Inst>,
    /// Entry index of the commit handler.
    pub commit_entry: u32,
    /// Entry index of the abort handler.
    pub abort_entry: u32,
    /// Number of GP registers the procedure uses (for batch allocation).
    pub gp_count: u16,
    /// Number of CP registers the procedure uses.
    pub cp_count: u16,
}

/// Errors produced by [`Procedure::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProcError {
    /// A branch target lies outside the code array.
    BadTarget {
        /// Index of the offending instruction.
        at: usize,
        /// The out-of-range target.
        target: u32,
    },
    /// An entry point lies outside the code array.
    BadEntry(&'static str),
    /// A register index is outside the declared footprint.
    BadRegister {
        /// Index of the offending instruction.
        at: usize,
    },
    /// The logic section can fall through past the end of the code array.
    MissingTerminator,
}

impl std::fmt::Display for ProcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProcError::BadTarget { at, target } => {
                write!(f, "instruction {at}: branch target {target} out of range")
            }
            ProcError::BadEntry(which) => write!(f, "{which} entry point out of range"),
            ProcError::BadRegister { at } => {
                write!(f, "instruction {at}: register outside declared footprint")
            }
            ProcError::MissingTerminator => write!(f, "code does not end with a terminator"),
        }
    }
}

impl std::error::Error for ProcError {}

impl Procedure {
    /// Check structural invariants: entries and branch targets in range,
    /// register indices within the declared footprint, code terminated.
    pub fn validate(&self) -> Result<(), ProcError> {
        let n = self.code.len() as u32;
        if self.commit_entry >= n {
            return Err(ProcError::BadEntry("commit"));
        }
        if self.abort_entry >= n {
            return Err(ProcError::BadEntry("abort"));
        }
        match self.code.last() {
            Some(Inst::Commit | Inst::Abort | Inst::Jmp { .. }) => {}
            _ => return Err(ProcError::MissingTerminator),
        }
        for (at, inst) in self.code.iter().enumerate() {
            if let Inst::Jmp { target } | Inst::Br { target, .. } = inst {
                if *target >= n {
                    return Err(ProcError::BadTarget {
                        at,
                        target: *target,
                    });
                }
            }
            let gp_ok = |g: &Gp| (g.0 as u16) < self.gp_count;
            let cp_ok = |c: &Cp| (c.0 as u16) < self.cp_count;
            let op_ok = |o: &Operand| match o {
                Operand::Reg(g) => gp_ok(g),
                Operand::Imm(_) => true,
            };
            let base_ok = |b: &MemBase| match b {
                MemBase::Block => true,
                MemBase::Reg(g) => gp_ok(g),
            };
            let ok = match inst {
                Inst::Insert {
                    key_off,
                    payload_off,
                    home,
                    cp,
                    ..
                } => op_ok(key_off) && op_ok(payload_off) && op_ok(home) && cp_ok(cp),
                Inst::Search {
                    key_off, home, cp, ..
                }
                | Inst::Update {
                    key_off, home, cp, ..
                }
                | Inst::Remove {
                    key_off, home, cp, ..
                } => op_ok(key_off) && op_ok(home) && cp_ok(cp),
                Inst::Scan {
                    key_off,
                    count,
                    out_off,
                    home,
                    cp,
                    ..
                } => op_ok(key_off) && op_ok(count) && op_ok(out_off) && op_ok(home) && cp_ok(cp),
                Inst::Alu { rd, rs, .. } => gp_ok(rd) && op_ok(rs),
                Inst::Cmp { ra, rb } => gp_ok(ra) && op_ok(rb),
                Inst::Load { rd, base, off } => gp_ok(rd) && base_ok(base) && op_ok(off),
                Inst::Store { rs, base, off } => gp_ok(rs) && base_ok(base) && op_ok(off),
                Inst::Ret { rd, cp } => gp_ok(rd) && cp_ok(cp),
                Inst::GetTs { rd } => gp_ok(rd),
                Inst::Jmp { .. } | Inst::Br { .. } | Inst::Commit | Inst::Abort | Inst::Yield => {
                    true
                }
            };
            if !ok {
                return Err(ProcError::BadRegister { at });
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Wire format: the client uploads pre-compiled stored procedures to the
// catalogue (paper §4.2 step "upload a pre-compiled stored procedure").
// This is a compact, self-describing byte encoding with full round-tripping.
// ---------------------------------------------------------------------------

mod wire {
    use super::*;

    pub const OP_INSERT: u8 = 0x01;
    pub const OP_SEARCH: u8 = 0x02;
    pub const OP_SCAN: u8 = 0x03;
    pub const OP_UPDATE: u8 = 0x04;
    pub const OP_REMOVE: u8 = 0x05;
    pub const OP_ALU: u8 = 0x10;
    pub const OP_CMP: u8 = 0x11;
    pub const OP_LOAD: u8 = 0x12;
    pub const OP_STORE: u8 = 0x13;
    pub const OP_JMP: u8 = 0x14;
    pub const OP_BR: u8 = 0x15;
    pub const OP_RET: u8 = 0x16;
    pub const OP_COMMIT: u8 = 0x17;
    pub const OP_ABORT: u8 = 0x18;
    pub const OP_YIELD: u8 = 0x19;
    pub const OP_GETTS: u8 = 0x1a;

    pub fn put_operand(buf: &mut Vec<u8>, op: &Operand) {
        match op {
            Operand::Reg(Gp(r)) => {
                buf.push(0);
                buf.push(*r);
            }
            Operand::Imm(v) => {
                buf.push(1);
                buf.extend_from_slice(&v.to_le_bytes());
            }
        }
    }

    pub fn get_operand(buf: &[u8], pos: &mut usize) -> Result<Operand, DecodeError> {
        let kind = *buf.get(*pos).ok_or(DecodeError::Truncated)?;
        *pos += 1;
        match kind {
            0 => {
                let r = *buf.get(*pos).ok_or(DecodeError::Truncated)?;
                *pos += 1;
                Ok(Operand::Reg(Gp(r)))
            }
            1 => {
                let end = *pos + 8;
                let bytes = buf.get(*pos..end).ok_or(DecodeError::Truncated)?;
                *pos = end;
                Ok(Operand::Imm(i64::from_le_bytes(
                    bytes.try_into().expect("8 bytes"),
                )))
            }
            k => Err(DecodeError::BadOperandKind(k)),
        }
    }

    pub fn put_base(buf: &mut Vec<u8>, b: &MemBase) {
        match b {
            MemBase::Block => buf.push(0xff),
            MemBase::Reg(Gp(r)) => buf.push(*r),
        }
    }

    pub fn get_base(buf: &[u8], pos: &mut usize) -> Result<MemBase, DecodeError> {
        let b = *buf.get(*pos).ok_or(DecodeError::Truncated)?;
        *pos += 1;
        Ok(if b == 0xff {
            MemBase::Block
        } else {
            MemBase::Reg(Gp(b))
        })
    }

    pub fn get_u8(buf: &[u8], pos: &mut usize) -> Result<u8, DecodeError> {
        let b = *buf.get(*pos).ok_or(DecodeError::Truncated)?;
        *pos += 1;
        Ok(b)
    }

    pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn get_u32(buf: &[u8], pos: &mut usize) -> Result<u32, DecodeError> {
        let end = *pos + 4;
        let bytes = buf.get(*pos..end).ok_or(DecodeError::Truncated)?;
        *pos = end;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }
}

/// Errors when decoding the instruction wire format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended mid-instruction.
    Truncated,
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Unknown operand tag.
    BadOperandKind(u8),
    /// Unknown ALU sub-opcode.
    BadAluOp(u8),
    /// Unknown branch condition.
    BadCond(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "instruction stream truncated"),
            DecodeError::BadOpcode(b) => write!(f, "unknown opcode {b:#x}"),
            DecodeError::BadOperandKind(b) => write!(f, "unknown operand tag {b:#x}"),
            DecodeError::BadAluOp(b) => write!(f, "unknown ALU op {b:#x}"),
            DecodeError::BadCond(b) => write!(f, "unknown branch condition {b:#x}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Append the wire encoding of `inst` to `buf`.
pub fn encode(inst: &Inst, buf: &mut Vec<u8>) {
    use wire::*;
    match inst {
        Inst::Insert {
            table,
            key_off,
            payload_off,
            home,
            cp,
        } => {
            buf.push(OP_INSERT);
            buf.push(table.0);
            put_operand(buf, key_off);
            put_operand(buf, payload_off);
            put_operand(buf, home);
            buf.push(cp.0);
        }
        Inst::Search {
            table,
            key_off,
            home,
            cp,
        } => {
            buf.push(OP_SEARCH);
            buf.push(table.0);
            put_operand(buf, key_off);
            put_operand(buf, home);
            buf.push(cp.0);
        }
        Inst::Scan {
            table,
            key_off,
            count,
            out_off,
            home,
            cp,
        } => {
            buf.push(OP_SCAN);
            buf.push(table.0);
            put_operand(buf, key_off);
            put_operand(buf, count);
            put_operand(buf, out_off);
            put_operand(buf, home);
            buf.push(cp.0);
        }
        Inst::Update {
            table,
            key_off,
            home,
            cp,
        } => {
            buf.push(OP_UPDATE);
            buf.push(table.0);
            put_operand(buf, key_off);
            put_operand(buf, home);
            buf.push(cp.0);
        }
        Inst::Remove {
            table,
            key_off,
            home,
            cp,
        } => {
            buf.push(OP_REMOVE);
            buf.push(table.0);
            put_operand(buf, key_off);
            put_operand(buf, home);
            buf.push(cp.0);
        }
        Inst::Alu { op, rd, rs } => {
            buf.push(OP_ALU);
            buf.push(match op {
                AluOp::Add => 0,
                AluOp::Sub => 1,
                AluOp::Mul => 2,
                AluOp::Div => 3,
                AluOp::Mov => 4,
            });
            buf.push(rd.0);
            put_operand(buf, rs);
        }
        Inst::Cmp { ra, rb } => {
            buf.push(OP_CMP);
            buf.push(ra.0);
            put_operand(buf, rb);
        }
        Inst::Load { rd, base, off } => {
            buf.push(OP_LOAD);
            buf.push(rd.0);
            put_base(buf, base);
            put_operand(buf, off);
        }
        Inst::Store { rs, base, off } => {
            buf.push(OP_STORE);
            buf.push(rs.0);
            put_base(buf, base);
            put_operand(buf, off);
        }
        Inst::Jmp { target } => {
            buf.push(OP_JMP);
            put_u32(buf, *target);
        }
        Inst::Br { cond, target } => {
            buf.push(OP_BR);
            buf.push(match cond {
                Cond::Eq => 0,
                Cond::Ne => 1,
                Cond::Le => 2,
                Cond::Lt => 3,
                Cond::Gt => 4,
                Cond::Ge => 5,
            });
            put_u32(buf, *target);
        }
        Inst::Ret { rd, cp } => {
            buf.push(OP_RET);
            buf.push(rd.0);
            buf.push(cp.0);
        }
        Inst::GetTs { rd } => {
            buf.push(OP_GETTS);
            buf.push(rd.0);
        }
        Inst::Commit => buf.push(OP_COMMIT),
        Inst::Abort => buf.push(OP_ABORT),
        Inst::Yield => buf.push(OP_YIELD),
    }
}

/// Decode one instruction starting at `*pos`, advancing `*pos` past it.
pub fn decode(buf: &[u8], pos: &mut usize) -> Result<Inst, DecodeError> {
    use wire::*;
    let op = get_u8(buf, pos)?;
    let inst = match op {
        OP_INSERT => Inst::Insert {
            table: TableId(get_u8(buf, pos)?),
            key_off: get_operand(buf, pos)?,
            payload_off: get_operand(buf, pos)?,
            home: get_operand(buf, pos)?,
            cp: Cp(get_u8(buf, pos)?),
        },
        OP_SEARCH => Inst::Search {
            table: TableId(get_u8(buf, pos)?),
            key_off: get_operand(buf, pos)?,
            home: get_operand(buf, pos)?,
            cp: Cp(get_u8(buf, pos)?),
        },
        OP_SCAN => Inst::Scan {
            table: TableId(get_u8(buf, pos)?),
            key_off: get_operand(buf, pos)?,
            count: get_operand(buf, pos)?,
            out_off: get_operand(buf, pos)?,
            home: get_operand(buf, pos)?,
            cp: Cp(get_u8(buf, pos)?),
        },
        OP_UPDATE => Inst::Update {
            table: TableId(get_u8(buf, pos)?),
            key_off: get_operand(buf, pos)?,
            home: get_operand(buf, pos)?,
            cp: Cp(get_u8(buf, pos)?),
        },
        OP_REMOVE => Inst::Remove {
            table: TableId(get_u8(buf, pos)?),
            key_off: get_operand(buf, pos)?,
            home: get_operand(buf, pos)?,
            cp: Cp(get_u8(buf, pos)?),
        },
        OP_ALU => {
            let sub = get_u8(buf, pos)?;
            let op = match sub {
                0 => AluOp::Add,
                1 => AluOp::Sub,
                2 => AluOp::Mul,
                3 => AluOp::Div,
                4 => AluOp::Mov,
                b => return Err(DecodeError::BadAluOp(b)),
            };
            Inst::Alu {
                op,
                rd: Gp(get_u8(buf, pos)?),
                rs: get_operand(buf, pos)?,
            }
        }
        OP_CMP => Inst::Cmp {
            ra: Gp(get_u8(buf, pos)?),
            rb: get_operand(buf, pos)?,
        },
        OP_LOAD => Inst::Load {
            rd: Gp(get_u8(buf, pos)?),
            base: get_base(buf, pos)?,
            off: get_operand(buf, pos)?,
        },
        OP_STORE => Inst::Store {
            rs: Gp(get_u8(buf, pos)?),
            base: get_base(buf, pos)?,
            off: get_operand(buf, pos)?,
        },
        OP_JMP => Inst::Jmp {
            target: get_u32(buf, pos)?,
        },
        OP_BR => {
            let sub = get_u8(buf, pos)?;
            let cond = match sub {
                0 => Cond::Eq,
                1 => Cond::Ne,
                2 => Cond::Le,
                3 => Cond::Lt,
                4 => Cond::Gt,
                5 => Cond::Ge,
                b => return Err(DecodeError::BadCond(b)),
            };
            Inst::Br {
                cond,
                target: get_u32(buf, pos)?,
            }
        }
        OP_RET => Inst::Ret {
            rd: Gp(get_u8(buf, pos)?),
            cp: Cp(get_u8(buf, pos)?),
        },
        OP_GETTS => Inst::GetTs {
            rd: Gp(get_u8(buf, pos)?),
        },
        OP_COMMIT => Inst::Commit,
        OP_ABORT => Inst::Abort,
        OP_YIELD => Inst::Yield,
        b => return Err(DecodeError::BadOpcode(b)),
    };
    Ok(inst)
}

/// Encode a whole procedure body (code section only).
pub fn encode_program(code: &[Inst]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(code.len() * 8);
    for inst in code {
        encode(inst, &mut buf);
    }
    buf
}

/// Decode a whole procedure body.
pub fn decode_program(buf: &[u8]) -> Result<Vec<Inst>, DecodeError> {
    let mut pos = 0;
    let mut out = Vec::new();
    while pos < buf.len() {
        out.push(decode(buf, &mut pos)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_insts() -> Vec<Inst> {
        vec![
            Inst::Search {
                table: TableId(0),
                key_off: Operand::Imm(0),
                home: Operand::Imm(0),
                cp: Cp(0),
            },
            Inst::Insert {
                table: TableId(1),
                key_off: Operand::Imm(8),
                payload_off: Operand::Reg(Gp(3)),
                home: Operand::Reg(Gp(4)),
                cp: Cp(1),
            },
            Inst::Scan {
                table: TableId(2),
                key_off: Operand::Imm(0),
                count: Operand::Imm(50),
                out_off: Operand::Imm(64),
                home: Operand::Imm(2),
                cp: Cp(2),
            },
            Inst::Update {
                table: TableId(0),
                key_off: Operand::Reg(Gp(1)),
                home: Operand::Imm(0),
                cp: Cp(3),
            },
            Inst::Remove {
                table: TableId(0),
                key_off: Operand::Imm(16),
                home: Operand::Imm(1),
                cp: Cp(4),
            },
            Inst::Alu {
                op: AluOp::Add,
                rd: Gp(0),
                rs: Operand::Imm(-7),
            },
            Inst::Alu {
                op: AluOp::Mov,
                rd: Gp(1),
                rs: Operand::Reg(Gp(2)),
            },
            Inst::Cmp {
                ra: Gp(0),
                rb: Operand::Imm(0),
            },
            Inst::Load {
                rd: Gp(5),
                base: MemBase::Block,
                off: Operand::Imm(24),
            },
            Inst::Store {
                rs: Gp(5),
                base: MemBase::Reg(Gp(6)),
                off: Operand::Imm(8),
            },
            Inst::Jmp { target: 3 },
            Inst::Br {
                cond: Cond::Lt,
                target: 12,
            },
            Inst::Ret {
                rd: Gp(7),
                cp: Cp(0),
            },
            Inst::GetTs { rd: Gp(6) },
            Inst::Yield,
            Inst::Commit,
            Inst::Abort,
        ]
    }

    #[test]
    fn wire_roundtrip_all_variants() {
        let insts = sample_insts();
        let buf = encode_program(&insts);
        assert_eq!(decode_program(&buf).unwrap(), insts);
    }

    #[test]
    fn decode_rejects_bad_opcode() {
        assert_eq!(decode_program(&[0xEE]), Err(DecodeError::BadOpcode(0xEE)));
    }

    #[test]
    fn decode_rejects_truncation() {
        let mut buf = Vec::new();
        encode(
            &Inst::Search {
                table: TableId(0),
                key_off: Operand::Imm(0),
                home: Operand::Imm(0),
                cp: Cp(0),
            },
            &mut buf,
        );
        buf.truncate(buf.len() - 1);
        assert_eq!(decode_program(&buf), Err(DecodeError::Truncated));
    }

    #[test]
    fn validate_accepts_well_formed_proc() {
        let p = Procedure {
            name: "t".into(),
            code: vec![Inst::Yield, Inst::Commit, Inst::Abort],
            commit_entry: 1,
            abort_entry: 2,
            gp_count: 1,
            cp_count: 1,
        };
        p.validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_target() {
        let p = Procedure {
            name: "t".into(),
            code: vec![Inst::Jmp { target: 9 }, Inst::Commit, Inst::Abort],
            commit_entry: 1,
            abort_entry: 2,
            gp_count: 1,
            cp_count: 1,
        };
        assert_eq!(p.validate(), Err(ProcError::BadTarget { at: 0, target: 9 }));
    }

    #[test]
    fn validate_rejects_register_outside_footprint() {
        let p = Procedure {
            name: "t".into(),
            code: vec![
                Inst::Alu {
                    op: AluOp::Mov,
                    rd: Gp(4),
                    rs: Operand::Imm(1),
                },
                Inst::Commit,
                Inst::Abort,
            ],
            commit_entry: 1,
            abort_entry: 2,
            gp_count: 4, // g4 is out of range
            cp_count: 1,
        };
        assert_eq!(p.validate(), Err(ProcError::BadRegister { at: 0 }));
    }

    #[test]
    fn validate_requires_terminator() {
        let p = Procedure {
            name: "t".into(),
            code: vec![Inst::Yield],
            commit_entry: 0,
            abort_entry: 0,
            gp_count: 1,
            cp_count: 1,
        };
        assert_eq!(p.validate(), Err(ProcError::MissingTerminator));
    }
}
