//! A typed builder for stored procedures.
//!
//! The paper uses manually written stored procedures (the SQL-to-machine-code
//! compiler is explicitly out of scope, §4.3); this builder is the
//! programmatic way to write them. It allocates registers, tracks labels,
//! generates the three-section layout (transaction logic / commit handler /
//! abort handler of paper Fig. 3) and validates the result.

use crate::catalogue::TableId;
use crate::isa::{AluOp, Cond, Cp, Gp, Inst, MemBase, Operand, ProcError, Procedure};

/// A forward-referenceable jump label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// Which of the three stored-procedure sections is being emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Logic,
    Commit,
    Abort,
}

/// Builder for a [`Procedure`]. Emit the transaction logic first, then call
/// [`ProcBuilder::begin_commit`] and [`ProcBuilder::begin_abort`] to emit
/// the handlers, and finally [`ProcBuilder::build`].
#[derive(Debug)]
pub struct ProcBuilder {
    name: String,
    code: Vec<Inst>,
    labels: Vec<Option<u32>>,
    /// Instruction slots whose branch target is an unresolved label.
    fixups: Vec<(usize, Label)>,
    section: Section,
    commit_entry: Option<u32>,
    abort_entry: Option<u32>,
    abort_label: Label,
    gp_next: u16,
    cp_next: u16,
}

impl ProcBuilder {
    /// Start a new procedure.
    pub fn new(name: &str) -> Self {
        let mut b = ProcBuilder {
            name: name.into(),
            code: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
            section: Section::Logic,
            commit_entry: None,
            abort_entry: None,
            abort_label: Label(0),
            gp_next: 0,
            cp_next: 0,
        };
        b.abort_label = b.label();
        b
    }

    /// Allocate a fresh GP register.
    pub fn gp(&mut self) -> Gp {
        assert!(self.gp_next < 256, "procedure exceeds 256 GP registers");
        let r = Gp(self.gp_next as u8);
        self.gp_next += 1;
        r
    }

    /// Allocate a fresh CP register.
    pub fn cp(&mut self) -> Cp {
        assert!(self.cp_next < 256, "procedure exceeds 256 CP registers");
        let r = Cp(self.cp_next as u8);
        self.cp_next += 1;
        r
    }

    /// Create an unbound label for forward references.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Bind `label` to the next emitted instruction.
    pub fn bind(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.code.len() as u32);
    }

    /// The label of the abort handler entry (usable from any section).
    pub fn abort_label(&self) -> Label {
        self.abort_label
    }

    fn emit(&mut self, inst: Inst) -> &mut Self {
        self.code.push(inst);
        self
    }

    // ----- CPU instructions -----

    /// Emit an ALU instruction (`rd = rd op rs`; MOV: `rd = rs`).
    pub fn alu(&mut self, op: AluOp, rd: Gp, rs: Operand) -> &mut Self {
        self.emit(Inst::Alu { op, rd, rs })
    }

    /// `rd = rs`.
    pub fn mov(&mut self, rd: Gp, rs: Operand) -> &mut Self {
        self.alu(AluOp::Mov, rd, rs)
    }

    /// `rd += rs`.
    pub fn add(&mut self, rd: Gp, rs: Operand) -> &mut Self {
        self.alu(AluOp::Add, rd, rs)
    }

    /// Compare and set flags.
    pub fn cmp(&mut self, ra: Gp, rb: Operand) -> &mut Self {
        self.emit(Inst::Cmp { ra, rb })
    }

    /// `rd = mem64[base + off]`.
    pub fn load(&mut self, rd: Gp, base: MemBase, off: Operand) -> &mut Self {
        self.emit(Inst::Load { rd, base, off })
    }

    /// `mem64[base + off] = rs`.
    pub fn store(&mut self, rs: Gp, base: MemBase, off: Operand) -> &mut Self {
        self.emit(Inst::Store { rs, base, off })
    }

    /// Unconditional jump to `label`.
    pub fn jmp(&mut self, label: Label) -> &mut Self {
        self.fixups.push((self.code.len(), label));
        self.emit(Inst::Jmp { target: u32::MAX })
    }

    /// Conditional branch to `label`.
    pub fn br(&mut self, cond: Cond, label: Label) -> &mut Self {
        self.fixups.push((self.code.len(), label));
        self.emit(Inst::Br {
            cond,
            target: u32::MAX,
        })
    }

    /// Collect the result of a DB instruction from `cp` into `rd`.
    pub fn ret(&mut self, rd: Gp, cp: Cp) -> &mut Self {
        self.emit(Inst::Ret { rd, cp })
    }

    /// Read the transaction's begin timestamp into `rd`.
    pub fn getts(&mut self, rd: Gp) -> &mut Self {
        self.emit(Inst::GetTs { rd })
    }

    /// End the transaction-logic phase.
    pub fn yield_(&mut self) -> &mut Self {
        self.emit(Inst::Yield)
    }

    /// Finalize as committed.
    pub fn commit(&mut self) -> &mut Self {
        self.emit(Inst::Commit)
    }

    /// Finalize as aborted (or, in the logic section, request an abort).
    pub fn abort(&mut self) -> &mut Self {
        self.emit(Inst::Abort)
    }

    // ----- DB instructions -----

    /// Emit SEARCH. `key_off` is a user-area-relative offset.
    pub fn search(&mut self, table: TableId, key_off: Operand, home: Operand, cp: Cp) -> &mut Self {
        self.emit(Inst::Search {
            table,
            key_off,
            home,
            cp,
        })
    }

    /// Emit INSERT.
    pub fn insert(
        &mut self,
        table: TableId,
        key_off: Operand,
        payload_off: Operand,
        home: Operand,
        cp: Cp,
    ) -> &mut Self {
        self.emit(Inst::Insert {
            table,
            key_off,
            payload_off,
            home,
            cp,
        })
    }

    /// Emit SCAN.
    pub fn scan(
        &mut self,
        table: TableId,
        key_off: Operand,
        count: Operand,
        out_off: Operand,
        home: Operand,
        cp: Cp,
    ) -> &mut Self {
        self.emit(Inst::Scan {
            table,
            key_off,
            count,
            out_off,
            home,
            cp,
        })
    }

    /// Emit UPDATE.
    pub fn update(&mut self, table: TableId, key_off: Operand, home: Operand, cp: Cp) -> &mut Self {
        self.emit(Inst::Update {
            table,
            key_off,
            home,
            cp,
        })
    }

    /// Emit REMOVE.
    pub fn remove(&mut self, table: TableId, key_off: Operand, home: Operand, cp: Cp) -> &mut Self {
        self.emit(Inst::Remove {
            table,
            key_off,
            home,
            cp,
        })
    }

    // ----- sections -----

    /// Begin the commit handler. Implicitly appends the `YIELD` phase
    /// delimiter if the logic section did not end with one.
    pub fn begin_commit(&mut self) -> &mut Self {
        assert_eq!(
            self.section,
            Section::Logic,
            "commit section already started"
        );
        if !matches!(self.code.last(), Some(Inst::Yield)) {
            self.yield_();
        }
        self.section = Section::Commit;
        self.commit_entry = Some(self.code.len() as u32);
        self
    }

    /// Begin the abort handler (must follow the commit section).
    pub fn begin_abort(&mut self) -> &mut Self {
        assert_eq!(
            self.section,
            Section::Commit,
            "abort section must follow commit"
        );
        self.section = Section::Abort;
        self.abort_entry = Some(self.code.len() as u32);
        let lbl = self.abort_label;
        self.bind(lbl);
        self
    }

    /// Convenience: `RET rd, cp; CMP rd, 0; BLT abort` — collect a DB result
    /// and jump to the abort handler on any error. Returns the GP register
    /// holding the (known non-negative) result.
    pub fn ret_checked(&mut self, cp: Cp) -> Gp {
        let rd = self.gp();
        let abort = self.abort_label;
        self.ret(rd, cp)
            .cmp(rd, Operand::Imm(0))
            .br(Cond::Lt, abort);
        rd
    }

    /// Finish the procedure: default handlers are synthesized when absent
    /// (commit handler = `COMMIT`, abort handler = `ABORT`), labels are
    /// resolved, and the result validated.
    pub fn build(mut self) -> Result<Procedure, ProcError> {
        if self.commit_entry.is_none() {
            self.begin_commit();
            self.commit();
        }
        if self.abort_entry.is_none() {
            // The commit section must not fall through into the abort
            // handler; validated procedures always end each section with a
            // terminator, but guard anyway.
            match self.code.last() {
                Some(Inst::Commit | Inst::Abort | Inst::Jmp { .. }) => {}
                _ => {
                    self.commit();
                }
            }
            self.begin_abort();
            self.abort();
        }
        for (at, label) in std::mem::take(&mut self.fixups) {
            let target = self.labels[label.0]
                .unwrap_or_else(|| panic!("label {} used but never bound", label.0));
            match &mut self.code[at] {
                Inst::Jmp { target: t } | Inst::Br { target: t, .. } => *t = target,
                other => unreachable!("fixup on non-branch {other:?}"),
            }
        }
        let proc = Procedure {
            name: self.name,
            code: self.code,
            commit_entry: self.commit_entry.expect("commit entry set above"),
            abort_entry: self.abort_entry.expect("abort entry set above"),
            gp_count: self.gp_next,
            cp_count: self.cp_next,
        };
        proc.validate()?;
        Ok(proc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_minimal_read_proc() {
        let mut b = ProcBuilder::new("read1");
        let c0 = b.cp();
        b.search(TableId(0), Operand::Imm(0), Operand::Imm(0), c0);
        b.begin_commit();
        b.ret_checked(c0);
        b.commit();
        b.begin_abort();
        b.abort();
        let p = b.build().unwrap();
        assert_eq!(p.cp_count, 1);
        assert!(p.gp_count >= 1);
        assert!(p.commit_entry > 0);
        assert!(p.abort_entry > p.commit_entry);
        // The yield delimiter was auto-inserted.
        assert_eq!(p.code[(p.commit_entry - 1) as usize], Inst::Yield);
    }

    #[test]
    fn default_handlers_synthesized() {
        let p = ProcBuilder::new("noop").build().unwrap();
        assert_eq!(p.code[p.commit_entry as usize], Inst::Commit);
        assert_eq!(p.code[p.abort_entry as usize], Inst::Abort);
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let mut b = ProcBuilder::new("loop");
        let g = b.gp();
        let top = b.label();
        let out = b.label();
        b.bind(top);
        b.add(g, Operand::Imm(1));
        b.cmp(g, Operand::Imm(3));
        b.br(Cond::Lt, top);
        b.jmp(out);
        b.bind(out);
        let p = b.build().unwrap();
        match p.code[2] {
            Inst::Br { target, .. } => assert_eq!(target, 0),
            ref other => panic!("expected Br, got {other:?}"),
        }
        match p.code[3] {
            Inst::Jmp { target } => assert_eq!(target, 4),
            ref other => panic!("expected Jmp, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "never bound")]
    fn unbound_label_panics_at_build() {
        let mut b = ProcBuilder::new("bad");
        let l = b.label();
        b.jmp(l);
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut b = ProcBuilder::new("bad");
        let l = b.label();
        b.bind(l);
        b.bind(l);
    }
}
