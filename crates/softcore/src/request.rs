//! DB requests: the messages the softcore dispatches to index coprocessors.
//!
//! When the softcore decodes a DB instruction it resolves the operands
//! (Prepare step of paper Fig. 4), packages them with the transaction's
//! hardware timestamp, and forwards the request asynchronously — either to
//! the local index coprocessor or, for a remote home partition, through the
//! on-chip communication channels (paper §4.6). Request packets are
//! piggybacked with the transaction timestamp for concurrency control and
//! source/destination worker IDs for routing.

use crate::catalogue::TableId;

/// Identifies a partition / partition worker (one worker per partition).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PartitionId(pub u16);

/// Identifies the CP register slot (at the *initiating* worker) that will
/// receive the result: the worker id plus the globally renamed CP index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CpSlot {
    /// The initiating worker.
    pub worker: PartitionId,
    /// Renamed (batch-global) CP register index at that worker.
    pub index: u16,
}

/// How the softcore groups read-set probes for the coprocessor's batched
/// level-wise traversal engine (DESIGN.md §16).
///
/// Off (the default) is bit-inert: no request carries a batch group, the
/// coprocessor never constructs the batch engine, and every golden gate
/// stays byte-identical. The other two modes tag Search/Update/Remove
/// requests with a nonzero `batch_group`; requests sharing a group id are
/// traversed together, one wave of DRAM reads per index level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchMode {
    /// No batching (bit-inert default).
    #[default]
    Off,
    /// Group probes issued by the same transaction (same begin-ts).
    TxnLocal,
    /// Group probes across co-resident transactions of one softcore batch.
    CrossTxn,
}

/// The index operation requested (paper Table 2's DB instructions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DbOp {
    /// Insert a new tuple.
    Insert,
    /// Point lookup (read visibility check; bumps the tuple read timestamp).
    Search,
    /// Range scan (skiplist tables only).
    Scan,
    /// Locate for update (write visibility check; marks the tuple dirty).
    Update,
    /// Mark removed (dirty + tombstone).
    Remove,
}

/// A fully resolved DB request travelling to an index coprocessor.
///
/// Note that the request carries the *address* of the key in the
/// transaction block, not the key itself: the pipeline's KeyFetch stage
/// reads the key bytes from DRAM (paper §4.4.1), which is why even a
/// lone index operation observes one memory round trip before hashing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DbRequest {
    /// Operation kind.
    pub op: DbOp,
    /// Target table.
    pub table: TableId,
    /// DRAM address of the key bytes (inside the transaction block).
    pub key_addr: u64,
    /// DRAM address of the payload bytes (inserts only).
    pub payload_addr: u64,
    /// Maximum tuples to collect (scans only).
    pub scan_count: u32,
    /// DRAM address of the scan result buffer (scans only).
    pub out_addr: u64,
    /// Transaction begin timestamp (hardware clock; paper §4.7).
    pub ts: u64,
    /// Where the result must be written back.
    pub cp: CpSlot,
    /// Home partition that owns the accessed key.
    pub home: PartitionId,
    /// Batch-traversal group id; 0 = unbatched (see [`BatchMode`]).
    /// Nonzero ids always have the top bit set, so they can never collide
    /// with the unbatched sentinel.
    pub batch_group: u64,
}

impl DbRequest {
    /// True when the request must travel over the on-chip channels.
    pub fn is_remote(&self) -> bool {
        self.home != self.cp.worker
    }
}

/// A completed DB result heading back to the initiator's CP register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DbResponse {
    /// Destination CP slot at the initiating worker.
    pub cp: CpSlot,
    /// Encoded result (see [`crate::result::DbResult`]).
    pub value: i64,
}

use bionicdb_fpga::wire::{Reader, Wire};

impl Wire for PartitionId {
    fn put(&self, out: &mut Vec<u8>) {
        self.0.put(out);
    }
    fn get(r: &mut Reader<'_>) -> Self {
        PartitionId(r.get())
    }
}

impl Wire for CpSlot {
    fn put(&self, out: &mut Vec<u8>) {
        self.worker.put(out);
        self.index.put(out);
    }
    fn get(r: &mut Reader<'_>) -> Self {
        CpSlot {
            worker: r.get(),
            index: r.get(),
        }
    }
}

impl Wire for DbOp {
    fn put(&self, out: &mut Vec<u8>) {
        let tag: u8 = match self {
            DbOp::Insert => 0,
            DbOp::Search => 1,
            DbOp::Scan => 2,
            DbOp::Update => 3,
            DbOp::Remove => 4,
        };
        tag.put(out);
    }
    fn get(r: &mut Reader<'_>) -> Self {
        match u8::get(r) {
            0 => DbOp::Insert,
            1 => DbOp::Search,
            2 => DbOp::Scan,
            3 => DbOp::Update,
            4 => DbOp::Remove,
            t => panic!("bad DbOp tag {t}"),
        }
    }
}

impl Wire for DbRequest {
    fn put(&self, out: &mut Vec<u8>) {
        self.op.put(out);
        self.table.0.put(out);
        self.key_addr.put(out);
        self.payload_addr.put(out);
        self.scan_count.put(out);
        self.out_addr.put(out);
        self.ts.put(out);
        self.cp.put(out);
        self.home.put(out);
        self.batch_group.put(out);
    }
    fn get(r: &mut Reader<'_>) -> Self {
        DbRequest {
            op: r.get(),
            table: TableId(r.get()),
            key_addr: r.get(),
            payload_addr: r.get(),
            scan_count: r.get(),
            out_addr: r.get(),
            ts: r.get(),
            cp: r.get(),
            home: r.get(),
            batch_group: r.get(),
        }
    }
}

impl Wire for DbResponse {
    fn put(&self, out: &mut Vec<u8>) {
        self.cp.put(out);
        self.value.put(out);
    }
    fn get(r: &mut Reader<'_>) -> Self {
        DbResponse {
            cp: r.get(),
            value: r.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remoteness_is_derived_from_home_vs_origin() {
        let mk = |home, origin| DbRequest {
            op: DbOp::Search,
            table: TableId(0),
            key_addr: 0,
            payload_addr: 0,
            scan_count: 0,
            out_addr: 0,
            ts: 1,
            cp: CpSlot {
                worker: PartitionId(origin),
                index: 0,
            },
            home: PartitionId(home),
            batch_group: 0,
        };
        assert!(!mk(3, 3).is_remote());
        assert!(mk(2, 3).is_remote());
    }

    #[test]
    fn batch_mode_defaults_off() {
        assert_eq!(BatchMode::default(), BatchMode::Off);
    }
}
