//! Index keys.
//!
//! Both BionicDB indexes support variable-length keys (paper §4.4). The
//! hardware bounds key length by the width of the key datapath; we model a
//! 32-byte datapath. Keys compare as byte strings, so integer keys are
//! stored big-endian to make lexicographic order equal numeric order (this
//! is what the skiplist's range scans rely on).

/// Maximum key length supported by the index datapath, in bytes.
pub const MAX_KEY_LEN: usize = 32;

/// A variable-length index key (≤ [`MAX_KEY_LEN`] bytes), stored inline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IndexKey {
    len: u8,
    bytes: [u8; MAX_KEY_LEN],
}

impl IndexKey {
    /// Build a key from raw bytes.
    ///
    /// # Panics
    /// Panics if `bytes` is empty or longer than [`MAX_KEY_LEN`].
    pub fn from_bytes(bytes: &[u8]) -> Self {
        assert!(
            !bytes.is_empty() && bytes.len() <= MAX_KEY_LEN,
            "key length must be 1..={MAX_KEY_LEN}"
        );
        let mut buf = [0u8; MAX_KEY_LEN];
        buf[..bytes.len()].copy_from_slice(bytes);
        IndexKey {
            len: bytes.len() as u8,
            bytes: buf,
        }
    }

    /// Build an 8-byte big-endian key from an integer (numeric order ==
    /// lexicographic order).
    pub fn from_u64(v: u64) -> Self {
        IndexKey::from_bytes(&v.to_be_bytes())
    }

    /// Build a 16-byte composite key from two integers (e.g. TPC-C
    /// (warehouse, district) prefixes), ordered lexicographically.
    pub fn from_u64_pair(hi: u64, lo: u64) -> Self {
        let mut b = [0u8; 16];
        b[..8].copy_from_slice(&hi.to_be_bytes());
        b[8..].copy_from_slice(&lo.to_be_bytes());
        IndexKey::from_bytes(&b)
    }

    /// The key bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes[..self.len as usize]
    }

    /// Key length in bytes.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Always false: keys are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Decode an 8-byte big-endian key back to the integer.
    pub fn to_u64(&self) -> u64 {
        assert_eq!(self.len, 8, "key is not an 8-byte integer key");
        u64::from_be_bytes(self.bytes[..8].try_into().expect("8 bytes"))
    }
}

impl Ord for IndexKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_bytes().cmp(other.as_bytes())
    }
}

impl PartialOrd for IndexKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip_and_order() {
        let a = IndexKey::from_u64(5);
        let b = IndexKey::from_u64(1000);
        assert!(a < b, "big-endian keys preserve numeric order");
        assert_eq!(b.to_u64(), 1000);
    }

    #[test]
    fn pair_keys_order_by_hi_then_lo() {
        let a = IndexKey::from_u64_pair(1, 999);
        let b = IndexKey::from_u64_pair(2, 0);
        let c = IndexKey::from_u64_pair(2, 1);
        assert!(a < b && b < c);
    }

    #[test]
    fn variable_length_keys_compare_lexicographically() {
        let short = IndexKey::from_bytes(b"abc");
        let long = IndexKey::from_bytes(b"abcd");
        assert!(short < long);
        assert_eq!(short.as_bytes(), b"abc");
        assert_eq!(short.len(), 3);
    }

    #[test]
    #[should_panic(expected = "key length")]
    fn oversized_key_panics() {
        let _ = IndexKey::from_bytes(&[0u8; 33]);
    }
}
