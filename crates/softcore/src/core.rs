//! The softcore execution engine (paper §4.3 and §4.5).
//!
//! The softcore executes stored procedures. CPU instructions run in five
//! non-pipelined steps (a fixed cycle cost per instruction); LOAD/STORE
//! additionally touch FPGA-side DRAM through the softcore's memory port; DB
//! instructions are *dispatched asynchronously* after a short
//! Prepare+Dispatch sequence and their results arrive later in CP registers.
//!
//! # Two-phase batch execution with transaction interleaving (paper §4.5)
//!
//! Whenever a transaction block arrives, the softcore checks the catalogue
//! for the procedure's register footprint and, if enough GP/CP registers
//! remain, the transaction **joins the current batch** with an exclusive,
//! renamed register range and starts executing immediately. At the end of
//! its transaction logic (the `YIELD` delimiter) the softcore saves the
//! context in the BRAM context table (10 cycles) and moves on — *without*
//! waiting for outstanding DB instructions, which is what overlaps index
//! operations across transactions.
//!
//! When register allocation fails (or input runs dry), the batch closes:
//! the softcore returns to the first transaction, restores its context with
//! the program counter at the commit handler, and executes the
//! commit/abort handlers of every transaction in serial order.
//!
//! In [`ExecMode::Serial`] every batch holds exactly one transaction —
//! the baseline the paper compares against in Fig. 12.

use bionicdb_fpga::{
    AbortReasons, Dram, Fifo, LatencyHistogram, MemData, MemKind, MemRequest, Tag, TxnEvent,
};

use crate::catalogue::{Catalogue, ProcId};
use crate::isa::{AluOp, Cond, Inst, MemBase, Operand};
use crate::request::{BatchMode, CpSlot, DbOp, DbRequest, PartitionId};
use crate::result::{DbResult, DbStatus};
use crate::txnblock::{BLOCK_HEADER_SIZE, COMMIT_TS_OFFSET, STATUS_OFFSET};

/// Cycle timestamp alias.
type Cycle = u64;

/// Memory-request tag for LOAD instructions.
const TAG_LOAD: Tag = Tag(0);
/// Memory-request tag for posted STOREs.
const TAG_STORE: Tag = Tag(1);
/// Memory-request tag for transaction-block header fetches.
const TAG_HEADER: Tag = Tag(2);

/// Whether the softcore interleaves transactions within a batch
/// (paper §4.5) or executes them one at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Two-phase batch execution with transaction interleaving.
    Interleaved,
    /// Serial execution: logic + commit of each transaction before the next
    /// one starts (the baseline of paper Fig. 12).
    Serial,
}

/// Tunable parameters of one softcore instance, extracted from
/// [`bionicdb_fpga::FpgaConfig`] by the caller.
#[derive(Debug, Clone, Copy)]
pub struct SoftcoreParams {
    /// Cycles per CPU instruction (5-step execution).
    pub cpu_inst_cycles: Cycle,
    /// Cycles for Prepare+Dispatch of a DB instruction.
    pub db_dispatch_cycles: Cycle,
    /// Cycles per context save/restore pair.
    pub context_switch: Cycle,
    /// Total GP (= CP) registers available for batch allocation.
    pub num_registers: usize,
    /// Maximum contexts in the BRAM context table (bounds batch size).
    pub max_batch: usize,
    /// Interleaved or serial execution.
    pub mode: ExecMode,
    /// How read-set probes are grouped for the coprocessor's batched
    /// level-wise traversal engine (DESIGN.md §16). `Off` is bit-inert.
    pub batch_mode: BatchMode,
}

impl SoftcoreParams {
    /// Derive softcore parameters from the fabric configuration.
    pub fn from_fpga(cfg: &bionicdb_fpga::FpgaConfig, mode: ExecMode) -> Self {
        SoftcoreParams {
            cpu_inst_cycles: cfg.cpu_inst_cycles,
            db_dispatch_cycles: cfg.db_dispatch_cycles,
            context_switch: cfg.context_switch,
            num_registers: cfg.num_registers,
            max_batch: 64,
            mode,
            batch_mode: BatchMode::Off,
        }
    }
}

/// Why a transaction context finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CtxOutcome {
    Committed,
    Aborted,
}

/// Saved state of one in-batch transaction (the BRAM context table entry:
/// program counter, transaction-block base address and register ranges —
/// paper §4.5).
#[derive(Debug)]
struct Context {
    proc: ProcId,
    block_addr: u64,
    pc: u32,
    gp_base: u16,
    cp_base: u16,
    ts: u64,
    /// Set when the logic phase requested an abort (exception or voluntary).
    failed: bool,
    outcome: Option<CtxOutcome>,
    /// Lifecycle timestamps (host-side observability; never read by the
    /// execution path): submission to the input queue, logic phase start
    /// (ingest) and end (YIELD/exception), commit handler start.
    submitted_at: Cycle,
    logic_start: Cycle,
    logic_end: Cycle,
    commit_start: Cycle,
    /// The last DB error this transaction collected through a RET — the
    /// abort reason attributed if the transaction ends up aborting.
    last_err: Option<DbStatus>,
}

/// What the core is doing this cycle.
#[derive(Debug)]
enum CoreState {
    /// Nothing runnable.
    Idle,
    /// Waiting for the transaction-block header read to come back.
    FetchHeader {
        addr: u64,
        issued: bool,
        submitted_at: Cycle,
    },
    /// Charging the fixed cost of the current instruction.
    Exec { remaining: Cycle },
    /// LOAD issued; waiting for the DRAM response.
    WaitLoad {
        rd_global: usize,
        issued: bool,
        addr: u64,
    },
    /// STORE not yet accepted by DRAM (controller busy).
    WaitStore { addr: u64, value: u64 },
    /// RET waiting for CP register `idx` (global index) to become valid.
    WaitCp { idx: usize },
    /// DB dispatch stalled on a full request channel.
    DispatchStall,
    /// Context switch in progress.
    Switching { remaining: Cycle, then: AfterSwitch },
    /// Batch finished commit phase; waiting for stray outstanding results
    /// before the register file is recycled.
    BatchDrain,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AfterSwitch {
    /// Go look for new input (logic phase, after a yield).
    Ingest,
    /// Start executing the current context at its saved PC.
    Resume,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Logic,
    Commit,
}

/// Execution statistics for one softcore.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SoftcoreStats {
    /// CPU instructions executed.
    pub cpu_insts: u64,
    /// DB instructions dispatched.
    pub db_insts: u64,
    /// Transactions committed.
    pub committed: u64,
    /// Transactions aborted.
    pub aborted: u64,
    /// Batches completed.
    pub batches: u64,
    /// Context switches performed.
    pub switches: u64,
    /// Cycles stalled waiting for CP results.
    pub cp_stall_cycles: u64,
    /// Cycles stalled on memory (loads, stores, header fetches).
    pub mem_stall_cycles: u64,
}

/// Host-side observability counters for one softcore: per-phase latency
/// histograms, the per-DB-op round trip, and abort attribution. Collected
/// unconditionally — recording is simulation-passive (no DRAM, FIFO, or
/// timing state is touched), so strict and fast-forward runs produce
/// identical values whether or not anyone reads them.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SoftcoreObs {
    /// Submission → logic start (input-queue wait).
    pub queue_wait: LatencyHistogram,
    /// Logic start → YIELD/exception (the transaction logic phase).
    pub logic: LatencyHistogram,
    /// Logic end → commit handler start (batch interleaving wait).
    pub commit_wait: LatencyHistogram,
    /// Commit handler start → COMMIT/ABORT retirement.
    pub commit: LatencyHistogram,
    /// Submission → retirement, committed transactions only.
    pub txn_commit: LatencyHistogram,
    /// Submission → retirement, aborted transactions only.
    pub txn_abort: LatencyHistogram,
    /// DB instruction dispatch → CP writeback round trip.
    pub db_op: LatencyHistogram,
    /// Why transactions aborted (the last DB error each one observed).
    pub abort_reasons: AbortReasons,
}

impl bionicdb_fpga::wire::Wire for SoftcoreStats {
    fn put(&self, out: &mut Vec<u8>) {
        for v in [
            self.cpu_insts,
            self.db_insts,
            self.committed,
            self.aborted,
            self.batches,
            self.switches,
            self.cp_stall_cycles,
            self.mem_stall_cycles,
        ] {
            v.put(out);
        }
    }
    fn get(r: &mut bionicdb_fpga::wire::Reader<'_>) -> Self {
        SoftcoreStats {
            cpu_insts: r.get(),
            db_insts: r.get(),
            committed: r.get(),
            aborted: r.get(),
            batches: r.get(),
            switches: r.get(),
            cp_stall_cycles: r.get(),
            mem_stall_cycles: r.get(),
        }
    }
}

impl bionicdb_fpga::wire::Wire for SoftcoreObs {
    fn put(&self, out: &mut Vec<u8>) {
        self.queue_wait.put(out);
        self.logic.put(out);
        self.commit_wait.put(out);
        self.commit.put(out);
        self.txn_commit.put(out);
        self.txn_abort.put(out);
        self.db_op.put(out);
        self.abort_reasons.put(out);
    }
    fn get(r: &mut bionicdb_fpga::wire::Reader<'_>) -> Self {
        SoftcoreObs {
            queue_wait: r.get(),
            logic: r.get(),
            commit_wait: r.get(),
            commit: r.get(),
            txn_commit: r.get(),
            txn_abort: r.get(),
            db_op: r.get(),
            abort_reasons: r.get(),
        }
    }
}

impl SoftcoreObs {
    /// Fold `other`'s counters into `self` (exact; see
    /// [`LatencyHistogram::merge`]).
    pub fn merge(&mut self, other: &SoftcoreObs) {
        self.queue_wait.merge(&other.queue_wait);
        self.logic.merge(&other.logic);
        self.commit_wait.merge(&other.commit_wait);
        self.commit.merge(&other.commit);
        self.txn_commit.merge(&other.txn_commit);
        self.txn_abort.merge(&other.txn_abort);
        self.db_op.merge(&other.db_op);
        self.abort_reasons.merge(&other.abort_reasons);
    }
}

/// The softcore of one partition worker.
pub struct Softcore {
    worker: PartitionId,
    params: SoftcoreParams,
    port: bionicdb_fpga::PortId,

    gp: Vec<u64>,
    cp: Vec<Option<i64>>,
    flags: std::cmp::Ordering,

    /// Input queue entries: `(block_addr, submission cycle)`.
    input: std::collections::VecDeque<(u64, Cycle)>,
    pending_block: Option<(u64, Cycle)>,
    /// Input-queue prefetch unit: header read in flight for the block at
    /// the front of the input queue.
    prefetch_inflight: Option<u64>,
    /// A prefetched `(block_addr, proc_id)` ready for ingest.
    prefetched: Option<(u64, u64)>,

    contexts: Vec<Context>,
    cur: usize,
    phase: Phase,
    gp_next: u16,
    cp_next: u16,
    state: CoreState,
    outstanding: u32,

    stats: SoftcoreStats,
    obs: SoftcoreObs,
    /// Dispatch cycle of the DB instruction whose result will land in each
    /// (batch-global) CP register — for the `db_op` round-trip histogram.
    cp_issued_at: Vec<Cycle>,
    /// When set (a real [`bionicdb_fpga::TraceSink`] is installed on the
    /// machine), retired transactions buffer a [`TxnEvent`]. Off by
    /// default; the buffer is the *only* state that differs with tracing
    /// on/off, and nothing in the execution path reads it.
    tracing: bool,
    trace: Vec<TxnEvent>,
}

impl Softcore {
    /// Create a softcore for `worker`, registering its memory port on `dram`.
    pub fn new(worker: PartitionId, params: SoftcoreParams, dram: &mut Dram) -> Self {
        let n = params.num_registers;
        Softcore {
            worker,
            params,
            port: dram.register_port(),
            gp: vec![0; n],
            cp: vec![None; n],
            flags: std::cmp::Ordering::Equal,
            input: std::collections::VecDeque::new(),
            pending_block: None,
            prefetch_inflight: None,
            prefetched: None,
            contexts: Vec::new(),
            cur: 0,
            phase: Phase::Logic,
            gp_next: 0,
            cp_next: 0,
            state: CoreState::Idle,
            outstanding: 0,
            stats: SoftcoreStats::default(),
            obs: SoftcoreObs::default(),
            cp_issued_at: vec![0; n],
            tracing: false,
            trace: Vec::new(),
        }
    }

    /// Submit a transaction block (by DRAM address) to the input queue.
    /// Models the host filling the worker's input queue (paper §5.1).
    /// Queue-wait latency is measured from cycle 0; callers that know the
    /// submission cycle should use [`Softcore::submit_at`].
    pub fn submit(&mut self, block_addr: u64) {
        self.input.push_back((block_addr, 0));
    }

    /// Submit a transaction block at cycle `now`, stamping the submission
    /// time for the queue-wait histogram.
    pub fn submit_at(&mut self, block_addr: u64, now: Cycle) {
        self.input.push_back((block_addr, now));
    }

    /// Number of blocks waiting in the input queue.
    pub fn input_len(&self) -> usize {
        self.input.len()
    }

    /// True when all submitted work has fully completed.
    pub fn is_quiescent(&self) -> bool {
        self.input.is_empty()
            && self.pending_block.is_none()
            && self.contexts.is_empty()
            && self.outstanding == 0
            && matches!(self.state, CoreState::Idle)
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> SoftcoreStats {
        self.stats
    }

    /// Observability counters (latency histograms, abort attribution).
    pub fn obs(&self) -> &SoftcoreObs {
        &self.obs
    }

    /// Enable or disable [`TxnEvent`] buffering for an installed trace
    /// sink. Buffering is host-side only; toggling it never changes
    /// simulation behaviour.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    /// Drain the buffered trace events (empty unless tracing is enabled).
    pub fn drain_trace(&mut self) -> Vec<TxnEvent> {
        std::mem::take(&mut self.trace)
    }

    /// Deliver a DB result into (batch-global) CP register `index` at cycle
    /// `now`. Called by the worker glue when the index coprocessor or the
    /// on-chip response channel writes back.
    pub fn deliver_cp(&mut self, now: Cycle, index: u16, value: i64) {
        self.obs
            .db_op
            .record(now.saturating_sub(self.cp_issued_at[index as usize]));
        let slot = &mut self.cp[index as usize];
        assert!(
            slot.is_none(),
            "CP register {index} written twice in one batch"
        );
        *slot = Some(value);
        assert!(
            self.outstanding > 0,
            "CP writeback without outstanding request"
        );
        self.outstanding -= 1;
    }

    /// The worker this softcore belongs to.
    pub fn worker(&self) -> PartitionId {
        self.worker
    }

    fn gp_read(&self, ctx: &Context, r: crate::isa::Gp) -> u64 {
        self.gp[ctx.gp_base as usize + r.0 as usize]
    }

    fn gp_write(&mut self, gp_base: u16, r: crate::isa::Gp, v: u64) {
        self.gp[gp_base as usize + r.0 as usize] = v;
    }

    fn operand(&self, ctx: &Context, op: Operand) -> u64 {
        match op {
            Operand::Reg(r) => self.gp_read(ctx, r),
            Operand::Imm(v) => v as u64,
        }
    }

    fn mem_addr(&self, ctx: &Context, base: MemBase, off: Operand) -> u64 {
        let base_addr = match base {
            MemBase::Block => ctx.block_addr + BLOCK_HEADER_SIZE,
            MemBase::Reg(r) => self.gp_read(ctx, r),
        };
        base_addr.wrapping_add(self.operand(ctx, off))
    }

    fn resolve_home(&self, ctx: &Context, home: Operand) -> PartitionId {
        let v = self.operand(ctx, home) as i64;
        if v < 0 {
            self.worker
        } else {
            PartitionId(v as u16)
        }
    }

    /// The input-queue prefetch unit: a small FSM beside the softcore that
    /// reads the next transaction block's header (its procedure id) while
    /// the core is busy, hiding the DRAM round trip that would otherwise
    /// serialize every ingest. It never races the core's own reads — the
    /// distinct request tag routes its response.
    fn try_prefetch(&mut self, now: Cycle, dram: &mut Dram) {
        if self.prefetch_inflight.is_some() || self.prefetched.is_some() {
            return;
        }
        if self.phase != Phase::Logic || self.pending_block.is_some() {
            return;
        }
        let Some(&(addr, _)) = self.input.front() else {
            return;
        };
        let req = MemRequest {
            addr,
            kind: MemKind::Read { len: 8 },
            tag: TAG_HEADER,
        };
        if dram.issue(now, self.port, req).is_ok() {
            self.prefetch_inflight = Some(addr);
        }
    }

    /// One FPGA cycle. `db_out` is the worker's DB request channel; the
    /// glue routes each request to the local coprocessor or the NoC.
    pub fn tick(
        &mut self,
        now: Cycle,
        dram: &mut Dram,
        cat: &Catalogue,
        db_out: &mut Fifo<DbRequest>,
    ) {
        self.try_prefetch(now, dram);
        match std::mem::replace(&mut self.state, CoreState::Idle) {
            CoreState::Idle => self.do_idle(now, dram),
            CoreState::FetchHeader {
                addr,
                issued,
                submitted_at,
            } => self.do_fetch_header(now, dram, cat, addr, issued, submitted_at),
            CoreState::Exec { remaining } => {
                if remaining > 1 {
                    self.state = CoreState::Exec {
                        remaining: remaining - 1,
                    };
                } else {
                    self.execute_current(now, dram, cat, db_out);
                }
            }
            CoreState::WaitLoad {
                rd_global,
                issued,
                addr,
            } => {
                self.stats.mem_stall_cycles += 1;
                if !issued {
                    let ok = dram
                        .issue(
                            now,
                            self.port,
                            MemRequest {
                                addr,
                                kind: MemKind::Read { len: 8 },
                                tag: TAG_LOAD,
                            },
                        )
                        .is_ok();
                    self.state = CoreState::WaitLoad {
                        rd_global,
                        issued: ok,
                        addr,
                    };
                } else if let Some(data) = self.take_read(dram, TAG_LOAD, None) {
                    let v = u64::from_le_bytes(data.as_slice().try_into().expect("8-byte load"));
                    self.gp[rd_global] = v;
                    self.advance_pc(cat);
                } else {
                    self.state = CoreState::WaitLoad {
                        rd_global,
                        issued,
                        addr,
                    };
                }
            }
            CoreState::WaitStore { addr, value } => {
                self.stats.mem_stall_cycles += 1;
                let req = MemRequest {
                    addr,
                    kind: MemKind::Write {
                        data: value.to_le_bytes().to_vec(),
                    },
                    tag: TAG_STORE,
                };
                if dram.issue(now, self.port, req).is_ok() {
                    self.advance_pc(cat);
                } else {
                    self.state = CoreState::WaitStore { addr, value };
                }
            }
            CoreState::WaitCp { .. } => {
                self.stats.cp_stall_cycles += 1;
                // Re-execute the RET; it completes if the CP arrived.
                self.execute_current(now, dram, cat, db_out);
            }
            CoreState::DispatchStall => {
                // Retry the DB dispatch.
                self.execute_current(now, dram, cat, db_out);
            }
            CoreState::Switching { remaining, then } => {
                if remaining > 1 {
                    self.state = CoreState::Switching {
                        remaining: remaining - 1,
                        then,
                    };
                } else {
                    match then {
                        AfterSwitch::Ingest => self.do_idle(now, dram),
                        AfterSwitch::Resume => self.begin_inst(cat),
                    }
                }
            }
            CoreState::BatchDrain => {
                if self.outstanding == 0 {
                    self.finish_batch();
                    self.do_idle(now, dram);
                } else {
                    self.stats.cp_stall_cycles += 1;
                    self.state = CoreState::BatchDrain;
                }
            }
        }
        self.drain_store_acks(dram);
    }

    /// Pop delivered responses: discard posted-write acknowledgements,
    /// stash prefetched headers, and return the data of the read the core
    /// is waiting on (`expect` tag, at `want_addr` for header reads — the
    /// prefetch unit may have a header for a *different* block in flight
    /// at the same time).
    fn take_read(
        &mut self,
        dram: &mut Dram,
        expect: Tag,
        want_addr: Option<u64>,
    ) -> Option<MemData> {
        while let Some(resp) = dram.pop_response(self.port) {
            if resp.tag == TAG_STORE {
                continue; // posted-write acknowledgement
            }
            if resp.tag == TAG_HEADER {
                let awaited = expect == TAG_HEADER && want_addr == Some(resp.addr);
                if !awaited {
                    self.stash_prefetch(&resp);
                    continue;
                }
                if Some(resp.addr) == self.prefetch_inflight {
                    // The awaited header was the prefetch itself.
                    self.prefetch_inflight = None;
                }
                return Some(resp.data);
            }
            assert_eq!(
                resp.tag, expect,
                "unexpected read response on softcore port"
            );
            return Some(resp.data);
        }
        None
    }

    fn stash_prefetch(&mut self, resp: &bionicdb_fpga::MemResponse) {
        assert_eq!(
            Some(resp.addr),
            self.prefetch_inflight,
            "orphan header response"
        );
        let proc = u64::from_le_bytes(resp.data.as_slice().try_into().expect("8 bytes"));
        self.prefetched = Some((resp.addr, proc));
        self.prefetch_inflight = None;
    }

    /// Discard any delivered posted-write acknowledgements and stash
    /// prefetched headers delivered while the core was not waiting on a
    /// read.
    fn drain_store_acks(&mut self, dram: &mut Dram) {
        let waiting_on_read = matches!(
            self.state,
            CoreState::WaitLoad { .. } | CoreState::FetchHeader { .. }
        );
        if waiting_on_read {
            return; // do not consume the pending read response
        }
        while let Some(resp) = dram.pop_response(self.port) {
            if resp.tag == TAG_HEADER {
                self.stash_prefetch(&resp);
                continue;
            }
            assert_eq!(resp.tag, TAG_STORE, "orphan read response on softcore port");
        }
    }

    fn do_idle(&mut self, now: Cycle, dram: &mut Dram) {
        debug_assert_eq!(self.phase, Phase::Logic);
        // A prefetched header for the front of the input queue lets ingest
        // skip the DRAM round trip entirely.
        if self.pending_block.is_none() {
            if let Some((addr, proc)) = self.prefetched {
                if self.input.front().map(|&(a, _)| a) == Some(addr) {
                    let (_, sub) = self.input.pop_front().expect("front checked");
                    self.prefetched = None;
                    self.ingest(now, addr, proc, sub);
                    return;
                }
                // Stale (input changed); drop it.
                self.prefetched = None;
            }
        }
        let next_block = self.pending_block.take().or_else(|| self.input.pop_front());
        match next_block {
            Some((addr, sub)) => {
                // If the prefetch unit already has this header in flight,
                // just wait for it instead of issuing a duplicate read.
                let issued = if self.prefetch_inflight == Some(addr) {
                    true
                } else {
                    dram.issue(
                        now,
                        self.port,
                        MemRequest {
                            addr,
                            kind: MemKind::Read { len: 8 },
                            tag: TAG_HEADER,
                        },
                    )
                    .is_ok()
                };
                self.state = CoreState::FetchHeader {
                    addr,
                    issued,
                    submitted_at: sub,
                };
            }
            None if !self.contexts.is_empty() => self.close_batch(now),
            None => self.state = CoreState::Idle,
        }
    }

    fn do_fetch_header(
        &mut self,
        now: Cycle,
        dram: &mut Dram,
        cat: &Catalogue,
        addr: u64,
        issued: bool,
        sub: Cycle,
    ) {
        self.stats.mem_stall_cycles += 1;
        if !issued {
            let ok = dram
                .issue(
                    now,
                    self.port,
                    MemRequest {
                        addr,
                        kind: MemKind::Read { len: 8 },
                        tag: TAG_HEADER,
                    },
                )
                .is_ok();
            self.state = CoreState::FetchHeader {
                addr,
                issued: ok,
                submitted_at: sub,
            };
            return;
        }
        if self.prefetched.map(|(a, _)| a) == Some(addr) {
            // The prefetch completed while we were entering this state.
            let (_, proc) = self.prefetched.take().expect("checked");
            self.ingest_with_catalogue(now, addr, proc, cat, sub);
            return;
        }
        let Some(data) = self.take_read(dram, TAG_HEADER, Some(addr)) else {
            self.state = CoreState::FetchHeader {
                addr,
                issued,
                submitted_at: sub,
            };
            return;
        };
        let proc = u64::from_le_bytes(data.as_slice().try_into().expect("8 bytes"));
        self.ingest_with_catalogue(now, addr, proc, cat, sub);
    }

    /// Ingest a block whose header is known, without catalogue access (the
    /// prefetch fast path defers to the next tick, where the catalogue is
    /// available again).
    fn ingest(&mut self, _now: Cycle, addr: u64, proc: u64, sub: Cycle) {
        // The catalogue reference is not available here (do_idle is called
        // without it); park in FetchHeader with the header already decoded
        // so the next tick completes ingest with zero extra latency.
        self.prefetched = Some((addr, proc));
        self.state = CoreState::FetchHeader {
            addr,
            issued: true,
            submitted_at: sub,
        };
    }

    fn ingest_with_catalogue(
        &mut self,
        now: Cycle,
        addr: u64,
        proc_word: u64,
        cat: &Catalogue,
        sub: Cycle,
    ) {
        let proc_id = ProcId(proc_word as u32);
        let proc = cat
            .proc(proc_id)
            .unwrap_or_else(|| panic!("transaction block names unknown procedure {proc_id:?}"));
        let fits = (self.gp_next as usize + proc.gp_count as usize) <= self.params.num_registers
            && (self.cp_next as usize + proc.cp_count as usize) <= self.params.num_registers
            && self.contexts.len() < self.params.max_batch;
        if !fits {
            // Batch closure: the new transaction is scheduled after the
            // current batch commits (paper §4.5).
            self.pending_block = Some((addr, sub));
            self.close_batch(now);
            return;
        }
        let gp_base = self.gp_next;
        let cp_base = self.cp_next;
        self.gp_next += proc.gp_count;
        self.cp_next += proc.cp_count;
        for i in 0..proc.cp_count {
            self.cp[(cp_base + i) as usize] = None;
        }
        for i in 0..proc.gp_count {
            self.gp[(gp_base + i) as usize] = 0;
        }
        // Hardware timestamp: globally unique, monotonic (cycle, worker).
        let ts = (now << 10) | (self.worker.0 as u64 & 0x3ff);
        self.contexts.push(Context {
            proc: proc_id,
            block_addr: addr,
            pc: 0,
            gp_base,
            cp_base,
            ts,
            failed: false,
            outcome: None,
            submitted_at: sub,
            logic_start: now,
            logic_end: now,
            commit_start: now,
            last_err: None,
        });
        self.cur = self.contexts.len() - 1;
        self.begin_inst(cat);
    }

    fn close_batch(&mut self, now: Cycle) {
        debug_assert!(!self.contexts.is_empty());
        self.phase = Phase::Commit;
        self.begin_commit_for(now, 0);
    }

    fn begin_commit_for(&mut self, now: Cycle, idx: usize) {
        self.cur = idx;
        self.contexts[idx].commit_start = now;
        self.stats.switches += 1;
        self.state = CoreState::Switching {
            remaining: self.params.context_switch.max(1),
            then: AfterSwitch::Resume,
        };
        // PC is set lazily in begin_inst via phase; store sentinel now.
        self.contexts[idx].pc = u32::MAX; // patched in begin_inst
    }

    /// Start executing the instruction at the current context's PC.
    fn begin_inst(&mut self, cat: &Catalogue) {
        let ctx = &mut self.contexts[self.cur];
        let proc = cat.proc(ctx.proc).expect("validated at ingest");
        if ctx.pc == u32::MAX {
            ctx.pc = if ctx.failed {
                proc.abort_entry
            } else {
                proc.commit_entry
            };
        }
        let inst = proc.code[ctx.pc as usize];
        let cost = if inst.is_db() {
            self.params.db_dispatch_cycles
        } else {
            self.params.cpu_inst_cycles
        };
        self.state = CoreState::Exec {
            remaining: cost.max(1),
        };
    }

    /// Move to the next instruction after the current one completed.
    fn advance_pc(&mut self, cat: &Catalogue) {
        self.contexts[self.cur].pc += 1;
        self.begin_inst(cat);
    }

    fn jump_to(&mut self, cat: &Catalogue, target: u32) {
        self.contexts[self.cur].pc = target;
        self.begin_inst(cat);
    }

    /// Apply the effect of the current instruction (its fixed cost already
    /// charged) and set up the next state.
    fn execute_current(
        &mut self,
        now: Cycle,
        dram: &mut Dram,
        cat: &Catalogue,
        db_out: &mut Fifo<DbRequest>,
    ) {
        let ctx_idx = self.cur;
        let (proc_id, pc) = {
            let ctx = &self.contexts[ctx_idx];
            (ctx.proc, ctx.pc)
        };
        let proc = cat.proc(proc_id).expect("validated at ingest");
        let inst = proc.code[pc as usize];

        if inst.is_db() {
            self.dispatch_db(now, cat, inst, db_out);
            return;
        }
        self.stats.cpu_insts += 1;

        match inst {
            Inst::Alu { op, rd, rs } => {
                let ctx = &self.contexts[ctx_idx];
                let a = self.gp_read(ctx, rd);
                let b = self.operand(ctx, rs);
                let gp_base = ctx.gp_base;
                let v = match op {
                    AluOp::Add => a.wrapping_add(b),
                    AluOp::Sub => a.wrapping_sub(b),
                    AluOp::Mul => a.wrapping_mul(b),
                    AluOp::Div => {
                        if b == 0 {
                            // Exception: triggers the abort handler
                            // (paper §4.5 "any exception caught will
                            // trigger the abort handler").
                            self.raise_exception(now, cat);
                            return;
                        }
                        ((a as i64).wrapping_div(b as i64)) as u64
                    }
                    AluOp::Mov => b,
                };
                self.gp_write(gp_base, rd, v);
                self.advance_pc(cat);
            }
            Inst::Cmp { ra, rb } => {
                let ctx = &self.contexts[ctx_idx];
                let a = self.gp_read(ctx, ra) as i64;
                let b = self.operand(ctx, rb) as i64;
                self.flags = a.cmp(&b);
                self.advance_pc(cat);
            }
            Inst::Load { rd, base, off } => {
                let ctx = &self.contexts[ctx_idx];
                let addr = self.mem_addr(ctx, base, off);
                let rd_global = ctx.gp_base as usize + rd.0 as usize;
                let issued = dram
                    .issue(
                        now,
                        self.port,
                        MemRequest {
                            addr,
                            kind: MemKind::Read { len: 8 },
                            tag: TAG_LOAD,
                        },
                    )
                    .is_ok();
                self.state = CoreState::WaitLoad {
                    rd_global,
                    issued,
                    addr,
                };
            }
            Inst::Store { rs, base, off } => {
                let ctx = &self.contexts[ctx_idx];
                let addr = self.mem_addr(ctx, base, off);
                let value = self.gp_read(ctx, rs);
                let req = MemRequest {
                    addr,
                    kind: MemKind::Write {
                        data: value.to_le_bytes().to_vec(),
                    },
                    tag: TAG_STORE,
                };
                if dram.issue(now, self.port, req).is_ok() {
                    self.advance_pc(cat);
                } else {
                    self.state = CoreState::WaitStore { addr, value };
                }
            }
            Inst::Jmp { target } => self.jump_to(cat, target),
            Inst::Br { cond, target } => {
                let taken = match cond {
                    Cond::Eq => self.flags == std::cmp::Ordering::Equal,
                    Cond::Ne => self.flags != std::cmp::Ordering::Equal,
                    Cond::Le => self.flags != std::cmp::Ordering::Greater,
                    Cond::Lt => self.flags == std::cmp::Ordering::Less,
                    Cond::Gt => self.flags == std::cmp::Ordering::Greater,
                    Cond::Ge => self.flags != std::cmp::Ordering::Less,
                };
                if taken {
                    self.jump_to(cat, target);
                } else {
                    self.advance_pc(cat);
                }
            }
            Inst::GetTs { rd } => {
                let ctx = &self.contexts[ctx_idx];
                let (ts, gp_base) = (ctx.ts, ctx.gp_base);
                self.gp_write(gp_base, rd, ts);
                self.advance_pc(cat);
            }
            Inst::Ret { rd, cp } => {
                let ctx = &self.contexts[ctx_idx];
                let idx = ctx.cp_base as usize + cp.0 as usize;
                match self.cp[idx] {
                    Some(v) => {
                        let gp_base = ctx.gp_base;
                        if let DbResult::Err(status) = DbResult::decode(v) {
                            self.contexts[ctx_idx].last_err = Some(status);
                        }
                        self.gp_write(gp_base, rd, v as u64);
                        self.advance_pc(cat);
                    }
                    None => {
                        // Not a completed instruction; undo the count and
                        // retry until the CP result arrives.
                        self.stats.cpu_insts -= 1;
                        self.state = CoreState::WaitCp { idx };
                    }
                }
            }
            Inst::Yield => {
                match self.phase {
                    Phase::Logic => {
                        // Save context, switch to the next transaction.
                        self.contexts[ctx_idx].pc = pc; // saved as-is; commit entry set later
                        self.contexts[ctx_idx].logic_end = now;
                        match self.params.mode {
                            ExecMode::Interleaved => {
                                self.stats.switches += 1;
                                self.state = CoreState::Switching {
                                    remaining: self.params.context_switch.max(1),
                                    then: AfterSwitch::Ingest,
                                };
                            }
                            ExecMode::Serial => self.close_batch(now),
                        }
                    }
                    Phase::Commit => panic!("YIELD executed inside a commit/abort handler"),
                }
            }
            Inst::Commit => self.finish_context(now, dram, cat, CtxOutcome::Committed),
            Inst::Abort => match self.phase {
                Phase::Logic => self.raise_exception(now, cat),
                Phase::Commit => self.finish_context(now, dram, cat, CtxOutcome::Aborted),
            },
            Inst::Insert { .. }
            | Inst::Search { .. }
            | Inst::Scan { .. }
            | Inst::Update { .. }
            | Inst::Remove { .. } => unreachable!("DB instructions handled above"),
        }
    }

    /// A logic-phase exception (CC failure observed early, voluntary abort,
    /// divide-by-zero): mark the context failed and yield; the abort handler
    /// will run in the commit phase.
    fn raise_exception(&mut self, now: Cycle, _cat: &Catalogue) {
        let ctx = &mut self.contexts[self.cur];
        ctx.failed = true;
        ctx.logic_end = now;
        match self.phase {
            Phase::Logic => match self.params.mode {
                ExecMode::Interleaved => {
                    self.stats.switches += 1;
                    self.state = CoreState::Switching {
                        remaining: self.params.context_switch.max(1),
                        then: AfterSwitch::Ingest,
                    };
                }
                ExecMode::Serial => self.close_batch(now),
            },
            Phase::Commit => unreachable!("exceptions in commit phase finish the context"),
        }
    }

    fn dispatch_db(
        &mut self,
        now: Cycle,
        cat: &Catalogue,
        inst: Inst,
        db_out: &mut Fifo<DbRequest>,
    ) {
        let ctx = &self.contexts[self.cur];
        let user_base = ctx.block_addr + BLOCK_HEADER_SIZE;
        let (op, table, key_off, payload_off, count, out_off, home, cp) = match inst {
            Inst::Insert {
                table,
                key_off,
                payload_off,
                home,
                cp,
            } => (
                DbOp::Insert,
                table,
                key_off,
                Some(payload_off),
                None,
                None,
                home,
                cp,
            ),
            Inst::Search {
                table,
                key_off,
                home,
                cp,
            } => (DbOp::Search, table, key_off, None, None, None, home, cp),
            Inst::Scan {
                table,
                key_off,
                count,
                out_off,
                home,
                cp,
            } => (
                DbOp::Scan,
                table,
                key_off,
                None,
                Some(count),
                Some(out_off),
                home,
                cp,
            ),
            Inst::Update {
                table,
                key_off,
                home,
                cp,
            } => (DbOp::Update, table, key_off, None, None, None, home, cp),
            Inst::Remove {
                table,
                key_off,
                home,
                cp,
            } => (DbOp::Remove, table, key_off, None, None, None, home, cp),
            other => unreachable!("not a DB instruction: {other:?}"),
        };
        let req_cp_index = (ctx.cp_base + cp.0 as u16) as usize;
        // Batch-group tag for the coprocessor's level-wise traversal engine
        // (DESIGN.md §16). Only read-set probes batch; inserts and scans
        // keep their dedicated pipeline paths. The top bit keeps every
        // group id distinct from the 0 = unbatched sentinel.
        let batch_group = match (self.params.batch_mode, op) {
            (BatchMode::Off, _) | (_, DbOp::Insert | DbOp::Scan) => 0,
            (BatchMode::TxnLocal, _) => (1 << 63) | ctx.ts,
            (BatchMode::CrossTxn, _) => {
                (1 << 63) | (self.stats.batches << 10) | (self.worker.0 as u64 & 0x3ff)
            }
        };
        let req = DbRequest {
            op,
            table,
            key_addr: user_base + self.operand(ctx, key_off),
            payload_addr: payload_off
                .map(|o| user_base + self.operand(ctx, o))
                .unwrap_or(0),
            scan_count: count.map(|c| self.operand(ctx, c) as u32).unwrap_or(0),
            out_addr: out_off
                .map(|o| user_base + self.operand(ctx, o))
                .unwrap_or(0),
            ts: ctx.ts,
            cp: CpSlot {
                worker: self.worker,
                index: ctx.cp_base + cp.0 as u16,
            },
            home: self.resolve_home(ctx, home),
            batch_group,
        };
        match db_out.push(req) {
            Ok(()) => {
                // Invalidate the destination CP register so a stale value
                // from an earlier (RET-collected) use cannot be observed.
                self.cp[req_cp_index] = None;
                self.cp_issued_at[req_cp_index] = now;
                self.outstanding += 1;
                self.stats.db_insts += 1;
                self.advance_pc(cat);
            }
            Err(_) => self.state = CoreState::DispatchStall,
        }
    }

    fn finish_context(
        &mut self,
        now: Cycle,
        dram: &mut Dram,
        cat: &Catalogue,
        outcome: CtxOutcome,
    ) {
        debug_assert_eq!(
            self.phase,
            Phase::Commit,
            "COMMIT/ABORT outside commit phase"
        );
        let ctx = &mut self.contexts[self.cur];
        ctx.outcome = Some(outcome);
        // The block's commit timestamp is stamped at *commit* time, not
        // with the context's begin timestamp: command-log replay orders by
        // this field, and only the commit order is a serialization order
        // (a transaction that begins early but touches a contended row
        // late must replay after the earlier committer of that row).
        let (status, ts) = match outcome {
            CtxOutcome::Committed => (1u64, (now << 10) | (self.worker.0 as u64 & 0x3ff)),
            CtxOutcome::Aborted => (2u64, 0),
        };
        // Write the commit state and timestamp back into the transaction
        // block (posted writes; host-side visibility is what matters and
        // functional state applies immediately).
        let block = ctx.block_addr;
        dram.host_write_u64(block + STATUS_OFFSET, status);
        dram.host_write_u64(block + COMMIT_TS_OFFSET, ts);
        match outcome {
            CtxOutcome::Committed => self.stats.committed += 1,
            CtxOutcome::Aborted => self.stats.aborted += 1,
        }
        // Observability: record the retired transaction's phase breakdown.
        // All inputs are host-side timestamps of events that occur at
        // identical cycles under strict stepping and fast-forward.
        let (sub, ls, le, cs, last_err) = {
            let c = &self.contexts[self.cur];
            (
                c.submitted_at,
                c.logic_start,
                c.logic_end,
                c.commit_start,
                c.last_err,
            )
        };
        self.obs.queue_wait.record(ls.saturating_sub(sub));
        self.obs.logic.record(le.saturating_sub(ls));
        self.obs.commit_wait.record(cs.saturating_sub(le));
        self.obs.commit.record(now.saturating_sub(cs));
        let total = now.saturating_sub(sub);
        match outcome {
            CtxOutcome::Committed => self.obs.txn_commit.record(total),
            CtxOutcome::Aborted => {
                self.obs.txn_abort.record(total);
                let r = &mut self.obs.abort_reasons;
                match last_err {
                    Some(DbStatus::NotFound) => r.not_found += 1,
                    Some(DbStatus::CcConflict) => r.cc_conflict += 1,
                    Some(DbStatus::Dirty) => r.dirty += 1,
                    Some(DbStatus::BadRequest) => r.bad_request += 1,
                    Some(DbStatus::Timeout) => r.timeout += 1,
                    Some(DbStatus::Ok) | None => r.other += 1,
                }
            }
        }
        if self.tracing {
            self.trace.push(TxnEvent {
                worker: self.worker.0,
                block_addr: block,
                submitted_at: sub,
                logic_start: ls,
                logic_end: le,
                commit_start: cs,
                finished_at: now,
                committed: outcome == CtxOutcome::Committed,
            });
        }
        let _ = cat;
        if self.cur + 1 < self.contexts.len() {
            self.begin_commit_for(now, self.cur + 1);
        } else {
            self.state = CoreState::BatchDrain;
        }
    }

    /// Fast-forward support: the earliest future cycle at which this core
    /// could change state, attempt a memory/NoC issue, or mutate any
    /// statistic, assuming no external stimulus (no DRAM response delivery,
    /// no CP writeback) arrives earlier. Returns `None` when the core is
    /// purely waiting on such a stimulus (or fully idle); external events
    /// are bounded by the DRAM/NoC `next_event`s at the machine level.
    ///
    /// Contract (DESIGN.md "Simulation performance"): the returned cycle is
    /// always `> now`, and may be *earlier* than the true next change
    /// (costing only speed), never later (which would break determinism).
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        // The prefetch unit issues a header read the moment it can — an
        // issue *attempt* mutates DRAM rejection stats, so such a cycle can
        // never be skipped.
        if self.prefetch_inflight.is_none()
            && self.prefetched.is_none()
            && self.phase == Phase::Logic
            && self.pending_block.is_none()
            && self.input.front().is_some()
        {
            return Some(now + 1);
        }
        match &self.state {
            CoreState::Idle => {
                if self.input.is_empty()
                    && self.pending_block.is_none()
                    && self.prefetched.is_none()
                    && self.contexts.is_empty()
                {
                    None
                } else {
                    Some(now + 1)
                }
            }
            CoreState::FetchHeader { addr, issued, .. } => {
                if !issued || self.prefetched.map(|(a, _)| a) == Some(*addr) {
                    Some(now + 1)
                } else {
                    None // waiting on the DRAM response
                }
            }
            CoreState::Exec { remaining } => Some(now + remaining),
            CoreState::WaitLoad { issued, .. } => {
                if *issued {
                    None // waiting on the DRAM response
                } else {
                    Some(now + 1) // will retry the issue
                }
            }
            // Retries an issue / dispatch attempt every cycle.
            CoreState::WaitStore { .. } | CoreState::DispatchStall => Some(now + 1),
            // The CP writeback itself is an external event, but it lands
            // *after* the softcore's slot in the worker tick — so the
            // retrying RET observes it one cycle later. Once the register
            // is valid, the retry is a real event.
            CoreState::WaitCp { idx } => {
                if self.cp[*idx].is_some() {
                    Some(now + 1)
                } else {
                    None
                }
            }
            CoreState::Switching { remaining, .. } => Some(now + remaining),
            CoreState::BatchDrain => {
                if self.outstanding == 0 {
                    Some(now + 1)
                } else {
                    None // waiting on CP writebacks
                }
            }
        }
    }

    /// Fast-forward support: account for `k` skipped cycles exactly as `k`
    /// pure-wait ticks would have — countdowns decrease, stall counters
    /// accrue. Only valid when `next_event` permitted the skip (the machine
    /// guarantees `now + k < next_event` for every component).
    pub fn skip(&mut self, k: Cycle) {
        match &mut self.state {
            CoreState::Exec { remaining } | CoreState::Switching { remaining, .. } => {
                debug_assert!(*remaining > k, "skipped past an Exec/Switch completion");
                *remaining -= k;
            }
            CoreState::FetchHeader { .. } | CoreState::WaitLoad { .. } => {
                self.stats.mem_stall_cycles += k;
            }
            CoreState::WaitCp { .. } | CoreState::BatchDrain => {
                self.stats.cp_stall_cycles += k;
            }
            // Idle ticks are stat-free; WaitStore/DispatchStall report
            // next_event = now + 1 and therefore are never skipped over.
            CoreState::Idle | CoreState::WaitStore { .. } | CoreState::DispatchStall => {}
        }
    }

    fn finish_batch(&mut self) {
        debug_assert!(self.contexts.iter().all(|c| c.outcome.is_some()));
        self.contexts.clear();
        self.gp_next = 0;
        self.cp_next = 0;
        self.phase = Phase::Logic;
        self.stats.batches += 1;
    }
}

impl std::fmt::Debug for Softcore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Softcore")
            .field("worker", &self.worker)
            .field("phase", &self.phase)
            .field("contexts", &self.contexts.len())
            .field("outstanding", &self.outstanding)
            .field("state", &self.state)
            .finish()
    }
}
