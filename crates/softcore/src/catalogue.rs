//! The catalogue: on-chip (BRAM) storage for stored procedures and table
//! metadata (paper §4.2/§4.3).
//!
//! Clients upload pre-compiled stored procedures together with the metadata
//! they need (table schemas, index kinds). Registering or changing a
//! transaction only updates the catalogue — it never requires FPGA
//! reconfiguration, which is how BionicDB accommodates workload changes
//! quickly (paper §4.3).

use crate::isa::{ProcError, Procedure};

/// Identifies a table within the catalogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u8);

/// Identifies a registered stored procedure; used as the transaction ID in
/// submitted transaction blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcId(pub u32);

/// Which index structure backs a table (paper §4.4: hash for point access,
/// skiplist for range scan).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Hash index: INSERT/SEARCH/UPDATE/REMOVE.
    Hash,
    /// Skiplist: SCAN plus INSERT/SEARCH/UPDATE/REMOVE.
    Skiplist,
}

/// Logical schema of a table, shared by all partitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableMeta {
    /// Human-readable name (diagnostics only).
    pub name: String,
    /// Index structure.
    pub kind: IndexKind,
    /// Length of the (fixed-size, byte-comparable) key in bytes, ≤ 32.
    pub key_len: u8,
    /// Length of the fixed-size payload in bytes.
    pub payload_len: u32,
    /// Number of hash buckets per partition (hash tables only). Must be a
    /// power of two.
    pub hash_buckets: u64,
}

impl TableMeta {
    /// Convenience constructor for a hash-indexed table.
    pub fn hash(name: &str, key_len: u8, payload_len: u32, hash_buckets: u64) -> Self {
        assert!(key_len > 0 && key_len <= 32, "key length must be 1..=32");
        assert!(
            hash_buckets.is_power_of_two(),
            "bucket count must be a power of two"
        );
        TableMeta {
            name: name.into(),
            kind: IndexKind::Hash,
            key_len,
            payload_len,
            hash_buckets,
        }
    }

    /// Convenience constructor for a skiplist-indexed table.
    pub fn skiplist(name: &str, key_len: u8, payload_len: u32) -> Self {
        assert!(key_len > 0 && key_len <= 32, "key length must be 1..=32");
        TableMeta {
            name: name.into(),
            kind: IndexKind::Skiplist,
            key_len,
            payload_len,
            hash_buckets: 0,
        }
    }
}

/// Errors from catalogue registration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogueError {
    /// The procedure failed validation.
    Invalid(ProcError),
    /// The catalogue's BRAM budget (table or procedure slots) is exhausted.
    Full,
    /// A procedure upload could not be decoded.
    Wire(String),
}

impl std::fmt::Display for CatalogueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogueError::Invalid(e) => write!(f, "invalid procedure: {e}"),
            CatalogueError::Full => write!(f, "catalogue capacity exhausted"),
            CatalogueError::Wire(e) => write!(f, "malformed procedure upload: {e}"),
        }
    }
}

impl std::error::Error for CatalogueError {}

/// Maximum number of registered procedures (BRAM budget).
const MAX_PROCS: usize = 1024;
/// Maximum number of tables (TableId is a u8).
const MAX_TABLES: usize = 256;

/// The per-chip catalogue. In BionicDB all workers on a chip share one
/// catalogue image; the simulator mirrors that by sharing it immutably
/// during execution.
#[derive(Debug, Default, Clone)]
pub struct Catalogue {
    procs: Vec<Procedure>,
    tables: Vec<TableMeta>,
}

impl Catalogue {
    /// Create an empty catalogue.
    pub fn new() -> Self {
        Catalogue::default()
    }

    /// Register a stored procedure; returns its [`ProcId`] (the transaction
    /// ID clients put in transaction blocks).
    pub fn register_proc(&mut self, proc: Procedure) -> Result<ProcId, CatalogueError> {
        proc.validate().map_err(CatalogueError::Invalid)?;
        if self.procs.len() >= MAX_PROCS {
            return Err(CatalogueError::Full);
        }
        let id = ProcId(self.procs.len() as u32);
        self.procs.push(proc);
        Ok(id)
    }

    /// Replace an existing procedure (the paper's "change an existing one by
    /// uploading the stored procedure code").
    pub fn replace_proc(&mut self, id: ProcId, proc: Procedure) -> Result<(), CatalogueError> {
        proc.validate().map_err(CatalogueError::Invalid)?;
        let slot = self
            .procs
            .get_mut(id.0 as usize)
            .ok_or(CatalogueError::Full)?;
        *slot = proc;
        Ok(())
    }

    /// Register a stored procedure from its catalogue wire format (the
    /// form a client actually uploads over PCIe, paper §4.2): the header
    /// carries the entry points and register footprint, followed by the
    /// encoded instruction stream.
    ///
    /// Wire layout: `name_len: u16 | name | commit_entry: u32 |
    /// abort_entry: u32 | gp_count: u16 | cp_count: u16 | code bytes`.
    pub fn register_proc_bytes(&mut self, bytes: &[u8]) -> Result<ProcId, CatalogueError> {
        let proc = Self::decode_proc(bytes).map_err(CatalogueError::Wire)?;
        self.register_proc(proc)
    }

    /// Encode a procedure into the upload wire format (host-side helper).
    pub fn encode_proc(proc: &Procedure) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(proc.name.len() as u16).to_le_bytes());
        out.extend_from_slice(proc.name.as_bytes());
        out.extend_from_slice(&proc.commit_entry.to_le_bytes());
        out.extend_from_slice(&proc.abort_entry.to_le_bytes());
        out.extend_from_slice(&proc.gp_count.to_le_bytes());
        out.extend_from_slice(&proc.cp_count.to_le_bytes());
        out.extend_from_slice(&crate::isa::encode_program(&proc.code));
        out
    }

    /// Decode the upload wire format back into a procedure.
    pub fn decode_proc(bytes: &[u8]) -> Result<Procedure, String> {
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], String> {
            let s = bytes
                .get(*pos..*pos + n)
                .ok_or("truncated procedure upload")?;
            *pos += n;
            Ok(s)
        };
        let mut pos = 0usize;
        let name_len = u16::from_le_bytes(take(&mut pos, 2)?.try_into().expect("2 bytes")) as usize;
        let name = String::from_utf8(take(&mut pos, name_len)?.to_vec())
            .map_err(|_| "procedure name is not UTF-8".to_string())?;
        let commit_entry = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes"));
        let abort_entry = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes"));
        let gp_count = u16::from_le_bytes(take(&mut pos, 2)?.try_into().expect("2 bytes"));
        let cp_count = u16::from_le_bytes(take(&mut pos, 2)?.try_into().expect("2 bytes"));
        let code = crate::isa::decode_program(&bytes[pos..]).map_err(|e| e.to_string())?;
        Ok(Procedure {
            name,
            code,
            commit_entry,
            abort_entry,
            gp_count,
            cp_count,
        })
    }

    /// Register a table schema; returns its [`TableId`].
    pub fn register_table(&mut self, meta: TableMeta) -> Result<TableId, CatalogueError> {
        if self.tables.len() >= MAX_TABLES {
            return Err(CatalogueError::Full);
        }
        let id = TableId(self.tables.len() as u8);
        self.tables.push(meta);
        Ok(id)
    }

    /// Look up a procedure.
    pub fn proc(&self, id: ProcId) -> Option<&Procedure> {
        self.procs.get(id.0 as usize)
    }

    /// Look up a table schema.
    pub fn table(&self, id: TableId) -> Option<&TableMeta> {
        self.tables.get(id.0 as usize)
    }

    /// Number of registered procedures.
    pub fn num_procs(&self) -> usize {
        self.procs.len()
    }

    /// Number of registered tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Iterate over registered tables with their ids.
    pub fn tables(&self) -> impl Iterator<Item = (TableId, &TableMeta)> {
        self.tables
            .iter()
            .enumerate()
            .map(|(i, t)| (TableId(i as u8), t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Inst;

    fn trivial_proc() -> Procedure {
        Procedure {
            name: "noop".into(),
            code: vec![Inst::Yield, Inst::Commit, Inst::Abort],
            commit_entry: 1,
            abort_entry: 2,
            gp_count: 0,
            cp_count: 0,
        }
    }

    #[test]
    fn register_and_lookup_proc() {
        let mut c = Catalogue::new();
        let id = c.register_proc(trivial_proc()).unwrap();
        assert_eq!(c.proc(id).unwrap().name, "noop");
        assert!(c.proc(ProcId(99)).is_none());
    }

    #[test]
    fn register_rejects_invalid_proc() {
        let mut c = Catalogue::new();
        let mut p = trivial_proc();
        p.commit_entry = 42;
        assert!(matches!(
            c.register_proc(p),
            Err(CatalogueError::Invalid(_))
        ));
    }

    #[test]
    fn replace_proc_swaps_in_place() {
        let mut c = Catalogue::new();
        let id = c.register_proc(trivial_proc()).unwrap();
        let mut p2 = trivial_proc();
        p2.name = "v2".into();
        c.replace_proc(id, p2).unwrap();
        assert_eq!(c.proc(id).unwrap().name, "v2");
    }

    #[test]
    fn register_and_lookup_table() {
        let mut c = Catalogue::new();
        let t = c
            .register_table(TableMeta::hash("ycsb", 8, 100, 1 << 16))
            .unwrap();
        let meta = c.table(t).unwrap();
        assert_eq!(meta.kind, IndexKind::Hash);
        assert_eq!(meta.key_len, 8);
    }

    #[test]
    fn upload_wire_format_roundtrip() {
        let mut c = Catalogue::new();
        let p = trivial_proc();
        let bytes = Catalogue::encode_proc(&p);
        let id = c.register_proc_bytes(&bytes).unwrap();
        assert_eq!(c.proc(id).unwrap(), &p);
    }

    #[test]
    fn truncated_upload_rejected() {
        let mut c = Catalogue::new();
        // Dropping the final opcode leaves a decodable prefix whose entry
        // points dangle: caught by validation. A torn header is caught by
        // the wire decoder. Either way, nothing malformed registers.
        let mut bytes = Catalogue::encode_proc(&trivial_proc());
        bytes.truncate(bytes.len() - 1);
        assert!(c.register_proc_bytes(&bytes).is_err());
        assert!(matches!(
            c.register_proc_bytes(&[1]),
            Err(CatalogueError::Wire(_))
        ));
        assert_eq!(c.num_procs(), 0);
    }

    #[test]
    fn invalid_uploaded_proc_rejected_by_validation() {
        let mut c = Catalogue::new();
        let mut p = trivial_proc();
        p.abort_entry = 99; // structurally broken
        let bytes = Catalogue::encode_proc(&p);
        assert!(matches!(
            c.register_proc_bytes(&bytes),
            Err(CatalogueError::Invalid(_))
        ));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn hash_table_bucket_count_must_be_pow2() {
        let _ = TableMeta::hash("bad", 8, 8, 1000);
    }
}
