//! A small text assembler for BionicDB stored procedures.
//!
//! The paper's clients upload *pre-compiled* stored procedures; this
//! assembler is the human-writable front end for them (the typed
//! [`crate::builder::ProcBuilder`] is the programmatic one). Example:
//!
//! ```text
//! proc ycsb_read
//! logic:
//!     search 0, 0, c0          ; table 0, key at user offset 0 -> c0
//!     search 0, 8, c1
//! commit:
//!     ret g0, c0
//!     cmp g0, 0
//!     blt abort
//!     ret g1, c1
//!     cmp g1, 0
//!     blt abort
//!     commit
//! abort:
//!     abort
//! ```
//!
//! Syntax summary:
//! * `; comment` to end of line; blank lines ignored.
//! * `proc NAME` — first directive.
//! * section labels `logic:`, `commit:`, `abort:`; other `name:` lines are
//!   ordinary jump labels.
//! * registers `gN` / `cN`; immediates are decimal (or `0x...`) literals.
//! * memory operands `[blk+OFF]` or `[gN+OFF]`.
//! * DB instructions: `search T, KEY, cN [, home=OP]`,
//!   `insert T, KEY, PAYLOAD, cN [, home=OP]`,
//!   `scan T, KEY, COUNT, OUT, cN [, home=OP]`,
//!   `update T, KEY, cN [, home=OP]`, `remove T, KEY, cN [, home=OP]`.
//! * CPU instructions: `mov/add/sub/mul/div gN, OP`, `cmp gN, OP`,
//!   `load gN, [..]`, `store gN, [..]`, `jmp L`, `be/bne/ble/blt/bgt/bge L`,
//!   `ret gN, cN`, `commit`, `abort`, `yield`.

use std::collections::HashMap;

use crate::catalogue::TableId;
use crate::isa::{AluOp, Cond, Cp, Gp, Inst, MemBase, Operand, Procedure};

/// An assembly error with the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub msg: String,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError {
        line,
        msg: msg.into(),
    })
}

fn parse_int(s: &str, line: usize) -> Result<i64, AsmError> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse::<i64>()
    };
    match v {
        Ok(v) => Ok(if neg { -v } else { v }),
        Err(_) => err(line, format!("expected integer, found `{s}`")),
    }
}

fn parse_gp(s: &str, line: usize) -> Result<Gp, AsmError> {
    let s = s.trim();
    if let Some(n) = s.strip_prefix('g') {
        if let Ok(i) = n.parse::<u8>() {
            return Ok(Gp(i));
        }
    }
    err(line, format!("expected GP register (gN), found `{s}`"))
}

fn parse_cp(s: &str, line: usize) -> Result<Cp, AsmError> {
    let s = s.trim();
    if let Some(n) = s.strip_prefix('c') {
        if let Ok(i) = n.parse::<u8>() {
            return Ok(Cp(i));
        }
    }
    err(line, format!("expected CP register (cN), found `{s}`"))
}

fn parse_operand(s: &str, line: usize) -> Result<Operand, AsmError> {
    let s = s.trim();
    if s.starts_with('g') && s[1..].chars().all(|c| c.is_ascii_digit()) && s.len() > 1 {
        return Ok(Operand::Reg(parse_gp(s, line)?));
    }
    Ok(Operand::Imm(parse_int(s, line)?))
}

fn parse_mem(s: &str, line: usize) -> Result<(MemBase, Operand), AsmError> {
    let s = s.trim();
    let inner = s
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| AsmError {
            line,
            msg: format!("expected [base+off], found `{s}`"),
        })?;
    let (base_s, off_s) = match inner.split_once('+') {
        Some((b, o)) => (b.trim(), o.trim()),
        None => (inner.trim(), "0"),
    };
    let base = if base_s == "blk" {
        MemBase::Block
    } else {
        MemBase::Reg(parse_gp(base_s, line)?)
    };
    Ok((base, parse_operand(off_s, line)?))
}

/// Split an operand list on commas (no nesting in this grammar).
fn split_args(rest: &str) -> Vec<&str> {
    if rest.trim().is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    }
}

/// Extract a trailing `home=OP` argument, returning (args, home).
fn take_home(mut args: Vec<&str>, line: usize) -> Result<(Vec<&str>, Operand), AsmError> {
    let mut home = Operand::Imm(-1); // -1 = "local partition" sentinel
    if let Some(last) = args.last() {
        if let Some(v) = last.strip_prefix("home=") {
            home = parse_operand(v, line)?;
            args.pop();
        }
    }
    Ok((args, home))
}

enum PendingTarget {
    Label(String, usize),
}

/// Assemble `source` into a [`Procedure`].
pub fn assemble(source: &str) -> Result<Procedure, AsmError> {
    let mut name: Option<String> = None;
    let mut code: Vec<Inst> = Vec::new();
    let mut labels: HashMap<String, u32> = HashMap::new();
    let mut fixups: Vec<(usize, PendingTarget)> = Vec::new();
    let mut commit_entry: Option<u32> = None;
    let mut abort_entry: Option<u32> = None;
    let mut gp_max: i32 = -1;
    let mut cp_max: i32 = -1;

    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let text = raw.split(';').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }

        if let Some(rest) = text.strip_prefix("proc ") {
            if name.is_some() {
                return err(line, "duplicate proc directive");
            }
            name = Some(rest.trim().to_string());
            continue;
        }

        if let Some(label) = text.strip_suffix(':') {
            let label = label.trim();
            let at = code.len() as u32;
            match label {
                "logic" => {
                    if at != 0 {
                        return err(line, "logic: must come first");
                    }
                }
                "commit" => {
                    if commit_entry.is_some() {
                        return err(line, "duplicate commit: section");
                    }
                    // Auto-insert the phase delimiter like the builder does.
                    if !matches!(code.last(), Some(Inst::Yield)) {
                        code.push(Inst::Yield);
                    }
                    commit_entry = Some(code.len() as u32);
                    labels.insert("commit".into(), code.len() as u32);
                }
                "abort" => {
                    if abort_entry.is_some() {
                        return err(line, "duplicate abort: section");
                    }
                    abort_entry = Some(at);
                    labels.insert("abort".into(), at);
                }
                other => {
                    if labels.insert(other.to_string(), at).is_some() {
                        return err(line, format!("duplicate label `{other}`"));
                    }
                }
            }
            continue;
        }

        let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
            Some((m, r)) => (m, r.trim()),
            None => (text, ""),
        };
        let args = split_args(rest);

        let mut track_gp = |g: &Gp| gp_max = gp_max.max(g.0 as i32);
        let mut track_cp = |c: &Cp| cp_max = cp_max.max(c.0 as i32);

        let inst = match mnemonic {
            "mov" | "add" | "sub" | "mul" | "div" => {
                if args.len() != 2 {
                    return err(line, format!("{mnemonic} needs 2 operands"));
                }
                let rd = parse_gp(args[0], line)?;
                track_gp(&rd);
                let rs = parse_operand(args[1], line)?;
                if let Operand::Reg(g) = rs {
                    track_gp(&g);
                }
                let op = match mnemonic {
                    "mov" => AluOp::Mov,
                    "add" => AluOp::Add,
                    "sub" => AluOp::Sub,
                    "mul" => AluOp::Mul,
                    _ => AluOp::Div,
                };
                Inst::Alu { op, rd, rs }
            }
            "cmp" => {
                if args.len() != 2 {
                    return err(line, "cmp needs 2 operands");
                }
                let ra = parse_gp(args[0], line)?;
                track_gp(&ra);
                let rb = parse_operand(args[1], line)?;
                if let Operand::Reg(g) = rb {
                    track_gp(&g);
                }
                Inst::Cmp { ra, rb }
            }
            "load" | "store" => {
                if args.len() != 2 {
                    return err(line, format!("{mnemonic} needs 2 operands"));
                }
                let r = parse_gp(args[0], line)?;
                track_gp(&r);
                let (base, off) = parse_mem(args[1], line)?;
                if let MemBase::Reg(g) = base {
                    track_gp(&g);
                }
                if let Operand::Reg(g) = off {
                    track_gp(&g);
                }
                if mnemonic == "load" {
                    Inst::Load { rd: r, base, off }
                } else {
                    Inst::Store { rs: r, base, off }
                }
            }
            "jmp" | "be" | "bne" | "ble" | "blt" | "bgt" | "bge" => {
                if args.len() != 1 {
                    return err(line, format!("{mnemonic} needs a target label"));
                }
                fixups.push((code.len(), PendingTarget::Label(args[0].to_string(), line)));
                if mnemonic == "jmp" {
                    Inst::Jmp { target: u32::MAX }
                } else {
                    let cond = match mnemonic {
                        "be" => Cond::Eq,
                        "bne" => Cond::Ne,
                        "ble" => Cond::Le,
                        "blt" => Cond::Lt,
                        "bgt" => Cond::Gt,
                        _ => Cond::Ge,
                    };
                    Inst::Br {
                        cond,
                        target: u32::MAX,
                    }
                }
            }
            "ret" => {
                if args.len() != 2 {
                    return err(line, "ret needs gN, cN");
                }
                let rd = parse_gp(args[0], line)?;
                track_gp(&rd);
                let cp = parse_cp(args[1], line)?;
                track_cp(&cp);
                Inst::Ret { rd, cp }
            }
            "getts" => {
                if args.len() != 1 {
                    return err(line, "getts needs gN");
                }
                let rd = parse_gp(args[0], line)?;
                track_gp(&rd);
                Inst::GetTs { rd }
            }
            "commit" => Inst::Commit,
            "abort" => Inst::Abort,
            "yield" => Inst::Yield,
            "search" | "update" | "remove" => {
                let (args, home) = take_home(args, line)?;
                if args.len() != 3 {
                    return err(line, format!("{mnemonic} needs table, keyoff, cN"));
                }
                let table = TableId(parse_int(args[0], line)? as u8);
                let key_off = parse_operand(args[1], line)?;
                if let Operand::Reg(g) = key_off {
                    track_gp(&g);
                }
                if let Operand::Reg(g) = home {
                    track_gp(&g);
                }
                let cp = parse_cp(args[2], line)?;
                track_cp(&cp);
                match mnemonic {
                    "search" => Inst::Search {
                        table,
                        key_off,
                        home,
                        cp,
                    },
                    "update" => Inst::Update {
                        table,
                        key_off,
                        home,
                        cp,
                    },
                    _ => Inst::Remove {
                        table,
                        key_off,
                        home,
                        cp,
                    },
                }
            }
            "insert" => {
                let (args, home) = take_home(args, line)?;
                if args.len() != 4 {
                    return err(line, "insert needs table, keyoff, payloadoff, cN");
                }
                let table = TableId(parse_int(args[0], line)? as u8);
                let key_off = parse_operand(args[1], line)?;
                let payload_off = parse_operand(args[2], line)?;
                for o in [&key_off, &payload_off, &home] {
                    if let Operand::Reg(g) = o {
                        track_gp(g);
                    }
                }
                let cp = parse_cp(args[3], line)?;
                track_cp(&cp);
                Inst::Insert {
                    table,
                    key_off,
                    payload_off,
                    home,
                    cp,
                }
            }
            "scan" => {
                let (args, home) = take_home(args, line)?;
                if args.len() != 5 {
                    return err(line, "scan needs table, keyoff, count, outoff, cN");
                }
                let table = TableId(parse_int(args[0], line)? as u8);
                let key_off = parse_operand(args[1], line)?;
                let count = parse_operand(args[2], line)?;
                let out_off = parse_operand(args[3], line)?;
                for o in [&key_off, &count, &out_off, &home] {
                    if let Operand::Reg(g) = o {
                        track_gp(g);
                    }
                }
                let cp = parse_cp(args[4], line)?;
                track_cp(&cp);
                Inst::Scan {
                    table,
                    key_off,
                    count,
                    out_off,
                    home,
                    cp,
                }
            }
            other => return err(line, format!("unknown mnemonic `{other}`")),
        };
        code.push(inst);
    }

    let name = name.ok_or_else(|| AsmError {
        line: 1,
        msg: "missing `proc NAME`".into(),
    })?;

    // Synthesize missing sections like the builder does.
    if commit_entry.is_none() {
        if !matches!(code.last(), Some(Inst::Yield)) {
            code.push(Inst::Yield);
        }
        commit_entry = Some(code.len() as u32);
        code.push(Inst::Commit);
    }
    if abort_entry.is_none() {
        match code.last() {
            Some(Inst::Commit | Inst::Abort | Inst::Jmp { .. }) => {}
            _ => code.push(Inst::Commit),
        }
        abort_entry = Some(code.len() as u32);
        labels.insert("abort".into(), code.len() as u32);
        code.push(Inst::Abort);
    }

    for (at, PendingTarget::Label(label, line)) in fixups {
        let target = *labels.get(&label).ok_or_else(|| AsmError {
            line,
            msg: format!("undefined label `{label}`"),
        })?;
        match &mut code[at] {
            Inst::Jmp { target: t } | Inst::Br { target: t, .. } => *t = target,
            other => unreachable!("fixup on non-branch {other:?}"),
        }
    }

    let proc = Procedure {
        name,
        code,
        commit_entry: commit_entry.expect("set above"),
        abort_entry: abort_entry.expect("set above"),
        gp_count: (gp_max + 1) as u16,
        cp_count: (cp_max + 1) as u16,
    };
    proc.validate().map_err(|e| AsmError {
        line: 0,
        msg: e.to_string(),
    })?;
    Ok(proc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_full_example() {
        let src = r#"
proc ycsb_read
logic:
    search 0, 0, c0     ; first key
    search 0, 8, c1, home=g2
commit:
    ret g0, c0
    cmp g0, 0
    blt abort
    ret g1, c1
    cmp g1, 0
    blt abort
    commit
abort:
    abort
"#;
        let p = assemble(src).unwrap();
        assert_eq!(p.name, "ycsb_read");
        assert_eq!(p.cp_count, 2);
        assert_eq!(p.gp_count, 3); // g0, g1, g2(home)
        assert_eq!(p.code[p.abort_entry as usize], Inst::Abort);
        // Yield auto-inserted before the commit section.
        assert_eq!(p.code[(p.commit_entry - 1) as usize], Inst::Yield);
    }

    #[test]
    fn missing_sections_synthesized() {
        let p = assemble("proc empty\nlogic:\n    mov g0, 5\n").unwrap();
        assert_eq!(p.code[p.commit_entry as usize], Inst::Commit);
        assert_eq!(p.code[p.abort_entry as usize], Inst::Abort);
    }

    #[test]
    fn memory_operands_parse() {
        let p = assemble("proc m\nlogic:\n    load g1, [blk+16]\n    store g1, [g2+8]\n").unwrap();
        assert_eq!(
            p.code[0],
            Inst::Load {
                rd: Gp(1),
                base: MemBase::Block,
                off: Operand::Imm(16)
            }
        );
        assert_eq!(
            p.code[1],
            Inst::Store {
                rs: Gp(1),
                base: MemBase::Reg(Gp(2)),
                off: Operand::Imm(8)
            }
        );
    }

    #[test]
    fn branch_to_undefined_label_is_error() {
        let e = assemble("proc b\nlogic:\n    jmp nowhere\n").unwrap_err();
        assert!(e.msg.contains("undefined label"));
    }

    #[test]
    fn unknown_mnemonic_is_error() {
        let e = assemble("proc b\nlogic:\n    frobnicate g0\n").unwrap_err();
        assert!(e.msg.contains("unknown mnemonic"));
    }

    #[test]
    fn hex_and_negative_immediates() {
        let p = assemble("proc h\nlogic:\n    mov g0, 0x10\n    add g0, -3\n").unwrap();
        assert_eq!(
            p.code[0],
            Inst::Alu {
                op: AluOp::Mov,
                rd: Gp(0),
                rs: Operand::Imm(16)
            }
        );
        assert_eq!(
            p.code[1],
            Inst::Alu {
                op: AluOp::Add,
                rd: Gp(0),
                rs: Operand::Imm(-3)
            }
        );
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble("; header\nproc c\n\nlogic:\n    mov g0, 1 ; set\n").unwrap();
        assert_eq!(p.name, "c");
        assert_eq!(p.code.len(), 4); // mov + yield + commit + abort
    }

    #[test]
    fn scan_parses_all_fields() {
        let p = assemble("proc s\nlogic:\n    scan 2, 0, 50, 64, c0, home=1\n").unwrap();
        assert_eq!(
            p.code[0],
            Inst::Scan {
                table: TableId(2),
                key_off: Operand::Imm(0),
                count: Operand::Imm(50),
                out_off: Operand::Imm(64),
                home: Operand::Imm(1),
                cp: Cp(0),
            }
        );
    }
}

// ---------------------------------------------------------------------------
// Disassembler
// ---------------------------------------------------------------------------

/// Render a procedure back to assembler text. The output re-assembles to an
/// identical procedure (same code, entries and register footprint), which
/// the property tests verify — useful for inspecting generated stored
/// procedures (e.g. the TPC-C builders) and for catalogue debugging.
pub fn disassemble(proc: &Procedure) -> String {
    use std::fmt::Write as _;

    // Collect branch targets needing labels (section entries get theirs).
    let mut targets: Vec<u32> = proc
        .code
        .iter()
        .filter_map(|i| match i {
            Inst::Jmp { target } | Inst::Br { target, .. } => Some(*target),
            _ => None,
        })
        .collect();
    targets.sort_unstable();
    targets.dedup();
    let label_of = |pc: u32| -> Option<String> {
        if pc == proc.commit_entry {
            Some("commit".into())
        } else if pc == proc.abort_entry {
            Some("abort".into())
        } else if targets.binary_search(&pc).is_ok() {
            Some(format!("l{pc}"))
        } else {
            None
        }
    };

    let operand = |o: &Operand| match o {
        Operand::Reg(Gp(r)) => format!("g{r}"),
        Operand::Imm(v) => format!("{v}"),
    };
    let mem = |base: &MemBase, off: &Operand| match base {
        MemBase::Block => format!("[blk+{}]", operand(off)),
        MemBase::Reg(Gp(r)) => format!("[g{r}+{}]", operand(off)),
    };
    let home_suffix = |home: &Operand| match home {
        Operand::Imm(-1) => String::new(),
        other => format!(", home={}", operand(other)),
    };

    let mut out = String::new();
    let _ = writeln!(out, "proc {}", proc.name);
    let _ = writeln!(out, "logic:");
    for (pc, inst) in proc.code.iter().enumerate() {
        let pc = pc as u32;
        if let Some(lbl) = label_of(pc) {
            let _ = writeln!(out, "{lbl}:");
        }
        let line = match inst {
            Inst::Insert {
                table,
                key_off,
                payload_off,
                home,
                cp,
            } => format!(
                "insert {}, {}, {}, c{}{}",
                table.0,
                operand(key_off),
                operand(payload_off),
                cp.0,
                home_suffix(home)
            ),
            Inst::Search {
                table,
                key_off,
                home,
                cp,
            } => format!(
                "search {}, {}, c{}{}",
                table.0,
                operand(key_off),
                cp.0,
                home_suffix(home)
            ),
            Inst::Scan {
                table,
                key_off,
                count,
                out_off,
                home,
                cp,
            } => format!(
                "scan {}, {}, {}, {}, c{}{}",
                table.0,
                operand(key_off),
                operand(count),
                operand(out_off),
                cp.0,
                home_suffix(home)
            ),
            Inst::Update {
                table,
                key_off,
                home,
                cp,
            } => format!(
                "update {}, {}, c{}{}",
                table.0,
                operand(key_off),
                cp.0,
                home_suffix(home)
            ),
            Inst::Remove {
                table,
                key_off,
                home,
                cp,
            } => format!(
                "remove {}, {}, c{}{}",
                table.0,
                operand(key_off),
                cp.0,
                home_suffix(home)
            ),
            Inst::Alu { op, rd, rs } => {
                let m = match op {
                    AluOp::Add => "add",
                    AluOp::Sub => "sub",
                    AluOp::Mul => "mul",
                    AluOp::Div => "div",
                    AluOp::Mov => "mov",
                };
                format!("{m} g{}, {}", rd.0, operand(rs))
            }
            Inst::Cmp { ra, rb } => format!("cmp g{}, {}", ra.0, operand(rb)),
            Inst::Load { rd, base, off } => format!("load g{}, {}", rd.0, mem(base, off)),
            Inst::Store { rs, base, off } => format!("store g{}, {}", rs.0, mem(base, off)),
            Inst::Jmp { target } => format!("jmp {}", label_of(*target).expect("target labelled")),
            Inst::Br { cond, target } => {
                let m = match cond {
                    Cond::Eq => "be",
                    Cond::Ne => "bne",
                    Cond::Le => "ble",
                    Cond::Lt => "blt",
                    Cond::Gt => "bgt",
                    Cond::Ge => "bge",
                };
                format!("{m} {}", label_of(*target).expect("target labelled"))
            }
            Inst::Ret { rd, cp } => format!("ret g{}, c{}", rd.0, cp.0),
            Inst::GetTs { rd } => format!("getts g{}", rd.0),
            Inst::Commit => "commit".into(),
            Inst::Abort => "abort".into(),
            Inst::Yield => "yield".into(),
        };
        let _ = writeln!(out, "    {line}");
    }
    out
}

#[cfg(test)]
mod disasm_tests {
    use super::*;

    #[test]
    fn disassembly_reassembles_identically() {
        let src = r#"
proc roundtrip
logic:
    getts g9
    mov g0, 7
top:
    add g0, -1
    cmp g0, 0
    bgt top
    load g1, [blk+16]
    store g1, [g2+8]
    search 0, 0, c0
    insert 1, 8, 16, c1, home=g3
    scan 2, 0, 50, 64, c2, home=1
    update 0, g1, c3
    remove 0, 24, c4
commit:
    ret g4, c0
    cmp g4, 0
    blt abort
    commit
abort:
    abort
"#;
        let p1 = assemble(src).unwrap();
        let text = disassemble(&p1);
        let p2 = assemble(&text).unwrap_or_else(|e| panic!("reassemble failed: {e}\n{text}"));
        assert_eq!(p1.code, p2.code);
        assert_eq!(p1.commit_entry, p2.commit_entry);
        assert_eq!(p1.abort_entry, p2.abort_entry);
        assert_eq!((p1.gp_count, p1.cp_count), (p2.gp_count, p2.cp_count));
    }

    #[test]
    fn builder_output_disassembles_and_reassembles() {
        use crate::builder::ProcBuilder;
        use crate::catalogue::TableId;
        let mut b = ProcBuilder::new("built");
        let c0 = b.cp();
        let c1 = b.cp();
        b.search(TableId(0), Operand::Imm(0), Operand::Imm(-1), c0);
        b.update(TableId(1), Operand::Imm(8), Operand::Imm(2), c1);
        b.begin_commit();
        b.ret_checked(c0);
        b.ret_checked(c1);
        b.commit();
        b.begin_abort();
        b.abort();
        let p1 = b.build().unwrap();
        let p2 = assemble(&disassemble(&p1)).unwrap();
        assert_eq!(p1.code, p2.code);
    }
}
