//! Property tests for the softcore's data formats.

use bionicdb_softcore::catalogue::TableId;
use bionicdb_softcore::isa::{
    decode_program, encode_program, AluOp, Cond, Cp, Gp, Inst, MemBase, Operand,
};
use bionicdb_softcore::IndexKey;
use proptest::prelude::*;

fn arb_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        any::<u8>().prop_map(|r| Operand::Reg(Gp(r))),
        any::<i64>().prop_map(Operand::Imm)
    ]
}

fn arb_base() -> impl Strategy<Value = MemBase> {
    prop_oneof![
        Just(MemBase::Block),
        (0u8..=0xfe).prop_map(|r| MemBase::Reg(Gp(r))), // 0xff encodes Block
    ]
}

fn arb_alu() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::Div),
        Just(AluOp::Mov)
    ]
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Eq),
        Just(Cond::Ne),
        Just(Cond::Le),
        Just(Cond::Lt),
        Just(Cond::Gt),
        Just(Cond::Ge)
    ]
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (
            any::<u8>(),
            arb_operand(),
            arb_operand(),
            arb_operand(),
            any::<u8>()
        )
            .prop_map(|(t, k, p, h, c)| Inst::Insert {
                table: TableId(t),
                key_off: k,
                payload_off: p,
                home: h,
                cp: Cp(c)
            }),
        (any::<u8>(), arb_operand(), arb_operand(), any::<u8>()).prop_map(|(t, k, h, c)| {
            Inst::Search {
                table: TableId(t),
                key_off: k,
                home: h,
                cp: Cp(c),
            }
        }),
        (
            any::<u8>(),
            arb_operand(),
            arb_operand(),
            arb_operand(),
            arb_operand(),
            any::<u8>()
        )
            .prop_map(|(t, k, n, o, h, c)| Inst::Scan {
                table: TableId(t),
                key_off: k,
                count: n,
                out_off: o,
                home: h,
                cp: Cp(c)
            }),
        (any::<u8>(), arb_operand(), arb_operand(), any::<u8>()).prop_map(|(t, k, h, c)| {
            Inst::Update {
                table: TableId(t),
                key_off: k,
                home: h,
                cp: Cp(c),
            }
        }),
        (any::<u8>(), arb_operand(), arb_operand(), any::<u8>()).prop_map(|(t, k, h, c)| {
            Inst::Remove {
                table: TableId(t),
                key_off: k,
                home: h,
                cp: Cp(c),
            }
        }),
        (arb_alu(), any::<u8>(), arb_operand()).prop_map(|(op, rd, rs)| Inst::Alu {
            op,
            rd: Gp(rd),
            rs
        }),
        (any::<u8>(), arb_operand()).prop_map(|(ra, rb)| Inst::Cmp { ra: Gp(ra), rb }),
        (any::<u8>(), arb_base(), arb_operand()).prop_map(|(rd, base, off)| Inst::Load {
            rd: Gp(rd),
            base,
            off
        }),
        (any::<u8>(), arb_base(), arb_operand()).prop_map(|(rs, base, off)| Inst::Store {
            rs: Gp(rs),
            base,
            off
        }),
        any::<u32>().prop_map(|target| Inst::Jmp { target }),
        (arb_cond(), any::<u32>()).prop_map(|(cond, target)| Inst::Br { cond, target }),
        (any::<u8>(), any::<u8>()).prop_map(|(rd, cp)| Inst::Ret {
            rd: Gp(rd),
            cp: Cp(cp)
        }),
        any::<u8>().prop_map(|rd| Inst::GetTs { rd: Gp(rd) }),
        Just(Inst::Commit),
        Just(Inst::Abort),
        Just(Inst::Yield),
    ]
}

proptest! {
    /// Any instruction sequence survives the catalogue wire format.
    #[test]
    fn wire_roundtrip(insts in proptest::collection::vec(arb_inst(), 0..64)) {
        let buf = encode_program(&insts);
        prop_assert_eq!(decode_program(&buf).unwrap(), insts);
    }

    /// Truncating an encoded stream never panics — it errors.
    #[test]
    fn truncated_streams_error_cleanly(
        insts in proptest::collection::vec(arb_inst(), 1..16),
        cut in any::<prop::sample::Index>(),
    ) {
        let buf = encode_program(&insts);
        let cut = cut.index(buf.len());
        if cut < buf.len() {
            // Either decodes a prefix or reports an error; never panics.
            let _ = decode_program(&buf[..cut]);
        }
    }

    /// Big-endian integer keys order exactly like the integers.
    #[test]
    fn index_key_order_matches_u64(a in any::<u64>(), b in any::<u64>()) {
        let (ka, kb) = (IndexKey::from_u64(a), IndexKey::from_u64(b));
        prop_assert_eq!(ka.cmp(&kb), a.cmp(&b));
        prop_assert_eq!(ka.to_u64(), a);
    }

    /// Pair keys order lexicographically by (hi, lo).
    #[test]
    fn pair_key_order(a in any::<(u64, u64)>(), b in any::<(u64, u64)>()) {
        let ka = IndexKey::from_u64_pair(a.0, a.1);
        let kb = IndexKey::from_u64_pair(b.0, b.1);
        prop_assert_eq!(ka.cmp(&kb), a.cmp(&b));
    }

    /// DbResult encoding round-trips for all representable values.
    #[test]
    fn db_result_roundtrip(v in 0i64..=i64::MAX) {
        use bionicdb_softcore::DbResult;
        let r = DbResult::Ok(v as u64);
        prop_assert_eq!(DbResult::decode(r.encode()), r);
    }
}
