//! Execution tests for the softcore, using a mock index coprocessor that
//! answers every DB request with a canned result after a fixed delay.

use bionicdb_fpga::{Dram, Fifo, FpgaConfig};
use bionicdb_softcore::core::SoftcoreParams;
use bionicdb_softcore::txnblock::TxnStatus;
use bionicdb_softcore::{
    asm::assemble, Catalogue, Cond, DbRequest, DbResult, ExecMode, Gp, Operand, PartitionId,
    ProcBuilder, ProcId, Softcore, TableId, TxnBlock,
};

/// A mock coprocessor: requests complete after `delay` cycles with a
/// caller-supplied function of the request.
struct MockCoproc {
    delay: u64,
    inflight: Vec<(u64, u16, i64)>, // (ready, cp index, value)
    respond: Box<dyn Fn(&DbRequest) -> DbResult>,
    seen: Vec<DbRequest>,
}

impl MockCoproc {
    fn new(delay: u64, respond: impl Fn(&DbRequest) -> DbResult + 'static) -> Self {
        MockCoproc {
            delay,
            inflight: Vec::new(),
            respond: Box::new(respond),
            seen: Vec::new(),
        }
    }

    fn tick(&mut self, now: u64, chan: &mut Fifo<DbRequest>, core: &mut Softcore) {
        while let Some(req) = chan.pop() {
            let value = (self.respond)(&req).encode();
            self.inflight.push((now + self.delay, req.cp.index, value));
            self.seen.push(req);
        }
        let mut i = 0;
        while i < self.inflight.len() {
            if self.inflight[i].0 <= now {
                let (_, idx, v) = self.inflight.swap_remove(i);
                core.deliver_cp(now, idx, v);
            } else {
                i += 1;
            }
        }
    }
}

struct Harness {
    dram: Dram,
    core: Softcore,
    cat: Catalogue,
    chan: Fifo<DbRequest>,
    coproc: MockCoproc,
    now: u64,
}

impl Harness {
    fn new(mode: ExecMode, cat: Catalogue, coproc: MockCoproc) -> Self {
        let cfg = FpgaConfig::default();
        let mut dram = Dram::new(&cfg, 1 << 22);
        let core = Softcore::new(
            PartitionId(0),
            SoftcoreParams::from_fpga(&cfg, mode),
            &mut dram,
        );
        Harness {
            dram,
            core,
            cat,
            chan: Fifo::new(16),
            coproc,
            now: 0,
        }
    }

    fn run_until_quiescent(&mut self, max_cycles: u64) {
        let start = self.now;
        while !self.core.is_quiescent() {
            self.now += 1;
            assert!(
                self.now - start < max_cycles,
                "softcore did not quiesce in {max_cycles} cycles"
            );
            self.dram.tick(self.now);
            self.core
                .tick(self.now, &mut self.dram, &self.cat, &mut self.chan);
            self.coproc.tick(self.now, &mut self.chan, &mut self.core);
        }
    }

    fn block(&mut self, addr: u64, size: u64, proc: ProcId) -> TxnBlock {
        let b = TxnBlock::new(addr, size);
        b.init(&mut self.dram, proc);
        b
    }
}

#[test]
fn alu_branches_and_stores_produce_expected_block_state() {
    // Computes ((7 + 5) * 2) into user offset 0, loops g1 down from 3 to 0,
    // stores the loop counter sum at offset 8.
    let src = r#"
proc arith
logic:
    mov g0, 7
    add g0, 5
    mul g0, 2
    store g0, [blk+0]
    mov g1, 3
    mov g2, 0
top:
    add g2, g1
    sub g1, 1
    cmp g1, 0
    bgt top
    store g2, [blk+8]
commit:
    commit
abort:
    abort
"#;
    let mut cat = Catalogue::new();
    let pid = cat.register_proc(assemble(src).unwrap()).unwrap();
    let coproc = MockCoproc::new(10, |_| DbResult::Ok(0));
    let mut h = Harness::new(ExecMode::Interleaved, cat, coproc);
    let blk = h.block(4096, 128, pid);
    h.core.submit(blk.addr());
    h.run_until_quiescent(100_000);
    assert_eq!(blk.status(&h.dram), TxnStatus::Committed);
    assert_eq!(blk.read_user_u64(&h.dram, 0), 24);
    assert_eq!(blk.read_user_u64(&h.dram, 8), 6); // 3+2+1
    assert_eq!(h.core.stats().committed, 1);
}

#[test]
fn db_results_flow_back_through_ret() {
    let mut b = ProcBuilder::new("reader");
    let c0 = b.cp();
    b.search(TableId(0), Operand::Imm(0), Operand::Imm(-1), c0);
    b.begin_commit();
    let rd = b.ret_checked(c0);
    // Store the returned address into user offset 16 for inspection.
    b.store(rd, bionicdb_softcore::MemBase::Block, Operand::Imm(16));
    b.commit();
    b.begin_abort();
    b.abort();
    let mut cat = Catalogue::new();
    let pid = cat.register_proc(b.build().unwrap()).unwrap();

    let coproc = MockCoproc::new(40, |_| DbResult::Ok(0xABCD));
    let mut h = Harness::new(ExecMode::Interleaved, cat, coproc);
    let blk = h.block(4096, 128, pid);
    h.core.submit(blk.addr());
    h.run_until_quiescent(100_000);
    assert_eq!(blk.status(&h.dram), TxnStatus::Committed);
    assert_eq!(blk.read_user_u64(&h.dram, 16), 0xABCD);
    assert!(blk.commit_ts(&h.dram) > 0);
}

#[test]
fn db_error_routes_to_abort_handler() {
    let mut b = ProcBuilder::new("failing");
    let c0 = b.cp();
    b.search(TableId(0), Operand::Imm(0), Operand::Imm(-1), c0);
    b.begin_commit();
    b.ret_checked(c0);
    b.commit();
    b.begin_abort();
    let g = b.gp();
    b.mov(g, Operand::Imm(77));
    b.store(g, bionicdb_softcore::MemBase::Block, Operand::Imm(0));
    b.abort();
    let mut cat = Catalogue::new();
    let pid = cat.register_proc(b.build().unwrap()).unwrap();

    let coproc = MockCoproc::new(5, |_| DbResult::Err(bionicdb_softcore::DbStatus::NotFound));
    let mut h = Harness::new(ExecMode::Interleaved, cat, coproc);
    let blk = h.block(4096, 128, pid);
    h.core.submit(blk.addr());
    h.run_until_quiescent(100_000);
    assert_eq!(blk.status(&h.dram), TxnStatus::Aborted);
    assert_eq!(blk.read_user_u64(&h.dram, 0), 77, "abort handler ran");
    assert_eq!(h.core.stats().aborted, 1);
}

#[test]
fn voluntary_abort_in_logic_runs_abort_handler() {
    let src = r#"
proc voluntary
logic:
    load g0, [blk+0]
    cmp g0, 10
    bgt ok
    abort
ok:
    yield
commit:
    commit
abort:
    abort
"#;
    let mut cat = Catalogue::new();
    let pid = cat.register_proc(assemble(src).unwrap()).unwrap();
    let coproc = MockCoproc::new(5, |_| DbResult::Ok(0));
    let mut h = Harness::new(ExecMode::Interleaved, cat, coproc);

    let blk1 = h.block(4096, 128, pid);
    blk1.write_user_u64(&mut h.dram, 0, 5); // <= 10 -> abort
    let blk2 = h.block(8192, 128, pid);
    blk2.write_user_u64(&mut h.dram, 0, 50); // > 10 -> commit
    h.core.submit(blk1.addr());
    h.core.submit(blk2.addr());
    h.run_until_quiescent(200_000);
    assert_eq!(blk1.status(&h.dram), TxnStatus::Aborted);
    assert_eq!(blk2.status(&h.dram), TxnStatus::Committed);
}

#[test]
fn division_by_zero_aborts_transaction() {
    let src = r#"
proc divz
logic:
    load g0, [blk+0]
    mov g1, 100
    div g1, g0
commit:
    commit
abort:
    abort
"#;
    let mut cat = Catalogue::new();
    let pid = cat.register_proc(assemble(src).unwrap()).unwrap();
    let coproc = MockCoproc::new(5, |_| DbResult::Ok(0));
    let mut h = Harness::new(ExecMode::Interleaved, cat, coproc);
    let blk = h.block(4096, 128, pid);
    // user[0] is zero -> divide by zero -> exception -> abort handler.
    h.core.submit(blk.addr());
    h.run_until_quiescent(100_000);
    assert_eq!(blk.status(&h.dram), TxnStatus::Aborted);
}

/// Build a procedure with `n` independent searches, like a YCSB-C txn.
fn multi_search_proc(n: usize) -> bionicdb_softcore::Procedure {
    let mut b = ProcBuilder::new("multisearch");
    let cps: Vec<_> = (0..n).map(|_| b.cp()).collect();
    for (i, &cp) in cps.iter().enumerate() {
        b.search(
            TableId(0),
            Operand::Imm((i * 8) as i64),
            Operand::Imm(-1),
            cp,
        );
    }
    b.begin_commit();
    for &cp in &cps {
        b.ret_checked(cp);
    }
    b.commit();
    b.begin_abort();
    b.abort();
    b.build().unwrap()
}

#[test]
fn interleaving_overlaps_db_requests_across_transactions() {
    // Single-op transactions with a long coprocessor delay: interleaved
    // execution should be much faster than serial because requests overlap.
    let run = |mode| {
        let mut cat = Catalogue::new();
        let pid = cat.register_proc(multi_search_proc(1)).unwrap();
        let coproc = MockCoproc::new(400, |_| DbResult::Ok(1));
        let mut h = Harness::new(mode, cat, coproc);
        for i in 0..16u64 {
            let blk = h.block(4096 + i * 256, 256, pid);
            h.core.submit(blk.addr());
        }
        h.run_until_quiescent(1_000_000);
        assert_eq!(h.core.stats().committed, 16);
        h.now
    };
    let serial = run(ExecMode::Serial);
    let interleaved = run(ExecMode::Interleaved);
    assert!(
        interleaved * 2 < serial,
        "interleaving should overlap the 400-cycle index latency: serial={serial} interleaved={interleaved}"
    );
}

#[test]
fn batch_closes_when_registers_run_out() {
    // Each txn uses 64 CP registers; 256 available -> batches of 4.
    let mut cat = Catalogue::new();
    let pid = cat.register_proc(multi_search_proc(64)).unwrap();
    let coproc = MockCoproc::new(20, |_| DbResult::Ok(1));
    let mut h = Harness::new(ExecMode::Interleaved, cat, coproc);
    for i in 0..8u64 {
        let blk = h.block(4096 + i * 2048, 2048, pid);
        h.core.submit(blk.addr());
    }
    h.run_until_quiescent(3_000_000);
    let st = h.core.stats();
    assert_eq!(st.committed, 8);
    assert!(
        st.batches >= 2,
        "register pressure must split batches, got {}",
        st.batches
    );
}

#[test]
fn remote_home_is_carried_in_requests() {
    let src = "proc remote\nlogic:\n    search 0, 0, c0, home=3\ncommit:\n    ret g0, c0\n    commit\nabort:\n    abort\n";
    let mut cat = Catalogue::new();
    let pid = cat.register_proc(assemble(src).unwrap()).unwrap();
    let coproc = MockCoproc::new(5, |_| DbResult::Ok(0));
    let mut h = Harness::new(ExecMode::Interleaved, cat, coproc);
    let blk = h.block(4096, 128, pid);
    h.core.submit(blk.addr());
    h.run_until_quiescent(100_000);
    let req = &h.coproc.seen[0];
    assert_eq!(req.home, PartitionId(3));
    assert!(req.is_remote());
}

#[test]
fn timestamps_are_unique_and_monotonic_within_worker() {
    let mut cat = Catalogue::new();
    let pid = cat.register_proc(multi_search_proc(1)).unwrap();
    let coproc = MockCoproc::new(5, |_| DbResult::Ok(0));
    let mut h = Harness::new(ExecMode::Interleaved, cat, coproc);
    for i in 0..4u64 {
        let blk = h.block(4096 + i * 256, 256, pid);
        h.core.submit(blk.addr());
    }
    h.run_until_quiescent(200_000);
    let ts: Vec<u64> = h.coproc.seen.iter().map(|r| r.ts).collect();
    let mut sorted = ts.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), ts.len(), "timestamps must be unique");
    assert!(
        ts.windows(2).all(|w| w[0] < w[1]),
        "per-worker timestamps monotonic"
    );
}

#[test]
fn loop_with_backward_branch_terminates() {
    // Regression guard for flag handling in Br.
    let mut b = ProcBuilder::new("count");
    let g = b.gp();
    b.mov(g, Operand::Imm(0));
    let top = b.label();
    b.bind(top);
    b.add(g, Operand::Imm(1));
    b.cmp(g, Operand::Imm(100));
    b.br(Cond::Lt, top);
    b.store(Gp(g.0), bionicdb_softcore::MemBase::Block, Operand::Imm(0));
    let mut cat = Catalogue::new();
    let pid = cat.register_proc(b.build().unwrap()).unwrap();
    let coproc = MockCoproc::new(5, |_| DbResult::Ok(0));
    let mut h = Harness::new(ExecMode::Interleaved, cat, coproc);
    let blk = h.block(4096, 128, pid);
    h.core.submit(blk.addr());
    h.run_until_quiescent(500_000);
    assert_eq!(blk.read_user_u64(&h.dram, 0), 100);
}

#[test]
fn mixed_procedures_share_a_batch_without_register_corruption() {
    // Two procedures with different GP/CP footprints interleave in one
    // batch; register renaming must keep their state disjoint.
    let mut cat = Catalogue::new();
    let small = cat.register_proc(multi_search_proc(2)).unwrap();
    let big = cat.register_proc(multi_search_proc(40)).unwrap();
    let coproc = MockCoproc::new(100, |r| DbResult::Ok(r.key_addr));
    let mut h = Harness::new(ExecMode::Interleaved, cat, coproc);
    let mut blocks = Vec::new();
    for i in 0..6u64 {
        let proc = if i % 2 == 0 { small } else { big };
        let blk = h.block(4096 + i * 1024, 1024, proc);
        h.core.submit(blk.addr());
        blocks.push(blk);
    }
    h.run_until_quiescent(1_000_000);
    assert_eq!(h.core.stats().committed, 6);
    // Every request's key address was inside its own block's user area.
    for req in &h.coproc.seen {
        let blk = blocks
            .iter()
            .find(|b| req.key_addr >= b.addr() && req.key_addr < b.addr() + b.size())
            .expect("request points into a submitted block");
        let _ = blk;
    }
}

#[test]
fn store_to_absolute_address_via_register_base() {
    // STOREs through a register base (tuple writes) reach arbitrary DRAM.
    let src = r#"
proc poke
logic:
    load g0, [blk+0]        ; absolute target address
    mov g1, 4242
    store g1, [g0+16]
commit:
    commit
abort:
    abort
"#;
    let mut cat = Catalogue::new();
    let pid = cat.register_proc(assemble(src).unwrap()).unwrap();
    let coproc = MockCoproc::new(5, |_| DbResult::Ok(0));
    let mut h = Harness::new(ExecMode::Interleaved, cat, coproc);
    let blk = h.block(4096, 128, pid);
    let target = 3 << 20;
    blk.write_user_u64(&mut h.dram, 0, target);
    h.core.submit(blk.addr());
    h.run_until_quiescent(100_000);
    assert_eq!(h.dram.host_read_u64(target + 16), 4242);
}

#[test]
fn serial_mode_commits_in_submission_order() {
    let mut cat = Catalogue::new();
    let pid = cat.register_proc(multi_search_proc(1)).unwrap();
    let coproc = MockCoproc::new(30, |_| DbResult::Ok(1));
    let mut h = Harness::new(ExecMode::Serial, cat, coproc);
    let mut blocks = Vec::new();
    for i in 0..5u64 {
        let blk = h.block(4096 + i * 256, 256, pid);
        h.core.submit(blk.addr());
        blocks.push(blk);
    }
    h.run_until_quiescent(1_000_000);
    // Serial commit timestamps must strictly increase in submission order.
    let ts: Vec<u64> = blocks.iter().map(|b| b.commit_ts(&h.dram)).collect();
    assert!(ts.windows(2).all(|w| w[0] < w[1]), "commit order {ts:?}");
}

#[test]
fn getts_returns_the_same_value_in_logic_and_commit() {
    let src = r#"
proc tscheck
logic:
    getts g0
    store g0, [blk+0]
commit:
    getts g1
    store g1, [blk+8]
    commit
abort:
    abort
"#;
    let mut cat = Catalogue::new();
    let pid = cat.register_proc(assemble(src).unwrap()).unwrap();
    let coproc = MockCoproc::new(5, |_| DbResult::Ok(0));
    let mut h = Harness::new(ExecMode::Interleaved, cat, coproc);
    let blk = h.block(4096, 128, pid);
    h.core.submit(blk.addr());
    h.run_until_quiescent(100_000);
    let a = blk.read_user_u64(&h.dram, 0);
    let b = blk.read_user_u64(&h.dram, 8);
    assert_eq!(a, b, "begin timestamp is stable across phases");
    assert!(a > 0);
}
