//! The engine-agnostic serving front end: one virtual-time loop that
//! admits open-loop traffic, applies admission control, deadlines, retry
//! and (optionally) cross-transaction batching — against *any* execution
//! engine implementing [`ServeEngine`].
//!
//! Two engine shapes exist:
//!
//! * **Synchronous** (the Silo baseline, [`super::sim::SiloEngine`]): a
//!   dispatched transaction's service time is known immediately — the
//!   body runs inline against the core model — so [`ServeEngine::dispatch`]
//!   returns [`Dispatch::Done`] and the loop schedules the completion on
//!   its own event heap. With a synchronous engine this loop is
//!   *instruction-for-instruction* the pre-refactor `sim.rs` driver: the
//!   same events in the same order consume the same RNG draws, which is
//!   why the `servecheck` goldens survive the refactor byte-for-byte.
//! * **Asynchronous** (the cycle-accurate BionicDB machine,
//!   [`super::hw::BionicServeEngine`]): `dispatch` injects the
//!   transaction into the simulated hardware and returns
//!   [`Dispatch::Pending`]; completions surface later through
//!   [`ServeEngine::advance`], which steps the machine's clock in lockstep
//!   with the front end's virtual time.
//!
//! ## Batched admission
//!
//! [`BatchPolicy`] turns the dispatcher into a staging buffer: admitted
//! tickets accumulate until `width` are ready (or the oldest has waited
//! `age_flush_ns`), then the whole group dispatches at once. Against the
//! hardware engine this is what feeds `BatchMode::CrossTxn` (DESIGN.md
//! §16) a real producer: a flushed group enters the softcore together,
//! forms one interleaving batch, and its index probes ride the batch
//! engines' DRAM waves. Staged tickets hold their server slots, so
//! batching changes *when* work enters an engine, never admission
//! accounting — with `batch: None` (every stock config) the staging path
//! is never entered and the legacy behavior is untouched.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use super::arrival::ArrivalGen;
use super::queue::{AdmissionQueue, Shed, Ticket};
use super::{RetryBucket, RetryMode, ServeConfig, ServeSummary};

/// Cross-transaction batching policy for the dispatcher (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Dispatch a staged group as soon as it reaches this many tickets
    /// (effective width is capped at the engine's server count — a group
    /// can never out-grow the slots that carry it).
    pub width: usize,
    /// Dispatch a non-full group once its oldest ticket has waited this
    /// long, bounding the latency cost of batch formation.
    pub age_flush_ns: u64,
}

/// What became of a dispatch.
#[derive(Debug, Clone, Copy)]
pub enum Dispatch {
    /// The body ran inline; outcome and timing are already known.
    Done {
        /// Virtual completion time.
        done_ns: u64,
        /// Whether the transaction committed.
        committed: bool,
        /// Server-busy time charged for the execution.
        svc_ns: u64,
    },
    /// The engine executes concurrently in its own simulated time; the
    /// completion will surface from [`ServeEngine::advance`].
    Pending,
}

/// A completion surfaced by an asynchronous engine.
#[derive(Debug, Clone, Copy)]
pub struct Completion {
    /// The dispatched ticket this execution belongs to.
    pub ticket: Ticket,
    /// Virtual completion time.
    pub done_ns: u64,
    /// Whether the transaction committed.
    pub committed: bool,
    /// Server-busy time charged for the execution.
    pub svc_ns: u64,
}

/// An execution engine the serving front end can drive: admit → dispatch
/// → completion events in virtual time.
pub trait ServeEngine {
    /// Server slots (maximum concurrently dispatched transactions).
    fn servers(&self) -> usize;

    /// Execute (or begin executing) `tk`'s transaction at `now_ns`.
    fn dispatch(&mut self, tk: &Ticket, now_ns: u64) -> Dispatch;

    /// Dispatches begun but not yet completed. Synchronous engines always
    /// report zero, which keeps [`serve_with`]'s fast path free of any
    /// engine clock management.
    fn in_flight(&self) -> usize {
        0
    }

    /// Advance the engine's internal clock toward `to_ns`, stopping early
    /// at the first completion(s). Returns the completions in
    /// deterministic `(done_ns, ticket id)` order, or an empty vector
    /// once `to_ns` is reached with nothing finished. Called with
    /// `u64::MAX` when the front end has no scheduled events left and is
    /// draining in-flight work.
    fn advance(&mut self, to_ns: u64) -> Vec<Completion> {
        let _ = to_ns;
        Vec::new()
    }
}

/// Heap events. `Flush` was added after the `servecheck` goldens were
/// captured; it sorts after the legacy variants, and configurations
/// without a [`BatchPolicy`] never push it, so legacy event schedules are
/// unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    /// A fresh request or a scheduled retry reaches the admission queue.
    Arrival(Ticket),
    /// A server finishes its current transaction.
    Done,
    /// Check whether the staged batch has aged past its flush deadline.
    Flush,
}

/// The serving loop's mutable state, bundled so the event handlers can be
/// methods instead of ten-argument free functions.
struct ServeLoop<'a, E: ServeEngine> {
    cfg: &'a ServeConfig,
    engine: &'a mut E,
    queue: AdmissionQueue,
    bucket: Option<RetryBucket>,
    sum: ServeSummary,
    heap: BinaryHeap<Reverse<(u64, u64, Ev)>>,
    seq: u64,
    free: usize,
    /// Tickets admitted and holding a server slot, awaiting batch flush.
    staged: Vec<Ticket>,
    /// When the oldest staged ticket entered staging.
    staged_at: u64,
    /// `BatchPolicy::width` capped at the server count.
    width: usize,
}

impl<E: ServeEngine> ServeLoop<'_, E> {
    fn push(&mut self, t: u64, ev: Ev) {
        self.seq += 1;
        self.heap.push(Reverse((t, self.seq, ev)));
    }

    /// Client-side failure handling: retry per policy or settle the
    /// terminal outcome. `shed` distinguishes admission sheds from OCC
    /// aborts.
    fn fail(&mut self, tk: Ticket, now: u64, shed: bool) {
        let next_attempt = tk.attempt + 1;
        let retry_at = match self.cfg.retry {
            RetryMode::None => None,
            RetryMode::Immediate { max_attempts } => {
                (next_attempt < max_attempts).then_some(now + 1)
            }
            RetryMode::Budgeted(p) => {
                let at = now + p.backoff_ns(next_attempt);
                (next_attempt < p.max_attempts
                    && at < tk.deadline_ns
                    && self.bucket.as_mut().expect("budgeted bucket").try_take())
                .then_some(at)
            }
        };
        match retry_at {
            Some(at) => {
                self.sum.retries += 1;
                self.push(
                    at,
                    Ev::Arrival(Ticket {
                        attempt: next_attempt,
                        ..tk
                    }),
                );
            }
            None if shed => self.sum.shed += 1,
            None => self.sum.aborted += 1,
        }
    }

    /// Account a known outcome at its completion time. For a synchronous
    /// engine the matching `Ev::Done` also lands at `done`, so folding
    /// `done` into the horizon here (for every branch) changes nothing;
    /// for an asynchronous engine it is the only horizon update.
    fn settle(&mut self, tk: Ticket, done: u64, committed: bool, svc_ns: u64) {
        self.sum.horizon_ns = self.sum.horizon_ns.max(done);
        if self.cfg.enforce_deadline && done > tk.deadline_ns {
            // The commit point falls past the deadline: the engine's
            // cancel token would fire and the commit aborts. The body's
            // service time is still spent.
            self.sum.timed_out += 1;
        } else if committed && done <= tk.deadline_ns {
            self.sum.good += 1;
            self.sum.good_busy_ns += svc_ns;
            self.sum.sojourn.record(done - tk.born_ns);
        } else if committed {
            self.sum.late += 1;
        } else {
            self.fail(tk, done, false);
        }
    }

    /// Start `tk`'s execution at `now` (its server slot is already
    /// reserved by the caller).
    fn run_ticket(&mut self, tk: Ticket, now: u64) {
        match self.engine.dispatch(&tk, now) {
            Dispatch::Done {
                done_ns,
                committed,
                svc_ns,
            } => {
                self.sum.executed += 1;
                self.sum.busy_ns += svc_ns;
                self.push(done_ns, Ev::Done);
                self.settle(tk, done_ns, committed, svc_ns);
            }
            Dispatch::Pending => self.sum.executed += 1,
        }
    }

    /// Dispatch the whole staged group at `now`.
    fn flush(&mut self, now: u64) {
        let group = std::mem::take(&mut self.staged);
        for tk in group {
            self.run_ticket(tk, now);
        }
    }

    /// Drain the admission queue into idle servers (or, with batching,
    /// into the staging buffer) at `now`.
    fn dispatch_ready(&mut self, now: u64) {
        while self.free > 0 {
            let Some(tk) = self.queue.take(now) else { break };
            if self.cfg.enforce_deadline && now >= tk.deadline_ns {
                self.sum.timed_out += 1;
                continue;
            }
            self.free -= 1;
            match self.cfg.batch {
                None => self.run_ticket(tk, now),
                Some(b) => {
                    if self.staged.is_empty() {
                        self.staged_at = now;
                        self.push(now.saturating_add(b.age_flush_ns), Ev::Flush);
                    }
                    self.staged.push(tk);
                    if self.staged.len() >= self.width {
                        self.flush(now);
                    }
                }
            }
        }
    }

    fn run(&mut self, rng_arr: &mut SmallRng, gen: &mut ArrivalGen) {
        let mut born = 0u64;
        // First fresh arrival; each fresh arrival schedules the next
        // until `requests` have been born.
        if self.cfg.requests > 0 {
            let t0 = gen.next_gap_ns(rng_arr);
            self.push(
                t0,
                Ev::Arrival(Ticket {
                    id: 0,
                    born_ns: t0,
                    deadline_ns: t0.saturating_add(self.cfg.deadline_ns),
                    txn_index: 0,
                    attempt: 0,
                }),
            );
            born = 1;
            self.sum.fresh = 1;
        }

        loop {
            // Asynchronous engines: surface every completion that lands
            // before the next scheduled event, so freed slots re-dispatch
            // at completion time, not at the next arrival.
            if self.engine.in_flight() > 0 {
                let bound = self
                    .heap
                    .peek()
                    .map_or(u64::MAX, |Reverse((t, _, _))| *t);
                let completions = self.engine.advance(bound);
                if !completions.is_empty() {
                    let mut latest = 0u64;
                    for c in &completions {
                        self.sum.busy_ns += c.svc_ns;
                        self.free += 1;
                        latest = latest.max(c.done_ns);
                        self.settle(c.ticket, c.done_ns, c.committed, c.svc_ns);
                    }
                    self.dispatch_ready(latest);
                    continue;
                }
            }
            let Some(Reverse((now, _, ev))) = self.heap.pop() else {
                break;
            };
            self.sum.horizon_ns = self.sum.horizon_ns.max(now);
            match ev {
                Ev::Arrival(tk) => {
                    if tk.attempt == 0 {
                        if let Some(b) = self.bucket.as_mut() {
                            b.on_fresh();
                        }
                        if (born as usize) < self.cfg.requests {
                            let t = now + gen.next_gap_ns(rng_arr);
                            self.push(
                                t,
                                Ev::Arrival(Ticket {
                                    id: born,
                                    born_ns: t,
                                    deadline_ns: t.saturating_add(self.cfg.deadline_ns),
                                    txn_index: born as usize,
                                    attempt: 0,
                                }),
                            );
                            born += 1;
                            self.sum.fresh += 1;
                        }
                    }
                    match self.queue.offer(tk, now) {
                        Ok(()) => {}
                        Err(Shed::Rejected) => self.fail(tk, now, true),
                        Err(Shed::Evicted(victim)) => self.fail(victim, now, true),
                    }
                }
                Ev::Done => self.free += 1,
                Ev::Flush => {
                    if let Some(b) = self.cfg.batch {
                        if !self.staged.is_empty()
                            && now >= self.staged_at.saturating_add(b.age_flush_ns)
                        {
                            self.flush(now);
                        }
                    }
                }
            }
            self.dispatch_ready(now);
        }
    }
}

/// Run one open-loop serving scenario against `engine` to completion and
/// return the conserved terminal ledger. This is the single front end
/// behind both the Silo virtual-time driver ([`super::sim::simulate`])
/// and the BionicDB hardware driver ([`super::hw`]).
pub fn serve_with<E: ServeEngine>(engine: &mut E, cfg: &ServeConfig) -> ServeSummary {
    cfg.validate().expect("invalid serving configuration");
    // Arrival gaps draw from their own stream, decorrelated from the
    // engines' transaction parameter draws.
    let mut rng_arr = SmallRng::seed_from_u64(cfg.seed);
    let mut gen = ArrivalGen::new(cfg.arrivals);
    let free = engine.servers().max(1);
    let width = cfg
        .batch
        .map_or(1, |b| b.width.min(engine.servers().max(1)).max(1));
    let mut lp = ServeLoop {
        cfg,
        engine,
        queue: AdmissionQueue::new(cfg.policy, cfg.queue_capacity),
        bucket: match cfg.retry {
            RetryMode::Budgeted(p) => Some(RetryBucket::new(&p)),
            _ => None,
        },
        sum: ServeSummary::new(),
        heap: BinaryHeap::new(),
        seq: 0,
        free,
        staged: Vec::new(),
        staged_at: 0,
        width,
    };
    lp.run(&mut rng_arr, &mut gen);
    assert!(lp.staged.is_empty(), "staged tickets must flush before exit");
    assert_eq!(lp.engine.in_flight(), 0, "engine drained before exit");

    // Expired entries purged inside the queue never re-emerged: they are
    // terminal timeouts. Copy the queue's shed ledger out.
    let mut sum = lp.sum;
    sum.timed_out += lp.queue.dropped_expired;
    sum.rejected = lp.queue.rejected;
    sum.dropped_expired = lp.queue.dropped_expired;
    sum.evicted = lp.queue.evicted;
    sum.queue_high_water = lp.queue.high_water as u64;
    sum.assert_conserved();
    sum
}
