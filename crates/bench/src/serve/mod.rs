//! Live serving for the Silo baseline: open-loop traffic, admission
//! control, deadlines, and graceful degradation.
//!
//! Every other measurement in this repo is closed-loop: the driver issues
//! the next transaction when the previous one finishes, so the system can
//! never be *offered* more than it can serve. Real OLTP front-ends are
//! open-loop — clients arrive on their own clock — and the interesting
//! regime is overload: what happens to *goodput* (transactions committed
//! within their deadline) when the offered load passes saturation. With no
//! control, an unbounded queue absorbs the excess, sojourn times grow
//! without bound, and every admitted request eventually misses its
//! deadline: throughput stays at capacity while goodput collapses toward
//! zero. Admission control (a bounded queue plus a shedding policy),
//! server-side deadline enforcement (doomed transactions abort at the
//! commit point instead of occupying a worker), and budgeted client retry
//! keep queueing delay bounded, so goodput plateaus at capacity instead.
//!
//! ## Layout
//!
//! * [`arrival`] — the open-loop arrival processes (Poisson, 2-state
//!   MMPP), with typed validation errors for degenerate parameters;
//! * [`queue`] — the bounded admission queue and shedding policies, a
//!   pure data structure shared by every engine;
//! * [`engine`] — the engine-agnostic front end: the [`ServeEngine`]
//!   trait (admit → dispatch → completion events in virtual time), the
//!   generic serving loop, and the [`BatchPolicy`] cross-transaction
//!   batching dispatcher;
//! * [`sim`] — the Silo virtual-time engine: service times come from the
//!   calibrated Xeon core model, events run on a discrete-event heap,
//!   summaries are byte-stable (the `servecheck` CI gate);
//! * [`hw`] — the BionicDB hardware engine: dispatches inject
//!   transactions into the cycle-accurate [`bionicdb::Machine`] mid-run
//!   (`inject_txn`/`step_until`, DESIGN.md §17) and completions surface
//!   at exact simulated-commit times;
//! * [`wall`] — the wall-clock engine: real threads, real sleeps, real
//!   [`bionicdb_silo::CancelToken`] deadline aborts at the commit point.
//!
//! The Silo transaction mixes come from [`bionicdb_workloads::ServeMix`]
//! — the same five systems the closed-loop figures drive; the hardware
//! engine maps each [`bionicdb_workloads::ServeKind`] onto the matching
//! BionicDB workload through the `Workload` ABI.

pub mod arrival;
pub mod engine;
pub mod hw;
pub mod queue;
pub mod sim;
pub mod wall;

pub use arrival::{ArrivalGen, ArrivalProcess, ServeConfigError};
pub use engine::{BatchPolicy, Completion, Dispatch, ServeEngine};
pub use queue::{AdmissionQueue, Shed, ShedPolicy, Ticket};

use bionicdb_fpga::obs::LatencyHistogram;

/// Client-side retry behaviour when a request is rejected, evicted or
/// aborted (timed-out requests are never retried — the client's deadline
/// has passed either way).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RetryMode {
    /// Never retry.
    None,
    /// The storm-prone baseline: re-enqueue immediately, no backoff, no
    /// budget, up to `max_attempts` total attempts.
    Immediate {
        /// Total attempts per request (1 = no retries).
        max_attempts: u32,
    },
    /// Exponential backoff plus a global retry budget (token bucket).
    Budgeted(RetryPolicy),
}

/// Budgeted retry: exponential backoff capped at `max_backoff_ns`, and a
/// token bucket that earns `budget_ratio` tokens per *fresh* request —
/// so retries can never exceed that fraction of offered load, which is
/// what prevents retry storms from amplifying an overload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per request (1 = no retries).
    pub max_attempts: u32,
    /// First retry waits this long.
    pub base_backoff_ns: u64,
    /// Backoff ceiling.
    pub max_backoff_ns: u64,
    /// Retry tokens earned per fresh request (e.g. 0.1 = at most 10%
    /// extra load from retries).
    pub budget_ratio: f64,
    /// Token bucket depth (burst of retries allowed after a quiet spell).
    pub burst: f64,
}

impl RetryPolicy {
    /// Backoff before attempt `attempt` (the first retry is attempt 1).
    pub fn backoff_ns(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(20);
        self.base_backoff_ns
            .saturating_mul(1u64 << shift)
            .min(self.max_backoff_ns)
    }
}

/// The retry token bucket. Earns tokens on fresh arrivals, spends one per
/// retry; an empty bucket means the retry is dropped on the floor.
#[derive(Debug, Clone, Copy)]
pub struct RetryBucket {
    tokens: f64,
    ratio: f64,
    burst: f64,
}

impl RetryBucket {
    /// A bucket starting full.
    pub fn new(policy: &RetryPolicy) -> RetryBucket {
        RetryBucket {
            tokens: policy.burst,
            ratio: policy.budget_ratio,
            burst: policy.burst,
        }
    }

    /// A fresh request arrived: earn `budget_ratio` tokens.
    pub fn on_fresh(&mut self) {
        self.tokens = (self.tokens + self.ratio).min(self.burst);
    }

    /// Spend one token for a retry; `false` = budget exhausted.
    pub fn try_take(&mut self) -> bool {
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// One serving run's parameters.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Logical servers (worker lanes draining the queue).
    pub servers: usize,
    /// Shedding policy.
    pub policy: ShedPolicy,
    /// Queue bound (ignored under [`ShedPolicy::None`]).
    pub queue_capacity: usize,
    /// Relative deadline per request, nanoseconds.
    pub deadline_ns: u64,
    /// Server-side enforcement: skip expired requests at dispatch and
    /// abort doomed transactions at the commit point. Off = the server
    /// happily burns workers on work nobody is waiting for.
    pub enforce_deadline: bool,
    /// Client retry behaviour.
    pub retry: RetryMode,
    /// Arrival process.
    pub arrivals: ArrivalProcess,
    /// Fresh requests to offer.
    pub requests: usize,
    /// RNG seed (arrival gaps and transaction parameter draws use
    /// decorrelated streams derived from it).
    pub seed: u64,
    /// Cross-transaction batching at the dispatcher: admitted requests
    /// stage into groups before entering the engine (see
    /// [`engine::BatchPolicy`]). `None` — every stock configuration —
    /// dispatches one at a time, byte-identical to the pre-batching
    /// front end.
    pub batch: Option<BatchPolicy>,
}

impl ServeConfig {
    /// The no-control baseline: unbounded FIFO, no enforcement, naive
    /// immediate retry.
    pub fn baseline(
        arrivals: ArrivalProcess,
        requests: usize,
        deadline_ns: u64,
        servers: usize,
        seed: u64,
    ) -> ServeConfig {
        ServeConfig {
            servers,
            policy: ShedPolicy::None,
            queue_capacity: usize::MAX,
            deadline_ns,
            enforce_deadline: false,
            retry: RetryMode::Immediate { max_attempts: 10 },
            arrivals,
            requests,
            seed,
            batch: None,
        }
    }

    /// The controlled server: bounded queue with deadline-aware drops,
    /// commit-point enforcement, budgeted backoff retry.
    pub fn controlled(
        arrivals: ArrivalProcess,
        requests: usize,
        deadline_ns: u64,
        servers: usize,
        seed: u64,
    ) -> ServeConfig {
        ServeConfig {
            servers,
            policy: ShedPolicy::DeadlineDrop,
            queue_capacity: 4 * servers.max(1),
            deadline_ns,
            enforce_deadline: true,
            retry: RetryMode::Budgeted(RetryPolicy {
                max_attempts: 4,
                base_backoff_ns: deadline_ns / 8,
                max_backoff_ns: deadline_ns / 2,
                budget_ratio: 0.1,
                burst: 8.0,
            }),
            arrivals,
            requests,
            seed,
            batch: None,
        }
    }

    /// Enable cross-transaction batched admission (builder style): stage
    /// admitted requests into groups of `width`, flushing a non-full
    /// group once its oldest member has waited `age_flush_ns`.
    pub fn with_batch(mut self, width: usize, age_flush_ns: u64) -> ServeConfig {
        self.batch = Some(BatchPolicy {
            width,
            age_flush_ns,
        });
        self
    }

    /// Reject degenerate parameters with a typed error: invalid arrival
    /// rates (zero/negative/NaN/infinite), zero MMPP dwell times, and a
    /// zero-capacity queue under a bounded shedding policy (which would
    /// shed every request on arrival and measure nothing). The engines
    /// call this before running.
    pub fn validate(&self) -> Result<(), ServeConfigError> {
        self.arrivals.validate()?;
        if self.policy != ShedPolicy::None && self.queue_capacity == 0 {
            return Err(ServeConfigError::ZeroQueueCapacity);
        }
        Ok(())
    }
}

/// Terminal outcome counts plus queue/latency detail for one serving run.
/// Every fresh request ends in exactly one of the five terminal buckets:
/// `good + late + timed_out + shed + aborted == fresh`.
#[derive(Debug, Clone)]
pub struct ServeSummary {
    /// Fresh requests offered.
    pub fresh: u64,
    /// Retry attempts enqueued (not counted in `fresh`).
    pub retries: u64,
    /// Transaction bodies actually executed (any outcome).
    pub executed: u64,
    /// Committed within deadline — the goodput numerator.
    pub good: u64,
    /// Committed after the deadline (possible only without enforcement:
    /// the server did the work, the client had stopped waiting).
    pub late: u64,
    /// Missed the deadline: expired in queue, skipped at dispatch, or
    /// cancelled at the commit point.
    pub timed_out: u64,
    /// Shed (rejected or evicted) with no retry left.
    pub shed: u64,
    /// OCC-aborted with no retry left.
    pub aborted: u64,
    /// Admission rejections (event count; retries may follow).
    pub rejected: u64,
    /// Expired entries purged from the queue.
    pub dropped_expired: u64,
    /// Entries evicted by later arrivals.
    pub evicted: u64,
    /// Deepest queue depth observed.
    pub queue_high_water: u64,
    /// Virtual or wall time from first arrival to last terminal event.
    pub horizon_ns: u64,
    /// Total server-busy nanoseconds (all executions).
    pub busy_ns: u64,
    /// Server-busy nanoseconds spent on `good` requests — the useful
    /// fraction of the machine.
    pub good_busy_ns: u64,
    /// Sojourn time (birth → commit) of `good` requests, nanoseconds.
    pub sojourn: LatencyHistogram,
}

impl ServeSummary {
    /// An all-zero summary.
    pub fn new() -> ServeSummary {
        ServeSummary {
            fresh: 0,
            retries: 0,
            executed: 0,
            good: 0,
            late: 0,
            timed_out: 0,
            shed: 0,
            aborted: 0,
            rejected: 0,
            dropped_expired: 0,
            evicted: 0,
            queue_high_water: 0,
            horizon_ns: 0,
            busy_ns: 0,
            good_busy_ns: 0,
            sojourn: LatencyHistogram::new(),
        }
    }

    /// Goodput: committed-in-deadline requests per second of run horizon.
    pub fn goodput_per_sec(&self) -> f64 {
        if self.horizon_ns == 0 {
            0.0
        } else {
            self.good as f64 / (self.horizon_ns as f64 / 1e9)
        }
    }

    /// Fraction of fresh requests shed (rejected/evicted, no retry left).
    pub fn shed_rate(&self) -> f64 {
        if self.fresh == 0 {
            0.0
        } else {
            self.shed as f64 / self.fresh as f64
        }
    }

    /// Fraction of fresh requests that missed their deadline (late +
    /// timed out).
    pub fn timeout_rate(&self) -> f64 {
        if self.fresh == 0 {
            0.0
        } else {
            (self.late + self.timed_out) as f64 / self.fresh as f64
        }
    }

    /// Terminal-outcome conservation: every fresh request ended exactly
    /// once. Panics (with the ledger) when violated — the engines call
    /// this before returning.
    pub fn assert_conserved(&self) {
        let total = self.good + self.late + self.timed_out + self.shed + self.aborted;
        assert_eq!(
            total, self.fresh,
            "terminal outcomes must partition fresh requests: {self:?}"
        );
    }

    /// Render as a deterministic single-object JSON string (fixed field
    /// order, fixed float formats) — the byte-stable form `servecheck`
    /// pins to a golden.
    pub fn render_json(&self, label: &str) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"label\":\"{label}\",\"fresh\":{},\"retries\":{},\"executed\":{},\
             \"good\":{},\"late\":{},\"timed_out\":{},\"shed\":{},\"aborted\":{},\
             \"rejected\":{},\"dropped_expired\":{},\"evicted\":{},\"queue_high_water\":{},\
             \"horizon_ns\":{},\"busy_ns\":{},\"good_busy_ns\":{},\
             \"goodput_per_sec\":{:.3},\"shed_rate\":{:.4},\"timeout_rate\":{:.4},\"sojourn\":{{",
            self.fresh,
            self.retries,
            self.executed,
            self.good,
            self.late,
            self.timed_out,
            self.shed,
            self.aborted,
            self.rejected,
            self.dropped_expired,
            self.evicted,
            self.queue_high_water,
            self.horizon_ns,
            self.busy_ns,
            self.good_busy_ns,
            self.goodput_per_sec(),
            self.shed_rate(),
            self.timeout_rate(),
        );
        self.sojourn.write_json_fields(&mut s);
        s.push_str("}}");
        s
    }
}

impl Default for ServeSummary {
    fn default() -> Self {
        ServeSummary::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_backoff_ns: 100,
            max_backoff_ns: 1_000,
            budget_ratio: 0.1,
            burst: 8.0,
        };
        assert_eq!(p.backoff_ns(1), 100);
        assert_eq!(p.backoff_ns(2), 200);
        assert_eq!(p.backoff_ns(3), 400);
        assert_eq!(p.backoff_ns(5), 1_000, "capped");
        assert_eq!(p.backoff_ns(40), 1_000, "shift clamped, still capped");
    }

    #[test]
    fn retry_budget_exhausts_at_ratio() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_backoff_ns: 1,
            max_backoff_ns: 1,
            budget_ratio: 0.1,
            burst: 5.0,
        };
        let mut b = RetryBucket::new(&p);
        // Drain the initial burst.
        let mut burst = 0;
        while b.try_take() {
            burst += 1;
        }
        assert_eq!(burst, 5);
        // 100 fresh requests earn 10 tokens: no more than 10 retries.
        let mut granted = 0;
        for _ in 0..100 {
            b.on_fresh();
            if b.try_take() {
                granted += 1;
            }
        }
        assert!(granted <= 10, "budget 0.1 × 100 fresh, got {granted}");
        assert!(granted >= 9, "earned tokens are spendable, got {granted}");
    }

    #[test]
    fn summary_json_is_deterministic_and_conserved() {
        let mut s = ServeSummary::new();
        s.fresh = 10;
        s.good = 6;
        s.late = 1;
        s.timed_out = 1;
        s.shed = 1;
        s.aborted = 1;
        s.horizon_ns = 1_000_000;
        s.sojourn.record(500);
        s.assert_conserved();
        assert_eq!(s.render_json("x"), s.render_json("x"));
        assert!(s.render_json("x").starts_with("{\"label\":\"x\",\"fresh\":10,"));
    }

    #[test]
    fn config_validate_rejects_degenerate_setups() {
        let good = ServeConfig::controlled(
            ArrivalProcess::Poisson { rate_per_sec: 1e5 },
            10,
            1_000_000,
            2,
            1,
        );
        assert!(good.validate().is_ok());

        let mut bad_rate = good;
        bad_rate.arrivals = ArrivalProcess::Poisson {
            rate_per_sec: f64::NAN,
        };
        assert!(matches!(
            bad_rate.validate().unwrap_err(),
            ServeConfigError::InvalidRate("rate_per_sec", _)
        ));

        let mut zero_cap = good;
        zero_cap.queue_capacity = 0;
        assert_eq!(
            zero_cap.validate().unwrap_err(),
            ServeConfigError::ZeroQueueCapacity
        );

        // An *unbounded* queue never consults its capacity: zero is fine.
        let mut unbounded = good;
        unbounded.policy = ShedPolicy::None;
        unbounded.queue_capacity = 0;
        assert!(unbounded.validate().is_ok());
    }

    #[test]
    fn with_batch_sets_policy_and_stock_configs_have_none() {
        let cfg = ServeConfig::baseline(
            ArrivalProcess::Poisson { rate_per_sec: 1e5 },
            10,
            1_000_000,
            2,
            1,
        );
        assert_eq!(cfg.batch, None, "stock configs stay unbatched");
        let batched = cfg.with_batch(8, 50_000);
        assert_eq!(
            batched.batch,
            Some(BatchPolicy {
                width: 8,
                age_flush_ns: 50_000
            })
        );
    }

    #[test]
    #[should_panic(expected = "terminal outcomes")]
    fn unbalanced_ledger_panics() {
        let mut s = ServeSummary::new();
        s.fresh = 3;
        s.good = 1;
        s.assert_conserved();
    }
}
