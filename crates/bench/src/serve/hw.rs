//! The BionicDB hardware serving engine: open-loop traffic into the
//! cycle-accurate machine (DESIGN.md §17).
//!
//! Where the Silo engine runs each transaction body inline against the
//! core model ([`Dispatch::Done`]), this engine is genuinely concurrent:
//! [`ServeEngine::dispatch`] steps the [`Machine`] to the arrival's
//! simulated cycle and enters the transaction through
//! [`Machine::inject_txn`] — mid-run, with earlier dispatches still in
//! the softcores' interleaving batches — and returns
//! [`Dispatch::Pending`]. Completions surface from
//! [`ServeEngine::advance`], which walks the machine's clock forward in
//! bounded chunks ([`ADVANCE_CHUNK_CYCLES`]) and watches each in-flight
//! block's header word. A committed block reports its *exact* commit
//! cycle (the high bits of the hardware commit timestamp, which the
//! writeback stamps as `(cycle << 10) | worker`); an aborted block
//! settles at the detection cycle, chunk-granular, mirroring how the
//! host would poll a completion ring.
//!
//! ## Virtual-time contract
//!
//! The front end's clock is nanoseconds; the machine's is FPGA cycles at
//! [`bionicdb_fpga::timing::FpgaConfig::clock_hz`]. Both conversions
//! floor, so they are monotone and a completion bounded by `advance`'s
//! `to_ns` target never reports past it. Service time is charged from
//! dispatch to completion — on hardware the "server" is a softcore
//! context slot, occupied for exactly that window.
//!
//! ## Determinism
//!
//! Dispatch order is the front end's (a pure function of `ServeConfig`),
//! worker routing is least-outstanding with lowest-id ties, transaction
//! parameters draw from one `SmallRng` in dispatch order, and the machine
//! itself is deterministic under every schedule (`step_until` composes
//! with fast-forward and epoch-parallel execution byte-identically — see
//! `crates/bench/tests/inject.rs`). A fixed seed therefore yields a
//! byte-identical [`ServeSummary`](super::ServeSummary), which the
//! `servecheck` hardware-engine golden section pins.

use std::collections::HashMap;

use bionicdb::{BatchMode, BionicConfig, TxnBlock, TxnStatus};
use bionicdb_workloads::abi::YcsbWorkload;
use bionicdb_workloads::spec::YcsbSpec;
use bionicdb_workloads::ycsb::{YcsbBionic, YcsbKind};
use bionicdb_workloads::{ServeKind, StdWorkload, TpccMix, Workload};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use super::engine::{Completion, Dispatch, ServeEngine};
use super::queue::Ticket;
use super::ServeConfig;

/// Cycles advanced per `step_until` call inside [`ServeEngine::advance`]:
/// the completion-detection granularity for *aborts* (commits report
/// their exact hardware cycle regardless). 512 cycles ≈ 4 µs at the
/// default 125 MHz clock — far below any deadline worth measuring.
pub const ADVANCE_CHUNK_CYCLES: u64 = 512;

/// Seed decorrelation constant for the transaction-parameter stream
/// (the arrival stream uses `cfg.seed` directly).
const TXN_SEED_XOR: u64 = 0xB10D_B10D_B10D_B10D;

/// Map a serving mix onto the matching BionicDB workload. The same five
/// systems the Silo serving engine drives, through the `Workload` ABI.
pub fn hw_workload(kind: ServeKind) -> StdWorkload {
    match kind {
        ServeKind::YcsbC => StdWorkload::Ycsb(YcsbKind::ReadHomed),
        ServeKind::YcsbScan => StdWorkload::Ycsb(YcsbKind::Scan),
        ServeKind::TpccMixed => StdWorkload::Tpcc(TpccMix::Mixed),
        ServeKind::TpccPayment => StdWorkload::Tpcc(TpccMix::PaymentOnly),
        ServeKind::SmallBank => StdWorkload::SmallBank,
    }
}

/// Per-workload softcore batch depth, mirroring the closed-loop bench
/// builders: write-heavy hot-record mixes keep a small conflict window,
/// read-dominated YCSB interleaves deep.
fn hw_max_batch(kind: ServeKind) -> usize {
    match kind {
        ServeKind::YcsbC | ServeKind::YcsbScan => 8,
        ServeKind::TpccMixed | ServeKind::TpccPayment | ServeKind::SmallBank => 2,
    }
}

/// Server slots the hardware engine exposes: one per softcore context
/// slot (`workers × max_batch` transactions genuinely in flight). Sweep
/// bins size `ServeConfig::servers` (and thus queue capacity) with this.
pub fn hw_servers(kind: ServeKind, workers: usize) -> usize {
    workers * hw_max_batch(kind)
}

/// The machine configuration one serving run executes on. `cross_txn`
/// arms `BatchMode::CrossTxn` so flushed front-end groups ride the batch
/// engines' DRAM waves together ([`super::engine::BatchPolicy`] feeds the
/// producer side); `None` keeps the bit-inert unbatched index path.
pub fn hw_config(kind: ServeKind, workers: usize, cross_txn: Option<usize>) -> BionicConfig {
    let mut cfg = BionicConfig::small(workers);
    cfg.max_batch = hw_max_batch(kind);
    if let Some(width) = cross_txn {
        cfg.batch_mode = BatchMode::CrossTxn;
        cfg.batch_width = width;
    }
    cfg
}

/// Hash buckets for the *chained* YCSB-C serving variant: ~16 records
/// per chain at the tiny spec's 2 000 records/partition, so every point
/// read is a multi-hop pointer chase. This is the regime the batched
/// level-wise traversal engines (DESIGN.md §16) exist for — short-chain
/// stock YCSB resolves in one hop and wave formation only adds latency
/// there (measured ~0.85x), while 16-deep chains give CrossTxn waves
/// ~1.8x capacity at width 4. The batched-admission serving claim runs
/// on this variant for exactly that reason.
pub const CHAINED_HASH_BUCKETS: u64 = 128;

/// Build the workload a hardware serving run executes. `chained_hash`
/// swaps YCSB-C's index for the [`CHAINED_HASH_BUCKETS`] long-chain
/// table (ignored for every other kind, which have no such ablation).
fn build_workload(
    kind: ServeKind,
    workers: usize,
    cross_txn: Option<usize>,
    chained_hash: bool,
) -> Box<dyn Workload> {
    if chained_hash && kind == ServeKind::YcsbC {
        let spec = YcsbSpec {
            hash_buckets: Some(CHAINED_HASH_BUCKETS),
            ..YcsbSpec::tiny()
        };
        Box::new(YcsbWorkload {
            sys: YcsbBionic::build(hw_config(kind, workers, cross_txn), spec, 12),
            kind: YcsbKind::ReadHomed,
        })
    } else {
        hw_workload(kind).build(hw_config(kind, workers, cross_txn))
    }
}

/// A dispatched transaction whose block is live inside the machine.
struct InFlight {
    tk: Ticket,
    blk: TxnBlock,
    worker: usize,
    /// Front-end dispatch time (service time is charged from here).
    dispatch_ns: u64,
}

/// Capacity probe result for one hardware serving setup.
#[derive(Debug, Clone, Copy)]
pub struct HwProbe {
    /// Committed transactions per second of a fully loaded machine.
    pub capacity_per_sec: f64,
    /// Mean in-system latency at full load (Little's law over the
    /// machine's context slots), nanoseconds — the scale deadlines are
    /// set against.
    pub mean_latency_ns: f64,
}

/// Measure the machine's closed-loop capacity for `kind`: preload
/// `txns_per_worker` transactions per worker (the legacy batch path the
/// injection proptest pins against), run to quiescence, and convert the
/// committed throughput at the FPGA clock. Deterministic for a fixed
/// build — the probe runs on its own machine so the serving run starts
/// from identically prepared state.
pub fn probe_hw(kind: ServeKind, workers: usize, txns_per_worker: usize) -> HwProbe {
    probe_hw_variant(kind, workers, txns_per_worker, false)
}

/// [`probe_hw`] with the variant switch: `chained_hash` probes the
/// long-chain YCSB-C table instead of the stock one.
pub fn probe_hw_variant(
    kind: ServeKind,
    workers: usize,
    txns_per_worker: usize,
    chained_hash: bool,
) -> HwProbe {
    let mut w = build_workload(kind, workers, None, chained_hash);
    w.machine().set_fast_forward(true);
    let mut blocks = Vec::with_capacity(workers * txns_per_worker);
    for wk in 0..workers {
        for i in 0..txns_per_worker {
            let size = w.block_size(wk, i);
            let blk = w.machine().alloc_block(wk, size);
            blocks.push((wk, i, blk));
        }
    }
    let mut rng = SmallRng::seed_from_u64(w.seed());
    for &(wk, i, blk) in &blocks {
        w.submit(wk, i, blk, &mut rng);
    }
    w.machine().run_to_quiescence();
    let stats = w.machine_ref().stats();
    let clock_hz = w.machine_ref().config().fpga.clock_hz;
    let committed = stats.committed.max(1);
    let cycles = stats.now.max(1);
    let capacity = committed as f64 * clock_hz as f64 / cycles as f64;
    let slots = (workers * hw_max_batch(kind)) as f64;
    HwProbe {
        capacity_per_sec: capacity,
        mean_latency_ns: slots * 1e9 / capacity,
    }
}

/// The asynchronous [`ServeEngine`] over the cycle-accurate machine.
pub struct BionicServeEngine {
    w: Box<dyn Workload>,
    clock_hz: u64,
    servers: usize,
    workers: usize,
    rng_txn: SmallRng,
    /// Dispatches begun, also the wave index fed to `Workload::submit`
    /// (monotone, so per-worker generator state never sees a duplicate —
    /// retried tickets get fresh transaction parameters, like a client
    /// re-issuing the request).
    dispatched: usize,
    inflight: Vec<InFlight>,
    /// Live dispatches per worker, for least-outstanding routing.
    outstanding: Vec<usize>,
    /// Finished blocks by `(worker, size)`, reused on the next dispatch —
    /// the block arena is bump-only, so serving thousands of requests
    /// through fresh allocations would exhaust it.
    pool: HashMap<(usize, u64), Vec<TxnBlock>>,
}

impl BionicServeEngine {
    /// Build the engine for one run. `cross_txn` arms hardware
    /// cross-transaction index batching (pair it with
    /// [`ServeConfig::with_batch`](super::ServeConfig::with_batch) on the
    /// front end so flushed groups actually enter together). Callers
    /// should set `cfg.servers` to [`BionicServeEngine::servers`] so
    /// queue sizing tracks the machine's real concurrency.
    pub fn new(
        kind: ServeKind,
        workers: usize,
        cross_txn: Option<usize>,
        cfg: &ServeConfig,
    ) -> BionicServeEngine {
        BionicServeEngine::new_variant(kind, workers, cross_txn, false, cfg)
    }

    /// [`BionicServeEngine::new`] with the variant switch: `chained_hash`
    /// serves the long-chain YCSB-C table (see [`CHAINED_HASH_BUCKETS`]).
    pub fn new_variant(
        kind: ServeKind,
        workers: usize,
        cross_txn: Option<usize>,
        chained_hash: bool,
        cfg: &ServeConfig,
    ) -> BionicServeEngine {
        let mut w = build_workload(kind, workers, cross_txn, chained_hash);
        w.machine().set_fast_forward(true);
        let clock_hz = w.machine_ref().config().fpga.clock_hz;
        BionicServeEngine {
            w,
            clock_hz,
            servers: hw_servers(kind, workers),
            workers,
            rng_txn: SmallRng::seed_from_u64(cfg.seed ^ TXN_SEED_XOR),
            dispatched: 0,
            inflight: Vec::new(),
            outstanding: vec![0; workers],
            pool: HashMap::new(),
        }
    }

    /// Front-end nanoseconds → FPGA cycles (floor; monotone).
    fn ns_to_cycles(&self, ns: u64) -> u64 {
        (ns as u128 * self.clock_hz as u128 / 1_000_000_000) as u64
    }

    /// FPGA cycles → front-end nanoseconds (floor; monotone, and the
    /// floor composition guarantees `cycles_to_ns(ns_to_cycles(t)) <= t`,
    /// so completions never report past an `advance` bound).
    fn cycles_to_ns(&self, cycles: u64) -> u64 {
        (cycles as u128 * 1_000_000_000 / self.clock_hz as u128) as u64
    }

    /// Remove every terminal in-flight block, returning completions in
    /// `(done_ns, ticket id)` order.
    fn harvest(&mut self) -> Vec<Completion> {
        let mut out = Vec::new();
        let now_cycle = self.w.machine_ref().now();
        let mut i = 0;
        while i < self.inflight.len() {
            let st = self.w.machine_ref().block_status(self.inflight[i].blk);
            if st == TxnStatus::Pending {
                i += 1;
                continue;
            }
            let f = self.inflight.swap_remove(i);
            let committed = st == TxnStatus::Committed;
            let done_cycle = if committed {
                // Exact hardware commit time from the writeback stamp.
                self.w.machine_ref().block_commit_ts(f.blk) >> 10
            } else {
                now_cycle
            };
            // The floor conversions can land a hair before dispatch;
            // clamp so service time stays positive and sojourn (done −
            // born) never underflows.
            let done_ns = self.cycles_to_ns(done_cycle).max(f.dispatch_ns + 1);
            out.push(Completion {
                ticket: f.tk,
                done_ns,
                committed,
                svc_ns: done_ns - f.dispatch_ns,
            });
            self.outstanding[f.worker] -= 1;
            self.pool
                .entry((f.worker, f.blk.size()))
                .or_default()
                .push(f.blk);
        }
        out.sort_by_key(|c| (c.done_ns, c.ticket.id));
        out
    }
}

impl ServeEngine for BionicServeEngine {
    /// One "server" per softcore context slot: `workers × max_batch`
    /// transactions can be genuinely in flight inside the machine.
    fn servers(&self) -> usize {
        self.servers
    }

    fn dispatch(&mut self, tk: &Ticket, now_ns: u64) -> Dispatch {
        // Bring the machine to the dispatch instant before injecting, so
        // the transaction starts executing at (the cycle image of) its
        // admission time, not retroactively. Earlier dispatches keep
        // running during this step; their completions surface at the
        // next `advance`.
        let target = self.ns_to_cycles(now_ns);
        if self.w.machine_ref().now() < target {
            self.w.machine().step_until(target);
        }
        // Least-outstanding routing, lowest worker id on ties: keeps
        // every worker at most `max_batch` deep while the front end's
        // slot accounting caps the total.
        let worker = (0..self.workers)
            .min_by_key(|&wk| (self.outstanding[wk], wk))
            .expect("at least one worker");
        let i = self.dispatched;
        self.dispatched += 1;
        let size = self.w.block_size(worker, i);
        let blk = match self.pool.entry((worker, size)).or_default().pop() {
            Some(blk) => blk,
            None => self.w.machine().alloc_block(worker, size),
        };
        // `Workload::submit` populates the block (consuming `rng_txn` in
        // dispatch order) and enters it through `Machine::submit` — an
        // injection at the machine's current cycle.
        self.w.submit(worker, i, blk, &mut self.rng_txn);
        self.outstanding[worker] += 1;
        self.inflight.push(InFlight {
            tk: *tk,
            blk,
            worker,
            dispatch_ns: now_ns,
        });
        Dispatch::Pending
    }

    fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    fn advance(&mut self, to_ns: u64) -> Vec<Completion> {
        if self.inflight.is_empty() {
            return Vec::new();
        }
        let target_cycle = if to_ns == u64::MAX {
            u64::MAX
        } else {
            self.ns_to_cycles(to_ns)
        };
        loop {
            let done = self.harvest();
            if !done.is_empty() {
                return done;
            }
            let now = self.w.machine_ref().now();
            if now >= target_cycle {
                return Vec::new();
            }
            assert!(
                !(to_ns == u64::MAX && self.w.machine_ref().is_quiescent()),
                "machine quiescent with {} transactions still in flight",
                self.inflight.len()
            );
            let next = now
                .saturating_add(ADVANCE_CHUNK_CYCLES)
                .min(target_cycle);
            self.w.machine().step_until(next);
        }
    }
}

/// Run one open-loop serving scenario against the cycle-accurate machine.
pub fn simulate_hw(
    kind: ServeKind,
    workers: usize,
    cross_txn: Option<usize>,
    cfg: &ServeConfig,
) -> super::ServeSummary {
    simulate_hw_variant(kind, workers, cross_txn, false, cfg)
}

/// [`simulate_hw`] with the variant switch: `chained_hash` serves the
/// long-chain YCSB-C table — the regime where cross-transaction index
/// waves pay (the `saturate --engine hw` batched-admission claim).
pub fn simulate_hw_variant(
    kind: ServeKind,
    workers: usize,
    cross_txn: Option<usize>,
    chained_hash: bool,
    cfg: &ServeConfig,
) -> super::ServeSummary {
    let mut engine = BionicServeEngine::new_variant(kind, workers, cross_txn, chained_hash, cfg);
    super::engine::serve_with(&mut engine, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::ArrivalProcess;

    fn light_cfg(probe: &HwProbe, requests: usize, seed: u64, servers: usize) -> ServeConfig {
        ServeConfig::controlled(
            ArrivalProcess::Poisson {
                rate_per_sec: 0.25 * probe.capacity_per_sec,
            },
            requests,
            (probe.mean_latency_ns * 40.0) as u64,
            servers,
            seed,
        )
    }

    #[test]
    fn hw_light_load_commits_and_is_deterministic() {
        let workers = 2;
        let probe = probe_hw(ServeKind::SmallBank, workers, 24);
        assert!(probe.capacity_per_sec > 0.0);
        let servers = hw_servers(ServeKind::SmallBank, workers);
        let cfg = light_cfg(&probe, 60, 11, servers);
        let a = simulate_hw(ServeKind::SmallBank, workers, None, &cfg);
        let b = simulate_hw(ServeKind::SmallBank, workers, None, &cfg);
        assert_eq!(
            a.render_json("hw"),
            b.render_json("hw"),
            "fixed seed must be byte-stable on the hardware engine"
        );
        assert_eq!(a.fresh, 60);
        a.assert_conserved();
        assert!(
            a.good as f64 >= 0.8 * a.fresh as f64,
            "light load mostly commits in time: {a:?}"
        );
        assert!(a.executed >= a.good, "every good request executed");
        assert!(a.busy_ns > 0 && a.horizon_ns > 0);
    }

    #[test]
    fn hw_engine_drains_under_batched_admission() {
        let workers = 2;
        let probe = probe_hw(ServeKind::YcsbC, workers, 24);
        let servers = hw_servers(ServeKind::YcsbC, workers);
        let width = 8;
        let cfg = light_cfg(&probe, 80, 23, servers)
            .with_batch(width, (probe.mean_latency_ns * 2.0) as u64);
        let sum = simulate_hw(ServeKind::YcsbC, workers, Some(width), &cfg);
        assert_eq!(sum.fresh, 80);
        sum.assert_conserved();
        assert!(sum.good > 0, "batched hw serving commits: {sum:?}");
        let again = simulate_hw(ServeKind::YcsbC, workers, Some(width), &cfg);
        assert_eq!(sum.render_json("b"), again.render_json("b"));
    }

    #[test]
    fn hw_abort_path_feeds_client_retry() {
        // TPC-C Payment at depth-2 interleaving conflicts for real: the
        // engine must surface aborted completions and the front end must
        // route them through the retry machinery without losing ledger
        // conservation.
        let workers = 2;
        let probe = probe_hw(ServeKind::TpccPayment, workers, 24);
        let servers = hw_servers(ServeKind::TpccPayment, workers);
        let cfg = ServeConfig::controlled(
            ArrivalProcess::Poisson {
                rate_per_sec: 0.9 * probe.capacity_per_sec,
            },
            120,
            (probe.mean_latency_ns * 30.0) as u64,
            servers,
            31,
        );
        let sum = simulate_hw(ServeKind::TpccPayment, workers, None, &cfg);
        assert_eq!(sum.fresh, 120);
        sum.assert_conserved();
        assert!(sum.good > 0);
        assert!(
            sum.executed >= sum.fresh,
            "retries re-execute: {sum:?}"
        );
    }
}
