//! Open-loop arrival processes.
//!
//! Closed-loop drivers (the figure bins) issue the next transaction the
//! moment the previous one finishes, so the offered load self-throttles
//! to the service rate and overload is unobservable. Serving runs are
//! **open-loop**: arrivals come from a clock that does not care whether
//! the system keeps up. Two processes cover the evaluation:
//!
//! * [`ArrivalProcess::Poisson`] — memoryless arrivals at a fixed mean
//!   rate (exponential gaps by inverse CDF);
//! * [`ArrivalProcess::Mmpp`] — a 2-state Markov-modulated Poisson
//!   process: a *base* phase and a *burst* phase, each Poisson at its own
//!   rate, with exponentially distributed phase dwell times. This is the
//!   standard minimal model of bursty traffic; the burst phase is what
//!   defeats admission policies tuned to the mean.
//!
//! All times are integer nanoseconds so virtual-time runs are exactly
//! reproducible; gaps are clamped to at least 1 ns.

use rand::rngs::SmallRng;
use rand::Rng;

/// Which open-loop arrival process drives a serving run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at `rate_per_sec`.
    Poisson {
        /// Mean arrival rate, requests per second.
        rate_per_sec: f64,
    },
    /// Two-state MMPP: Poisson at `base_rate` (resp. `burst_rate`) while
    /// in the base (resp. burst) phase; phases dwell for exponentially
    /// distributed times with the given means.
    Mmpp {
        /// Arrival rate in the base phase, requests per second.
        base_rate: f64,
        /// Arrival rate in the burst phase, requests per second.
        burst_rate: f64,
        /// Mean dwell time in the base phase, nanoseconds.
        mean_base_ns: u64,
        /// Mean dwell time in the burst phase, nanoseconds.
        mean_burst_ns: u64,
    },
}

/// Why a serving configuration was rejected. Degenerate parameters (zero
/// or NaN rates, a zero-capacity admission queue) used to slip through
/// and produce nonsense sweeps — infinite gaps, instant shedding of all
/// traffic — that looked like measurements; constructors now refuse them
/// up front with a typed error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServeConfigError {
    /// An arrival rate was zero, negative, NaN, or infinite. Carries the
    /// parameter name and the offending value.
    InvalidRate(&'static str, f64),
    /// An MMPP phase dwell time was zero (the chain would flip phases
    /// every nanosecond walked, emitting nothing).
    ZeroDwell(&'static str),
    /// A bounded shedding policy with a zero-capacity queue: every
    /// request is shed on arrival and the sweep measures nothing.
    ZeroQueueCapacity,
}

impl std::fmt::Display for ServeConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeConfigError::InvalidRate(name, v) => {
                write!(f, "{name} must be positive and finite, got {v}")
            }
            ServeConfigError::ZeroDwell(name) => {
                write!(f, "{name} must be nonzero (MMPP phases need dwell time)")
            }
            ServeConfigError::ZeroQueueCapacity => {
                write!(f, "bounded admission queue needs capacity >= 1")
            }
        }
    }
}

impl std::error::Error for ServeConfigError {}

/// `true` for a usable per-second rate: positive and finite.
fn rate_ok(r: f64) -> bool {
    r.is_finite() && r > 0.0
}

impl ArrivalProcess {
    /// A validated Poisson process, rejecting zero/negative/NaN/infinite
    /// rates with a typed error.
    pub fn poisson(rate_per_sec: f64) -> Result<ArrivalProcess, ServeConfigError> {
        if !rate_ok(rate_per_sec) {
            return Err(ServeConfigError::InvalidRate("rate_per_sec", rate_per_sec));
        }
        Ok(ArrivalProcess::Poisson { rate_per_sec })
    }

    /// A validated 2-state MMPP, rejecting degenerate rates and zero
    /// phase dwell times with a typed error.
    pub fn mmpp(
        base_rate: f64,
        burst_rate: f64,
        mean_base_ns: u64,
        mean_burst_ns: u64,
    ) -> Result<ArrivalProcess, ServeConfigError> {
        if !rate_ok(base_rate) {
            return Err(ServeConfigError::InvalidRate("base_rate", base_rate));
        }
        if !rate_ok(burst_rate) {
            return Err(ServeConfigError::InvalidRate("burst_rate", burst_rate));
        }
        if mean_base_ns == 0 {
            return Err(ServeConfigError::ZeroDwell("mean_base_ns"));
        }
        if mean_burst_ns == 0 {
            return Err(ServeConfigError::ZeroDwell("mean_burst_ns"));
        }
        Ok(ArrivalProcess::Mmpp {
            base_rate,
            burst_rate,
            mean_base_ns,
            mean_burst_ns,
        })
    }

    /// Check the process's parameters (the named constructors call this;
    /// [`super::ServeConfig::validate`] re-checks literals built directly).
    pub fn validate(&self) -> Result<(), ServeConfigError> {
        match *self {
            ArrivalProcess::Poisson { rate_per_sec } => {
                ArrivalProcess::poisson(rate_per_sec).map(|_| ())
            }
            ArrivalProcess::Mmpp {
                base_rate,
                burst_rate,
                mean_base_ns,
                mean_burst_ns,
            } => ArrivalProcess::mmpp(base_rate, burst_rate, mean_base_ns, mean_burst_ns)
                .map(|_| ()),
        }
    }

    /// The long-run mean rate (requests per second) — what a load
    /// multiplier scales against.
    pub fn mean_rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_per_sec } => rate_per_sec,
            ArrivalProcess::Mmpp {
                base_rate,
                burst_rate,
                mean_base_ns,
                mean_burst_ns,
            } => {
                let b = mean_base_ns as f64;
                let u = mean_burst_ns as f64;
                (base_rate * b + burst_rate * u) / (b + u)
            }
        }
    }
}

/// Sample an exponential gap with the given mean, in nanoseconds
/// (inverse CDF; clamped to ≥ 1 ns so virtual time always advances).
fn exp_ns(rng: &mut SmallRng, mean_ns: f64) -> u64 {
    let u: f64 = rng.gen();
    // 1 - u ∈ (0, 1]: ln is finite.
    let gap = -(1.0 - u).ln() * mean_ns;
    (gap as u64).max(1)
}

/// Stateful gap generator for one serving run.
#[derive(Debug, Clone)]
pub struct ArrivalGen {
    process: ArrivalProcess,
    /// MMPP only: currently in the burst phase?
    burst: bool,
    /// MMPP only: nanoseconds of dwell left in the current phase.
    dwell_ns: u64,
}

impl ArrivalGen {
    /// Start a generator (MMPP begins in the base phase).
    pub fn new(process: ArrivalProcess) -> ArrivalGen {
        ArrivalGen {
            process,
            burst: false,
            dwell_ns: 0,
        }
    }

    /// Nanoseconds until the next arrival. Consumes `rng` a deterministic
    /// number of times per call given the process parameters.
    pub fn next_gap_ns(&mut self, rng: &mut SmallRng) -> u64 {
        match self.process {
            ArrivalProcess::Poisson { rate_per_sec } => {
                exp_ns(rng, 1e9 / rate_per_sec)
            }
            ArrivalProcess::Mmpp {
                base_rate,
                burst_rate,
                mean_base_ns,
                mean_burst_ns,
            } => {
                // Walk phase dwell time until the next arrival lands
                // inside the current phase; phase switches consume dwell
                // but emit nothing.
                let mut total = 0u64;
                loop {
                    if self.dwell_ns == 0 {
                        self.dwell_ns = exp_ns(
                            rng,
                            if self.burst {
                                mean_burst_ns as f64
                            } else {
                                mean_base_ns as f64
                            },
                        );
                    }
                    let rate = if self.burst { burst_rate } else { base_rate };
                    let gap = exp_ns(rng, 1e9 / rate);
                    if gap <= self.dwell_ns {
                        self.dwell_ns -= gap;
                        return total + gap;
                    }
                    total += self.dwell_ns;
                    self.dwell_ns = 0;
                    self.burst = !self.burst;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn poisson_mean_gap_matches_rate() {
        let mut g = ArrivalGen::new(ArrivalProcess::Poisson {
            rate_per_sec: 1e6, // mean gap 1000 ns
        });
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| g.next_gap_ns(&mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 1000.0).abs() < 50.0, "mean gap {mean} ns");
    }

    #[test]
    fn mmpp_long_run_rate_between_phase_rates() {
        let p = ArrivalProcess::Mmpp {
            base_rate: 1e5,
            burst_rate: 1e6,
            mean_base_ns: 1_000_000,
            mean_burst_ns: 250_000,
        };
        let mut g = ArrivalGen::new(p);
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 50_000;
        let total: u64 = (0..n).map(|_| g.next_gap_ns(&mut rng)).sum();
        let rate = n as f64 / (total as f64 / 1e9);
        assert!(rate > 1e5 && rate < 1e6, "long-run rate {rate}/s");
        // ...and near the analytic mixture mean.
        let want = p.mean_rate();
        assert!(
            (rate - want).abs() / want < 0.15,
            "rate {rate}/s vs analytic {want}/s"
        );
    }

    #[test]
    fn poisson_constructor_rejects_degenerate_rates() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = ArrivalProcess::poisson(bad).unwrap_err();
            assert!(
                matches!(err, ServeConfigError::InvalidRate("rate_per_sec", _)),
                "{bad}: {err}"
            );
        }
        assert!(ArrivalProcess::poisson(1.0).is_ok());
    }

    #[test]
    fn mmpp_constructor_rejects_each_degenerate_parameter() {
        let ok = (1e5, 1e6, 1_000_000u64, 250_000u64);
        assert!(ArrivalProcess::mmpp(ok.0, ok.1, ok.2, ok.3).is_ok());
        assert_eq!(
            ArrivalProcess::mmpp(0.0, ok.1, ok.2, ok.3).unwrap_err(),
            ServeConfigError::InvalidRate("base_rate", 0.0)
        );
        assert!(matches!(
            ArrivalProcess::mmpp(ok.0, f64::NAN, ok.2, ok.3).unwrap_err(),
            ServeConfigError::InvalidRate("burst_rate", _)
        ));
        assert_eq!(
            ArrivalProcess::mmpp(ok.0, ok.1, 0, ok.3).unwrap_err(),
            ServeConfigError::ZeroDwell("mean_base_ns")
        );
        assert_eq!(
            ArrivalProcess::mmpp(ok.0, ok.1, ok.2, 0).unwrap_err(),
            ServeConfigError::ZeroDwell("mean_burst_ns")
        );
    }

    #[test]
    fn validate_catches_literals_built_directly() {
        let bad = ArrivalProcess::Poisson {
            rate_per_sec: f64::NAN,
        };
        assert!(bad.validate().is_err());
        let good = ArrivalProcess::Mmpp {
            base_rate: 1e5,
            burst_rate: 1e6,
            mean_base_ns: 1,
            mean_burst_ns: 1,
        };
        assert!(good.validate().is_ok());
    }

    #[test]
    fn fixed_seed_gap_stream_is_reproducible() {
        for p in [
            ArrivalProcess::Poisson { rate_per_sec: 5e5 },
            ArrivalProcess::Mmpp {
                base_rate: 2e5,
                burst_rate: 2e6,
                mean_base_ns: 500_000,
                mean_burst_ns: 100_000,
            },
        ] {
            let run = |seed| {
                let mut g = ArrivalGen::new(p);
                let mut rng = SmallRng::seed_from_u64(seed);
                (0..1000).map(|_| g.next_gap_ns(&mut rng)).collect::<Vec<_>>()
            };
            assert_eq!(run(3), run(3));
            assert_ne!(run(3), run(4));
        }
    }
}
