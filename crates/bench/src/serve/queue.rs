//! Bounded admission queue with pluggable load-shedding policies.
//!
//! The queue is a pure data structure — no clocks, no threads — shared by
//! the virtual-time and wall-clock serving engines: every decision takes
//! `now_ns` as an argument, so the same policy code is exercised (and
//! unit-tested) under both. Counters record every shed decision so
//! summaries can report *why* requests were lost, not just how many.
//!
//! ## Policies
//!
//! * [`ShedPolicy::None`] — unbounded FIFO, never sheds. The no-control
//!   baseline: under overload the queue grows without bound and every
//!   admitted request eventually misses its deadline (goodput collapse).
//! * [`ShedPolicy::FailFast`] — bounded FIFO; a full queue rejects the
//!   newcomer at arrival. The cheapest signal: the client learns
//!   immediately and can back off.
//! * [`ShedPolicy::LifoSlack`] — bounded, newest-first service. When
//!   full, the queued entry with the least deadline slack is evicted in
//!   favour of a newcomer with more (a stale request was going to miss
//!   anyway); if the newcomer has the least slack itself, it is rejected.
//!   Under bursts, fresh requests still make their deadlines while FIFO
//!   would time out the entire backlog in arrival order.
//! * [`ShedPolicy::DeadlineDrop`] — bounded FIFO that purges
//!   already-expired entries at every admission and dispatch, so workers
//!   never pick up doomed work.

use std::collections::VecDeque;

/// Load-shedding policy for the admission queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Unbounded FIFO (the no-control baseline).
    None,
    /// Bounded FIFO, reject newcomers when full.
    FailFast,
    /// Bounded LIFO service; evict the least-slack entry when full.
    LifoSlack,
    /// Bounded FIFO; drop expired entries at admission and dispatch.
    DeadlineDrop,
}

impl ShedPolicy {
    /// Stable label (JSON, CLI).
    pub fn name(self) -> &'static str {
        match self {
            ShedPolicy::None => "none",
            ShedPolicy::FailFast => "fail_fast",
            ShedPolicy::LifoSlack => "lifo_slack",
            ShedPolicy::DeadlineDrop => "deadline_drop",
        }
    }
}

/// One queued request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Ticket {
    /// Unique request id (birth order of the *fresh* request; retries
    /// keep the id).
    pub id: u64,
    /// Birth time of the fresh request, nanoseconds.
    pub born_ns: u64,
    /// Absolute deadline, nanoseconds (`u64::MAX` = none).
    pub deadline_ns: u64,
    /// Mix-selection index — fixed at birth so retries re-run the same
    /// transaction kind.
    pub txn_index: usize,
    /// 0 for the fresh attempt, incremented per retry.
    pub attempt: u32,
}

impl Ticket {
    /// Remaining slack at `now_ns` (0 when expired).
    pub fn slack_ns(&self, now_ns: u64) -> u64 {
        self.deadline_ns.saturating_sub(now_ns)
    }
}

/// Why `offer` did not enqueue the ticket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shed {
    /// Rejected at arrival (queue full).
    Rejected,
    /// Evicted from the queue in favour of a later arrival
    /// (`LifoSlack`). Carries the victim so the engine can account it.
    Evicted(Ticket),
}

/// The bounded admission queue.
#[derive(Debug)]
pub struct AdmissionQueue {
    policy: ShedPolicy,
    capacity: usize,
    q: VecDeque<Ticket>,
    /// Newcomers rejected at arrival.
    pub rejected: u64,
    /// Expired entries purged before dispatch (`DeadlineDrop`).
    pub dropped_expired: u64,
    /// Queued entries evicted by a later arrival (`LifoSlack`).
    pub evicted: u64,
    /// Deepest the queue ever got.
    pub high_water: usize,
}

impl AdmissionQueue {
    /// An empty queue. `capacity` is ignored under [`ShedPolicy::None`].
    pub fn new(policy: ShedPolicy, capacity: usize) -> AdmissionQueue {
        AdmissionQueue {
            policy,
            capacity: if policy == ShedPolicy::None {
                usize::MAX
            } else {
                capacity.max(1)
            },
            q: VecDeque::new(),
            rejected: 0,
            dropped_expired: 0,
            evicted: 0,
            high_water: 0,
        }
    }

    /// Queue depth.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Offer a ticket at time `now_ns`. `Ok(())` means it is queued;
    /// `Err` reports the shed decision (the *offered* ticket was rejected,
    /// or a queued victim was evicted to make room — in the latter case
    /// the offered ticket IS queued and the victim is returned).
    pub fn offer(&mut self, t: Ticket, now_ns: u64) -> Result<(), Shed> {
        if self.policy == ShedPolicy::DeadlineDrop {
            self.purge_expired(now_ns);
        }
        if self.q.len() < self.capacity {
            self.push(t);
            return Ok(());
        }
        match self.policy {
            ShedPolicy::None => unreachable!("unbounded queue is never full"),
            ShedPolicy::FailFast | ShedPolicy::DeadlineDrop => {
                self.rejected += 1;
                Err(Shed::Rejected)
            }
            ShedPolicy::LifoSlack => {
                // Find the queued entry with the least remaining slack.
                let (vi, victim) = self
                    .q
                    .iter()
                    .copied()
                    .enumerate()
                    .min_by_key(|(i, e)| (e.slack_ns(now_ns), *i))
                    .expect("full queue is non-empty");
                if victim.slack_ns(now_ns) < t.slack_ns(now_ns) {
                    self.q.remove(vi);
                    self.evicted += 1;
                    self.push(t);
                    Err(Shed::Evicted(victim))
                } else {
                    self.rejected += 1;
                    Err(Shed::Rejected)
                }
            }
        }
    }

    /// Take the next ticket to serve at time `now_ns`, per policy order.
    pub fn take(&mut self, now_ns: u64) -> Option<Ticket> {
        if self.policy == ShedPolicy::DeadlineDrop {
            self.purge_expired(now_ns);
        }
        match self.policy {
            ShedPolicy::LifoSlack => self.q.pop_back(),
            _ => self.q.pop_front(),
        }
    }

    fn push(&mut self, t: Ticket) {
        self.q.push_back(t);
        self.high_water = self.high_water.max(self.q.len());
    }

    fn purge_expired(&mut self, now_ns: u64) {
        let before = self.q.len();
        self.q.retain(|e| e.deadline_ns > now_ns);
        self.dropped_expired += (before - self.q.len()) as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(id: u64, deadline_ns: u64) -> Ticket {
        Ticket {
            id,
            born_ns: 0,
            deadline_ns,
            txn_index: id as usize,
            attempt: 0,
        }
    }

    #[test]
    fn none_is_unbounded_fifo() {
        let mut q = AdmissionQueue::new(ShedPolicy::None, 1);
        for i in 0..1000 {
            q.offer(t(i, u64::MAX), 0).expect("never sheds");
        }
        assert_eq!(q.len(), 1000);
        assert_eq!(q.high_water, 1000);
        assert_eq!(q.take(0).unwrap().id, 0, "FIFO order");
        assert_eq!(q.rejected + q.evicted + q.dropped_expired, 0);
    }

    #[test]
    fn fail_fast_bounds_depth_and_rejects() {
        let mut q = AdmissionQueue::new(ShedPolicy::FailFast, 4);
        let mut admitted = 0;
        for i in 0..10 {
            if q.offer(t(i, u64::MAX), 0).is_ok() {
                admitted += 1;
            }
            assert!(q.len() <= 4, "capacity invariant");
        }
        assert_eq!(admitted, 4);
        assert_eq!(q.rejected, 6);
        // FIFO of the admitted prefix.
        assert_eq!(q.take(0).unwrap().id, 0);
        assert_eq!(q.take(0).unwrap().id, 1);
    }

    #[test]
    fn lifo_slack_serves_newest_and_evicts_least_slack() {
        let mut q = AdmissionQueue::new(ShedPolicy::LifoSlack, 3);
        q.offer(t(0, 500), 0).unwrap();
        q.offer(t(1, 100), 0).unwrap(); // least slack
        q.offer(t(2, 900), 0).unwrap();
        // Full; a newcomer with more slack than ticket 1 evicts it.
        match q.offer(t(3, 700), 0) {
            Err(Shed::Evicted(v)) => assert_eq!(v.id, 1),
            other => panic!("expected eviction, got {other:?}"),
        }
        assert_eq!(q.evicted, 1);
        assert_eq!(q.len(), 3);
        // Full; a newcomer with the least slack in the room is rejected.
        assert_eq!(q.offer(t(4, 50), 0), Err(Shed::Rejected));
        assert_eq!(q.rejected, 1);
        // Service is newest-first.
        assert_eq!(q.take(0).unwrap().id, 3);
        assert_eq!(q.take(0).unwrap().id, 2);
        assert_eq!(q.take(0).unwrap().id, 0);
        assert!(q.take(0).is_none());
    }

    #[test]
    fn deadline_drop_purges_expired_in_order() {
        let mut q = AdmissionQueue::new(ShedPolicy::DeadlineDrop, 8);
        q.offer(t(0, 100), 0).unwrap();
        q.offer(t(1, 300), 0).unwrap();
        q.offer(t(2, 200), 0).unwrap();
        // At t=250, tickets 0 and 2 are expired; dispatch skips straight
        // to ticket 1 and counts both drops.
        let got = q.take(250).unwrap();
        assert_eq!(got.id, 1);
        assert_eq!(q.dropped_expired, 2);
        assert!(q.is_empty());
        // Admission-side purge frees room in a full queue.
        let mut q = AdmissionQueue::new(ShedPolicy::DeadlineDrop, 2);
        q.offer(t(0, 100), 0).unwrap();
        q.offer(t(1, 100), 0).unwrap();
        assert!(q.offer(t(2, 900), 150).is_ok(), "expired entries purged");
        assert_eq!(q.dropped_expired, 2);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn high_water_tracks_deepest_point() {
        let mut q = AdmissionQueue::new(ShedPolicy::FailFast, 10);
        for i in 0..6 {
            q.offer(t(i, u64::MAX), 0).unwrap();
        }
        q.take(0);
        q.take(0);
        assert_eq!(q.high_water, 6);
        assert_eq!(q.len(), 4);
    }
}
