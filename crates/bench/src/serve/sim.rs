//! Deterministic virtual-time serving for the Silo baseline: the
//! synchronous [`ServeEngine`] whose service times come from the
//! calibrated Xeon core model, driven by the engine-agnostic front end
//! in [`super::engine`].
//!
//! Events (arrivals, retries, completions) live on a binary heap keyed by
//! `(time_ns, sequence)` — the sequence number breaks ties in insertion
//! order, so the event schedule is a total order and the whole run is a
//! pure function of [`ServeConfig`]. A fixed seed therefore produces a
//! **byte-identical** [`ServeSummary::render_json`] on any host, which is
//! what the `servecheck` CI gate pins (same idea as `workloadcheck`).
//! The goldens captured before the [`ServeEngine`] extraction still pass
//! byte-for-byte: a synchronous engine makes the generic loop replay the
//! old driver's event schedule and RNG draws exactly.
//!
//! ## What is modelled
//!
//! * `servers` identical lanes drain the admission queue; each dispatched
//!   transaction runs against the *real* [`SiloDb`](bionicdb_silo::SiloDb)
//!   under one persistent [`CoreModel`] (warm caches), and its service
//!   time is the model's cycle delta converted at the configured clock.
//! * Deadline enforcement at dispatch: an expired ticket is skipped for
//!   free. Enforcement at the commit point: when a transaction's
//!   completion lands past its deadline, the commit is treated as
//!   cancelled — the server time is still spent (the body ran), but
//!   nothing installs. This mirrors what
//!   [`CancelToken`](bionicdb_silo::CancelToken) does on real threads
//!   (exercised by the wall-clock engine); virtual time cannot use the
//!   token itself because it reads the wall clock.
//! * Client retry per [`RetryMode`], with backoff delays in virtual time.
//!
//! Transactions execute one at a time (virtual servers overlap in virtual
//! time, not on host threads), so OCC conflicts cannot arise here — abort
//! retry paths get their coverage from the wall-clock engine, the
//! hardware engine (whose interleaved batches conflict for real), and
//! unit tests. Queueing, shedding, deadline and retry dynamics — the
//! things this subsystem exists to measure — are exact.

use bionicdb_cpu_model::{CoreModel, CpuConfig};
use bionicdb_workloads::ServeMix;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use super::engine::{serve_with, Dispatch, ServeEngine};
use super::queue::Ticket;
use super::{ServeConfig, ServeSummary};

/// Epoch advance period (executions), matching `silo::runner`.
const EPOCH_PERIOD: u64 = 4096;

/// Warm-up transactions before the measured run (cache warming only; the
/// virtual clock starts after).
const WARMUP: usize = 32;

/// Mean service time of `mix` under the core model, nanoseconds — the
/// capacity probe `saturate` scales offered load against. Deterministic
/// for a fixed seed.
pub fn probe_service_ns(mix: &ServeMix, seed: u64, txns: usize) -> f64 {
    let cfg = CpuConfig::default();
    let mut model = CoreModel::new(cfg.clone());
    let mut rng = SmallRng::seed_from_u64(seed);
    for i in 0..WARMUP {
        mix.run_once(&mut model, &mut rng, i, None);
    }
    let c0 = model.cycles();
    for i in 0..txns.max(1) {
        mix.run_once(&mut model, &mut rng, WARMUP + i, None);
    }
    cycles_to_ns(model.cycles() - c0, &cfg) as f64 / txns.max(1) as f64
}

fn cycles_to_ns(cycles: u64, cfg: &CpuConfig) -> u64 {
    // cycles ≪ 2^34 per transaction: the product fits u64.
    cycles * 1_000_000_000 / cfg.clock_hz
}

/// The synchronous Silo engine: dispatch runs the transaction body inline
/// against one persistent core model, so completion time and outcome are
/// known immediately ([`Dispatch::Done`]).
pub struct SiloEngine<'a> {
    mix: &'a ServeMix,
    model: CoreModel,
    cpu: CpuConfig,
    rng_txn: SmallRng,
    servers: usize,
    executed: u64,
}

impl<'a> SiloEngine<'a> {
    /// Build the engine for one run: fresh model, decorrelated
    /// transaction-parameter RNG, and the warm-up wave (cache warming
    /// only; virtual time starts after).
    pub fn new(mix: &'a ServeMix, cfg: &ServeConfig) -> SiloEngine<'a> {
        let cpu = CpuConfig::default();
        let mut model = CoreModel::new(cpu.clone());
        let mut rng_txn = SmallRng::seed_from_u64(cfg.seed ^ 0x5E7E_5E7E_5E7E_5E7E);
        for i in 0..WARMUP {
            mix.run_once(&mut model, &mut rng_txn, i, None);
        }
        SiloEngine {
            mix,
            model,
            cpu,
            rng_txn,
            servers: cfg.servers,
            executed: 0,
        }
    }
}

impl ServeEngine for SiloEngine<'_> {
    fn servers(&self) -> usize {
        self.servers
    }

    fn dispatch(&mut self, tk: &Ticket, now_ns: u64) -> Dispatch {
        let c0 = self.model.cycles();
        let committed = self
            .mix
            .run_once(&mut self.model, &mut self.rng_txn, tk.txn_index, None);
        let svc_ns = cycles_to_ns(self.model.cycles() - c0, &self.cpu).max(1);
        self.executed += 1;
        if self.executed.is_multiple_of(EPOCH_PERIOD) {
            self.mix.advance_epoch();
        }
        Dispatch::Done {
            done_ns: now_ns + svc_ns,
            committed,
            svc_ns,
        }
    }
}

/// Run one virtual-time serving scenario to completion.
pub fn simulate(mix: &ServeMix, cfg: &ServeConfig) -> ServeSummary {
    let mut engine = SiloEngine::new(mix, cfg);
    serve_with(&mut engine, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bionicdb_workloads::ServeKind;

    use crate::serve::ArrivalProcess;

    #[test]
    fn light_load_all_good_and_deterministic() {
        // The probe must run on its own build: service times depend on
        // database state, and byte-stability is defined over identically
        // prepared systems (records get deterministic virtual addresses,
        // so two fresh builds time identically).
        let svc = probe_service_ns(&ServeMix::build(ServeKind::SmallBank, 1), 1, 50);
        let cfg = ServeConfig::controlled(
            ArrivalProcess::Poisson {
                rate_per_sec: 0.25 * 1e9 / svc,
            },
            120,
            (svc * 50.0) as u64,
            2,
            42,
        );
        let a = simulate(&ServeMix::build(ServeKind::SmallBank, 1), &cfg);
        let b = simulate(&ServeMix::build(ServeKind::SmallBank, 1), &cfg);
        assert_eq!(
            a.render_json("t"),
            b.render_json("t"),
            "fixed seed must be byte-stable"
        );
        assert_eq!(a.fresh, 120);
        assert!(
            a.good >= 115,
            "at 25% load nearly everything is good: {a:?}"
        );
        assert_eq!(a.sojourn.count(), a.good);
    }

    #[test]
    fn overload_baseline_collapses_controlled_degrades_gracefully() {
        let mix = ServeMix::build(ServeKind::YcsbC, 1);
        let svc = probe_service_ns(&mix, 1, 50);
        let servers = 2;
        let deadline = (svc * 25.0) as u64;
        // 2x saturation for 400 fresh requests.
        let arrivals = ArrivalProcess::Poisson {
            rate_per_sec: 2.0 * servers as f64 * 1e9 / svc,
        };
        let base = simulate(
            &mix,
            &ServeConfig::baseline(arrivals, 400, deadline, servers, 7),
        );
        let ctrl = simulate(
            &mix,
            &ServeConfig::controlled(arrivals, 400, deadline, servers, 7),
        );
        // The baseline queue grows without bound: most completions land
        // past the deadline, goodput collapses.
        assert!(
            base.late > base.good,
            "unbounded FIFO at 2x must mostly miss deadlines: {base:?}"
        );
        // The controlled server sheds instead of queueing: what it admits
        // it commits in time, so goodput stays near capacity.
        assert!(
            ctrl.good > 2 * base.good.max(1),
            "controlled goodput {} vs baseline {}",
            ctrl.good,
            base.good
        );
        assert!(ctrl.rejected + ctrl.dropped_expired > 0, "overload sheds");
        assert!(
            ctrl.queue_high_water <= ctrl.fresh,
            "bounded queue stayed bounded"
        );
    }

    #[test]
    fn batched_dispatch_conserves_ledger_on_silo_too() {
        // Batching is engine-agnostic plumbing: even against the
        // synchronous Silo engine (where grouping buys nothing — bodies
        // still run one at a time in virtual time) the staged dispatcher
        // must flush everything and keep the terminal ledger conserved.
        let svc = probe_service_ns(&ServeMix::build(ServeKind::SmallBank, 1), 1, 50);
        let cfg = ServeConfig::controlled(
            ArrivalProcess::Poisson {
                rate_per_sec: 0.9 * 2.0 * 1e9 / svc,
            },
            150,
            (svc * 40.0) as u64,
            4,
            13,
        )
        .with_batch(3, (svc * 4.0) as u64);
        let sum = simulate(&ServeMix::build(ServeKind::SmallBank, 1), &cfg);
        assert_eq!(sum.fresh, 150);
        sum.assert_conserved(); // engines assert too; explicit for clarity
        assert!(sum.good > 0);
        // Determinism holds with batching enabled.
        let again = simulate(&ServeMix::build(ServeKind::SmallBank, 1), &cfg);
        assert_eq!(sum.render_json("b"), again.render_json("b"));
    }
}
