//! Deterministic virtual-time serving: a discrete-event simulation whose
//! service times come from the calibrated Xeon core model.
//!
//! Events (arrivals, retries, completions) live on a binary heap keyed by
//! `(time_ns, sequence)` — the sequence number breaks ties in insertion
//! order, so the event schedule is a total order and the whole run is a
//! pure function of [`ServeConfig`]. A fixed seed therefore produces a
//! **byte-identical** [`ServeSummary::render_json`] on any host, which is
//! what the `servecheck` CI gate pins (same idea as `workloadcheck`).
//!
//! ## What is modelled
//!
//! * `servers` identical lanes drain the admission queue; each dispatched
//!   transaction runs against the *real* [`SiloDb`](bionicdb_silo::SiloDb)
//!   under one persistent [`CoreModel`] (warm caches), and its service
//!   time is the model's cycle delta converted at the configured clock.
//! * Deadline enforcement at dispatch: an expired ticket is skipped for
//!   free. Enforcement at the commit point: when a transaction's
//!   completion lands past its deadline, the commit is treated as
//!   cancelled — the server time is still spent (the body ran), but
//!   nothing installs. This mirrors what
//!   [`CancelToken`](bionicdb_silo::CancelToken) does on real threads
//!   (exercised by the wall-clock engine); virtual time cannot use the
//!   token itself because it reads the wall clock.
//! * Client retry per [`RetryMode`], with backoff delays in virtual time.
//!
//! Transactions execute one at a time (virtual servers overlap in virtual
//! time, not on host threads), so OCC conflicts cannot arise here — abort
//! retry paths get their coverage from the wall-clock engine and unit
//! tests. Queueing, shedding, deadline and retry dynamics — the things
//! this subsystem exists to measure — are exact.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use bionicdb_cpu_model::{CoreModel, CpuConfig};
use bionicdb_workloads::ServeMix;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use super::arrival::ArrivalGen;
use super::queue::{AdmissionQueue, Shed, Ticket};
use super::{RetryBucket, RetryMode, ServeConfig, ServeSummary};

/// Epoch advance period (executions), matching `silo::runner`.
const EPOCH_PERIOD: u64 = 4096;

/// Warm-up transactions before the measured run (cache warming only; the
/// virtual clock starts after).
const WARMUP: usize = 32;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    /// A fresh request or a scheduled retry reaches the admission queue.
    Arrival(Ticket),
    /// A server finishes its current transaction.
    Done,
}

/// Mean service time of `mix` under the core model, nanoseconds — the
/// capacity probe `saturate` scales offered load against. Deterministic
/// for a fixed seed.
pub fn probe_service_ns(mix: &ServeMix, seed: u64, txns: usize) -> f64 {
    let cfg = CpuConfig::default();
    let mut model = CoreModel::new(cfg.clone());
    let mut rng = SmallRng::seed_from_u64(seed);
    for i in 0..WARMUP {
        mix.run_once(&mut model, &mut rng, i, None);
    }
    let c0 = model.cycles();
    for i in 0..txns.max(1) {
        mix.run_once(&mut model, &mut rng, WARMUP + i, None);
    }
    cycles_to_ns(model.cycles() - c0, &cfg) as f64 / txns.max(1) as f64
}

fn cycles_to_ns(cycles: u64, cfg: &CpuConfig) -> u64 {
    // cycles ≪ 2^34 per transaction: the product fits u64.
    cycles * 1_000_000_000 / cfg.clock_hz
}

fn push(heap: &mut BinaryHeap<Reverse<(u64, u64, Ev)>>, seq: &mut u64, t: u64, ev: Ev) {
    *seq += 1;
    heap.push(Reverse((t, *seq, ev)));
}

/// Client-side failure handling: retry per policy or settle the terminal
/// outcome. `shed` distinguishes admission sheds from OCC aborts.
#[allow(clippy::too_many_arguments)]
fn fail(
    cfg: &ServeConfig,
    sum: &mut ServeSummary,
    bucket: &mut Option<RetryBucket>,
    heap: &mut BinaryHeap<Reverse<(u64, u64, Ev)>>,
    seq: &mut u64,
    tk: Ticket,
    now: u64,
    shed: bool,
) {
    let next_attempt = tk.attempt + 1;
    let retry_at = match cfg.retry {
        RetryMode::None => None,
        RetryMode::Immediate { max_attempts } => (next_attempt < max_attempts).then_some(now + 1),
        RetryMode::Budgeted(p) => {
            let at = now + p.backoff_ns(next_attempt);
            (next_attempt < p.max_attempts
                && at < tk.deadline_ns
                && bucket.as_mut().expect("budgeted bucket").try_take())
            .then_some(at)
        }
    };
    match retry_at {
        Some(at) => {
            sum.retries += 1;
            push(
                heap,
                seq,
                at,
                Ev::Arrival(Ticket {
                    attempt: next_attempt,
                    ..tk
                }),
            );
        }
        None if shed => sum.shed += 1,
        None => sum.aborted += 1,
    }
}

/// Run one virtual-time serving scenario to completion.
pub fn simulate(mix: &ServeMix, cfg: &ServeConfig) -> ServeSummary {
    let cpu = CpuConfig::default();
    let mut model = CoreModel::new(cpu.clone());
    // Decorrelated streams: arrival gaps vs transaction parameter draws.
    let mut rng_arr = SmallRng::seed_from_u64(cfg.seed);
    let mut rng_txn = SmallRng::seed_from_u64(cfg.seed ^ 0x5E7E_5E7E_5E7E_5E7E);
    for i in 0..WARMUP {
        mix.run_once(&mut model, &mut rng_txn, i, None);
    }

    let mut gen = ArrivalGen::new(cfg.arrivals);
    let mut queue = AdmissionQueue::new(cfg.policy, cfg.queue_capacity);
    let mut bucket = match cfg.retry {
        RetryMode::Budgeted(p) => Some(RetryBucket::new(&p)),
        _ => None,
    };
    let mut sum = ServeSummary::new();
    let mut heap: BinaryHeap<Reverse<(u64, u64, Ev)>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut free = cfg.servers.max(1);
    let mut born = 0u64;

    // First fresh arrival; each fresh arrival schedules the next until
    // `requests` have been born.
    if cfg.requests > 0 {
        let t0 = gen.next_gap_ns(&mut rng_arr);
        push(
            &mut heap,
            &mut seq,
            t0,
            Ev::Arrival(Ticket {
                id: 0,
                born_ns: t0,
                deadline_ns: t0.saturating_add(cfg.deadline_ns),
                txn_index: 0,
                attempt: 0,
            }),
        );
        born = 1;
        sum.fresh = 1;
    }

    while let Some(Reverse((now, _, ev))) = heap.pop() {
        sum.horizon_ns = sum.horizon_ns.max(now);
        match ev {
            Ev::Arrival(tk) => {
                if tk.attempt == 0 {
                    if let Some(b) = bucket.as_mut() {
                        b.on_fresh();
                    }
                    if (born as usize) < cfg.requests {
                        let t = now + gen.next_gap_ns(&mut rng_arr);
                        push(
                            &mut heap,
                            &mut seq,
                            t,
                            Ev::Arrival(Ticket {
                                id: born,
                                born_ns: t,
                                deadline_ns: t.saturating_add(cfg.deadline_ns),
                                txn_index: born as usize,
                                attempt: 0,
                            }),
                        );
                        born += 1;
                        sum.fresh += 1;
                    }
                }
                match queue.offer(tk, now) {
                    Ok(()) => {}
                    Err(Shed::Rejected) => {
                        fail(cfg, &mut sum, &mut bucket, &mut heap, &mut seq, tk, now, true)
                    }
                    Err(Shed::Evicted(victim)) => fail(
                        cfg, &mut sum, &mut bucket, &mut heap, &mut seq, victim, now, true,
                    ),
                }
            }
            Ev::Done => free += 1,
        }

        // Dispatch idle servers.
        while free > 0 {
            let Some(tk) = queue.take(now) else { break };
            if cfg.enforce_deadline && now >= tk.deadline_ns {
                sum.timed_out += 1;
                continue;
            }
            let c0 = model.cycles();
            let committed = mix.run_once(&mut model, &mut rng_txn, tk.txn_index, None);
            let svc_ns = cycles_to_ns(model.cycles() - c0, &cpu).max(1);
            let done = now + svc_ns;
            sum.executed += 1;
            sum.busy_ns += svc_ns;
            if sum.executed.is_multiple_of(EPOCH_PERIOD) {
                mix.advance_epoch();
            }
            free -= 1;
            push(&mut heap, &mut seq, done, Ev::Done);
            if cfg.enforce_deadline && done > tk.deadline_ns {
                // The commit point falls past the deadline: the engine's
                // cancel token would fire and the commit aborts. The
                // body's service time is still spent.
                sum.timed_out += 1;
            } else if committed && done <= tk.deadline_ns {
                sum.good += 1;
                sum.good_busy_ns += svc_ns;
                sum.sojourn.record(done - tk.born_ns);
                sum.horizon_ns = sum.horizon_ns.max(done);
            } else if committed {
                sum.late += 1;
                sum.horizon_ns = sum.horizon_ns.max(done);
            } else {
                fail(cfg, &mut sum, &mut bucket, &mut heap, &mut seq, tk, done, false);
            }
        }
    }

    // Expired entries purged inside the queue never re-emerged: they are
    // terminal timeouts. Copy the queue's shed ledger out.
    sum.timed_out += queue.dropped_expired;
    sum.rejected = queue.rejected;
    sum.dropped_expired = queue.dropped_expired;
    sum.evicted = queue.evicted;
    sum.queue_high_water = queue.high_water as u64;
    sum.assert_conserved();
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use bionicdb_workloads::ServeKind;

    use crate::serve::ArrivalProcess;

    #[test]
    fn light_load_all_good_and_deterministic() {
        // The probe must run on its own build: service times depend on
        // database state, and byte-stability is defined over identically
        // prepared systems (records get deterministic virtual addresses,
        // so two fresh builds time identically).
        let svc = probe_service_ns(&ServeMix::build(ServeKind::SmallBank, 1), 1, 50);
        let cfg = ServeConfig::controlled(
            ArrivalProcess::Poisson {
                rate_per_sec: 0.25 * 1e9 / svc,
            },
            120,
            (svc * 50.0) as u64,
            2,
            42,
        );
        let a = simulate(&ServeMix::build(ServeKind::SmallBank, 1), &cfg);
        let b = simulate(&ServeMix::build(ServeKind::SmallBank, 1), &cfg);
        assert_eq!(
            a.render_json("t"),
            b.render_json("t"),
            "fixed seed must be byte-stable"
        );
        assert_eq!(a.fresh, 120);
        assert!(
            a.good >= 115,
            "at 25% load nearly everything is good: {a:?}"
        );
        assert_eq!(a.sojourn.count(), a.good);
    }

    #[test]
    fn overload_baseline_collapses_controlled_degrades_gracefully() {
        let mix = ServeMix::build(ServeKind::YcsbC, 1);
        let svc = probe_service_ns(&mix, 1, 50);
        let servers = 2;
        let deadline = (svc * 25.0) as u64;
        // 2x saturation for 400 fresh requests.
        let arrivals = ArrivalProcess::Poisson {
            rate_per_sec: 2.0 * servers as f64 * 1e9 / svc,
        };
        let base = simulate(
            &mix,
            &ServeConfig::baseline(arrivals, 400, deadline, servers, 7),
        );
        let ctrl = simulate(
            &mix,
            &ServeConfig::controlled(arrivals, 400, deadline, servers, 7),
        );
        // The baseline queue grows without bound: most completions land
        // past the deadline, goodput collapses.
        assert!(
            base.late > base.good,
            "unbounded FIFO at 2x must mostly miss deadlines: {base:?}"
        );
        // The controlled server sheds instead of queueing: what it admits
        // it commits in time, so goodput stays near capacity.
        assert!(
            ctrl.good > 2 * base.good.max(1),
            "controlled goodput {} vs baseline {}",
            ctrl.good,
            base.good
        );
        assert!(ctrl.rejected + ctrl.dropped_expired > 0, "overload sheds");
        assert!(
            ctrl.queue_high_water <= ctrl.fresh,
            "bounded queue stayed bounded"
        );
    }
}
