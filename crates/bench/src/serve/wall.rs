//! Wall-clock serving: real threads, real sleeps, real deadline aborts.
//!
//! The virtual-time engine ([`super::sim`]) is the deterministic,
//! CI-gated instrument; this engine is the honest one. A generator thread
//! plays the open-loop client — sleeping out arrival gaps, offering
//! tickets, scheduling backoff retries — while `servers` worker threads
//! drain the shared [`AdmissionQueue`] and run transactions against the
//! Silo database under [`NullTracer`]. Deadline enforcement uses the
//! engine's own [`CancelToken::deadline`]: the token is armed with the
//! request's absolute deadline and the commit protocol aborts the
//! transaction if it fires — a doomed transaction gives its worker back
//! at the commit point instead of installing work nobody is waiting for.
//!
//! Results are wall-clock honest and therefore *not* byte-stable; use
//! `saturate --wall` to produce them, and the virtual-time mode for
//! anything that must reproduce.

use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use bionicdb_cpu_model::NullTracer;
use bionicdb_silo::CancelToken;
use bionicdb_workloads::ServeMix;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use super::arrival::ArrivalGen;
use super::queue::{AdmissionQueue, Shed, Ticket};
use super::{RetryBucket, RetryMode, ServeConfig, ServeSummary};

/// Epoch advance period (executions), matching `silo::runner`.
const EPOCH_PERIOD: u64 = 4096;

/// State shared between the generator and the workers.
struct Shared {
    queue: AdmissionQueue,
    /// Retries waiting out their backoff, min-heap by due time
    /// (`Reverse` tuple: due_ns first). The generator drains it.
    retry_heap: BinaryHeap<std::cmp::Reverse<(u64, Ticket)>>,
    bucket: Option<RetryBucket>,
    sum: ServeSummary,
    /// Requests born but not yet terminal.
    outstanding: u64,
    /// All fresh arrivals have been offered.
    arrivals_done: bool,
    /// Queue-purged expirations already settled into `sum`/`outstanding`.
    settled_drops: u64,
}

impl Shared {
    /// The queue purges expired entries silently (`DeadlineDrop`); each
    /// purge is a terminal timeout, so settle the delta into the ledger —
    /// termination depends on `outstanding` reaching zero *during* the
    /// run. Call after any queue operation, with the lock held.
    fn settle_drops(&mut self) {
        let d = self.queue.dropped_expired - self.settled_drops;
        if d > 0 {
            self.settled_drops += d;
            self.sum.timed_out += d;
            self.outstanding -= d;
        }
    }

    /// Settle a failed attempt: queue a retry or record the terminal
    /// outcome. Mirrors `sim::fail` with wall-clock `now_ns`.
    fn fail(&mut self, cfg: &ServeConfig, tk: Ticket, now_ns: u64, shed: bool) {
        let next_attempt = tk.attempt + 1;
        let retry_at = match cfg.retry {
            RetryMode::None => None,
            RetryMode::Immediate { max_attempts } => {
                (next_attempt < max_attempts).then_some(now_ns)
            }
            RetryMode::Budgeted(p) => {
                let at = now_ns + p.backoff_ns(next_attempt);
                (next_attempt < p.max_attempts
                    && at < tk.deadline_ns
                    && self.bucket.as_mut().expect("budgeted bucket").try_take())
                .then_some(at)
            }
        };
        match retry_at {
            Some(at) => {
                self.sum.retries += 1;
                self.retry_heap.push(std::cmp::Reverse((
                    at,
                    Ticket {
                        attempt: next_attempt,
                        ..tk
                    },
                )));
            }
            None if shed => {
                self.sum.shed += 1;
                self.outstanding -= 1;
            }
            None => {
                self.sum.aborted += 1;
                self.outstanding -= 1;
            }
        }
    }

    /// Offer a ticket, settling any shed decision.
    fn offer(&mut self, cfg: &ServeConfig, tk: Ticket, now_ns: u64) {
        let r = self.queue.offer(tk, now_ns);
        self.settle_drops();
        match r {
            Ok(()) => {}
            Err(Shed::Rejected) => self.fail(cfg, tk, now_ns, true),
            Err(Shed::Evicted(victim)) => self.fail(cfg, victim, now_ns, true),
        }
    }
}

/// Mean *wall-clock* service time of `mix`, nanoseconds — the capacity
/// probe for wall-clock sweeps. The virtual-time probe measures model
/// cycles; real execution has different constants (and scheduling
/// jitter), so deadlines derived from the model probe would be
/// meaninglessly tight here.
pub fn probe_wall_service_ns(mix: &ServeMix, seed: u64, txns: usize) -> f64 {
    let mut tracer = NullTracer;
    let mut rng = SmallRng::seed_from_u64(seed);
    for i in 0..32 {
        mix.run_once(&mut tracer, &mut rng, i, None);
    }
    let t0 = Instant::now();
    for i in 0..txns.max(1) {
        mix.run_once(&mut tracer, &mut rng, 32 + i, None);
    }
    t0.elapsed().as_nanos() as f64 / txns.max(1) as f64
}

/// Run one wall-clock serving scenario to completion and return its
/// summary (plus the wall seconds the run took).
pub fn serve_wall(mix: &ServeMix, cfg: &ServeConfig) -> ServeSummary {
    let start = Instant::now();
    let now_ns = move || start.elapsed().as_nanos() as u64;
    let shared = Mutex::new(Shared {
        queue: AdmissionQueue::new(cfg.policy, cfg.queue_capacity),
        retry_heap: BinaryHeap::new(),
        bucket: match cfg.retry {
            RetryMode::Budgeted(p) => Some(RetryBucket::new(&p)),
            _ => None,
        },
        sum: ServeSummary::new(),
        outstanding: 0,
        arrivals_done: cfg.requests == 0,
        settled_drops: 0,
    });
    let work_ready = Condvar::new();

    std::thread::scope(|scope| {
        // Workers.
        for _ in 0..cfg.servers.max(1) {
            scope.spawn(|| {
                let mut tracer = NullTracer;
                let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x5E7E_5E7E_5E7E_5E7E);
                loop {
                    let tk = {
                        let mut sh = shared.lock().expect("serve state");
                        loop {
                            let t = now_ns();
                            let taken = sh.queue.take(t);
                            sh.settle_drops();
                            if let Some(tk) = taken {
                                break tk;
                            }
                            if sh.arrivals_done && sh.retry_heap.is_empty() && sh.outstanding == 0
                            {
                                work_ready.notify_all();
                                return;
                            }
                            sh = work_ready
                                .wait_timeout(sh, Duration::from_millis(1))
                                .expect("serve state")
                                .0;
                        }
                    };
                    let t_dispatch = now_ns();
                    if cfg.enforce_deadline && t_dispatch >= tk.deadline_ns {
                        let mut sh = shared.lock().expect("serve state");
                        sh.sum.timed_out += 1;
                        sh.outstanding -= 1;
                        continue;
                    }
                    // Arm the engine-level deadline: the commit protocol
                    // checks the token before acquiring any lock.
                    let cancel = if cfg.enforce_deadline && tk.deadline_ns != u64::MAX {
                        Some(CancelToken::deadline(
                            start + Duration::from_nanos(tk.deadline_ns),
                        ))
                    } else {
                        None
                    };
                    let committed =
                        mix.run_once(&mut tracer, &mut rng, tk.txn_index, cancel.as_ref());
                    let done = now_ns();
                    let svc = done.saturating_sub(t_dispatch).max(1);
                    let mut sh = shared.lock().expect("serve state");
                    sh.sum.executed += 1;
                    sh.sum.busy_ns += svc;
                    if sh.sum.executed.is_multiple_of(EPOCH_PERIOD) {
                        mix.advance_epoch();
                    }
                    if committed && done <= tk.deadline_ns {
                        sh.sum.good += 1;
                        sh.sum.good_busy_ns += svc;
                        let sojourn = done.saturating_sub(tk.born_ns).max(1);
                        sh.sum.sojourn.record(sojourn);
                        sh.outstanding -= 1;
                    } else if committed {
                        sh.sum.late += 1;
                        sh.outstanding -= 1;
                    } else if done >= tk.deadline_ns {
                        // The cancel token fired (or the clock ran out
                        // mid-body): a timeout, not a contention abort.
                        sh.sum.timed_out += 1;
                        sh.outstanding -= 1;
                    } else {
                        sh.fail(cfg, tk, done, false);
                    }
                    work_ready.notify_all();
                }
            });
        }

        // Generator: fresh arrivals on their own clock, plus due retries.
        let mut gen = ArrivalGen::new(cfg.arrivals);
        let mut rng_arr = SmallRng::seed_from_u64(cfg.seed);
        let mut next_arrival = now_ns() + gen.next_gap_ns(&mut rng_arr);
        let mut born = 0u64;
        loop {
            let t = now_ns();
            // Offer everything that is due.
            let mut sh = shared.lock().expect("serve state");
            while born < cfg.requests as u64 && next_arrival <= t {
                let tk = Ticket {
                    id: born,
                    born_ns: next_arrival,
                    deadline_ns: next_arrival.saturating_add(cfg.deadline_ns),
                    txn_index: born as usize,
                    attempt: 0,
                };
                born += 1;
                sh.sum.fresh += 1;
                sh.outstanding += 1;
                if let Some(b) = sh.bucket.as_mut() {
                    b.on_fresh();
                }
                sh.offer(cfg, tk, t);
                next_arrival += gen.next_gap_ns(&mut rng_arr);
            }
            while let Some(&std::cmp::Reverse((due, _))) = sh.retry_heap.peek() {
                if due > t {
                    break;
                }
                let std::cmp::Reverse((_, tk)) = sh.retry_heap.pop().expect("peeked");
                sh.offer(cfg, tk, t);
            }
            if born == cfg.requests as u64 {
                sh.arrivals_done = true;
            }
            let finished = sh.arrivals_done && sh.retry_heap.is_empty() && sh.outstanding == 0;
            work_ready.notify_all();
            drop(sh);
            if finished {
                break;
            }
            // Sleep until the next fresh arrival or retry is due (capped
            // so retries queued after this check still get seen).
            let wake = if born < cfg.requests as u64 {
                next_arrival.saturating_sub(now_ns()).min(1_000_000)
            } else {
                200_000
            };
            std::thread::sleep(Duration::from_nanos(wake.max(1)));
        }
    });

    let mut sh = shared.into_inner().expect("serve state");
    sh.settle_drops();
    sh.sum.rejected = sh.queue.rejected;
    sh.sum.dropped_expired = sh.queue.dropped_expired;
    sh.sum.evicted = sh.queue.evicted;
    sh.sum.queue_high_water = sh.queue.high_water as u64;
    sh.sum.horizon_ns = now_ns();
    sh.sum.assert_conserved();
    sh.sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::ArrivalProcess;
    use bionicdb_workloads::ServeKind;

    #[test]
    fn wall_clock_light_load_mostly_good() {
        let mix = ServeMix::build(ServeKind::SmallBank, 1);
        // Light load, generous deadline: everything should commit in
        // time even on a loaded CI host.
        let cfg = ServeConfig::controlled(
            ArrivalProcess::Poisson { rate_per_sec: 2_000.0 },
            60,
            200_000_000, // 200 ms
            2,
            9,
        );
        let sum = serve_wall(&mix, &cfg);
        assert_eq!(sum.fresh, 60);
        assert!(
            sum.good + sum.late + sum.timed_out + sum.shed + sum.aborted == 60,
            "ledger: {sum:?}"
        );
        assert!(sum.good >= 55, "light load mostly good: {sum:?}");
        assert_eq!(sum.sojourn.count(), sum.good);
    }

    #[test]
    fn wall_clock_deadline_zero_times_everything_out() {
        let mix = ServeMix::build(ServeKind::YcsbC, 1);
        let mut cfg = ServeConfig::controlled(
            ArrivalProcess::Poisson { rate_per_sec: 5_000.0 },
            40,
            1, // 1 ns: every request is doomed at dispatch
            2,
            11,
        );
        cfg.retry = RetryMode::None;
        let sum = serve_wall(&mix, &cfg);
        assert_eq!(sum.good, 0, "nothing can make a 1 ns deadline: {sum:?}");
        assert_eq!(sum.fresh, 40);
        assert!(sum.timed_out + sum.shed > 0);
    }

    #[test]
    fn wall_clock_overload_conserves_ledger() {
        // Regression for the ledger-conservation guarantee under the
        // nastiest wall-clock regime: heavy overload on a tiny bounded
        // queue with eager retries, where requests are simultaneously
        // being rejected, evicted, expired in queue, skipped at dispatch,
        // and cancelled at the commit point across racing threads.
        // `serve_wall` itself calls `assert_conserved` before returning
        // (same contract as the virtual-time engines); this pins that the
        // call stays, and that the five terminal buckets really partition
        // `fresh` under concurrency, not just in virtual time.
        let mix = ServeMix::build(ServeKind::SmallBank, 1);
        let mut cfg = ServeConfig::controlled(
            ArrivalProcess::Mmpp {
                base_rate: 20_000.0,
                burst_rate: 200_000.0,
                mean_base_ns: 2_000_000,
                mean_burst_ns: 2_000_000,
            },
            250,
            3_000_000, // 3 ms: tight enough that bursts overrun it
            2,
            17,
        );
        cfg.queue_capacity = 4;
        let sum = serve_wall(&mix, &cfg);
        assert_eq!(sum.fresh, 250);
        sum.assert_conserved();
        assert!(
            sum.shed + sum.timed_out > 0,
            "an overloaded bounded queue must shed or expire: {sum:?}"
        );
        assert_eq!(sum.sojourn.count(), sum.good, "one sojourn sample per good");
    }
}
