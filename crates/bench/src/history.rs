//! Append-only benchmark history and the regression gate built on it.
//!
//! Every `simperf` run appends one JSONL line per tracked metric to
//! `results/bench_history.jsonl` (path overridable). The `benchdiff` bin
//! reads the file back, groups entries by bench key, takes the *oldest*
//! entry per key as the recorded baseline (the first run bootstraps it)
//! and fails when the newest entry regresses by more than the tolerance
//! in cycles per second. The format is a rigid single-line JSON object —
//! written and parsed here, no serde — so the file stays greppable,
//! appendable from concurrent runs (one `write` per line), and diffable
//! in review.

use std::io::Write as _;
use std::path::Path;

/// Where history lines land by default, relative to the repo root.
pub const DEFAULT_PATH: &str = "results/bench_history.jsonl";

/// Default allowed regression: 10% below baseline fails.
pub const DEFAULT_TOLERANCE: f64 = 0.10;

/// One recorded benchmark result.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// Stable bench key, e.g. `simperf-fast` or `parsim-matrix`.
    pub bench: String,
    /// The tracked metric: simulated cycles per wall-clock second.
    pub cycles_per_sec: f64,
    /// Wall-clock timestamp (Unix seconds) of the run.
    pub unix_secs: u64,
    /// Optional tail-latency metric, nanoseconds (serve benches). Gated
    /// upward: a *higher* p99 than baseline is the regression.
    pub p99_ns: Option<f64>,
    /// Optional work-done metric: simulated cycles the run spent on
    /// committed work, for cross-run sanity (recorded, not gated).
    pub committed_cycles: Option<u64>,
    /// Optional memory-level-parallelism metric: peak outstanding DRAM
    /// reads on the busiest port (batchsweep rows; recorded, not gated).
    pub mlp_peak: Option<u64>,
}

impl Entry {
    /// An entry carrying only the required fields.
    pub fn basic(bench: &str, cycles_per_sec: f64, unix_secs: u64) -> Entry {
        Entry {
            bench: bench.to_string(),
            cycles_per_sec,
            unix_secs,
            p99_ns: None,
            committed_cycles: None,
            mlp_peak: None,
        }
    }

    /// Render the rigid single-line JSON form `parse_line` reads back.
    /// Optional fields are appended only when present, keeping old lines
    /// and new parsers (and vice versa) compatible.
    pub fn render(&self) -> String {
        debug_assert!(
            !self.bench.contains('"'),
            "bench keys must not contain quotes"
        );
        let mut s = format!(
            "{{\"bench\":\"{}\",\"cycles_per_sec\":{:.3},\"unix_secs\":{}",
            self.bench, self.cycles_per_sec, self.unix_secs
        );
        if let Some(p99) = self.p99_ns {
            s.push_str(&format!(",\"p99_ns\":{p99:.1}"));
        }
        if let Some(cc) = self.committed_cycles {
            s.push_str(&format!(",\"committed_cycles\":{cc}"));
        }
        if let Some(mlp) = self.mlp_peak {
            s.push_str(&format!(",\"mlp_peak\":{mlp}"));
        }
        s.push('}');
        s
    }
}

/// Wall clock now, Unix seconds (0 if the clock is before the epoch).
pub fn now_unix() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Append one entry to the history file, creating parent directories and
/// the file itself as needed. One write per line keeps concurrent
/// appenders from interleaving mid-record.
pub fn append(path: &Path, entry: &Entry) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    f.write_all(format!("{}\n", entry.render()).as_bytes())
}

/// Parse one history line; `None` for blanks or lines that do not carry
/// all three fields (forward compatibility: unknown lines are skipped,
/// not fatal).
///
/// A line only counts when it is *complete* — it must end with the `}`
/// that [`Entry::render`] always emits last. The field scan below is
/// substring-based, so without this check a line torn mid-append (power
/// loss under `append`'s single write) could still yield every key and
/// parse into an entry with a silently truncated final number.
pub fn parse_line(line: &str) -> Option<Entry> {
    fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
        let start = line.find(key)? + key.len();
        let rest = &line[start..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim())
    }
    let line = line.trim();
    if line.is_empty() || !line.ends_with('}') {
        return None;
    }
    let bench = field(line, "\"bench\":\"")?;
    let bench = &bench[..bench.rfind('"')?];
    let cycles_per_sec: f64 = field(line, "\"cycles_per_sec\":")?.parse().ok()?;
    let unix_secs: u64 = field(line, "\"unix_secs\":")?.parse().ok()?;
    let p99_ns = field(line, "\"p99_ns\":").and_then(|v| v.parse().ok());
    let committed_cycles = field(line, "\"committed_cycles\":").and_then(|v| v.parse().ok());
    let mlp_peak = field(line, "\"mlp_peak\":").and_then(|v| v.parse().ok());
    Some(Entry {
        bench: bench.to_string(),
        cycles_per_sec,
        unix_secs,
        p99_ns,
        committed_cycles,
        mlp_peak,
    })
}

/// Parse a whole history file's text, skipping unparseable lines.
pub fn parse(text: &str) -> Vec<Entry> {
    text.lines().filter_map(parse_line).collect()
}

/// A parsed history file: the salvageable entries plus the torn trailing
/// line, if any.
#[derive(Debug, Clone, PartialEq)]
pub struct Parsed {
    /// Every complete, recognizable entry, in file order.
    pub entries: Vec<Entry>,
    /// The incomplete trailing line, when the file ends mid-append — a
    /// crash or power loss cut `append`'s single `line\n` write short.
    /// `None` when the file ends cleanly.
    pub torn_tail: Option<String>,
}

/// Parse a history file that may end in a torn append: all complete
/// entries are salvaged and the torn trailing line (a final line with no
/// terminating newline, cut before its closing `}`) is reported so
/// callers can warn instead of silently reading a shortened history.
/// Complete lines that merely fail to parse stay silently skipped, as in
/// [`parse`] (forward compatibility) — only the tail can be torn,
/// because every append is one atomic `line\n` write.
pub fn parse_salvage(text: &str) -> Parsed {
    let tail = if text.ends_with('\n') {
        None
    } else {
        text.lines().last()
    };
    Parsed {
        entries: parse(text),
        torn_tail: tail
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.ends_with('}'))
            .map(str::to_string),
    }
}

/// The comparison `benchdiff` prints for one bench key.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// The bench key this verdict covers.
    pub bench: String,
    /// The recorded baseline: the oldest entry's metric.
    pub baseline: f64,
    /// The newest entry's metric.
    pub latest: f64,
    /// `latest / baseline` (1.0 when the baseline is zero).
    pub ratio: f64,
    /// True when `latest < baseline * (1 - tolerance)`.
    pub regressed: bool,
    /// Baseline p99 (oldest entry for the key carrying one), nanoseconds.
    pub baseline_p99: Option<f64>,
    /// Latest p99 (newest entry for the key carrying one), nanoseconds.
    pub latest_p99: Option<f64>,
    /// True when `latest_p99 > baseline_p99 * (1 + tolerance)` — tail
    /// latency regresses *upward*.
    pub p99_regressed: bool,
}

/// Compare the newest entry per bench key against its recorded baseline
/// (the oldest entry for that key — the first run bootstraps the
/// baseline, so a fresh history always passes). Entries are taken in file
/// order, which `append` keeps chronological.
pub fn check(entries: &[Entry], tolerance: f64) -> Vec<Verdict> {
    let mut keys: Vec<&str> = Vec::new();
    for e in entries {
        if !keys.contains(&e.bench.as_str()) {
            keys.push(&e.bench);
        }
    }
    keys.iter()
        .map(|&key| {
            let mut of_key = entries.iter().filter(|e| e.bench == key);
            let baseline = of_key.next().expect("key came from entries").cycles_per_sec;
            let latest = entries
                .iter()
                .rev()
                .find(|e| e.bench == key)
                .expect("key came from entries")
                .cycles_per_sec;
            let ratio = if baseline == 0.0 { 1.0 } else { latest / baseline };
            // p99 gate: oldest vs newest entry *carrying* a p99 for the
            // key, so pre-schema lines neither gate nor get gated.
            let baseline_p99 = entries
                .iter()
                .filter(|e| e.bench == key)
                .find_map(|e| e.p99_ns);
            let latest_p99 = entries
                .iter()
                .rev()
                .filter(|e| e.bench == key)
                .find_map(|e| e.p99_ns);
            let p99_regressed = match (baseline_p99, latest_p99) {
                (Some(b), Some(l)) => b > 0.0 && l > b * (1.0 + tolerance),
                _ => false,
            };
            Verdict {
                bench: key.to_string(),
                baseline,
                latest,
                ratio,
                regressed: latest < baseline * (1.0 - tolerance),
                baseline_p99,
                latest_p99,
                p99_regressed,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(bench: &str, cps: f64, t: u64) -> Entry {
        Entry::basic(bench, cps, t)
    }

    #[test]
    fn render_parse_roundtrip() {
        let e = entry("parsim-matrix", 123456.789, 1_754_000_000);
        let parsed = parse_line(&e.render()).expect("parses");
        assert_eq!(parsed.bench, "parsim-matrix");
        assert!((parsed.cycles_per_sec - 123456.789).abs() < 1e-3);
        assert_eq!(parsed.unix_secs, 1_754_000_000);
    }

    #[test]
    fn junk_lines_are_skipped_not_fatal() {
        let text = "\n// not json\n{\"bench\":\"a\",\"cycles_per_sec\":10.000,\"unix_secs\":1}\n{\"other\":1}\n";
        let entries = parse(text);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].bench, "a");
    }

    #[test]
    fn fresh_baseline_passes() {
        // A single entry per key is its own baseline: never a regression.
        let entries = vec![entry("a", 100.0, 1), entry("b", 5.0, 2)];
        let verdicts = check(&entries, DEFAULT_TOLERANCE);
        assert_eq!(verdicts.len(), 2);
        assert!(verdicts.iter().all(|v| !v.regressed));
        assert!(verdicts.iter().all(|v| (v.ratio - 1.0).abs() < 1e-9));
    }

    #[test]
    fn injected_regression_fails() {
        // Synthetic regression: the latest run is 50% below baseline.
        let entries = vec![
            entry("parsim-matrix", 100.0, 1),
            entry("parsim-matrix", 98.0, 2),
            entry("parsim-matrix", 50.0, 3),
        ];
        let verdicts = check(&entries, DEFAULT_TOLERANCE);
        assert_eq!(verdicts.len(), 1);
        assert!(verdicts[0].regressed, "50% drop must regress: {verdicts:?}");
        assert_eq!(verdicts[0].baseline, 100.0);
        assert_eq!(verdicts[0].latest, 50.0);
    }

    #[test]
    fn within_tolerance_passes_and_keys_are_independent() {
        let entries = vec![
            entry("a", 100.0, 1),
            entry("b", 100.0, 2),
            entry("a", 95.0, 3),  // -5%: inside 10% tolerance
            entry("b", 80.0, 4),  // -20%: regression
        ];
        let verdicts = check(&entries, DEFAULT_TOLERANCE);
        let a = verdicts.iter().find(|v| v.bench == "a").unwrap();
        let b = verdicts.iter().find(|v| v.bench == "b").unwrap();
        assert!(!a.regressed, "{a:?}");
        assert!(b.regressed, "{b:?}");
    }

    #[test]
    fn optional_fields_roundtrip_and_old_lines_still_parse() {
        let mut e = entry("serve-smallbank", 42.0, 7);
        e.p99_ns = Some(1234.5);
        e.committed_cycles = Some(999_888);
        e.mlp_peak = Some(31);
        let parsed = parse_line(&e.render()).expect("parses");
        assert_eq!(parsed.p99_ns, Some(1234.5));
        assert_eq!(parsed.committed_cycles, Some(999_888));
        assert_eq!(parsed.mlp_peak, Some(31));
        // Pre-schema line: optional fields absent, still parses.
        let old = "{\"bench\":\"a\",\"cycles_per_sec\":10.000,\"unix_secs\":1}";
        let parsed = parse_line(old).expect("old format parses");
        assert_eq!(parsed.p99_ns, None);
        assert_eq!(parsed.committed_cycles, None);
    }

    #[test]
    fn p99_gate_fires_upward_only() {
        let with_p99 = |b: &str, cps: f64, t: u64, p99: f64| {
            let mut e = entry(b, cps, t);
            e.p99_ns = Some(p99);
            e
        };
        // Throughput steady; p99 doubles → p99 regression, not cps.
        let entries = vec![
            with_p99("s", 100.0, 1, 1000.0),
            with_p99("s", 100.0, 2, 2000.0),
        ];
        let v = &check(&entries, DEFAULT_TOLERANCE)[0];
        assert!(!v.regressed);
        assert!(v.p99_regressed, "{v:?}");
        // p99 *improves*: no regression.
        let entries = vec![
            with_p99("s", 100.0, 1, 2000.0),
            with_p99("s", 100.0, 2, 900.0),
        ];
        assert!(!check(&entries, DEFAULT_TOLERANCE)[0].p99_regressed);
        // Keys without p99 never p99-regress.
        let entries = vec![entry("s", 100.0, 1), entry("s", 100.0, 2)];
        assert!(!check(&entries, DEFAULT_TOLERANCE)[0].p99_regressed);
    }

    #[test]
    fn serve_hw_rows_gate_like_any_other_key() {
        // The hardware-engine serving rows (`serve-hw-*`, appended by
        // full `saturate --engine hw` runs) ride the same generic gates:
        // a >10% goodput drop or a >10% p99 rise against the key's own
        // baseline fails `benchdiff`, independently of the model-engine
        // `serve-*` rows.
        let with_p99 = |b: &str, cps: f64, t: u64, p99: f64| {
            let mut e = entry(b, cps, t);
            e.p99_ns = Some(p99);
            e
        };
        let entries = vec![
            with_p99("serve-smallbank", 100.0, 1, 1000.0),
            with_p99("serve-hw-smallbank", 4000.0, 1, 800.0),
            with_p99("serve-smallbank", 99.0, 2, 1010.0),
            // hw goodput holds but its p99 rises 25%: only the hw key's
            // tail gate fires.
            with_p99("serve-hw-smallbank", 4010.0, 2, 1000.0),
        ];
        let verdicts = check(&entries, DEFAULT_TOLERANCE);
        let sim = verdicts.iter().find(|v| v.bench == "serve-smallbank").unwrap();
        let hw = verdicts
            .iter()
            .find(|v| v.bench == "serve-hw-smallbank")
            .unwrap();
        assert!(!sim.regressed && !sim.p99_regressed, "{sim:?}");
        assert!(!hw.regressed, "goodput held: {hw:?}");
        assert!(hw.p99_regressed, "25% tail rise must gate: {hw:?}");
        // And a goodput collapse on the hw key alone gates too.
        let entries = vec![
            with_p99("serve-hw-ycsb_c", 5000.0, 1, 700.0),
            with_p99("serve-hw-ycsb_c", 3000.0, 2, 700.0),
        ];
        assert!(check(&entries, DEFAULT_TOLERANCE)[0].regressed);
    }

    #[test]
    fn truncating_the_tail_at_every_byte_offset_salvages_the_prefix() {
        // Two full-schema rows; the second gets torn at every possible
        // byte offset. At no offset may the torn tail mis-parse into an
        // entry (the substring field scan would otherwise accept a line
        // cut mid-number and report a truncated metric), and the intact
        // first row must always survive.
        let mut e1 = entry("parsim-matrix", 123456.789, 1_754_000_000);
        e1.p99_ns = Some(1234.5);
        e1.committed_cycles = Some(111_222);
        let mut e2 = entry("serve-smallbank", 98765.432, 1_754_000_100);
        e2.p99_ns = Some(6789.1);
        e2.committed_cycles = Some(999_888);
        let full = format!("{}\n{}\n", e1.render(), e2.render());
        let keep = e1.render().len() + 1;
        let last = e2.render();

        for cut in 0..last.len() {
            let text = &full[..keep + cut];
            let p = parse_salvage(text);
            assert_eq!(
                p.entries.len(),
                1,
                "cut at byte {cut} of {:?} must not mis-parse: {:?}",
                &last[..cut],
                p.entries
            );
            assert_eq!(p.entries[0], e1, "first row survives a cut at {cut}");
            if cut == 0 {
                // Clean EOF right after the first row: nothing torn.
                assert_eq!(p.torn_tail, None);
            } else {
                assert_eq!(
                    p.torn_tail.as_deref(),
                    Some(&last[..cut]),
                    "the torn tail is reported verbatim (cut at {cut})"
                );
            }
        }

        // Untruncated file: both rows, no warning.
        let p = parse_salvage(&full);
        assert_eq!(p.entries, vec![e1, e2]);
        assert_eq!(p.torn_tail, None);
        // A complete-but-unknown trailing line is forward-compatible junk,
        // not a torn tail — silently skipped, exactly as `parse` does.
        let p = parse_salvage("{\"bench\":\"a\",\"cycles_per_sec\":10.000,\"unix_secs\":1}\n{\"other\":1}");
        assert_eq!(p.entries.len(), 1);
        assert_eq!(p.torn_tail, None);
    }

    #[test]
    fn append_creates_dirs_and_appends() {
        let dir = std::env::temp_dir().join(format!(
            "bionicdb-history-test-{}-{}",
            std::process::id(),
            now_unix()
        ));
        let path = dir.join("nested").join("h.jsonl");
        append(&path, &entry("x", 1.0, 1)).expect("first append");
        append(&path, &entry("x", 2.0, 2)).expect("second append");
        let text = std::fs::read_to_string(&path).expect("readable");
        let entries = parse(&text);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[1].cycles_per_sec, 2.0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
