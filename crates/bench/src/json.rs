//! Machine-readable results for the benchmark binaries.
//!
//! Every bin accepts `--json <path>`: alongside its human-readable tables
//! it then writes one JSON document with a row per measurement, including
//! throughput, the latency-percentile summary (p50/p95/p99 from the
//! machine's observability histograms), and the abort-reason breakdown.
//! The serializer is hand-rolled (offline build, no serde) and emits keys
//! in a fixed order, so two identical fixed-seed runs produce
//! byte-identical dumps — `scripts/check.sh` diffs them to smoke-test
//! cycle determinism.

use crate::Tput;
use bionicdb::Machine;

/// Collects result rows and writes them to the `--json` path on
/// [`JsonOut::write`]. When the flag is absent every method is a cheap
/// no-op, so bins call it unconditionally.
#[derive(Debug)]
pub struct JsonOut {
    bin: String,
    path: Option<String>,
    rows: Vec<String>,
}

impl JsonOut {
    /// Parse `--json <path>` from the process arguments (shared bench-bin
    /// vocabulary, see [`crate::BenchArgs`]).
    pub fn from_env(bin: &str) -> JsonOut {
        JsonOut {
            bin: bin.to_string(),
            path: crate::BenchArgs::raw_env()
                .json_path()
                .map(str::to_string),
            rows: Vec::new(),
        }
    }

    /// True when a `--json` path was given (rows are being collected).
    pub fn active(&self) -> bool {
        self.path.is_some()
    }

    /// Add a measurement row backed by a machine: throughput plus the full
    /// [`bionicdb::MachineReport`] (latency percentiles, abort reasons,
    /// stage/NoC/DRAM counters).
    pub fn machine_row(&mut self, label: &str, tput: Option<Tput>, m: &Machine) {
        if !self.active() {
            return;
        }
        let row = render_machine_row(label, tput, m);
        self.rows.push(row);
    }

    /// Add a pre-rendered row (see [`render_machine_row`] — the sweep bins
    /// render rows inside `par_map` closures, where the machine dies with
    /// the closure, and push them here afterwards).
    pub fn push_raw(&mut self, row: String) {
        if self.active() {
            self.rows.push(row);
        }
    }

    /// Add a plain scalar row (model-time baselines, resource estimates —
    /// anything without a simulated machine behind it).
    pub fn value_row(&mut self, label: &str, value: f64) {
        if !self.active() {
            return;
        }
        self.rows.push(format!(
            "{{\"label\":\"{}\",\"kind\":\"value\",\"value\":{:.6}}}",
            bionicdb_fpga::obs::json_escape(label),
            value
        ));
    }

    /// Serialize the collected rows into the full document.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"bin\":\"");
        out.push_str(&bionicdb_fpga::obs::json_escape(&self.bin));
        out.push_str("\",\"rows\":[");
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(r);
        }
        out.push_str("]}");
        out.push('\n');
        out
    }

    /// Serialize the collected rows and write them to the `--json` path.
    /// Call once, at the end of `main`; a no-op without the flag.
    pub fn write(self) {
        let Some(path) = self.path.clone() else {
            return;
        };
        let out = self.render();
        if let Err(e) = std::fs::write(&path, &out) {
            eprintln!("error: cannot write --json {path}: {e}");
            std::process::exit(1);
        }
        println!("\nwrote {path}");
    }
}

/// Validate that `s` is one syntactically well-formed JSON value (the
/// whole string, no trailing garbage beyond whitespace). A tiny
/// recursive-descent checker — the offline build has no serde, and the
/// stats smoke test in `scripts/check.sh` only needs to prove the
/// hand-rolled writers emit parseable documents.
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut i = skip_ws(b, 0);
    i = value(b, i)?;
    i = skip_ws(b, i);
    if i != b.len() {
        return Err(format!("trailing bytes at offset {i}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], mut i: usize) -> usize {
    while i < b.len() && matches!(b[i], b' ' | b'\t' | b'\n' | b'\r') {
        i += 1;
    }
    i
}

fn value(b: &[u8], i: usize) -> Result<usize, String> {
    let i = skip_ws(b, i);
    match b.get(i) {
        Some(b'{') => object(b, i),
        Some(b'[') => array(b, i),
        Some(b'"') => string(b, i),
        Some(b't') => literal(b, i, b"true"),
        Some(b'f') => literal(b, i, b"false"),
        Some(b'n') => literal(b, i, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
        Some(c) => Err(format!("unexpected byte {:?} at offset {i}", *c as char)),
        None => Err("unexpected end of input".into()),
    }
}

fn object(b: &[u8], mut i: usize) -> Result<usize, String> {
    i = skip_ws(b, i + 1);
    if b.get(i) == Some(&b'}') {
        return Ok(i + 1);
    }
    loop {
        i = string(b, skip_ws(b, i))?;
        i = skip_ws(b, i);
        if b.get(i) != Some(&b':') {
            return Err(format!("expected ':' at offset {i}"));
        }
        i = value(b, i + 1)?;
        i = skip_ws(b, i);
        match b.get(i) {
            Some(b',') => i += 1,
            Some(b'}') => return Ok(i + 1),
            _ => return Err(format!("expected ',' or '}}' at offset {i}")),
        }
    }
}

fn array(b: &[u8], mut i: usize) -> Result<usize, String> {
    i = skip_ws(b, i + 1);
    if b.get(i) == Some(&b']') {
        return Ok(i + 1);
    }
    loop {
        i = value(b, i)?;
        i = skip_ws(b, i);
        match b.get(i) {
            Some(b',') => i += 1,
            Some(b']') => return Ok(i + 1),
            _ => return Err(format!("expected ',' or ']' at offset {i}")),
        }
    }
}

fn string(b: &[u8], i: usize) -> Result<usize, String> {
    if b.get(i) != Some(&b'"') {
        return Err(format!("expected string at offset {i}"));
    }
    let mut i = i + 1;
    while let Some(&c) = b.get(i) {
        match c {
            b'"' => return Ok(i + 1),
            b'\\' => i += 2,
            _ => i += 1,
        }
    }
    Err("unterminated string".into())
}

fn literal(b: &[u8], i: usize, lit: &[u8]) -> Result<usize, String> {
    if b.len() >= i + lit.len() && &b[i..i + lit.len()] == lit {
        Ok(i + lit.len())
    } else {
        Err(format!("bad literal at offset {i}"))
    }
}

fn number(b: &[u8], mut i: usize) -> Result<usize, String> {
    let start = i;
    if b.get(i) == Some(&b'-') {
        i += 1;
    }
    let digits = |b: &[u8], mut i: usize| {
        let s = i;
        while i < b.len() && b[i].is_ascii_digit() {
            i += 1;
        }
        (i, i > s)
    };
    let (j, ok) = digits(b, i);
    if !ok {
        return Err(format!("bad number at offset {start}"));
    }
    i = j;
    if b.get(i) == Some(&b'.') {
        let (j, ok) = digits(b, i + 1);
        if !ok {
            return Err(format!("bad fraction at offset {i}"));
        }
        i = j;
    }
    if matches!(b.get(i), Some(b'e') | Some(b'E')) {
        i += 1;
        if matches!(b.get(i), Some(b'+') | Some(b'-')) {
            i += 1;
        }
        let (j, ok) = digits(b, i);
        if !ok {
            return Err(format!("bad exponent at offset {i}"));
        }
        i = j;
    }
    Ok(i)
}

/// Render one machine-backed measurement row as a JSON object string.
pub fn render_machine_row(label: &str, tput: Option<Tput>, m: &Machine) -> String {
    use std::fmt::Write as _;
    let mut row = String::new();
    let _ = write!(
        row,
        "{{\"label\":\"{}\",\"kind\":\"machine\"",
        bionicdb_fpga::obs::json_escape(label)
    );
    if let Some(t) = tput {
        let _ = write!(
            row,
            ",\"per_sec\":{:.3},\"committed\":{},\"aborted\":{}",
            t.per_sec, t.committed, t.aborted
        );
    }
    row.push_str(",\"report\":");
    row.push_str(&m.report().to_json());
    row.push('}');
    row
}

#[cfg(test)]
mod tests {
    use super::validate;

    #[test]
    fn validator_accepts_well_formed_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-12.5e-3",
            r#"{"a":[1,2,{"b":"c\"d"}],"e":true,"f":null}"#,
            "  { \"x\" : [ 1 , 2 ] }  ",
        ] {
            assert!(validate(ok).is_ok(), "{ok} should validate");
        }
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for bad in [
            "{", "}", "{\"a\":}", "[1,]", "{\"a\" 1}", "tru", "1.2.3", "{} extra",
            "\"unterminated",
        ] {
            assert!(validate(bad).is_err(), "{bad} should be rejected");
        }
    }
}
