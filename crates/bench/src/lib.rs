//! Shared harness for the paper-figure reproduction binaries.
//!
//! One binary per exhibit lives in `src/bin/` (`fig09_overall`,
//! `fig10_hash`, `fig11_skiplist`, `fig12_interleaving`, `fig13_multisite`,
//! `table3_latency`, `table4_resources`); each prints the same rows/series
//! the paper reports. This library holds the runners:
//!
//! * [`bionic_ycsb_tput`] / [`bionic_tpcc_tput`] — drive the simulated
//!   machine with pre-populated transaction blocks (paper §5.1) and report
//!   committed transactions over *simulated* time;
//! * [`silo_ycsb_model_tput`] and friends — run the Silo baseline
//!   single-threaded under the Xeon cache/timing model and scale to a core
//!   count with a calibrated multi-socket efficiency factor.

#![warn(missing_docs)]

pub mod chaos;
pub mod json;

use bionicdb::{BionicConfig, ExecMode};
use bionicdb_cpu_model::{CoreModel, CpuConfig};
use bionicdb_workloads::tpcc::{TpccBionic, TpccSilo};
use bionicdb_workloads::ycsb::{BlockPool, YcsbBionic, YcsbKind, YcsbSilo};
use bionicdb_workloads::{TpccSpec, YcsbSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A throughput measurement.
#[derive(Debug, Clone, Copy)]
pub struct Tput {
    /// Committed transactions in the measured window.
    pub committed: u64,
    /// Aborted transactions in the measured window.
    pub aborted: u64,
    /// Transactions (or operations) per second.
    pub per_sec: f64,
}

/// Print a two-column series as an aligned table.
pub fn print_series(title: &str, xlabel: &str, ylabel: &str, rows: &[(String, f64)]) {
    println!("\n== {title} ==");
    println!("{xlabel:>16}  {ylabel:>16}");
    for (x, y) in rows {
        println!("{x:>16}  {y:>16.1}");
    }
}

/// Print a multi-series table: header plus one row per x value.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    for h in header {
        print!("{h:>18}");
    }
    println!();
    for row in rows {
        for cell in row {
            print!("{cell:>18}");
        }
        println!();
    }
}

// ---------------------------------------------------------------------------
// BionicDB runners
// ---------------------------------------------------------------------------

/// Default per-worker transactions for a measured wave.
pub const YCSB_WAVE: usize = 400;

/// Run `txns_per_worker` YCSB transactions of `kind` on every worker and
/// return the committed throughput over simulated time. A warm-up wave of a
/// quarter size runs first.
pub fn bionic_ycsb_tput(y: &mut YcsbBionic, kind: YcsbKind, txns_per_worker: usize) -> Tput {
    let workers = y.machine.num_workers();
    let size = y.block_size(kind);
    let warm = (txns_per_worker / 4).max(8);
    let mut pools: Vec<BlockPool> = (0..workers)
        .map(|w| BlockPool::new(&mut y.machine, w, txns_per_worker + warm, size))
        .collect();
    let mut rng = SmallRng::seed_from_u64(0xB105);

    for (w, pool) in pools.iter_mut().enumerate() {
        for _ in 0..warm {
            let blk = pool.take();
            y.submit_txn(w, blk, kind, &mut rng);
        }
    }
    y.machine.run_to_quiescence();
    let s0 = y.machine.stats();
    let c0 = y.machine.now();

    for (w, pool) in pools.iter_mut().enumerate() {
        for _ in 0..txns_per_worker {
            let blk = pool.take();
            y.submit_txn(w, blk, kind, &mut rng);
        }
    }
    y.machine.run_to_quiescence();
    let s1 = y.machine.stats();
    let cycles = y.machine.now() - c0;
    let committed = s1.committed - s0.committed;
    Tput {
        committed,
        aborted: s1.aborted - s0.aborted,
        per_sec: committed as f64 * y.machine.config().fpga.clock_hz as f64 / cycles as f64,
    }
}

/// Run bulk KV transactions (Fig. 10a) and return *operation* throughput.
pub fn bionic_kv_tput(y: &mut YcsbBionic, insert: bool, txns_per_worker: usize) -> Tput {
    let workers = y.machine.num_workers();
    let size = y.kv_block_size(y.kv_ops);
    let mut pools: Vec<BlockPool> = (0..workers)
        .map(|w| BlockPool::new(&mut y.machine, w, txns_per_worker, size))
        .collect();
    let mut rng = SmallRng::seed_from_u64(0x6B5D);
    let c0 = y.machine.now();
    let s0 = y.machine.stats();
    for (w, pool) in pools.iter_mut().enumerate() {
        for _ in 0..txns_per_worker {
            let blk = pool.take();
            y.submit_kv_txn(w, blk, insert, &mut rng);
        }
    }
    y.machine.run_to_quiescence();
    let cycles = y.machine.now() - c0;
    let committed = y.machine.stats().committed - s0.committed;
    let ops = committed * y.kv_ops as u64;
    Tput {
        committed,
        aborted: 0,
        per_sec: ops as f64 * y.machine.config().fpga.clock_hz as f64 / cycles as f64,
    }
}

/// Like [`bionic_kv_tput`] but with random insert keys (bucket-colliding;
/// the hazard-prevention ablation).
pub fn bionic_kv_random_insert_tput(y: &mut YcsbBionic, txns_per_worker: usize) -> Tput {
    let workers = y.machine.num_workers();
    let size = y.kv_block_size(y.kv_ops);
    let mut pools: Vec<BlockPool> = (0..workers)
        .map(|w| BlockPool::new(&mut y.machine, w, txns_per_worker, size))
        .collect();
    let mut rng = SmallRng::seed_from_u64(0xAB1A);
    let c0 = y.machine.now();
    let s0 = y.machine.stats();
    for (w, pool) in pools.iter_mut().enumerate() {
        for _ in 0..txns_per_worker {
            let blk = pool.take();
            y.submit_kv_insert_random(w, blk, &mut rng);
        }
    }
    y.machine.run_to_quiescence();
    let cycles = y.machine.now() - c0;
    let committed = y.machine.stats().committed - s0.committed;
    let ops = committed * y.kv_ops as u64;
    Tput {
        committed,
        aborted: 0,
        per_sec: ops as f64 * y.machine.config().fpga.clock_hz as f64 / cycles as f64,
    }
}

/// Like [`bionic_kv_tput`] but for the skiplist table (Fig. 11a/11b).
pub fn bionic_kv_skip_tput(y: &mut YcsbBionic, insert: bool, txns_per_worker: usize) -> Tput {
    let workers = y.machine.num_workers();
    let size = y.kv_block_size(y.kv_ops);
    let mut pools: Vec<BlockPool> = (0..workers)
        .map(|w| BlockPool::new(&mut y.machine, w, txns_per_worker, size))
        .collect();
    let mut rng = SmallRng::seed_from_u64(0x5C1D);
    let c0 = y.machine.now();
    let s0 = y.machine.stats();
    for (w, pool) in pools.iter_mut().enumerate() {
        for _ in 0..txns_per_worker {
            let blk = pool.take();
            y.submit_skip_txn(w, blk, insert, &mut rng);
        }
    }
    y.machine.run_to_quiescence();
    let cycles = y.machine.now() - c0;
    let committed = y.machine.stats().committed - s0.committed;
    let ops = committed * y.kv_ops as u64;
    Tput {
        committed,
        aborted: 0,
        per_sec: ops as f64 * y.machine.config().fpga.clock_hz as f64 / cycles as f64,
    }
}

/// Which TPC-C mix to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TpccMix {
    /// 50:50 NewOrder : Payment (the paper's overall mix).
    Mixed,
    /// NewOrder only.
    NewOrderOnly,
    /// Payment only.
    PaymentOnly,
}

/// Run TPC-C on BionicDB; aborted transactions are retried (client-side)
/// and throughput counts commits over the whole span of simulated time.
pub fn bionic_tpcc_tput(sys: &mut TpccBionic, mix: TpccMix, txns_per_worker: usize) -> Tput {
    let workers = sys.machine.num_workers();
    let mut rng = SmallRng::seed_from_u64(0x79CC);
    let c0 = sys.machine.now();
    let s0 = sys.machine.stats();
    let mut blocks = Vec::new();
    for w in 0..workers {
        for i in 0..txns_per_worker {
            let neworder = match mix {
                TpccMix::Mixed => i % 2 == 0,
                TpccMix::NewOrderOnly => true,
                TpccMix::PaymentOnly => false,
            };
            if neworder {
                let blk = sys
                    .machine
                    .alloc_block(w, TpccBionic::neworder_block_size());
                sys.submit_neworder(w, blk, &mut rng);
                blocks.push((w, blk));
            } else {
                let blk = sys.machine.alloc_block(w, TpccBionic::payment_block_size());
                sys.submit_payment(w, blk, &mut rng);
                blocks.push((w, blk));
            }
        }
    }
    sys.machine.run_to_quiescence();
    // Bounded client-side retry of aborted transactions. TPC-C conflicts
    // are transient (dirty-rejects inside a batch), so the budget is never
    // exhausted in practice; if it ever were, we fail loudly rather than
    // report a throughput built on uncommitted work.
    let out = sys.machine.retry_to_completion(
        &blocks,
        bionicdb::RetryBudget {
            max_attempts: 1000,
            backoff_cycles: 0,
        },
        1 << 33,
    );
    assert!(
        out.all_committed(),
        "TPC-C retries failed to converge: {} blocks gave up",
        out.gave_up.len()
    );
    let cycles = sys.machine.now() - c0;
    let s1 = sys.machine.stats();
    let committed = blocks.len() as u64;
    Tput {
        committed,
        aborted: s1.aborted - s0.aborted,
        per_sec: committed as f64 * sys.machine.config().fpga.clock_hz as f64 / cycles as f64,
    }
}

// ---------------------------------------------------------------------------
// Silo (model-time) runners
// ---------------------------------------------------------------------------

/// Multi-socket scaling drag for the Silo baseline: per-core efficiency
/// `1 / (1 + SCALING_ALPHA · (cores − 1))`.
///
/// The paper's Xeon E7-4807 setup spans four sockets; Silo's scaling there
/// is sublinear (Fig. 9a: 6× more cores ≈ 4.5× more throughput) because of
/// QPI-remote memory and shared-cache contention, which the single-core
/// cache model cannot see. The factor is calibrated to that reported
/// 4→24-core ratio and documented in EXPERIMENTS.md.
pub const SCALING_ALPHA: f64 = 0.022;

/// Aggregate throughput for `cores` modelled cores given one core's rate.
pub fn scale_cores(per_core: f64, cores: usize) -> f64 {
    per_core * cores as f64 / (1.0 + SCALING_ALPHA * (cores as f64 - 1.0))
}

/// Model-time throughput of YCSB-C on the Silo baseline.
pub fn silo_ycsb_model_tput(sys: &YcsbSilo, txns: usize, cores: usize) -> f64 {
    let mut model = CoreModel::new(CpuConfig::default());
    let mut rng = SmallRng::seed_from_u64(0x51C0);
    for _ in 0..txns / 4 {
        sys.run_read_txn(&mut model, &mut rng);
    }
    model.reset_clock();
    for _ in 0..txns {
        sys.run_read_txn(&mut model, &mut rng);
    }
    scale_cores(txns as f64 / model.secs(), cores)
}

/// Model-time scan throughput on the given Silo index
/// (`sys.masstree` or `sys.skiplist`).
pub fn silo_scan_model_tput(sys: &YcsbSilo, index: usize, txns: usize, cores: usize) -> f64 {
    let mut model = CoreModel::new(CpuConfig::default());
    let mut rng = SmallRng::seed_from_u64(0x5CA7);
    for _ in 0..txns / 4 {
        sys.run_scan_txn(&mut model, &mut rng, index);
    }
    model.reset_clock();
    for _ in 0..txns {
        sys.run_scan_txn(&mut model, &mut rng, index);
    }
    scale_cores(txns as f64 / model.secs(), cores)
}

/// Model-time throughput of the TPC-C mix on the Silo baseline.
pub fn silo_tpcc_model_tput(sys: &TpccSilo, mix: TpccMix, txns: usize, cores: usize) -> f64 {
    let mut model = CoreModel::new(CpuConfig::default());
    let mut rng = SmallRng::seed_from_u64(0x7199);
    let run = |model: &mut CoreModel, rng: &mut SmallRng, i: usize| match mix {
        TpccMix::Mixed => {
            if i.is_multiple_of(2) {
                sys.run_neworder(model, rng)
            } else {
                sys.run_payment(model, rng)
            }
        }
        TpccMix::NewOrderOnly => sys.run_neworder(model, rng),
        TpccMix::PaymentOnly => sys.run_payment(model, rng),
    };
    for i in 0..txns / 4 {
        run(&mut model, &mut rng, i);
    }
    model.reset_clock();
    let mut committed = 0usize;
    for i in 0..txns {
        if run(&mut model, &mut rng, i) {
            committed += 1;
        }
    }
    scale_cores(committed as f64 / model.secs(), cores)
}

// ---------------------------------------------------------------------------
// System constructors with bench-scale defaults
// ---------------------------------------------------------------------------

/// Bench-scale YCSB spec: the paper's 1 KB payloads (a first-order cost
/// for Silo, which copies every read payload, while BionicDB's SEARCH
/// returns tuple addresses); record count scaled 300 K → 50 K per
/// partition (see EXPERIMENTS.md — the working set stays far beyond every
/// modelled cache).
pub fn bench_ycsb_spec() -> YcsbSpec {
    YcsbSpec {
        records_per_partition: 50_000,
        payload_len: 1024,
        ..YcsbSpec::default()
    }
}

/// Bench-scale TPC-C spec.
pub fn bench_tpcc_spec() -> TpccSpec {
    TpccSpec {
        customers_per_district: 500,
        items: 5_000,
        ..TpccSpec::default()
    }
}

/// Build a YCSB machine with `workers` workers.
pub fn build_ycsb(workers: usize, mode: ExecMode) -> YcsbBionic {
    let cfg = BionicConfig {
        workers,
        mode,
        ..BionicConfig::default()
    };
    let mut y = YcsbBionic::build(cfg, bench_ycsb_spec(), 60);
    y.machine.set_sim_threads(sim_threads());
    y
}

/// Build a TPC-C machine with `workers` workers (= warehouses).
///
/// TPC-C batches are capped at 4 transactions: every Payment updates the
/// partition's single warehouse row, so wide interleaving batches mostly
/// dirty-reject each other (paper §5.4/§5.6 observe TPC-C "executed almost
/// in serial"); a narrow batch keeps the conflict window small.
pub fn build_tpcc(workers: usize, mode: ExecMode) -> TpccBionic {
    let cfg = BionicConfig {
        workers,
        mode,
        max_batch: 2,
        ..BionicConfig::default()
    };
    let mut sys = TpccBionic::build(cfg, bench_tpcc_spec());
    sys.machine.set_sim_threads(sim_threads());
    sys
}

/// Build a TPC-C machine whose transactions are all local (the paper's
/// §5.5 coprocessor-focused form: no home loads in the dispatch path).
pub fn build_tpcc_local(workers: usize, mode: ExecMode) -> TpccBionic {
    let cfg = BionicConfig {
        workers,
        mode,
        max_batch: 2,
        ..BionicConfig::default()
    };
    let spec = TpccSpec {
        neworder_remote_fraction: 0.0,
        payment_remote_fraction: 0.0,
        ..bench_tpcc_spec()
    };
    let mut sys = TpccBionic::build(cfg, spec);
    sys.machine.set_sim_threads(sim_threads());
    sys
}

// ---------------------------------------------------------------------------
// Parallel sweep harness
// ---------------------------------------------------------------------------

/// Simulation thread count for a single [`bionicdb::Machine`]
/// (`Machine::set_sim_threads`): `--sim-threads N` on the command line,
/// else `BIONICDB_SIM_THREADS`, else `BIONICDB_THREADS`, else 1 (serial).
/// Every bench bin that builds a machine through this crate honours it;
/// results are bit-identical at any value — only wall-clock time changes.
pub fn sim_threads() -> usize {
    std::env::args()
        .skip_while(|a| a != "--sim-threads")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .or_else(|| {
            std::env::var("BIONICDB_SIM_THREADS")
                .ok()
                .and_then(|s| s.parse().ok())
        })
        .or_else(|| {
            std::env::var("BIONICDB_THREADS")
                .ok()
                .and_then(|s| s.parse().ok())
        })
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// Worker-thread count for [`par_map`]: `BIONICDB_THREADS` if set, else the
/// machine's available parallelism.
pub fn sweep_threads() -> usize {
    std::env::var("BIONICDB_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Map `f` over `items` on a pool of scoped OS threads, preserving input
/// order in the result. Each sweep point of the figure binaries builds its
/// own [`bionicdb::Machine`], so points are fully independent and the
/// figures parallelize trivially; determinism is untouched because every
/// point seeds its own RNGs. No work is spawned for a single-item (or
/// single-thread) sweep.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let n = items.len();
    let threads = sweep_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i].lock().expect("work slot").take().expect("claimed once");
                let r = f(item);
                *results[i].lock().expect("result slot") = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().expect("result lock").expect("every item ran"))
        .collect()
}

/// A convenience RNG.
pub fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Draw a uniform value below `n` (helper for ad-hoc harness code).
pub fn uniform(rng: &mut SmallRng, n: u64) -> u64 {
    rng.gen_range(0..n)
}
