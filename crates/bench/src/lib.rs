//! Shared harness for the paper-figure reproduction binaries.
//!
//! One binary per exhibit lives in `src/bin/` (`fig09_overall`,
//! `fig10_hash`, `fig11_skiplist`, `fig12_interleaving`, `fig13_multisite`,
//! `table3_latency`, `table4_resources`); each prints the same rows/series
//! the paper reports. This library holds the runners:
//!
//! * [`drive`] — the single generic driver behind every BionicDB
//!   throughput measurement: batch fill → submit → run → retry → [`Tput`],
//!   over any [`bionicdb_workloads::Workload`]. The legacy entry points
//!   ([`bionic_ycsb_tput`], [`bionic_tpcc_tput`], …) are thin adapters and
//!   remain bit-identical to the pre-ABI hand-rolled loops (pinned by the
//!   `workloadcheck` goldens);
//! * [`silo_model_tput`] — the equivalent single runner for the Silo
//!   baseline under the Xeon cache/timing model, scaled to a core count
//!   with a calibrated multi-socket efficiency factor.

#![warn(missing_docs)]

pub mod batchbench;
pub mod chaos;
pub mod history;
pub mod json;
pub mod serve;

use bionicdb::{BionicConfig, ExecMode};
use bionicdb_cpu_model::{CoreModel, CpuConfig};
use bionicdb_workloads::abi::{
    KvOp, KvWorkload, SiloWorkload, TpccSiloMix, TpccWorkload, YcsbSiloRead, YcsbSiloScan,
    YcsbWorkload,
};
use bionicdb_workloads::smallbank::{SmallBankBionic, SmallBankWorkload};
use bionicdb_workloads::tpcc::{TpccBionic, TpccSilo};
use bionicdb_workloads::ycsb::{YcsbBionic, YcsbKind, YcsbSilo};
use bionicdb_workloads::{SmallBankSpec, TpccSpec, Workload, YcsbSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

pub use bionicdb_workloads::TpccMix;

/// A throughput measurement.
#[derive(Debug, Clone, Copy)]
pub struct Tput {
    /// Committed transactions in the measured window.
    pub committed: u64,
    /// Aborted transactions in the measured window.
    pub aborted: u64,
    /// Transactions (or operations) per second.
    pub per_sec: f64,
}

/// Print a two-column series as an aligned table.
pub fn print_series(title: &str, xlabel: &str, ylabel: &str, rows: &[(String, f64)]) {
    println!("\n== {title} ==");
    println!("{xlabel:>16}  {ylabel:>16}");
    for (x, y) in rows {
        println!("{x:>16}  {y:>16.1}");
    }
}

/// Print a multi-series table: header plus one row per x value.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    for h in header {
        print!("{h:>18}");
    }
    println!();
    for row in rows {
        for cell in row {
            print!("{cell:>18}");
        }
        println!();
    }
}

// ---------------------------------------------------------------------------
// The generic BionicDB driver
// ---------------------------------------------------------------------------

/// Default per-worker transactions for a measured wave.
pub const YCSB_WAVE: usize = 400;

/// Drive one measured wave of `txns_per_worker` transactions per worker
/// through a [`Workload`] and return the committed throughput over
/// *simulated* time. This is the single driver behind every BionicDB
/// measurement:
///
/// 1. allocate all blocks up front, worker-major (per-worker bump arenas
///    make this equivalent to any interleaved allocation order);
/// 2. run (and discard) the workload's warm-up wave, if any;
/// 3. snapshot stats/cycle, submit the measured wave worker-major with one
///    RNG seeded from [`Workload::seed`], and run to quiescence;
/// 4. if the workload declares a [`Workload::retry`] budget, retry aborted
///    blocks to completion client-side — the conflicts are transient
///    (dirty-rejects inside a batch), so the budget is never exhausted in
///    practice, and we fail loudly rather than report a throughput built
///    on uncommitted work;
/// 5. run the workload's [`Workload::validate`] hook and report.
pub fn drive<W: Workload + ?Sized>(w: &mut W, txns_per_worker: usize) -> Tput {
    let workers = w.machine().num_workers();
    let warm = w.warmup(txns_per_worker);
    let blocks: Vec<Vec<bionicdb::TxnBlock>> = (0..workers)
        .map(|wk| {
            (0..warm + txns_per_worker)
                .map(|i| {
                    let size = w.block_size(wk, i.saturating_sub(warm));
                    w.machine().alloc_block(wk, size)
                })
                .collect()
        })
        .collect();
    let mut rng = SmallRng::seed_from_u64(w.seed());

    if warm > 0 {
        for (wk, worker_blocks) in blocks.iter().enumerate() {
            for (i, &blk) in worker_blocks[..warm].iter().enumerate() {
                w.submit(wk, i, blk, &mut rng);
            }
        }
        w.machine().run_to_quiescence();
    }
    let s0 = w.machine().stats();
    let c0 = w.machine().now();

    let mut submitted = Vec::with_capacity(workers * txns_per_worker);
    for (wk, worker_blocks) in blocks.iter().enumerate() {
        for (i, &blk) in worker_blocks[warm..].iter().enumerate() {
            w.submit(wk, i, blk, &mut rng);
            submitted.push((wk, blk));
        }
    }
    w.machine().run_to_quiescence();
    let retried = if let Some(budget) = w.retry() {
        let out = w.machine().retry_to_completion(&submitted, budget, 1 << 33);
        assert!(
            out.all_committed(),
            "{}: retries failed to converge: {} blocks gave up",
            w.name(),
            out.gave_up.len()
        );
        true
    } else {
        false
    };
    let s1 = w.machine().stats();
    let cycles = w.machine().now() - c0;
    let hz = w.machine().config().fpga.clock_hz as f64;
    w.validate();

    let committed = if retried {
        submitted.len() as u64
    } else {
        s1.committed - s0.committed
    };
    let aborted = if w.count_aborts() {
        s1.aborted - s0.aborted
    } else {
        0
    };
    let ops = committed * w.ops_per_txn();
    Tput {
        committed,
        aborted,
        per_sec: ops as f64 * hz / cycles as f64,
    }
}

/// Run `txns_per_worker` YCSB transactions of `kind` on every worker and
/// return the committed throughput over simulated time. A warm-up wave of
/// a quarter size runs first.
pub fn bionic_ycsb_tput(y: &mut YcsbBionic, kind: YcsbKind, txns_per_worker: usize) -> Tput {
    drive(&mut YcsbWorkload { sys: y, kind }, txns_per_worker)
}

/// Run bulk KV transactions (Fig. 10a) and return *operation* throughput.
pub fn bionic_kv_tput(y: &mut YcsbBionic, insert: bool, txns_per_worker: usize) -> Tput {
    let op = if insert {
        KvOp::HashInsert
    } else {
        KvOp::HashSearch
    };
    drive(&mut KvWorkload { sys: y, op }, txns_per_worker)
}

/// Like [`bionic_kv_tput`] but with random insert keys (bucket-colliding;
/// the hazard-prevention ablation).
pub fn bionic_kv_random_insert_tput(y: &mut YcsbBionic, txns_per_worker: usize) -> Tput {
    drive(
        &mut KvWorkload {
            sys: y,
            op: KvOp::HashInsertRandom,
        },
        txns_per_worker,
    )
}

/// Like [`bionic_kv_tput`] but for the skiplist table (Fig. 11a/11b).
pub fn bionic_kv_skip_tput(y: &mut YcsbBionic, insert: bool, txns_per_worker: usize) -> Tput {
    let op = if insert {
        KvOp::SkipInsert
    } else {
        KvOp::SkipSearch
    };
    drive(&mut KvWorkload { sys: y, op }, txns_per_worker)
}

/// Run TPC-C on BionicDB; aborted transactions are retried (client-side)
/// and throughput counts commits over the whole span of simulated time.
pub fn bionic_tpcc_tput(sys: &mut TpccBionic, mix: TpccMix, txns_per_worker: usize) -> Tput {
    drive(&mut TpccWorkload { sys, mix }, txns_per_worker)
}

/// Run SmallBank on BionicDB (standard six-op rotation; aborted
/// transactions are retried client-side, and the money-conservation
/// invariant is checked after the wave).
pub fn bionic_smallbank_tput(sb: &mut SmallBankBionic, txns_per_worker: usize) -> Tput {
    drive(&mut SmallBankWorkload { sys: sb }, txns_per_worker)
}

// ---------------------------------------------------------------------------
// Silo (model-time) runners
// ---------------------------------------------------------------------------

/// Multi-socket scaling drag for the Silo baseline: per-core efficiency
/// `1 / (1 + SCALING_ALPHA · (cores − 1))`.
///
/// The paper's Xeon E7-4807 setup spans four sockets; Silo's scaling there
/// is sublinear (Fig. 9a: 6× more cores ≈ 4.5× more throughput) because of
/// QPI-remote memory and shared-cache contention, which the single-core
/// cache model cannot see. The factor is calibrated to that reported
/// 4→24-core ratio and documented in EXPERIMENTS.md.
pub const SCALING_ALPHA: f64 = 0.022;

/// Aggregate throughput for `cores` modelled cores given one core's rate.
pub fn scale_cores(per_core: f64, cores: usize) -> f64 {
    per_core * cores as f64 / (1.0 + SCALING_ALPHA * (cores as f64 - 1.0))
}

/// Model-time throughput of a [`SiloWorkload`] on the Silo baseline: a
/// quarter-size warm-up wave, clock reset, then `txns` measured
/// transactions counting commits, scaled to `cores`.
pub fn silo_model_tput<W: SiloWorkload + ?Sized>(sys: &W, txns: usize, cores: usize) -> f64 {
    let mut model = CoreModel::new(CpuConfig::default());
    let mut rng = SmallRng::seed_from_u64(sys.seed());
    for i in 0..txns / 4 {
        sys.run(&mut model, &mut rng, i);
    }
    model.reset_clock();
    let mut committed = 0usize;
    for i in 0..txns {
        if sys.run(&mut model, &mut rng, i) {
            committed += 1;
        }
    }
    scale_cores(committed as f64 / model.secs(), cores)
}

/// Model-time throughput of YCSB-C on the Silo baseline.
pub fn silo_ycsb_model_tput(sys: &YcsbSilo, txns: usize, cores: usize) -> f64 {
    silo_model_tput(&YcsbSiloRead(sys), txns, cores)
}

/// Model-time scan throughput on the given Silo index
/// (`sys.masstree` or `sys.skiplist`).
pub fn silo_scan_model_tput(sys: &YcsbSilo, index: usize, txns: usize, cores: usize) -> f64 {
    silo_model_tput(&YcsbSiloScan { sys, index }, txns, cores)
}

/// Model-time throughput of the TPC-C mix on the Silo baseline.
pub fn silo_tpcc_model_tput(sys: &TpccSilo, mix: TpccMix, txns: usize, cores: usize) -> f64 {
    silo_model_tput(&TpccSiloMix { sys, mix }, txns, cores)
}

// ---------------------------------------------------------------------------
// System constructors with bench-scale defaults
// ---------------------------------------------------------------------------

/// Bench-scale YCSB spec: the paper's 1 KB payloads (a first-order cost
/// for Silo, which copies every read payload, while BionicDB's SEARCH
/// returns tuple addresses); record count scaled 300 K → 50 K per
/// partition (see EXPERIMENTS.md — the working set stays far beyond every
/// modelled cache).
pub fn bench_ycsb_spec() -> YcsbSpec {
    YcsbSpec {
        records_per_partition: 50_000,
        payload_len: 1024,
        ..YcsbSpec::default()
    }
}

/// Bench-scale TPC-C spec.
pub fn bench_tpcc_spec() -> TpccSpec {
    TpccSpec {
        customers_per_district: 500,
        items: 5_000,
        ..TpccSpec::default()
    }
}

/// Build a YCSB machine with `workers` workers.
pub fn build_ycsb(workers: usize, mode: ExecMode) -> YcsbBionic {
    let cfg = BionicConfig {
        workers,
        mode,
        ..BionicConfig::default()
    };
    let mut y = YcsbBionic::build(cfg, bench_ycsb_spec(), 60);
    y.machine.set_sim_threads(sim_threads());
    y
}

/// Build a TPC-C machine with `workers` workers (= warehouses).
///
/// TPC-C batches are capped at 4 transactions: every Payment updates the
/// partition's single warehouse row, so wide interleaving batches mostly
/// dirty-reject each other (paper §5.4/§5.6 observe TPC-C "executed almost
/// in serial"); a narrow batch keeps the conflict window small.
pub fn build_tpcc(workers: usize, mode: ExecMode) -> TpccBionic {
    let cfg = BionicConfig {
        workers,
        mode,
        max_batch: 2,
        ..BionicConfig::default()
    };
    let mut sys = TpccBionic::build(cfg, bench_tpcc_spec());
    sys.machine.set_sim_threads(sim_threads());
    sys
}

/// Bench-scale SmallBank spec.
pub fn bench_smallbank_spec() -> SmallBankSpec {
    SmallBankSpec::default()
}

/// Build a SmallBank machine with `workers` workers (= partitions).
/// SmallBank procedures update one to three rows each, so like TPC-C they
/// run under a narrow interleave batch to keep dirty-reject churn low.
pub fn build_smallbank(workers: usize, mode: ExecMode) -> SmallBankBionic {
    let cfg = BionicConfig {
        workers,
        mode,
        max_batch: 2,
        ..BionicConfig::default()
    };
    let mut sb = SmallBankBionic::build(cfg, bench_smallbank_spec());
    sb.machine.set_sim_threads(sim_threads());
    sb
}

/// Build a TPC-C machine whose transactions are all local (the paper's
/// §5.5 coprocessor-focused form: no home loads in the dispatch path).
pub fn build_tpcc_local(workers: usize, mode: ExecMode) -> TpccBionic {
    let cfg = BionicConfig {
        workers,
        mode,
        max_batch: 2,
        ..BionicConfig::default()
    };
    let spec = TpccSpec {
        neworder_remote_fraction: 0.0,
        payment_remote_fraction: 0.0,
        ..bench_tpcc_spec()
    };
    let mut sys = TpccBionic::build(cfg, spec);
    sys.machine.set_sim_threads(sim_threads());
    sys
}

// ---------------------------------------------------------------------------
// Shared command-line handling for the bench bins
// ---------------------------------------------------------------------------

/// Bare flags every bench bin accepts (the shared vocabulary).
pub const SHARED_FLAGS: &[&str] = &["--quick"];

/// Valued options every bench bin accepts (the shared vocabulary).
pub const SHARED_OPTIONS: &[&str] = &["--json", "--sim-threads"];

/// The command-line surface of one bench bin: its bare flags and valued
/// options *beyond* the shared vocabulary ([`SHARED_FLAGS`],
/// [`SHARED_OPTIONS`]) that every bin accepts. [`BenchArgs::from_env`]
/// validates the process arguments against this, so a typo'd flag fails
/// loudly instead of silently running the bin with defaults.
#[derive(Debug, Clone, Copy)]
pub struct ArgSpec {
    /// Binary name, used in the usage message.
    pub bin: &'static str,
    /// Bin-specific bare flags (e.g. `"--smoke"`).
    pub flags: &'static [&'static str],
    /// Bin-specific valued options (e.g. `"--history"`). Each consumes
    /// the following argument as its value.
    pub options: &'static [&'static str],
}

impl ArgSpec {
    /// A spec with no bin-specific arguments (shared vocabulary only).
    pub const fn shared(bin: &'static str) -> ArgSpec {
        ArgSpec {
            bin,
            flags: &[],
            options: &[],
        }
    }

    /// The one-line usage message for this bin.
    pub fn usage(&self) -> String {
        use std::fmt::Write as _;
        let mut u = format!("usage: {}", self.bin);
        for f in SHARED_FLAGS.iter().chain(self.flags) {
            let _ = write!(u, " [{f}]");
        }
        for o in SHARED_OPTIONS.iter().chain(self.options) {
            let _ = write!(u, " [{o} <value>]");
        }
        u
    }
}

/// The command-line arguments every bench bin shares, parsed once.
///
/// All bins accept the same vocabulary: `--quick` (smaller waves for CI),
/// `--json <path>` (machine-readable dump, see [`json::JsonOut`]),
/// `--sim-threads <n>` (epoch-parallel lanes for each built machine), plus
/// bin-specific flags and valued options declared in an [`ArgSpec`] and
/// read through [`BenchArgs::flag`] and [`BenchArgs::value`]. Environment
/// fallbacks (`BIONICDB_SIM_THREADS`, `BIONICDB_THREADS`) are folded in
/// here so no bin re-implements the precedence order.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    argv: Vec<String>,
}

impl BenchArgs {
    /// Parse the process arguments and validate them against `spec`.
    /// Unknown arguments are fatal: the usage line goes to stderr and the
    /// process exits with status 2. (They used to be silently ignored — a
    /// typo'd `--historys` ran the bin with defaults and nobody noticed.)
    pub fn from_env(spec: &ArgSpec) -> BenchArgs {
        match Self::try_parse(std::env::args().skip(1).collect(), spec) {
            Ok(a) => a,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// Validate `argv` against `spec` — the testable core of
    /// [`BenchArgs::from_env`]. Option tokens consume the following
    /// argument as their value; anything that is neither a known flag nor
    /// a known option (shared or bin-specific) is an error.
    pub fn try_parse(argv: Vec<String>, spec: &ArgSpec) -> Result<BenchArgs, String> {
        let known_flag = |a: &str| SHARED_FLAGS.contains(&a) || spec.flags.contains(&a);
        let known_opt = |a: &str| SHARED_OPTIONS.contains(&a) || spec.options.contains(&a);
        let mut it = argv.iter();
        while let Some(a) = it.next() {
            if known_flag(a) {
                continue;
            }
            if known_opt(a) {
                if it.next().is_none() {
                    return Err(format!(
                        "{}: option {a} needs a value\n{}",
                        spec.bin,
                        spec.usage()
                    ));
                }
                continue;
            }
            return Err(format!(
                "{}: unknown argument {a:?}\n{}",
                spec.bin,
                spec.usage()
            ));
        }
        Ok(BenchArgs { argv })
    }

    /// Build from an explicit argument list without validation (tests).
    pub fn from_vec(argv: Vec<String>) -> BenchArgs {
        BenchArgs { argv }
    }

    /// The raw process arguments without validation — for crate-internal
    /// re-parses ([`sim_threads`], [`json::JsonOut::from_env`]) that only
    /// extract one value after the owning bin has already validated the
    /// full argument list through [`BenchArgs::from_env`].
    pub(crate) fn raw_env() -> BenchArgs {
        BenchArgs {
            argv: std::env::args().skip(1).collect(),
        }
    }

    /// True when the bare flag `name` (e.g. `"--quick"`) is present.
    pub fn flag(&self, name: &str) -> bool {
        self.argv.iter().any(|a| a == name)
    }

    /// The value following the option `name` (e.g. `"--json"`), if any.
    pub fn value(&self, name: &str) -> Option<&str> {
        let mut it = self.argv.iter();
        while let Some(a) = it.next() {
            if a == name {
                return it.next().map(String::as_str);
            }
        }
        None
    }

    /// The value of `name` parsed as `T`, or `default` when absent or
    /// unparseable.
    pub fn parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.value(name)
            .and_then(|s| s.parse().ok())
            .unwrap_or(default)
    }

    /// True when `--quick` was given (CI-scale waves).
    pub fn quick(&self) -> bool {
        self.flag("--quick")
    }

    /// Pick the wave size: `quick` under `--quick`, else `full`.
    pub fn wave(&self, quick: usize, full: usize) -> usize {
        if self.quick() { quick } else { full }
    }

    /// The `--json <path>` dump target, if given.
    pub fn json_path(&self) -> Option<&str> {
        self.value("--json")
    }

    /// Simulation thread count for a single [`bionicdb::Machine`]
    /// (`Machine::set_sim_threads`): `--sim-threads N` on the command
    /// line, else `BIONICDB_SIM_THREADS`, else `BIONICDB_THREADS`, else 1
    /// (serial). Results are bit-identical at any value — only wall-clock
    /// time changes.
    pub fn sim_threads(&self) -> usize {
        self.value("--sim-threads")
            .and_then(|s| s.parse().ok())
            .or_else(|| {
                std::env::var("BIONICDB_SIM_THREADS")
                    .ok()
                    .and_then(|s| s.parse().ok())
            })
            .or_else(|| {
                std::env::var("BIONICDB_THREADS")
                    .ok()
                    .and_then(|s| s.parse().ok())
            })
            .filter(|&n| n > 0)
            .unwrap_or(1)
    }
}

// ---------------------------------------------------------------------------
// Parallel sweep harness
// ---------------------------------------------------------------------------

/// Simulation thread count from the process arguments/environment; see
/// [`BenchArgs::sim_threads`]. Every bench bin that builds a machine
/// through this crate honours it.
pub fn sim_threads() -> usize {
    BenchArgs::raw_env().sim_threads()
}

/// Worker-thread count for [`par_map`]: `BIONICDB_THREADS` if set, else the
/// machine's available parallelism.
pub fn sweep_threads() -> usize {
    std::env::var("BIONICDB_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Map `f` over `items` on a pool of scoped OS threads, preserving input
/// order in the result. Each sweep point of the figure binaries builds its
/// own [`bionicdb::Machine`], so points are fully independent and the
/// figures parallelize trivially; determinism is untouched because every
/// point seeds its own RNGs. No work is spawned for a single-item (or
/// single-thread) sweep.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let n = items.len();
    let threads = sweep_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i].lock().expect("work slot").take().expect("claimed once");
                let r = f(item);
                *results[i].lock().expect("result slot") = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().expect("result lock").expect("every item ran"))
        .collect()
}

/// A convenience RNG.
pub fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Draw a uniform value below `n` (helper for ad-hoc harness code).
pub fn uniform(rng: &mut SmallRng, n: u64) -> u64 {
    rng.gen_range(0..n)
}

#[cfg(test)]
mod arg_tests {
    use super::{ArgSpec, BenchArgs};

    const SPEC: ArgSpec = ArgSpec {
        bin: "testbin",
        flags: &["--par"],
        options: &["--out"],
    };

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn unknown_argument_is_fatal_with_usage() {
        let err = BenchArgs::try_parse(v(&["--historys", "x"]), &SPEC).unwrap_err();
        assert!(err.contains("unknown argument"), "{err}");
        assert!(err.contains("--historys"), "{err}");
        assert!(err.contains("usage: testbin"), "{err}");
        // The usage line advertises the full vocabulary, shared + specific.
        for tok in ["--quick", "--json", "--sim-threads", "--par", "--out"] {
            assert!(err.contains(tok), "usage lists {tok}: {err}");
        }
        // A stray positional is just as fatal as a typo'd flag.
        let err = BenchArgs::try_parse(v(&["results.json"]), &SPEC).unwrap_err();
        assert!(err.contains("unknown argument"), "{err}");
    }

    #[test]
    fn known_vocabulary_parses_and_reads_back() {
        let args = BenchArgs::try_parse(
            v(&["--quick", "--par", "--out", "x.json", "--sim-threads", "3"]),
            &SPEC,
        )
        .expect("all tokens are known");
        assert!(args.quick());
        assert!(args.flag("--par"));
        assert_eq!(args.value("--out"), Some("x.json"));
        assert_eq!(args.sim_threads(), 3);
        // A shared-only spec accepts the shared vocabulary and nothing else.
        let shared = ArgSpec::shared("plainbin");
        assert!(BenchArgs::try_parse(v(&["--quick"]), &shared).is_ok());
        assert!(BenchArgs::try_parse(v(&["--par"]), &shared).is_err());
    }

    #[test]
    fn option_at_end_without_value_is_rejected() {
        let err = BenchArgs::try_parse(v(&["--out"]), &SPEC).unwrap_err();
        assert!(err.contains("needs a value"), "{err}");
        // ...and an option consumes whatever follows, even if it looks
        // like a flag — documented single-pass semantics.
        let args = BenchArgs::try_parse(v(&["--out", "--quick"]), &SPEC).unwrap();
        assert_eq!(args.value("--out"), Some("--quick"));
    }
}
