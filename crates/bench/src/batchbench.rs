//! The batched-traversal sweep harness (DESIGN.md §16), shared by the
//! `batchsweep` study bin and the `batchcheck` gate.
//!
//! The sweep drives the coprocessor directly — one [`IndexCoproc`] over a
//! private [`Dram`], no softcores or NoC — so the measured quantity is
//! purely the probe path: how many read-set probes per simulated cycle the
//! index retires as the batch width grows from 1 (a serial pointer chase
//! per batch) to 32 (a full wave of overlapped level fetches). Everything
//! here is deterministic: keys come from a fixed LCG, the simulation is
//! cycle-stepped, and the JSON rendering carries no wall-clock fields, so
//! `batchcheck` can pin the `--quick` sweep byte-for-byte against a golden.

use bionicdb_coproc::layout::TableState;
use bionicdb_coproc::{BatchStats, CoprocConfig, IndexCoproc};
use bionicdb_fpga::{Dram, FpgaConfig, Region, MLP_BUCKETS};
use bionicdb_softcore::catalogue::{TableId, TableMeta};
use bionicdb_softcore::request::{BatchMode, CpSlot, DbOp, DbRequest, PartitionId};
use bionicdb_softcore::{DbResult, IndexKey, IndexKind};

/// Batch widths swept, × both index kinds.
pub const WIDTHS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// The group tag every sweep probe carries (top bit set, like the
/// softcore's generated ids).
const GROUP: u64 = (1 << 63) | 1;

/// Payload bytes per record (small: the probe path reads headers, not
/// payloads, so payload size is irrelevant here).
const PAYLOAD: u32 = 64;

/// One sweep point: one index kind at one batch width.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Index kind probed.
    pub kind: IndexKind,
    /// Batch width configured.
    pub width: usize,
    /// Probes retired in the measured phase.
    pub probes: u64,
    /// Simulated cycles the measured phase took.
    pub cycles: u64,
    /// DRAM reads the batch engine issued.
    pub reads: u64,
    /// Reads saved by per-wave address dedup.
    pub dedup_saved: u64,
    /// Batches launched / wave barriers crossed.
    pub batches: u64,
    /// Peak outstanding reads on the engine's DRAM port.
    pub mlp_peak: u64,
    /// MLP occupancy histogram of the engine's port (buckets 1, 2, 3–4,
    /// 5–8, 9–16, 17–32, 33–64, 65+ outstanding at issue).
    pub mlp_hist: [u64; MLP_BUCKETS],
}

impl SweepPoint {
    /// Probes retired per thousand simulated cycles.
    pub fn probes_per_kcycle(&self) -> f64 {
        self.probes as f64 * 1000.0 / self.cycles as f64
    }

    /// Probes per simulated second at `clock_hz`.
    pub fn probes_per_sec(&self, clock_hz: u64) -> f64 {
        self.probes as f64 * clock_hz as f64 / self.cycles as f64
    }

    /// Stable history/JSON key, e.g. `hash-w8`.
    pub fn key(&self) -> String {
        let kind = match self.kind {
            IndexKind::Hash => "hash",
            IndexKind::Skiplist => "skiplist",
        };
        format!("{kind}-w{}", self.width)
    }
}

struct Rig {
    dram: Dram,
    coproc: IndexCoproc,
    tables: Vec<TableState>,
    now: u64,
    next_block: u64,
}

impl Rig {
    fn new(width: usize) -> Rig {
        let fcfg = FpgaConfig::default();
        let mut dram = Dram::new(&fcfg, 128 << 20);
        dram.set_mlp_tracking(true);
        let mut cfg = CoprocConfig::from_fpga(&fcfg);
        cfg.batch_mode = BatchMode::CrossTxn;
        cfg.batch_width = width;
        let mut coproc = IndexCoproc::new(&cfg, &mut dram);
        // The engine's pending queue (2×width) is the real admission bound;
        // keep the coprocessor's own in-flight cap out of the way.
        coproc.set_max_inflight(256);
        let mut region = Region::new(16 << 20, 104 << 20);
        let hash_dir = region.alloc(8 * 4096, 64);
        let skip_dir = region.alloc(8 * 20, 64);
        let tables = vec![
            TableState {
                meta: TableMeta::hash("h", 8, PAYLOAD, 4096),
                dir_addr: hash_dir,
                heap: region.carve(48 << 20, 64),
                max_level: 20,
            },
            TableState {
                meta: TableMeta::skiplist("s", 8, PAYLOAD),
                dir_addr: skip_dir,
                heap: region.carve(48 << 20, 64),
                max_level: 20,
            },
        ];
        Rig {
            dram,
            coproc,
            tables,
            now: 0,
            next_block: 4096,
        }
    }

    fn req(&mut self, op: DbOp, table: u8, key: u64, ts: u64, cp: u16, group: u64) -> DbRequest {
        // Block slots are recycled round-robin: the probe phase only needs
        // the key bytes to survive until the probe's KeyFetch resolves.
        let key_addr = self.next_block;
        self.next_block += 512;
        if self.next_block >= (16 << 20) {
            self.next_block = 4096;
        }
        self.dram
            .host_write(key_addr, IndexKey::from_u64(key).as_bytes());
        DbRequest {
            op,
            table: TableId(table),
            key_addr,
            payload_addr: key_addr + 64,
            scan_count: 0,
            out_addr: key_addr + 128,
            ts,
            cp: CpSlot {
                worker: PartitionId(0),
                index: cp,
            },
            home: PartitionId(0),
            batch_group: group,
        }
    }

    fn tick(&mut self) {
        self.now += 1;
        self.dram.tick(self.now);
        self.coproc.tick(self.now, &mut self.dram, &mut self.tables);
    }

    /// Load `n` committed records with keys `0..n` through the pipelines.
    fn load(&mut self, table: u8, n: u64) {
        let mut done = 0u64;
        let mut next = 0u64;
        let mut budget: u64 = 500_000_000;
        while done < n {
            while next < n && self.coproc.input.has_space() {
                let r = self.req(DbOp::Insert, table, next, 10, (next % 60) as u16, 0);
                self.coproc.input.push(r).expect("space checked");
                next += 1;
            }
            self.tick();
            budget -= 1;
            assert!(budget > 0, "load did not finish");
            while let Some(resp) = self.coproc.out.pop() {
                let addr = DbResult::decode(resp.value).value().expect("insert ok");
                // Commit immediately, the way the build phase of every
                // index bench does.
                let hdr_off = if table == 0 { 8 } else { 0 };
                self.dram.host_write_u64(addr + hdr_off + 16, 0);
                done += 1;
            }
        }
        while !self.coproc.is_idle() {
            self.tick();
        }
    }
}

/// LCG over the key space: deterministic, cheap, and scattered enough that
/// consecutive probes land in unrelated buckets/towers.
fn lcg_next(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state >> 33
}

/// Run one sweep point: load the table, then stream `probes` tagged
/// searches through the batch engine and measure cycles to drain.
pub fn run_point(kind: IndexKind, width: usize, records: u64, probes: u64) -> SweepPoint {
    let table: u8 = match kind {
        IndexKind::Hash => 0,
        IndexKind::Skiplist => 1,
    };
    let mut rig = Rig::new(width);
    rig.load(table, records);

    // Snapshot DRAM port stats after the load so the measured MLP reflects
    // the probe phase only.
    rig.dram.reset_stats();
    let start = rig.now;
    let mut seed = 0x5eed_0000 + width as u64;
    let mut submitted = 0u64;
    let mut completed = 0u64;
    let mut budget: u64 = 2_000_000_000;
    while completed < probes {
        while submitted < probes && rig.coproc.input.has_space() {
            let key = lcg_next(&mut seed) % records;
            let ts = 1_000 + submitted;
            let r = rig.req(DbOp::Search, table, key, ts, (submitted % 60) as u16, GROUP);
            rig.coproc.input.push(r).expect("space checked");
            submitted += 1;
        }
        rig.tick();
        budget -= 1;
        assert!(budget > 0, "probe phase did not finish");
        while let Some(resp) = rig.coproc.out.pop() {
            assert!(
                DbResult::decode(resp.value).is_ok(),
                "every probe key exists and is committed"
            );
            completed += 1;
        }
    }
    let cycles = rig.now - start;

    let (h, s) = rig.coproc.batch_stats().expect("batching on");
    let bs: BatchStats = match kind {
        IndexKind::Hash => h,
        IndexKind::Skiplist => s,
    };
    assert_eq!(bs.probes, probes, "every probe went through the engine");
    // The engine's port is the busiest reader in the probe phase (the
    // pipelines only served the load); report its MLP.
    let port = rig
        .dram
        .port_stats()
        .iter()
        .max_by_key(|p| p.mlp_peak)
        .copied()
        .expect("ports registered");
    SweepPoint {
        kind,
        width,
        probes,
        cycles,
        reads: bs.reads,
        dedup_saved: bs.dedup_saved,
        batches: bs.batches,
        mlp_peak: port.mlp_peak,
        mlp_hist: port.mlp_hist,
    }
}

/// Run the full sweep: both index kinds × [`WIDTHS`].
pub fn sweep(quick: bool) -> Vec<SweepPoint> {
    let (records, probes) = if quick { (2_048, 1_024) } else { (8_192, 8_192) };
    let mut points = Vec::new();
    for kind in [IndexKind::Hash, IndexKind::Skiplist] {
        for width in WIDTHS {
            points.push(run_point(kind, width, records, probes));
        }
    }
    points
}

/// Render the sweep as deterministic JSON (no wall-clock fields): the
/// `BENCH_batch.json` artifact and the `batchcheck` golden body.
pub fn to_json(points: &[SweepPoint], quick: bool) -> String {
    use std::fmt::Write as _;
    let mut o = String::with_capacity(4096);
    let _ = writeln!(o, "{{\n  \"bin\": \"batchsweep\",\n  \"quick\": {quick},");
    for p in points {
        let _ = writeln!(
            o,
            "  \"{}\": {{ \"width\": {}, \"probes\": {}, \"cycles\": {}, \
             \"probes_per_kcycle\": {:.3}, \"reads\": {}, \"dedup_saved\": {}, \
             \"batches\": {}, \"mlp_peak\": {}, \"mlp_hist\": [{}] }},",
            p.key(),
            p.width,
            p.probes,
            p.cycles,
            p.probes_per_kcycle(),
            p.reads,
            p.dedup_saved,
            p.batches,
            p.mlp_peak,
            p.mlp_hist
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(","),
        );
    }
    o.push_str("  \"widths\": [1,2,4,8,16,32]\n}\n");
    o
}

/// Speedup of the best width ≥ `min_width` over width 1, per kind.
/// Returns `(kind, best_width, speedup)` for each kind present.
pub fn speedups(points: &[SweepPoint], min_width: usize) -> Vec<(IndexKind, usize, f64)> {
    [IndexKind::Hash, IndexKind::Skiplist]
        .into_iter()
        .filter_map(|kind| {
            let base = points
                .iter()
                .find(|p| p.kind == kind && p.width == 1)?
                .probes_per_kcycle();
            points
                .iter()
                .filter(|p| p.kind == kind && p.width >= min_width)
                .map(|p| (kind, p.width, p.probes_per_kcycle() / base))
                .max_by(|a, b| a.2.total_cmp(&b.2))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_point_is_deterministic_and_batched() {
        let a = run_point(IndexKind::Hash, 4, 512, 128);
        let b = run_point(IndexKind::Hash, 4, 512, 128);
        assert_eq!(a, b, "same point twice is byte-identical");
        assert_eq!(a.probes, 128);
        assert!(a.batches >= 128 / 4, "probes went through batches");
        assert!(a.mlp_peak >= 2, "batched walk overlaps reads");
    }

    #[test]
    fn json_rendering_is_stable() {
        let p = run_point(IndexKind::Skiplist, 2, 256, 64);
        let j = to_json(std::slice::from_ref(&p), true);
        assert!(j.contains("\"skiplist-w2\""));
        assert_eq!(j, to_json(&[p], true));
    }
}
