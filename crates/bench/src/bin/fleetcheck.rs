//! Byte-identity gate for the fleet engine (`scripts/check.sh`).
//!
//! The multi-process epoch engine's asserted contract is that splitting a
//! machine across chip processes changes *nothing* observable: for a
//! fixed-seed run, the full [`bionicdb::report::MachineReport`] JSON must
//! be byte-for-byte identical to the in-process engine's. This bin runs
//! two workloads (multisite YCSB-C and SmallBank) on 4 workers three ways
//! each — in-process epoch-parallel, a 2-chip fleet over shared-memory
//! rings, and a 2-chip fleet over the socket fallback transport — and
//! diffs the dumps.
//!
//! The fleet forks, so this bin stays single-threaded around every fleet
//! build/run (no `par_map`); the in-process runs' scoped threads are
//! joined before any fork happens.

use bionicdb::{BionicConfig, ExecMode};
use bionicdb_bench::{drive, ArgSpec, BenchArgs};
use bionicdb_workloads::abi::YcsbWorkload;
use bionicdb_workloads::smallbank::{SmallBankBionic, SmallBankWorkload};
use bionicdb_workloads::ycsb::{YcsbBionic, YcsbKind};
use bionicdb_workloads::{SmallBankSpec, YcsbSpec};

const WORKERS: usize = 4;
const CHIPS: usize = 2;
const WAVE: usize = 24;

/// How one run executes the epoch engine.
#[derive(Clone, Copy, PartialEq)]
enum Engine {
    /// In-process, 2 epoch-parallel lanes per thread group.
    InProcess,
    /// 2 chip processes over shared-memory rings.
    FleetShm,
    /// 2 chip processes over the Unix-socket fallback transport.
    FleetSocket,
}

impl Engine {
    fn label(self) -> &'static str {
        match self {
            Engine::InProcess => "in-process",
            Engine::FleetShm => "fleet/shm",
            Engine::FleetSocket => "fleet/socket",
        }
    }

    /// Arm a freshly built machine for this engine. The transport choice
    /// rides on `BIONICDB_FLEET_TRANSPORT`, read at spawn time.
    fn arm(self, m: &mut bionicdb::Machine) {
        match self {
            Engine::InProcess => {
                std::env::remove_var("BIONICDB_FLEET_TRANSPORT");
                m.set_sim_threads(2);
            }
            Engine::FleetShm => {
                std::env::set_var("BIONICDB_FLEET_TRANSPORT", "shm");
                m.set_fleet_chips(CHIPS);
            }
            Engine::FleetSocket => {
                std::env::set_var("BIONICDB_FLEET_TRANSPORT", "socket");
                m.set_fleet_chips(CHIPS);
            }
        }
    }
}

/// One fixed-seed multisite YCSB-C run; returns the full report JSON.
fn ycsb_report(engine: Engine) -> String {
    let cfg = BionicConfig {
        mode: ExecMode::Interleaved,
        ..BionicConfig::small(WORKERS)
    };
    let spec = YcsbSpec {
        records_per_partition: 1_024,
        payload_len: 64,
        remote_fraction: 0.5,
        ..YcsbSpec::default()
    };
    let mut y = YcsbBionic::build(cfg, spec, 8);
    engine.arm(&mut y.machine);
    drive(
        &mut YcsbWorkload {
            sys: &mut y,
            kind: YcsbKind::ReadHomed,
        },
        WAVE,
    );
    y.machine.report().to_json()
}

/// One fixed-seed SmallBank run; returns the full report JSON.
fn smallbank_report(engine: Engine) -> String {
    let cfg = BionicConfig {
        mode: ExecMode::Interleaved,
        max_batch: 2,
        ..BionicConfig::small(WORKERS)
    };
    let spec = SmallBankSpec {
        accounts_per_partition: 256,
        ..SmallBankSpec::tiny()
    };
    let mut sb = SmallBankBionic::build(cfg, spec);
    engine.arm(&mut sb.machine);
    drive(&mut SmallBankWorkload { sys: &mut sb }, WAVE);
    sb.machine.report().to_json()
}

/// Point at the first differing byte with a little context, then die.
fn diff_or_die(workload: &str, reference: &str, engine: Engine, got: &str) {
    if reference == got {
        println!(
            "fleetcheck: {workload:<10} {:<12} matches in-process byte-for-byte ({} B)",
            engine.label(),
            got.len()
        );
        return;
    }
    let at = reference
        .bytes()
        .zip(got.bytes())
        .position(|(a, b)| a != b)
        .unwrap_or(reference.len().min(got.len()));
    let ctx = |s: &str| {
        let lo = at.saturating_sub(40);
        let hi = (at + 40).min(s.len());
        s[lo..hi].to_string()
    };
    eprintln!(
        "fleetcheck: FAIL: {workload} report diverges on {} at byte {at}\n  in-process: …{}…\n  {:>10}: …{}…",
        engine.label(),
        ctx(reference),
        engine.label(),
        ctx(got)
    );
    std::process::exit(1);
}

fn main() {
    let _ = BenchArgs::from_env(&ArgSpec::shared("fleetcheck"));

    type Workload = (&'static str, fn(Engine) -> String);
    let runs: [Workload; 2] = [("ycsb", ycsb_report), ("smallbank", smallbank_report)];
    for (name, run) in runs {
        let reference = run(Engine::InProcess);
        for engine in [Engine::FleetShm, Engine::FleetSocket] {
            let got = run(engine);
            diff_or_die(name, &reference, engine, &got);
        }
    }
    println!("fleetcheck: all engines byte-identical");
}
