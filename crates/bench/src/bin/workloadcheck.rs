//! Workload-ABI gate: proves the generic driver is behavior-preserving and
//! that every workload stays deterministic under all three execution modes.
//!
//! Two halves:
//!
//! 1. **Golden bit-identity** — run a fixed-seed wave of every legacy
//!    runner shape (YCSB all kinds, the three KV bulk loops, TPC-C all
//!    mixes) and compare each rendered measurement row — throughput plus
//!    the full `MachineReport` JSON — byte-for-byte against
//!    `crates/bench/golden/workload_goldens.json`. The golden file was
//!    captured from the hand-rolled pre-refactor loops (`--capture`
//!    regenerates it; only do that deliberately), so any drift introduced
//!    by driver changes fails loudly.
//! 2. **SmallBank smoke** — the workload that proves the ABI seam: a
//!    fixed-seed SmallBank wave through strict, fast-forward, and
//!    epoch-parallel execution must produce byte-identical rows, twice
//!    (determinism), and survive the chaos crash-at-cycle recovery and
//!    NoC-drop scenarios.
//!
//! `scripts/check.sh` runs this bin as the `workloadcheck` step.

use bionicdb::ExecMode;
use bionicdb_bench::json::render_machine_row;
use bionicdb_bench::*;
use bionicdb_workloads::ycsb::YcsbKind;

/// Where the golden rows live, relative to the bench crate.
fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("golden/workload_goldens.json")
}

/// Run the fixed wave of every legacy runner shape and render one row per
/// measurement. The exact call sequence (machines shared between waves,
/// wave sizes, seeds inside the runners) is part of the golden contract —
/// do not reorder.
fn golden_rows() -> Vec<String> {
    let mut rows = Vec::new();

    // One YCSB machine, four transaction kinds in sequence.
    let mut y = build_ycsb(4, ExecMode::Interleaved);
    for (label, kind, wave) in [
        ("ycsb_read_local", YcsbKind::ReadLocal, 40),
        ("ycsb_read_homed", YcsbKind::ReadHomed, 40),
        ("ycsb_update_local", YcsbKind::UpdateLocal, 24),
        ("ycsb_scan", YcsbKind::Scan, 12),
    ] {
        let t = bionic_ycsb_tput(&mut y, kind, wave);
        rows.push(render_machine_row(label, Some(t), &y.machine));
    }

    // One hash-KV machine: bulk insert, search, then random inserts.
    let mut y = build_ycsb(4, ExecMode::Interleaved);
    let t = bionic_kv_tput(&mut y, true, 12);
    rows.push(render_machine_row("kv_hash_insert", Some(t), &y.machine));
    let t = bionic_kv_tput(&mut y, false, 12);
    rows.push(render_machine_row("kv_hash_search", Some(t), &y.machine));
    let t = bionic_kv_random_insert_tput(&mut y, 12);
    rows.push(render_machine_row("kv_random_insert", Some(t), &y.machine));

    // One skiplist machine: bulk insert then point query.
    let mut y = build_ycsb(4, ExecMode::Interleaved);
    let t = bionic_kv_skip_tput(&mut y, true, 12);
    rows.push(render_machine_row("kv_skip_insert", Some(t), &y.machine));
    let t = bionic_kv_skip_tput(&mut y, false, 12);
    rows.push(render_machine_row("kv_skip_search", Some(t), &y.machine));

    // One TPC-C machine, all three mixes in sequence.
    let mut sys = build_tpcc(4, ExecMode::Interleaved);
    for (label, mix, wave) in [
        ("tpcc_mixed", TpccMix::Mixed, 24),
        ("tpcc_neworder", TpccMix::NewOrderOnly, 12),
        ("tpcc_payment", TpccMix::PaymentOnly, 12),
    ] {
        let t = bionic_tpcc_tput(&mut sys, mix, wave);
        rows.push(render_machine_row(label, Some(t), &sys.machine));
    }

    rows
}

/// SmallBank smoke: one fixed-seed wave per execution schedule must render
/// byte-identical measurement rows (strict ≡ fast-forward ≡ epoch-parallel
/// at 2 lanes), and running the whole set twice must reproduce the exact
/// bytes. Then the chaos crash-recovery and NoC-drop scenarios run on the
/// SmallBank conserving mix — the new workload inherits the full
/// robustness harness purely through the ABI.
fn smallbank_smoke() {
    let run = |fast_forward: bool, threads: usize| -> String {
        let mut sb = build_smallbank(4, ExecMode::Interleaved);
        sb.machine.set_fast_forward(fast_forward);
        sb.machine.set_sim_threads(threads);
        let t = bionic_smallbank_tput(&mut sb, 16);
        render_machine_row("smallbank_mixed", Some(t), &sb.machine)
    };

    let strict = run(false, 1);
    let fast = run(true, 1);
    let par = run(true, 2);
    assert_eq!(strict, fast, "smallbank: fast-forward row drifted from strict");
    assert_eq!(strict, par, "smallbank: epoch-parallel row drifted from strict");
    assert_eq!(strict, run(false, 1), "smallbank: rerun is not byte-identical");
    println!("workloadcheck: smallbank rows byte-identical across schedules");

    let r = chaos::run_crash(chaos::ChaosWorkload::SmallBank, 500, true, 0x5BC4);
    println!(
        "workloadcheck: smallbank crash recovery OK ({} committed, {} salvaged)",
        r.committed_at_crash, r.salvaged
    );
    let r = chaos::run_noc_drop(chaos::ChaosWorkload::SmallBank, &[1, 4], 0x5BC4);
    println!(
        "workloadcheck: smallbank noc-drop OK ({} dropped)",
        r.dropped
    );
}

fn main() {
    let args = BenchArgs::from_env(&ArgSpec {
        bin: "workloadcheck",
        flags: &["--capture"],
        options: &[],
    });
    let capture = args.flag("--capture");
    let rows = golden_rows();
    let doc: String = rows.join("\n") + "\n";

    if capture {
        std::fs::create_dir_all(golden_path().parent().unwrap()).expect("mkdir golden/");
        std::fs::write(golden_path(), &doc).expect("write goldens");
        println!(
            "captured {} golden rows to {}",
            rows.len(),
            golden_path().display()
        );
        return;
    }

    let golden = std::fs::read_to_string(golden_path())
        .expect("golden file present (regenerate deliberately with --capture)");
    if doc != golden {
        for (i, (got, want)) in doc.lines().zip(golden.lines()).enumerate() {
            if got != want {
                eprintln!("row {i} differs:\n  want: {want}\n  got:  {got}");
            }
        }
        assert_eq!(
            doc.lines().count(),
            golden.lines().count(),
            "golden row count drifted"
        );
        panic!("workload driver output drifted from the pre-refactor goldens");
    }
    println!("workloadcheck: {} golden rows bit-identical", rows.len());

    smallbank_smoke();
    println!("workloadcheck: all checks passed");
}
