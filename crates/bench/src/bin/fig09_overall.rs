//! Fig. 9 — overall performance: BionicDB vs. Silo (paper §5.4).
//!
//! * Fig. 9a: YCSB-C throughput; BionicDB at 1–4 workers, Silo at
//!   4–24 modelled Xeon cores. The paper reports BionicDB up to 4.5×
//!   faster at equal worker counts and Silo needing 24 cores to match
//!   4 BionicDB workers.
//! * Fig. 9b: the TPC-C NewOrder+Payment 50:50 mix, where BionicDB is
//!   merely comparable (insufficient index parallelism + data dependency).

use bionicdb::ExecMode;
use bionicdb_bench::json::JsonOut;
use bionicdb_bench::*;
use bionicdb_workloads::tpcc::TpccSilo;
use bionicdb_workloads::ycsb::{YcsbKind, YcsbSilo};

fn main() {
    let args = BenchArgs::from_env(&ArgSpec::shared("fig09_overall"));
    let mut json = JsonOut::from_env("fig09_overall");
    let (wave, silo_txns) = if args.quick() {
        (120, 400)
    } else {
        (YCSB_WAVE, 2_000)
    };

    // ---- Fig. 9a: YCSB-C ----
    let mut rows = Vec::new();
    for workers in 1..=4 {
        let mut y = build_ycsb(workers, ExecMode::Interleaved);
        let t = bionic_ycsb_tput(&mut y, YcsbKind::ReadLocal, wave);
        rows.push((format!("BionicDB/{workers}w"), t.per_sec / 1e3));
        json.machine_row(&format!("ycsb_bionic_{workers}w"), Some(t), &y.machine);
    }
    let silo = YcsbSilo::build(bench_ycsb_spec(), 4);
    for cores in [1, 4, 8, 12, 16, 20, 24] {
        let t = silo_ycsb_model_tput(&silo, silo_txns, cores);
        rows.push((format!("Silo/{cores}c"), t / 1e3));
        json.value_row(&format!("ycsb_silo_{cores}c_per_sec"), t);
    }
    print_series("Fig 9a: YCSB-C (read-only)", "system", "kTps", &rows);

    // ---- Fig. 9b: TPC-C NewOrder+Payment 50:50 ----
    let mut rows = Vec::new();
    for workers in 1..=4 {
        let mut sys = build_tpcc(workers, ExecMode::Interleaved);
        let t = bionic_tpcc_tput(&mut sys, TpccMix::Mixed, wave);
        rows.push((format!("BionicDB/{workers}w"), t.per_sec / 1e3));
        json.machine_row(&format!("tpcc_bionic_{workers}w"), Some(t), &sys.machine);
    }
    let tsilo = TpccSilo::build(bench_tpcc_spec(), 4);
    for cores in [1, 4, 8, 12, 16, 20, 24] {
        let t = silo_tpcc_model_tput(&tsilo, TpccMix::Mixed, silo_txns, cores);
        rows.push((format!("Silo/{cores}c"), t / 1e3));
        json.value_row(&format!("tpcc_silo_{cores}c_per_sec"), t);
    }
    print_series(
        "Fig 9b: TPC-C NewOrder+Payment (50:50)",
        "system",
        "kTps",
        &rows,
    );
    json.write();
}
