//! Fig. 10 — hash-index throughput vs. index parallelism (paper §5.5).
//!
//! Sweeps the maximum number of in-flight DB requests over the index
//! coprocessor (1–24) for: (a) the non-transactional KV workload (60
//! inserts or searches in bulk per transaction), (b) YCSB-C, (c) TPC-C
//! NewOrder, (d) TPC-C Payment. All transactions are local (paper: "To
//! focus on the index coprocessor, all experiments in this section run
//! local transactions only").
//!
//! Paper shapes: insert/search saturate between 12 and 16 in-flight
//! requests (10a); YCSB-C and NewOrder follow the same trend (10b, 10c);
//! Payment stops improving after 4 — it only has 4 index lookups (10d).

use bionicdb::ExecMode;
use bionicdb_bench::json::{render_machine_row, JsonOut};
use bionicdb_bench::*;
use bionicdb_workloads::ycsb::YcsbKind;

const INFLIGHT: [usize; 7] = [1, 4, 8, 12, 16, 20, 24];

fn main() {
    let args = BenchArgs::from_env(&ArgSpec::shared("fig10_hash"));
    let wave = args.wave(60, 200);
    let mut json = JsonOut::from_env("fig10_hash");

    // (a) KV insert / search, operation throughput. Each sweep point is an
    // independent machine, so the whole figure fans out over par_map.
    let rows = par_map(INFLIGHT.to_vec(), |n| {
        let mut y = build_ycsb(4, ExecMode::Interleaved);
        y.machine.set_max_inflight(n);
        let ins = bionic_kv_tput(&mut y, true, wave / 4);
        let ins_row = render_machine_row(&format!("kv_insert_{n}if"), Some(ins), &y.machine);
        let mut y = build_ycsb(4, ExecMode::Interleaved);
        y.machine.set_max_inflight(n);
        let se = bionic_kv_tput(&mut y, false, wave / 4);
        let se_row = render_machine_row(&format!("kv_search_{n}if"), Some(se), &y.machine);
        (
            vec![
                n.to_string(),
                format!("{:.2}", ins.per_sec / 1e6),
                format!("{:.2}", se.per_sec / 1e6),
            ],
            [ins_row, se_row],
        )
    });
    let (rows, json_rows): (Vec<_>, Vec<_>) = rows.into_iter().unzip();
    for pair in json_rows {
        for r in pair {
            json.push_raw(r);
        }
    }
    print_table(
        "Fig 10a: KeyValue (Mops)",
        &["in-flight", "insert", "search"],
        &rows,
    );

    // (b) YCSB-C.
    let rows = par_map(INFLIGHT.to_vec(), |n| {
        let mut y = build_ycsb(4, ExecMode::Interleaved);
        y.machine.set_max_inflight(n);
        let t = bionic_ycsb_tput(&mut y, YcsbKind::ReadLocal, wave);
        let row = render_machine_row(&format!("ycsb_{n}if"), Some(t), &y.machine);
        ((n.to_string(), t.per_sec / 1e3), row)
    });
    let (rows, json_rows): (Vec<_>, Vec<_>) = rows.into_iter().unzip();
    json_rows.into_iter().for_each(|r| json.push_raw(r));
    print_series("Fig 10b: YCSB-C (read-only)", "in-flight", "kTps", &rows);

    // (c) TPC-C NewOrder, (d) Payment — serial execution, isolating the
    // coprocessor's intra-transaction parallelism exactly as §5.5 intends.
    for (mix, title, tag) in [
        (TpccMix::NewOrderOnly, "Fig 10c: TPC-C NewOrder", "neworder"),
        (TpccMix::PaymentOnly, "Fig 10d: TPC-C Payment", "payment"),
    ] {
        let rows = par_map(INFLIGHT.to_vec(), |n| {
            let mut sys = build_tpcc_local(4, ExecMode::Serial);
            sys.machine.set_max_inflight(n);
            let t = bionic_tpcc_tput(&mut sys, mix, wave / 2);
            let row = render_machine_row(&format!("tpcc_{tag}_{n}if"), Some(t), &sys.machine);
            ((n.to_string(), t.per_sec / 1e3), row)
        });
        let (rows, json_rows): (Vec<_>, Vec<_>) = rows.into_iter().unzip();
        json_rows.into_iter().for_each(|r| json.push_raw(r));
        print_series(title, "in-flight", "kTps", &rows);
    }
    json.write();
}
