//! Serving gate: proves the serving engines are deterministic and pins
//! their behaviour to committed goldens.
//!
//! Two halves, mirroring `workloadcheck`, each applied to two engines:
//!
//! 1. **Golden bit-identity** — a fixed scenario matrix runs and each
//!    summary's deterministic JSON row is compared byte-for-byte against
//!    a committed golden file. The *Silo* matrix (every serving workload
//!    under the controlled config at 1.5x capacity, plus one scenario per
//!    shedding policy and the no-control baseline on SmallBank) pins
//!    `crates/bench/golden/serve_golden.json`; the *hardware* matrix
//!    (controlled serving on the cycle-accurate machine for two kinds,
//!    plus one batched-admission run feeding `BatchMode::CrossTxn`) pins
//!    `crates/bench/golden/serve_hw_golden.json`. `--capture` regenerates
//!    both files; only do that deliberately.
//! 2. **Determinism smoke** — each matrix runs twice; the two documents
//!    must be byte-identical. Virtual time, fixed seeds, deterministic
//!    record/index addresses — and for the hardware engine, the
//!    injection-equivalence contract of `Machine::step_until` — make
//!    this exact, on any host.
//!
//! `scripts/check.sh` runs this bin as the `servecheck` step.

use bionicdb_bench::serve::hw::{hw_servers, probe_hw, simulate_hw};
use bionicdb_bench::serve::sim::{probe_service_ns, simulate};
use bionicdb_bench::serve::{ArrivalProcess, RetryMode, ServeConfig, ShedPolicy};
use bionicdb_bench::{ArgSpec, BenchArgs};
use bionicdb_workloads::{ServeKind, ServeMix};

/// Where the Silo-engine golden rows live, relative to the bench crate.
fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("golden/serve_golden.json")
}

/// Where the hardware-engine golden rows live.
fn hw_golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("golden/serve_hw_golden.json")
}

/// Run the fixed scenario matrix and render one JSON row per run. The
/// exact scenario list, seeds, and sizes are part of the golden contract —
/// do not reorder.
fn golden_rows() -> Vec<String> {
    let mut rows = Vec::new();
    let servers = 2;
    let requests = 300;

    // Every workload under the controlled server at 1.5x capacity: the
    // queue works, deadlines fire, retries happen, and the numbers pin
    // the engine + core model end to end.
    for kind in ServeKind::ALL {
        let svc = probe_service_ns(&ServeMix::build(kind, 1), kind.seed(), 200);
        let arrivals = ArrivalProcess::Poisson {
            rate_per_sec: 1.5 * servers as f64 * 1e9 / svc,
        };
        let cfg = ServeConfig::controlled(
            arrivals,
            requests,
            (svc * 25.0) as u64,
            servers,
            kind.seed(),
        );
        let sum = simulate(&ServeMix::build(kind, 1), &cfg);
        rows.push(sum.render_json(&format!("controlled/{}", kind.name())));
    }

    // One SmallBank scenario per policy corner: the baseline's unbounded
    // FIFO, fail-fast, LIFO-slack under an MMPP burst, and a no-retry
    // deadline-drop run.
    let kind = ServeKind::SmallBank;
    let svc = probe_service_ns(&ServeMix::build(kind, 1), kind.seed(), 200);
    let cap = servers as f64 * 1e9 / svc;
    let deadline = (svc * 25.0) as u64;

    let base = ServeConfig::baseline(
        ArrivalProcess::Poisson { rate_per_sec: 1.5 * cap },
        requests,
        deadline,
        servers,
        kind.seed(),
    );
    rows.push(simulate(&ServeMix::build(kind, 1), &base).render_json("baseline/smallbank"));

    let mut ff = ServeConfig::controlled(
        ArrivalProcess::Poisson { rate_per_sec: 2.0 * cap },
        requests,
        deadline,
        servers,
        kind.seed(),
    );
    ff.policy = ShedPolicy::FailFast;
    rows.push(simulate(&ServeMix::build(kind, 1), &ff).render_json("fail_fast/smallbank"));

    let mut ls = ServeConfig::controlled(
        ArrivalProcess::Mmpp {
            base_rate: 0.5 * cap,
            burst_rate: 3.0 * cap,
            mean_base_ns: (svc * 200.0) as u64,
            mean_burst_ns: (svc * 100.0) as u64,
        },
        requests,
        deadline,
        servers,
        kind.seed(),
    );
    ls.policy = ShedPolicy::LifoSlack;
    rows.push(simulate(&ServeMix::build(kind, 1), &ls).render_json("lifo_slack_mmpp/smallbank"));

    let mut nr = ServeConfig::controlled(
        ArrivalProcess::Poisson { rate_per_sec: 2.0 * cap },
        requests,
        deadline,
        servers,
        kind.seed(),
    );
    nr.retry = RetryMode::None;
    rows.push(simulate(&ServeMix::build(kind, 1), &nr).render_json("no_retry/smallbank"));

    rows
}

/// The hardware-engine scenario matrix: the full serving stack (open-loop
/// arrivals, admission control, deadlines, budgeted retry) against the
/// cycle-accurate machine, pinned byte-for-byte. Small on purpose — each
/// request simulates real hardware cycles — but it covers the three paths
/// that matter: a commit-dominated kind (SmallBank at depth-2
/// interleaving, where OCC aborts feed retries too), the deep-interleave
/// YCSB-C, and batched admission feeding `BatchMode::CrossTxn` waves.
fn hw_golden_rows() -> Vec<String> {
    let workers = 2;
    let requests = 150;
    let mut rows = Vec::new();

    for kind in [ServeKind::SmallBank, ServeKind::YcsbC] {
        let probe = probe_hw(kind, workers, 48);
        let cfg = ServeConfig::controlled(
            ArrivalProcess::Poisson {
                rate_per_sec: 1.5 * probe.capacity_per_sec,
            },
            requests,
            (probe.mean_latency_ns * 8.0) as u64,
            hw_servers(kind, workers),
            kind.seed(),
        );
        let sum = simulate_hw(kind, workers, None, &cfg);
        sum.assert_conserved();
        rows.push(sum.render_json(&format!("hw/controlled/{}", kind.name())));
    }

    // Batched admission: front-end groups of 4 entering CrossTxn index
    // waves together.
    let kind = ServeKind::YcsbC;
    let probe = probe_hw(kind, workers, 48);
    let width = 4;
    let deadline = (probe.mean_latency_ns * 8.0) as u64;
    let cfg = ServeConfig::controlled(
        ArrivalProcess::Poisson {
            rate_per_sec: 1.5 * probe.capacity_per_sec,
        },
        requests,
        deadline,
        hw_servers(kind, workers),
        kind.seed(),
    )
    .with_batch(width, (deadline / 8).max(1));
    let sum = simulate_hw(kind, workers, Some(width), &cfg);
    sum.assert_conserved();
    rows.push(sum.render_json("hw/batched/ycsb_c"));

    rows
}

/// Gate one engine's matrix against its golden file: run twice for
/// byte-identity, validate JSON, then capture or diff.
fn gate_matrix(
    what: &str,
    rows: &[String],
    again: &[String],
    path: &std::path::Path,
    capture: bool,
) {
    let doc: String = rows.join("\n") + "\n";
    let again: String = again.join("\n") + "\n";
    assert_eq!(doc, again, "servecheck: {what} rerun is not byte-identical");
    println!(
        "servecheck: {} {what} rows byte-identical across reruns",
        rows.len()
    );

    for row in rows {
        bionicdb_bench::json::validate(row).expect("serve rows are well-formed JSON");
    }

    if capture {
        std::fs::create_dir_all(path.parent().unwrap()).expect("mkdir golden/");
        std::fs::write(path, &doc).expect("write goldens");
        println!("captured {} {what} rows to {}", rows.len(), path.display());
        return;
    }

    let golden = std::fs::read_to_string(path)
        .expect("golden file present (regenerate deliberately with --capture)");
    if doc != golden {
        for (i, (got, want)) in doc.lines().zip(golden.lines()).enumerate() {
            if got != want {
                eprintln!("{what} row {i} differs:\n  want: {want}\n  got:  {got}");
            }
        }
        assert_eq!(
            doc.lines().count(),
            golden.lines().count(),
            "{what} golden row count drifted"
        );
        panic!("{what} serving output drifted from the committed goldens");
    }
    println!("servecheck: {} {what} golden rows bit-identical", rows.len());
}

fn main() {
    let args = BenchArgs::from_env(&ArgSpec {
        bin: "servecheck",
        flags: &["--capture"],
        options: &[],
    });
    let capture = args.flag("--capture");

    gate_matrix("silo", &golden_rows(), &golden_rows(), &golden_path(), capture);
    gate_matrix(
        "hw",
        &hw_golden_rows(),
        &hw_golden_rows(),
        &hw_golden_path(),
        capture,
    );
    println!("servecheck: all checks passed");
}
