//! Serving gate: proves the virtual-time serving engine is deterministic
//! and pins its behaviour to a committed golden.
//!
//! Two halves, mirroring `workloadcheck`:
//!
//! 1. **Golden bit-identity** — a fixed scenario matrix (every serving
//!    workload under the controlled config at 1.5x capacity, plus one
//!    scenario per shedding policy and the no-control baseline on
//!    SmallBank) runs through the virtual-time engine and each summary's
//!    deterministic JSON row is compared byte-for-byte against
//!    `crates/bench/golden/serve_golden.json`. `--capture` regenerates
//!    the file; only do that deliberately.
//! 2. **Determinism smoke** — the entire matrix runs twice; the two
//!    documents must be byte-identical. Virtual time, fixed seeds, and
//!    deterministic record/index addresses make this exact, on any host.
//!
//! `scripts/check.sh` runs this bin as the `servecheck` step.

use bionicdb_bench::serve::sim::{probe_service_ns, simulate};
use bionicdb_bench::serve::{ArrivalProcess, RetryMode, ServeConfig, ShedPolicy};
use bionicdb_bench::{ArgSpec, BenchArgs};
use bionicdb_workloads::{ServeKind, ServeMix};

/// Where the golden rows live, relative to the bench crate.
fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("golden/serve_golden.json")
}

/// Run the fixed scenario matrix and render one JSON row per run. The
/// exact scenario list, seeds, and sizes are part of the golden contract —
/// do not reorder.
fn golden_rows() -> Vec<String> {
    let mut rows = Vec::new();
    let servers = 2;
    let requests = 300;

    // Every workload under the controlled server at 1.5x capacity: the
    // queue works, deadlines fire, retries happen, and the numbers pin
    // the engine + core model end to end.
    for kind in ServeKind::ALL {
        let svc = probe_service_ns(&ServeMix::build(kind, 1), kind.seed(), 200);
        let arrivals = ArrivalProcess::Poisson {
            rate_per_sec: 1.5 * servers as f64 * 1e9 / svc,
        };
        let cfg = ServeConfig::controlled(
            arrivals,
            requests,
            (svc * 25.0) as u64,
            servers,
            kind.seed(),
        );
        let sum = simulate(&ServeMix::build(kind, 1), &cfg);
        rows.push(sum.render_json(&format!("controlled/{}", kind.name())));
    }

    // One SmallBank scenario per policy corner: the baseline's unbounded
    // FIFO, fail-fast, LIFO-slack under an MMPP burst, and a no-retry
    // deadline-drop run.
    let kind = ServeKind::SmallBank;
    let svc = probe_service_ns(&ServeMix::build(kind, 1), kind.seed(), 200);
    let cap = servers as f64 * 1e9 / svc;
    let deadline = (svc * 25.0) as u64;

    let base = ServeConfig::baseline(
        ArrivalProcess::Poisson { rate_per_sec: 1.5 * cap },
        requests,
        deadline,
        servers,
        kind.seed(),
    );
    rows.push(simulate(&ServeMix::build(kind, 1), &base).render_json("baseline/smallbank"));

    let mut ff = ServeConfig::controlled(
        ArrivalProcess::Poisson { rate_per_sec: 2.0 * cap },
        requests,
        deadline,
        servers,
        kind.seed(),
    );
    ff.policy = ShedPolicy::FailFast;
    rows.push(simulate(&ServeMix::build(kind, 1), &ff).render_json("fail_fast/smallbank"));

    let mut ls = ServeConfig::controlled(
        ArrivalProcess::Mmpp {
            base_rate: 0.5 * cap,
            burst_rate: 3.0 * cap,
            mean_base_ns: (svc * 200.0) as u64,
            mean_burst_ns: (svc * 100.0) as u64,
        },
        requests,
        deadline,
        servers,
        kind.seed(),
    );
    ls.policy = ShedPolicy::LifoSlack;
    rows.push(simulate(&ServeMix::build(kind, 1), &ls).render_json("lifo_slack_mmpp/smallbank"));

    let mut nr = ServeConfig::controlled(
        ArrivalProcess::Poisson { rate_per_sec: 2.0 * cap },
        requests,
        deadline,
        servers,
        kind.seed(),
    );
    nr.retry = RetryMode::None;
    rows.push(simulate(&ServeMix::build(kind, 1), &nr).render_json("no_retry/smallbank"));

    rows
}

fn main() {
    let args = BenchArgs::from_env(&ArgSpec {
        bin: "servecheck",
        flags: &["--capture"],
        options: &[],
    });
    let capture = args.flag("--capture");

    let rows = golden_rows();
    let doc: String = rows.join("\n") + "\n";

    // Determinism smoke: the whole matrix again, byte-for-byte.
    let again: String = golden_rows().join("\n") + "\n";
    assert_eq!(doc, again, "servecheck: rerun is not byte-identical");
    println!("servecheck: {} rows byte-identical across reruns", rows.len());

    for row in &rows {
        bionicdb_bench::json::validate(row).expect("serve rows are well-formed JSON");
    }

    if capture {
        std::fs::create_dir_all(golden_path().parent().unwrap()).expect("mkdir golden/");
        std::fs::write(golden_path(), &doc).expect("write goldens");
        println!(
            "captured {} golden rows to {}",
            rows.len(),
            golden_path().display()
        );
        return;
    }

    let golden = std::fs::read_to_string(golden_path())
        .expect("golden file present (regenerate deliberately with --capture)");
    if doc != golden {
        for (i, (got, want)) in doc.lines().zip(golden.lines()).enumerate() {
            if got != want {
                eprintln!("row {i} differs:\n  want: {want}\n  got:  {got}");
            }
        }
        assert_eq!(
            doc.lines().count(),
            golden.lines().count(),
            "golden row count drifted"
        );
        panic!("serving engine output drifted from the committed goldens");
    }
    println!("servecheck: {} golden rows bit-identical", rows.len());
    println!("servecheck: all checks passed");
}
