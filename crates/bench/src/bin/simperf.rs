//! Simulator performance: simulated cycles per wall-clock second.
//!
//! Two studies, selected by flag:
//!
//! * default — strict single-cycle stepping vs the fast-forward scheduler.
//!   The workload is deliberately stall-heavy — single-worker YCSB-C point
//!   reads under *serial* execution with the coprocessor's in-flight bound
//!   at 1, so the softcore idles through every DB round trip instead of
//!   interleaving over it — which is exactly the span the fast-forward
//!   scheduler elides. Results go to `BENCH_simperf.json`.
//! * `--par` — the serial fast path vs the epoch-parallel scheduler under
//!   both lookahead modes (`Global` = one min-latency horizon for every
//!   lane, `Matrix` = per-pair horizons solved to a fixpoint) at 2 and 4
//!   threads on a 4-worker multisite workload. Every run's `MachineReport`
//!   JSON must be byte-identical — this is the `parcheck` gate in
//!   `scripts/check.sh` — and the honest wall-clock numbers (with the
//!   host's CPU count, which bounds any attainable speedup) go to
//!   `BENCH_parsim.json`. A second, deliberately skewed scenario (one
//!   update-heavy worker, three near-idle peers across two chips) measures
//!   what the matrix lookahead buys structurally: the epoch-round count,
//!   which is thread-count-independent, must drop at least 5x vs the
//!   global horizon.
//!
//! Full (non-`--quick`) runs append their cycles/sec to the append-only
//! history file (`results/bench_history.jsonl` unless `--history PATH`),
//! which the `benchdiff` bin gates on.
//!
//! Usage: `simperf [--par] [--quick] [--out PATH] [--history PATH]`

use std::time::Instant;

use bionicdb::{BionicConfig, ExecMode, LaneActivity, LookaheadMode, Topology};
use bionicdb_bench::history::{self, Entry};
use bionicdb_bench::json::JsonOut;
use bionicdb_bench::{rng, ArgSpec, BenchArgs};
use bionicdb_workloads::ycsb::{BlockPool, YcsbBionic, YcsbKind};
use bionicdb_workloads::YcsbSpec;

struct Measurement {
    cycles: u64,
    ticks: u64,
    wall_secs: f64,
    committed: u64,
}

impl Measurement {
    fn cycles_per_sec(&self) -> f64 {
        self.cycles as f64 / self.wall_secs
    }
}

/// Run one strict or fast YCSB-C wave and time it.
fn measure(fast: bool, txns_per_worker: usize) -> Measurement {
    let cfg = BionicConfig {
        workers: 1,
        mode: ExecMode::Serial,
        ..BionicConfig::default()
    };
    let spec = YcsbSpec {
        records_per_partition: 20_000,
        ..YcsbSpec::default()
    };
    let mut y = YcsbBionic::build(cfg, spec, 4);
    y.machine.set_fast_forward(fast);
    y.machine.set_max_inflight(1);
    let workers = y.machine.num_workers();
    let size = y.block_size(YcsbKind::ReadLocal);
    let mut pools: Vec<BlockPool> = (0..workers)
        .map(|w| BlockPool::new(&mut y.machine, w, txns_per_worker, size))
        .collect();
    let mut r = rng(0x51F0);
    for (w, pool) in pools.iter_mut().enumerate() {
        for _ in 0..txns_per_worker {
            let blk = pool.take();
            y.submit_txn(w, blk, YcsbKind::ReadLocal, &mut r);
        }
    }
    let c0 = y.machine.now();
    let t0 = Instant::now();
    y.machine.run_to_quiescence();
    let wall_secs = t0.elapsed().as_secs_f64();
    Measurement {
        cycles: y.machine.now() - c0,
        ticks: y.machine.ticks_executed(),
        wall_secs,
        committed: y.machine.stats().committed,
    }
}

/// One epoch-parallel (or serial when `threads == 1`) multisite run.
struct ParRun {
    m: Measurement,
    report_json: String,
    /// Per-lane scheduler counters (all zeros for the serial run).
    lanes: Vec<LaneActivity>,
    /// Barrier rounds the epoch scheduler executed (0 for the serial run).
    /// Deterministic for a given workload + lookahead mode: the schedule
    /// never depends on the thread count, only on who claims each lane.
    epoch_rounds: u64,
    /// Posted-write DRAM acks cancelled instead of delivered to workers
    /// that had already retired the write.
    cancelled_acks: u64,
}

/// Run the 4-worker multisite wave at a given sim-thread count and
/// lookahead mode and time it. Every worker sits on its own chip: the
/// cheapest NoC path is a full inter-node link, so even the global
/// conservative lookahead is 75 cycles and the workers genuinely run
/// concurrently between barriers.
fn measure_par(threads: usize, mode: LookaheadMode, txns_per_worker: usize) -> ParRun {
    let cfg = BionicConfig {
        workers: 4,
        mode: ExecMode::Interleaved,
        topology: Topology::MultiChip {
            workers_per_node: 1,
            inter_node_hops: 25,
        },
        ..BionicConfig::default()
    };
    let spec = YcsbSpec {
        records_per_partition: 20_000,
        remote_fraction: 0.5,
        ..YcsbSpec::default()
    };
    let mut y = YcsbBionic::build(cfg, spec, 4);
    y.machine.set_fast_forward(true);
    y.machine.set_sim_threads(threads);
    y.machine.set_lookahead_mode(mode);
    let workers = y.machine.num_workers();
    let size = y.block_size(YcsbKind::ReadHomed);
    let mut pools: Vec<BlockPool> = (0..workers)
        .map(|w| BlockPool::new(&mut y.machine, w, txns_per_worker, size))
        .collect();
    let mut r = rng(0x9A7);
    for (w, pool) in pools.iter_mut().enumerate() {
        for _ in 0..txns_per_worker {
            let blk = pool.take();
            y.submit_txn(w, blk, YcsbKind::ReadHomed, &mut r);
        }
    }
    let c0 = y.machine.now();
    let t0 = Instant::now();
    y.machine.run_to_quiescence();
    let wall_secs = t0.elapsed().as_secs_f64();
    ParRun {
        m: Measurement {
            cycles: y.machine.now() - c0,
            ticks: y.machine.ticks_executed(),
            wall_secs,
            committed: y.machine.stats().committed,
        },
        report_json: y.machine.report().to_json(),
        lanes: y.machine.lane_activity().to_vec(),
        epoch_rounds: y.machine.epoch_rounds(),
        cancelled_acks: y.machine.cancelled_write_acks(),
    }
}

/// The skewed scenario for the epoch-round comparison: five workers on
/// three chips ({0,1}, {2,3}, {4}), with worker 4 — *alone on its chip* —
/// grinding through a long run of local updates while the four peers
/// retire a couple of *local* reads and go idle (local so they genuinely
/// quiesce — a remote read homed at the busy partition would sit in its
/// queue and keep the sender's lane alive all run). The global horizon is
/// the cheapest pair anywhere: the 3-cycle same-chip links on the full
/// chips throttle worker 4 to 3-cycle epochs forever. The per-pair
/// matrix knows the only way worker 4 can be affected is its own traffic
/// bouncing off a remote chip — a 150-cycle round trip — so its epochs
/// are ~50x longer. The round count is deterministic and thread-count
/// independent, so this measures the structural win even on 1 CPU.
fn measure_skew(threads: usize, mode: LookaheadMode, hot: usize, light: usize) -> ParRun {
    let cfg = BionicConfig {
        workers: 5,
        mode: ExecMode::Interleaved,
        topology: Topology::MultiChip {
            workers_per_node: 2,
            inter_node_hops: 25,
        },
        ..BionicConfig::default()
    };
    let spec = YcsbSpec {
        records_per_partition: 20_000,
        remote_fraction: 1.0,
        ..YcsbSpec::default()
    };
    let mut y = YcsbBionic::build(cfg, spec, 4);
    y.machine.set_fast_forward(true);
    y.machine.set_sim_threads(threads);
    y.machine.set_lookahead_mode(mode);
    let workers = y.machine.num_workers();
    let upd_size = y.block_size(YcsbKind::UpdateLocal);
    let read_size = y.block_size(YcsbKind::ReadLocal);
    let mut r = rng(0x5EED);
    for w in 0..workers {
        let (kind, txns, size) = if w == workers - 1 {
            (YcsbKind::UpdateLocal, hot, upd_size)
        } else {
            (YcsbKind::ReadLocal, light, read_size)
        };
        let mut pool = BlockPool::new(&mut y.machine, w, txns, size);
        for _ in 0..txns {
            let blk = pool.take();
            y.submit_txn(w, blk, kind, &mut r);
        }
    }
    let c0 = y.machine.now();
    let t0 = Instant::now();
    y.machine.run_to_quiescence();
    let wall_secs = t0.elapsed().as_secs_f64();
    ParRun {
        m: Measurement {
            cycles: y.machine.now() - c0,
            ticks: y.machine.ticks_executed(),
            wall_secs,
            committed: y.machine.stats().committed,
        },
        report_json: y.machine.report().to_json(),
        lanes: y.machine.lane_activity().to_vec(),
        epoch_rounds: y.machine.epoch_rounds(),
        cancelled_acks: y.machine.cancelled_write_acks(),
    }
}

/// Append per-lane scheduler counters as a JSON array field.
fn push_lane_json(out: &mut String, lanes: &[LaneActivity]) {
    out.push_str("[\n");
    for (w, lane) in lanes.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"lane\": {}, \"rounds\": {}, \"ticks\": {}, \"skips\": {}, \
             \"barrier_idle_ns\": {}, \"epoch_len_p50\": {:.0}, \"epoch_len_p95\": {:.0}, \
             \"epoch_len_max\": {} }}{}\n",
            w,
            lane.rounds,
            lane.ticks,
            lane.skips,
            lane.barrier_idle_ns,
            lane.epoch_len.p50(),
            lane.epoch_len.p95(),
            lane.epoch_len.max(),
            if w + 1 == lanes.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]");
}

/// The `--par` study: serial fast path vs epoch-parallel under both
/// lookahead modes at 2 and 4 threads, plus the skewed epoch-round
/// comparison. Byte-identity of the report JSON is asserted across every
/// run (the `parcheck` equivalence gate); speedups are recorded honestly
/// alongside the host's CPU count, since a 1-CPU container cannot show
/// wall-clock gains no matter how parallel the schedule is.
fn run_par_study(quick: bool, out_path: &str, history_path: &str) {
    let txns = if quick { 150 } else { 1_200 };
    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let serial = measure_par(1, LookaheadMode::Matrix, txns);
    let global2 = measure_par(2, LookaheadMode::Global, txns);
    let global4 = measure_par(4, LookaheadMode::Global, txns);
    let matrix2 = measure_par(2, LookaheadMode::Matrix, txns);
    let matrix4 = measure_par(4, LookaheadMode::Matrix, txns);

    let runs = [
        ("global x2", &global2),
        ("global x4", &global4),
        ("matrix x2", &matrix2),
        ("matrix x4", &matrix4),
    ];
    for (label, run) in runs {
        assert_eq!(
            serial.m.cycles, run.m.cycles,
            "epoch-parallel ({label}) must be cycle-exact"
        );
        assert_eq!(
            serial.m.committed, run.m.committed,
            "epoch-parallel ({label}) must commit identically"
        );
        assert_eq!(
            serial.report_json, run.report_json,
            "epoch-parallel ({label}) report JSON must be byte-identical"
        );
    }
    println!("report JSON byte-identical: serial vs global/matrix lookahead at 2 and 4 threads");

    for (label, run) in [("serial", &serial)].into_iter().chain(runs) {
        println!(
            "{label:>9}: {:>12.0} cycles/s  ({} cycles, {} ticks, {:.3}s, {} rounds)",
            run.m.cycles_per_sec(),
            run.m.cycles,
            run.m.ticks,
            run.m.wall_secs,
            run.epoch_rounds
        );
        // Per-lane load balance: component ticks actually executed vs
        // cycles fast-forwarded over, per worker lane (epoch runs only —
        // the serial schedule does not maintain lane counters).
        for (w, lane) in run.lanes.iter().enumerate() {
            if lane.rounds > 0 {
                println!(
                    "        lane {w}: {} rounds, {} ticks, {} skipped, {:.1}us barrier idle, epoch len p50/p95/max {:.0}/{:.0}/{}",
                    lane.rounds,
                    lane.ticks,
                    lane.skips,
                    lane.barrier_idle_ns as f64 / 1_000.0,
                    lane.epoch_len.p50(),
                    lane.epoch_len.p95(),
                    lane.epoch_len.max()
                );
            }
        }
    }

    // The structural win, independent of host CPU count: per-pair
    // lookahead must need fewer barrier rounds than the single global
    // horizon on the balanced scenario...
    assert!(
        matrix2.epoch_rounds <= global2.epoch_rounds,
        "matrix lookahead must never need more rounds than global \
         (matrix {}, global {})",
        matrix2.epoch_rounds,
        global2.epoch_rounds
    );
    // ...and at least 5x fewer on the skewed one, where the global
    // horizon's cheapest-pair step is pure overhead once the light
    // workers drain.
    let (hot, light) = if quick { (60, 3) } else { (400, 10) };
    let skew_global = measure_skew(2, LookaheadMode::Global, hot, light);
    let skew_matrix = measure_skew(2, LookaheadMode::Matrix, hot, light);
    assert_eq!(
        skew_global.report_json, skew_matrix.report_json,
        "skewed scenario must stay byte-identical across lookahead modes"
    );
    for (label, run) in [("skew global", &skew_global), ("skew matrix", &skew_matrix)] {
        println!("{label}: {} rounds over {} cycles", run.epoch_rounds, run.m.cycles);
        for (w, lane) in run.lanes.iter().enumerate() {
            println!(
                "        lane {w}: {} rounds, {} ticks, {} skipped, epoch len p50/p95/max {:.0}/{:.0}/{}",
                lane.rounds, lane.ticks, lane.skips,
                lane.epoch_len.p50(), lane.epoch_len.p95(), lane.epoch_len.max()
            );
        }
    }
    assert!(
        skew_matrix.epoch_rounds * 5 <= skew_global.epoch_rounds,
        "matrix lookahead must cut skewed-scenario epoch rounds at least 5x \
         (matrix {}, global {})",
        skew_matrix.epoch_rounds,
        skew_global.epoch_rounds
    );
    let round_ratio = skew_global.epoch_rounds as f64 / skew_matrix.epoch_rounds.max(1) as f64;
    println!(
        "skewed scenario: {} rounds under global lookahead, {} under matrix ({round_ratio:.1}x fewer)",
        skew_global.epoch_rounds, skew_matrix.epoch_rounds
    );

    let speedups = [
        ("global2", serial.m.wall_secs / global2.m.wall_secs),
        ("global4", serial.m.wall_secs / global4.m.wall_secs),
        ("matrix2", serial.m.wall_secs / matrix2.m.wall_secs),
        ("matrix4", serial.m.wall_secs / matrix4.m.wall_secs),
    ];
    for (label, s) in speedups {
        println!("speedup {label}: {s:.2}x");
    }
    println!("host has {host_cpus} CPU(s)");
    let best_matrix = speedups[2].1.max(speedups[3].1);
    // Wall-clock assertions need real cores and a full-size wave; byte
    // identity above is asserted unconditionally.
    if !quick && host_cpus >= 4 {
        assert!(
            best_matrix > 2.0,
            "matrix lookahead + work stealing must beat serial by >2x on a \
             {host_cpus}-CPU host (got {best_matrix:.2}x)"
        );
    } else if !quick && host_cpus >= 2 {
        assert!(
            best_matrix > 1.0,
            "matrix lookahead + work stealing must beat serial on a \
             {host_cpus}-CPU host (got {best_matrix:.2}x)"
        );
    } else {
        println!("(speedup assertions skipped: quick run or {host_cpus} CPU host)");
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"workload\": \"ycsb read-homed 50% remote, interleaved exec, 4 workers x 1 chip (75-cycle min lookahead), {txns} txns/worker\",\n"
    ));
    json.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!(
        "  \"simulated_cycles\": {},\n  \"committed\": {},\n",
        serial.m.cycles, serial.m.committed
    ));
    json.push_str("  \"report_bytes_identical\": true,\n");
    json.push_str(&format!(
        "  \"serial\": {{ \"wall_secs\": {:.6}, \"cycles_per_sec\": {:.0} }},\n",
        serial.m.wall_secs,
        serial.m.cycles_per_sec()
    ));
    for ((label, run), (_, speedup)) in runs.into_iter().zip(speedups) {
        let key = label.replace(" x", "");
        json.push_str(&format!(
            "  \"{key}\": {{ \"wall_secs\": {:.6}, \"cycles_per_sec\": {:.0}, \"speedup\": {speedup:.3}, \"epoch_rounds\": {} }},\n",
            run.m.wall_secs,
            run.m.cycles_per_sec(),
            run.epoch_rounds
        ));
    }
    json.push_str(&format!(
        "  \"cancelled_write_acks\": {},\n",
        matrix4.cancelled_acks
    ));
    json.push_str("  \"matrix4_lanes\": ");
    push_lane_json(&mut json, &matrix4.lanes);
    json.push_str(",\n");
    json.push_str(&format!(
        "  \"skewed\": {{ \"hot_txns\": {hot}, \"light_txns\": {light}, \
         \"global_epoch_rounds\": {}, \"matrix_epoch_rounds\": {}, \"round_ratio\": {round_ratio:.1}, \
         \"cancelled_write_acks\": {}, \"report_bytes_identical\": true }}\n",
        skew_global.epoch_rounds, skew_matrix.epoch_rounds, skew_matrix.cancelled_acks
    ));
    json.push_str("}\n");
    std::fs::write(out_path, json).expect("write results file");
    println!("wrote {out_path}");

    // Full runs feed the regression history `benchdiff` gates on; quick
    // waves are too small to be comparable and stay out of it.
    if !quick {
        let t = history::now_unix();
        for (bench, cps, cycles) in [
            ("parsim-serial", serial.m.cycles_per_sec(), serial.m.cycles),
            ("parsim-global", global4.m.cycles_per_sec(), global4.m.cycles),
            ("parsim-matrix", matrix4.m.cycles_per_sec(), matrix4.m.cycles),
        ] {
            let mut e = Entry::basic(bench, cps, t);
            e.committed_cycles = Some(cycles);
            history::append(history_path.as_ref(), &e).expect("append bench history");
        }
        println!("appended 3 entries to {history_path}");
    }

    let mut jout = JsonOut::from_env("simperf-par");
    jout.value_row("host_cpus", host_cpus as f64);
    jout.value_row("simulated_cycles", serial.m.cycles as f64);
    jout.value_row("committed", serial.m.committed as f64);
    jout.value_row("serial_cycles_per_sec", serial.m.cycles_per_sec());
    jout.value_row("global4_cycles_per_sec", global4.m.cycles_per_sec());
    jout.value_row("matrix4_cycles_per_sec", matrix4.m.cycles_per_sec());
    jout.value_row("speedup_matrix4", speedups[3].1);
    jout.value_row("skew_global_rounds", skew_global.epoch_rounds as f64);
    jout.value_row("skew_matrix_rounds", skew_matrix.epoch_rounds as f64);
    for (w, lane) in matrix4.lanes.iter().enumerate() {
        jout.value_row(&format!("matrix4_lane{w}_rounds"), lane.rounds as f64);
        jout.value_row(&format!("matrix4_lane{w}_ticks"), lane.ticks as f64);
        jout.value_row(&format!("matrix4_lane{w}_skips"), lane.skips as f64);
    }
    jout.write();
}

fn main() {
    let args = BenchArgs::from_env(&ArgSpec {
        bin: "simperf",
        flags: &["--par"],
        options: &["--out", "--history"],
    });
    let quick = args.quick();
    let par = args.flag("--par");
    let out_path = args
        .value("--out")
        .unwrap_or(if par {
            "BENCH_parsim.json"
        } else {
            "BENCH_simperf.json"
        })
        .to_string();
    let history_path = args
        .value("--history")
        .unwrap_or(history::DEFAULT_PATH)
        .to_string();
    if par {
        run_par_study(quick, &out_path, &history_path);
        return;
    }
    let txns = args.wave(400, 2_000);

    let strict = measure(false, txns);
    let fast = measure(true, txns);

    assert_eq!(
        strict.cycles, fast.cycles,
        "fast-forward must be cycle-exact"
    );
    assert_eq!(
        strict.committed, fast.committed,
        "fast-forward must commit identically"
    );

    let speedup = fast.cycles_per_sec() / strict.cycles_per_sec();
    println!(
        "strict: {:>12.0} cycles/s  ({} cycles, {} ticks, {:.3}s)",
        strict.cycles_per_sec(),
        strict.cycles,
        strict.ticks,
        strict.wall_secs
    );
    println!(
        "fast:   {:>12.0} cycles/s  ({} cycles, {} ticks, {:.3}s)",
        fast.cycles_per_sec(),
        fast.cycles,
        fast.ticks,
        fast.wall_secs
    );
    println!("speedup: {speedup:.2}x");

    let json = format!(
        concat!(
            "{{\n",
            "  \"workload\": \"ycsb-c read-local, serial exec, 1 worker, max_inflight=1, {} txns/worker\",\n",
            "  \"simulated_cycles\": {},\n",
            "  \"committed\": {},\n",
            "  \"strict\": {{ \"wall_secs\": {:.6}, \"cycles_per_sec\": {:.0} }},\n",
            "  \"fast\": {{ \"wall_secs\": {:.6}, \"cycles_per_sec\": {:.0} }},\n",
            "  \"speedup\": {:.3}\n",
            "}}\n"
        ),
        txns,
        strict.cycles,
        strict.committed,
        strict.wall_secs,
        strict.cycles_per_sec(),
        fast.wall_secs,
        fast.cycles_per_sec(),
        speedup
    );
    std::fs::write(&out_path, json).expect("write results file");
    println!("wrote {out_path}");

    if !quick {
        let t = history::now_unix();
        for (bench, cps, cycles) in [
            ("simperf-strict", strict.cycles_per_sec(), strict.cycles),
            ("simperf-fast", fast.cycles_per_sec(), fast.cycles),
        ] {
            let mut e = Entry::basic(bench, cps, t);
            e.committed_cycles = Some(cycles);
            history::append(history_path.as_ref(), &e).expect("append bench history");
        }
        println!("appended 2 entries to {history_path}");
    }

    // Shared `--json` dump (same flag as every other bench bin).
    let mut jout = JsonOut::from_env("simperf");
    jout.value_row("simulated_cycles", strict.cycles as f64);
    jout.value_row("committed", strict.committed as f64);
    jout.value_row("strict_cycles_per_sec", strict.cycles_per_sec());
    jout.value_row("fast_cycles_per_sec", fast.cycles_per_sec());
    jout.value_row("speedup", speedup);
    jout.write();
}
