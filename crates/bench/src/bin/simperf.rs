//! Simulator performance: simulated cycles per wall-clock second.
//!
//! Two studies, selected by flag:
//!
//! * default — strict single-cycle stepping vs the fast-forward scheduler.
//!   The workload is deliberately stall-heavy — single-worker YCSB-C point
//!   reads under *serial* execution with the coprocessor's in-flight bound
//!   at 1, so the softcore idles through every DB round trip instead of
//!   interleaving over it — which is exactly the span the fast-forward
//!   scheduler elides. Results go to `BENCH_simperf.json`.
//! * `--par` — the serial fast path vs the epoch-parallel scheduler at 2
//!   and 4 threads on a 4-worker multisite workload (each worker on its
//!   own chip, so the NoC lookahead — and therefore the epoch — is a full
//!   inter-node round trip). Every run's `MachineReport` JSON must be
//!   byte-identical — this is the `parcheck` gate in `scripts/check.sh` —
//!   and the honest wall-clock numbers (with the host's CPU count, which
//!   bounds any attainable speedup) go to `BENCH_parsim.json`.
//!
//! Usage: `simperf [--par] [--quick] [--out PATH] [--sim-threads N]`

use std::time::Instant;

use bionicdb::{BionicConfig, ExecMode, Topology};
use bionicdb_bench::json::JsonOut;
use bionicdb_bench::{rng, BenchArgs};
use bionicdb_workloads::ycsb::{BlockPool, YcsbBionic, YcsbKind};
use bionicdb_workloads::YcsbSpec;

struct Measurement {
    cycles: u64,
    ticks: u64,
    wall_secs: f64,
    committed: u64,
}

impl Measurement {
    fn cycles_per_sec(&self) -> f64 {
        self.cycles as f64 / self.wall_secs
    }
}

/// Run one strict or fast YCSB-C wave and time it.
fn measure(fast: bool, txns_per_worker: usize) -> Measurement {
    let cfg = BionicConfig {
        workers: 1,
        mode: ExecMode::Serial,
        ..BionicConfig::default()
    };
    let spec = YcsbSpec {
        records_per_partition: 20_000,
        ..YcsbSpec::default()
    };
    let mut y = YcsbBionic::build(cfg, spec, 4);
    y.machine.set_fast_forward(fast);
    y.machine.set_max_inflight(1);
    let workers = y.machine.num_workers();
    let size = y.block_size(YcsbKind::ReadLocal);
    let mut pools: Vec<BlockPool> = (0..workers)
        .map(|w| BlockPool::new(&mut y.machine, w, txns_per_worker, size))
        .collect();
    let mut r = rng(0x51F0);
    for (w, pool) in pools.iter_mut().enumerate() {
        for _ in 0..txns_per_worker {
            let blk = pool.take();
            y.submit_txn(w, blk, YcsbKind::ReadLocal, &mut r);
        }
    }
    let c0 = y.machine.now();
    let t0 = Instant::now();
    y.machine.run_to_quiescence();
    let wall_secs = t0.elapsed().as_secs_f64();
    Measurement {
        cycles: y.machine.now() - c0,
        ticks: y.machine.ticks_executed(),
        wall_secs,
        committed: y.machine.stats().committed,
    }
}

/// One epoch-parallel (or serial when `threads == 1`) multisite run.
struct ParRun {
    m: Measurement,
    report_json: String,
    /// Per-lane `(ticks, skipped)` from the epoch-parallel scheduler
    /// (all zeros for the serial run).
    lanes: Vec<(u64, u64)>,
}

/// Run the 4-worker multisite wave at a given sim-thread count and time it.
/// Every worker sits on its own chip: the cheapest NoC path is a full
/// inter-node link, so the conservative lookahead (= the epoch length) is
/// 75 cycles and the workers genuinely run concurrently between barriers.
fn measure_par(threads: usize, txns_per_worker: usize) -> ParRun {
    let cfg = BionicConfig {
        workers: 4,
        mode: ExecMode::Interleaved,
        topology: Topology::MultiChip {
            workers_per_node: 1,
            inter_node_hops: 25,
        },
        ..BionicConfig::default()
    };
    let spec = YcsbSpec {
        records_per_partition: 20_000,
        remote_fraction: 0.5,
        ..YcsbSpec::default()
    };
    let mut y = YcsbBionic::build(cfg, spec, 4);
    y.machine.set_fast_forward(true);
    y.machine.set_sim_threads(threads);
    let workers = y.machine.num_workers();
    let size = y.block_size(YcsbKind::ReadHomed);
    let mut pools: Vec<BlockPool> = (0..workers)
        .map(|w| BlockPool::new(&mut y.machine, w, txns_per_worker, size))
        .collect();
    let mut r = rng(0x9A7);
    for (w, pool) in pools.iter_mut().enumerate() {
        for _ in 0..txns_per_worker {
            let blk = pool.take();
            y.submit_txn(w, blk, YcsbKind::ReadHomed, &mut r);
        }
    }
    let c0 = y.machine.now();
    let t0 = Instant::now();
    y.machine.run_to_quiescence();
    let wall_secs = t0.elapsed().as_secs_f64();
    ParRun {
        m: Measurement {
            cycles: y.machine.now() - c0,
            ticks: y.machine.ticks_executed(),
            wall_secs,
            committed: y.machine.stats().committed,
        },
        report_json: y.machine.report().to_json(),
        lanes: y.machine.lane_activity().to_vec(),
    }
}

/// The `--par` study: serial fast path vs epoch-parallel at 2 and 4
/// threads. Byte-identity of the report JSON is asserted (the `parcheck`
/// equivalence gate); speedups are recorded honestly alongside the host's
/// CPU count, since a 1-CPU container cannot show wall-clock gains no
/// matter how parallel the schedule is.
fn run_par_study(quick: bool, out_path: &str) {
    let txns = if quick { 150 } else { 1_200 };
    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let serial = measure_par(1, txns);
    let par2 = measure_par(2, txns);
    let par4 = measure_par(4, txns);

    for (label, run) in [("2 threads", &par2), ("4 threads", &par4)] {
        assert_eq!(
            serial.m.cycles, run.m.cycles,
            "epoch-parallel ({label}) must be cycle-exact"
        );
        assert_eq!(
            serial.m.committed, run.m.committed,
            "epoch-parallel ({label}) must commit identically"
        );
        assert_eq!(
            serial.report_json, run.report_json,
            "epoch-parallel ({label}) report JSON must be byte-identical"
        );
    }
    println!("report JSON byte-identical across 1/2/4 sim threads");

    for (label, run) in [("serial", &serial), ("par2", &par2), ("par4", &par4)] {
        println!(
            "{label:>6}: {:>12.0} cycles/s  ({} cycles, {} ticks, {:.3}s)",
            run.m.cycles_per_sec(),
            run.m.cycles,
            run.m.ticks,
            run.m.wall_secs
        );
        // Per-lane load balance: component ticks actually executed vs
        // cycles fast-forwarded over, per worker lane (epoch runs only —
        // the serial schedule does not maintain lane counters).
        for (w, &(ticks, skipped)) in run.lanes.iter().enumerate() {
            if ticks > 0 || skipped > 0 {
                println!("        lane {w}: {ticks} ticks, {skipped} skipped");
            }
        }
    }
    let speedup2 = serial.m.wall_secs / par2.m.wall_secs;
    let speedup4 = serial.m.wall_secs / par4.m.wall_secs;
    println!("speedup: {speedup2:.2}x at 2 threads, {speedup4:.2}x at 4 threads (host has {host_cpus} CPU(s))");

    let json = format!(
        concat!(
            "{{\n",
            "  \"workload\": \"ycsb read-homed 50% remote, interleaved exec, 4 workers x 1 chip (75-cycle lookahead), {} txns/worker\",\n",
            "  \"host_cpus\": {},\n",
            "  \"simulated_cycles\": {},\n",
            "  \"committed\": {},\n",
            "  \"report_bytes_identical\": true,\n",
            "  \"serial\": {{ \"wall_secs\": {:.6}, \"cycles_per_sec\": {:.0} }},\n",
            "  \"par2\": {{ \"wall_secs\": {:.6}, \"cycles_per_sec\": {:.0} }},\n",
            "  \"par4\": {{ \"wall_secs\": {:.6}, \"cycles_per_sec\": {:.0} }},\n",
            "  \"speedup_par2\": {:.3},\n",
            "  \"speedup_par4\": {:.3}\n",
            "}}\n"
        ),
        txns,
        host_cpus,
        serial.m.cycles,
        serial.m.committed,
        serial.m.wall_secs,
        serial.m.cycles_per_sec(),
        par2.m.wall_secs,
        par2.m.cycles_per_sec(),
        par4.m.wall_secs,
        par4.m.cycles_per_sec(),
        speedup2,
        speedup4
    );
    std::fs::write(out_path, json).expect("write results file");
    println!("wrote {out_path}");

    let mut jout = JsonOut::from_env("simperf-par");
    jout.value_row("host_cpus", host_cpus as f64);
    jout.value_row("simulated_cycles", serial.m.cycles as f64);
    jout.value_row("committed", serial.m.committed as f64);
    jout.value_row("serial_cycles_per_sec", serial.m.cycles_per_sec());
    jout.value_row("par2_cycles_per_sec", par2.m.cycles_per_sec());
    jout.value_row("par4_cycles_per_sec", par4.m.cycles_per_sec());
    jout.value_row("speedup_par4", speedup4);
    for (w, &(ticks, skipped)) in par4.lanes.iter().enumerate() {
        jout.value_row(&format!("par4_lane{w}_ticks"), ticks as f64);
        jout.value_row(&format!("par4_lane{w}_skipped"), skipped as f64);
    }
    jout.write();
}

fn main() {
    let args = BenchArgs::from_env();
    let quick = args.quick();
    let par = args.flag("--par");
    let out_path = args
        .value("--out")
        .unwrap_or(if par {
            "BENCH_parsim.json"
        } else {
            "BENCH_simperf.json"
        })
        .to_string();
    if par {
        run_par_study(quick, &out_path);
        return;
    }
    let txns = args.wave(400, 2_000);

    let strict = measure(false, txns);
    let fast = measure(true, txns);

    assert_eq!(
        strict.cycles, fast.cycles,
        "fast-forward must be cycle-exact"
    );
    assert_eq!(
        strict.committed, fast.committed,
        "fast-forward must commit identically"
    );

    let speedup = fast.cycles_per_sec() / strict.cycles_per_sec();
    println!(
        "strict: {:>12.0} cycles/s  ({} cycles, {} ticks, {:.3}s)",
        strict.cycles_per_sec(),
        strict.cycles,
        strict.ticks,
        strict.wall_secs
    );
    println!(
        "fast:   {:>12.0} cycles/s  ({} cycles, {} ticks, {:.3}s)",
        fast.cycles_per_sec(),
        fast.cycles,
        fast.ticks,
        fast.wall_secs
    );
    println!("speedup: {speedup:.2}x");

    let json = format!(
        concat!(
            "{{\n",
            "  \"workload\": \"ycsb-c read-local, serial exec, 1 worker, max_inflight=1, {} txns/worker\",\n",
            "  \"simulated_cycles\": {},\n",
            "  \"committed\": {},\n",
            "  \"strict\": {{ \"wall_secs\": {:.6}, \"cycles_per_sec\": {:.0} }},\n",
            "  \"fast\": {{ \"wall_secs\": {:.6}, \"cycles_per_sec\": {:.0} }},\n",
            "  \"speedup\": {:.3}\n",
            "}}\n"
        ),
        txns,
        strict.cycles,
        strict.committed,
        strict.wall_secs,
        strict.cycles_per_sec(),
        fast.wall_secs,
        fast.cycles_per_sec(),
        speedup
    );
    std::fs::write(&out_path, json).expect("write results file");
    println!("wrote {out_path}");

    // Shared `--json` dump (same flag as every other bench bin).
    let mut jout = JsonOut::from_env("simperf");
    jout.value_row("simulated_cycles", strict.cycles as f64);
    jout.value_row("committed", strict.committed as f64);
    jout.value_row("strict_cycles_per_sec", strict.cycles_per_sec());
    jout.value_row("fast_cycles_per_sec", fast.cycles_per_sec());
    jout.value_row("speedup", speedup);
    jout.write();
}
