//! Simulator performance: simulated cycles per wall-clock second, strict
//! single-cycle stepping vs the fast-forward scheduler.
//!
//! The workload is deliberately stall-heavy — single-worker YCSB-C point reads under
//! *serial* execution with the coprocessor's in-flight bound at 1, so the
//! softcore idles through every DB round trip instead of interleaving over
//! it — which is exactly the span the fast-forward scheduler elides.
//! Results (and the speedup) are written to `BENCH_simperf.json` for the
//! repo record.
//!
//! Usage: `simperf [--quick] [--out PATH]`

use std::time::Instant;

use bionicdb::{BionicConfig, ExecMode};
use bionicdb_bench::json::JsonOut;
use bionicdb_bench::rng;
use bionicdb_workloads::ycsb::{BlockPool, YcsbBionic, YcsbKind};
use bionicdb_workloads::YcsbSpec;

struct Measurement {
    cycles: u64,
    ticks: u64,
    wall_secs: f64,
    committed: u64,
}

impl Measurement {
    fn cycles_per_sec(&self) -> f64 {
        self.cycles as f64 / self.wall_secs
    }
}

/// Run one strict or fast YCSB-C wave and time it.
fn measure(fast: bool, txns_per_worker: usize) -> Measurement {
    let cfg = BionicConfig {
        workers: 1,
        mode: ExecMode::Serial,
        ..BionicConfig::default()
    };
    let spec = YcsbSpec {
        records_per_partition: 20_000,
        ..YcsbSpec::default()
    };
    let mut y = YcsbBionic::build(cfg, spec, 4);
    y.machine.set_fast_forward(fast);
    y.machine.set_max_inflight(1);
    let workers = y.machine.num_workers();
    let size = y.block_size(YcsbKind::ReadLocal);
    let mut pools: Vec<BlockPool> = (0..workers)
        .map(|w| BlockPool::new(&mut y.machine, w, txns_per_worker, size))
        .collect();
    let mut r = rng(0x51F0);
    for (w, pool) in pools.iter_mut().enumerate() {
        for _ in 0..txns_per_worker {
            let blk = pool.take();
            y.submit_txn(w, blk, YcsbKind::ReadLocal, &mut r);
        }
    }
    let c0 = y.machine.now();
    let t0 = Instant::now();
    y.machine.run_to_quiescence();
    let wall_secs = t0.elapsed().as_secs_f64();
    Measurement {
        cycles: y.machine.now() - c0,
        ticks: y.machine.ticks_executed(),
        wall_secs,
        committed: y.machine.stats().committed,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let out_path = std::env::args()
        .skip_while(|a| a != "--out")
        .nth(1)
        .unwrap_or_else(|| "BENCH_simperf.json".into());
    let txns = if quick { 400 } else { 2_000 };

    let strict = measure(false, txns);
    let fast = measure(true, txns);

    assert_eq!(
        strict.cycles, fast.cycles,
        "fast-forward must be cycle-exact"
    );
    assert_eq!(
        strict.committed, fast.committed,
        "fast-forward must commit identically"
    );

    let speedup = fast.cycles_per_sec() / strict.cycles_per_sec();
    println!(
        "strict: {:>12.0} cycles/s  ({} cycles, {} ticks, {:.3}s)",
        strict.cycles_per_sec(),
        strict.cycles,
        strict.ticks,
        strict.wall_secs
    );
    println!(
        "fast:   {:>12.0} cycles/s  ({} cycles, {} ticks, {:.3}s)",
        fast.cycles_per_sec(),
        fast.cycles,
        fast.ticks,
        fast.wall_secs
    );
    println!("speedup: {speedup:.2}x");

    let json = format!(
        concat!(
            "{{\n",
            "  \"workload\": \"ycsb-c read-local, serial exec, 1 worker, max_inflight=1, {} txns/worker\",\n",
            "  \"simulated_cycles\": {},\n",
            "  \"committed\": {},\n",
            "  \"strict\": {{ \"wall_secs\": {:.6}, \"cycles_per_sec\": {:.0} }},\n",
            "  \"fast\": {{ \"wall_secs\": {:.6}, \"cycles_per_sec\": {:.0} }},\n",
            "  \"speedup\": {:.3}\n",
            "}}\n"
        ),
        txns,
        strict.cycles,
        strict.committed,
        strict.wall_secs,
        strict.cycles_per_sec(),
        fast.wall_secs,
        fast.cycles_per_sec(),
        speedup
    );
    std::fs::write(&out_path, json).expect("write results file");
    println!("wrote {out_path}");

    // Shared `--json` dump (same flag as every other bench bin).
    let mut jout = JsonOut::from_env("simperf");
    jout.value_row("simulated_cycles", strict.cycles as f64);
    jout.value_row("committed", strict.committed as f64);
    jout.value_row("strict_cycles_per_sec", strict.cycles_per_sec());
    jout.value_row("fast_cycles_per_sec", fast.cycles_per_sec());
    jout.value_row("speedup", speedup);
    jout.write();
}
