//! Table 4 + §5.8 — resource utilization and power (paper §5.8).

use bionicdb_bench::json::JsonOut;
use bionicdb_bench::print_table;
use bionicdb_fpga::FpgaConfig;
use bionicdb_power::{
    total, utilization, utilization_fraction, PowerModel, VIRTEX5_LX330, XEON_CHIPS,
    XEON_E7_4807_TDP_W,
};

fn main() {
    let _ = bionicdb_bench::BenchArgs::from_env(&bionicdb_bench::ArgSpec::shared(
        "table4_resources",
    ));
    let cfg = FpgaConfig::default();
    let workers = 4;
    let rows_data = utilization(workers, &cfg);
    let mut rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.module.clone(),
                r.res.ff.to_string(),
                r.res.lut.to_string(),
                r.res.bram.to_string(),
            ]
        })
        .collect();
    let t = total(&rows_data);
    rows.push(vec![
        "Total used".into(),
        t.ff.to_string(),
        t.lut.to_string(),
        t.bram.to_string(),
    ]);
    rows.push(vec![
        "Virtex5 LX330".into(),
        VIRTEX5_LX330.ff.to_string(),
        VIRTEX5_LX330.lut.to_string(),
        VIRTEX5_LX330.bram.to_string(),
    ]);
    let (ff, lut, bram) = utilization_fraction(&rows_data);
    rows.push(vec![
        "Utilization".into(),
        format!("{:.0}%", ff * 100.0),
        format!("{:.0}%", lut * 100.0),
        format!("{:.0}%", bram * 100.0),
    ]);
    print_table(
        &format!("Table 4: resource utilization ({workers} workers)"),
        &["Module", "Flip-flops", "LUTs", "BRAMs"],
        &rows,
    );

    let model = PowerModel::default();
    let watts = model.estimate(&rows_data, cfg.clock_hz);
    println!("\nPower estimate (XPE-like model): {watts:.1} W (paper: ~11.5 W)");
    println!(
        "Xeon E7-4807 baseline: {} chips x {:.0} W TDP = {:.0} W",
        XEON_CHIPS,
        XEON_E7_4807_TDP_W,
        XEON_CHIPS as f64 * XEON_E7_4807_TDP_W
    );
    println!("Power saving: {:.1}x", model.xeon_ratio(watts));

    // What-if scaling the paper's §7 sketches: a datacenter-grade chip.
    let rows16 = utilization(16, &cfg);
    let w16 = model.estimate(&rows16, cfg.clock_hz);
    println!(
        "\nWhat-if 16 workers (datacenter-grade chip): {w16:.1} W, saving {:.1}x",
        model.xeon_ratio(w16)
    );

    let mut json = JsonOut::from_env("table4_resources");
    json.value_row("total_ff", t.ff as f64);
    json.value_row("total_lut", t.lut as f64);
    json.value_row("total_bram", t.bram as f64);
    json.value_row("utilization_ff", ff);
    json.value_row("utilization_lut", lut);
    json.value_row("utilization_bram", bram);
    json.value_row("power_watts", watts);
    json.value_row("power_saving_x", model.xeon_ratio(watts));
    json.value_row("power_watts_16w", w16);
    json.write();
}
