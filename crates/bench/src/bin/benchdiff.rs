//! Regression gate over the append-only benchmark history.
//!
//! Reads `results/bench_history.jsonl` (or `--history PATH`), compares the
//! newest entry per bench key against that key's recorded baseline (its
//! oldest entry — the first full `simperf` run bootstraps the baseline)
//! and exits non-zero when any key's cycles/sec fell more than the
//! tolerance (default 10%, `--tolerance 0.10`) below baseline. A fresh
//! single-run history always passes; a missing or empty history is a
//! configuration error, not a pass.
//!
//! Usage: `benchdiff [--history PATH] [--tolerance F]`

use bionicdb_bench::history;
use bionicdb_bench::BenchArgs;

fn main() {
    let args = BenchArgs::from_env();
    let path = args
        .value("--history")
        .unwrap_or(history::DEFAULT_PATH)
        .to_string();
    let tolerance: f64 = args.parsed("--tolerance", history::DEFAULT_TOLERANCE);

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("benchdiff: cannot read {path}: {e}");
            eprintln!("benchdiff: run `simperf --par` (full, not --quick) to record a baseline");
            std::process::exit(2);
        }
    };
    let entries = history::parse(&text);
    if entries.is_empty() {
        eprintln!("benchdiff: no parseable entries in {path}");
        std::process::exit(2);
    }

    let verdicts = history::check(&entries, tolerance);
    println!(
        "{:>16} {:>16} {:>16} {:>8}  verdict",
        "bench", "baseline c/s", "latest c/s", "ratio"
    );
    let mut failed = false;
    for v in &verdicts {
        println!(
            "{:>16} {:>16.0} {:>16.0} {:>7.2}x  {}",
            v.bench,
            v.baseline,
            v.latest,
            v.ratio,
            if v.regressed { "REGRESSED" } else { "ok" }
        );
        failed |= v.regressed;
    }
    if failed {
        eprintln!(
            "benchdiff: regression beyond {:.0}% tolerance in {path}",
            tolerance * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "benchdiff: {} bench key(s) within {:.0}% of baseline",
        verdicts.len(),
        tolerance * 100.0
    );
}
