//! Regression gate over the append-only benchmark history.
//!
//! Reads `results/bench_history.jsonl` (or `--history PATH`), compares the
//! newest entry per bench key against that key's recorded baseline (its
//! oldest entry — the first full `simperf` run bootstraps the baseline)
//! and exits non-zero when any key's cycles/sec fell more than the
//! tolerance (default 10%, `--tolerance 0.10`) below baseline. A fresh
//! single-run history always passes; a missing or empty history is a
//! configuration error, not a pass.
//!
//! Usage: `benchdiff [--history PATH] [--tolerance F]`

use bionicdb_bench::history;
use bionicdb_bench::{ArgSpec, BenchArgs};

const SPEC: ArgSpec = ArgSpec {
    bin: "benchdiff",
    flags: &[],
    options: &["--history", "--tolerance"],
};

fn main() {
    let args = BenchArgs::from_env(&SPEC);
    let path = args
        .value("--history")
        .unwrap_or(history::DEFAULT_PATH)
        .to_string();
    let tolerance: f64 = args.parsed("--tolerance", history::DEFAULT_TOLERANCE);

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("benchdiff: cannot read {path}: {e}");
            eprintln!("benchdiff: run `simperf --par` (full, not --quick) to record a baseline");
            std::process::exit(2);
        }
    };
    let parsed = history::parse_salvage(&text);
    if let Some(tail) = &parsed.torn_tail {
        eprintln!(
            "benchdiff: warning: {path} ends in a torn append, skipping trailing line {tail:?}"
        );
    }
    let entries = parsed.entries;
    if entries.is_empty() {
        eprintln!("benchdiff: no parseable entries in {path}");
        std::process::exit(2);
    }

    let verdicts = history::check(&entries, tolerance);
    println!(
        "{:>20} {:>14} {:>14} {:>8} {:>12} {:>12}  verdict",
        "bench", "baseline c/s", "latest c/s", "ratio", "base p99", "latest p99"
    );
    let mut failed = false;
    for v in &verdicts {
        let p99 = |x: Option<f64>| x.map_or("-".to_string(), |p| format!("{p:.0}ns"));
        println!(
            "{:>20} {:>14.0} {:>14.0} {:>7.2}x {:>12} {:>12}  {}",
            v.bench,
            v.baseline,
            v.latest,
            v.ratio,
            p99(v.baseline_p99),
            p99(v.latest_p99),
            match (v.regressed, v.p99_regressed) {
                (true, _) => "REGRESSED",
                (false, true) => "P99-REGRESSED",
                (false, false) => "ok",
            }
        );
        failed |= v.regressed || v.p99_regressed;
    }
    if failed {
        eprintln!(
            "benchdiff: regression beyond {:.0}% tolerance in {path}",
            tolerance * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "benchdiff: {} bench key(s) within {:.0}% of baseline",
        verdicts.len(),
        tolerance * 100.0
    );
}
