//! Ablations of the design choices DESIGN.md calls out (beyond the paper's
//! own figures):
//!
//! 1. **Scanner count** — the paper's fix for Fig. 11c's single-scanner
//!    bottleneck ("redundant scanners could distribute heavy scan loads").
//! 2. **Traverse stages** — paper §4.4.1: "if hash conflict is frequent,
//!    multiple Traverse stages could be populated"; demonstrated on a
//!    deliberately undersized bucket array.
//! 3. **Interconnect topology** — crossbar (paper) vs the ring suggested
//!    for scaling (§4.6), at growing worker counts.
//! 4. **Interleaving batch size** — conflict-window vs overlap trade-off
//!    on the TPC-C Payment warehouse hotspot.
//! 5. **Hazard prevention** — lock-table stalls are the price of
//!    correctness on insert-heavy load (paper Fig. 6).

use bionicdb::{BionicConfig, ExecMode, Topology};
use bionicdb_bench::json::{render_machine_row, JsonOut};
use bionicdb_bench::*;
use bionicdb_workloads::tpcc::TpccBionic;
use bionicdb_workloads::ycsb::{YcsbBionic, YcsbKind};
use bionicdb_workloads::YcsbSpec;

fn main() {
    let args = BenchArgs::from_env(&ArgSpec::shared("ablations"));
    let wave = args.wave(60, 200);
    let mut json = JsonOut::from_env("ablations");

    // 1. Scanner count vs scan throughput. Every ablation point builds its
    // own machine, so each sweep fans out over par_map.
    let rows = par_map(vec![1usize, 2, 3, 5, 8], |scanners| {
        let mut cfg = BionicConfig::default();
        cfg.fpga.skiplist_scanners = scanners;
        let mut y = YcsbBionic::build(cfg, bench_ycsb_spec(), 60);
        let t = bionic_ycsb_tput(&mut y, YcsbKind::Scan, wave);
        let row = render_machine_row(&format!("scanners_{scanners}"), Some(t), &y.machine);
        ((format!("{scanners} scanner(s)"), t.per_sec / 1e3), row)
    });
    let (rows, json_rows): (Vec<_>, Vec<_>) = rows.into_iter().unzip();
    json_rows.into_iter().for_each(|r| json.push_raw(r));
    print_series(
        "Ablation 1: scan throughput vs scanner count",
        "config",
        "kTps",
        &rows,
    );

    // 2. Traverse stages on a chain-heavy hash table (buckets = records/8).
    let rows = par_map(vec![1usize, 2, 4], |stages| {
        let mut cfg = BionicConfig::default();
        cfg.fpga.hash_traverse_stages = stages;
        let spec = YcsbSpec {
            hash_buckets: Some(bench_ycsb_spec().records_per_partition / 8),
            ..bench_ycsb_spec()
        };
        let mut y = YcsbBionic::build(cfg, spec, 60);
        let t = bionic_ycsb_tput(&mut y, YcsbKind::ReadLocal, wave);
        let row = render_machine_row(&format!("traverse_{stages}"), Some(t), &y.machine);
        ((format!("{stages} traverse stage(s)"), t.per_sec / 1e3), row)
    });
    let (rows, json_rows): (Vec<_>, Vec<_>) = rows.into_iter().unzip();
    json_rows.into_iter().for_each(|r| json.push_raw(r));
    print_series(
        "Ablation 2: YCSB-C on long chains vs Traverse stages",
        "config",
        "kTps",
        &rows,
    );

    // 3. Topology at scale (multisite reads, 75% remote). The throughputs
    // barely differ because even an 8-hop ring trip (24 cycles) is small
    // next to an index probe; the mean message latency column shows the
    // structural cost the paper worries about for much larger meshes.
    let points: Vec<(usize, Topology)> = [4usize, 8, 16]
        .iter()
        .flat_map(|&w| [(w, Topology::Crossbar), (w, Topology::Ring)])
        .collect();
    let rows = par_map(points, |(workers, topo)| {
        let cfg = BionicConfig {
            workers,
            topology: topo,
            dram_bytes: (workers as u64 + 1) * (200 << 20),
            ..BionicConfig::default()
        };
        let mut y = YcsbBionic::build(cfg, bench_ycsb_spec(), 60);
        let t = bionic_ycsb_tput(&mut y, YcsbKind::ReadHomed, wave / 2);
        let n = y.machine.noc().stats();
        let row = render_machine_row(&format!("topo_{workers}w_{topo:?}"), Some(t), &y.machine);
        (
            (
                format!("{workers}w {topo:?} (lat {:.1}cy)", n.mean_latency()),
                t.per_sec / 1e3,
            ),
            row,
        )
    });
    let (rows, json_rows): (Vec<_>, Vec<_>) = rows.into_iter().unzip();
    json_rows.into_iter().for_each(|r| json.push_raw(r));
    print_series(
        "Ablation 3: multisite throughput vs topology",
        "config",
        "kTps",
        &rows,
    );

    // 4. TPC-C mixed throughput vs interleaving batch size.
    let rows = par_map(vec![1usize, 2, 4, 8, 16], |max_batch| {
        let cfg = BionicConfig {
            workers: 4,
            mode: ExecMode::Interleaved,
            max_batch,
            ..BionicConfig::default()
        };
        let mut sys = TpccBionic::build(cfg, bench_tpcc_spec());
        let t = bionic_tpcc_tput(&mut sys, TpccMix::Mixed, wave / 2);
        let row = render_machine_row(&format!("batch_{max_batch}"), Some(t), &sys.machine);
        ((format!("batch {max_batch}"), t.per_sec / 1e3), row)
    });
    let (rows, json_rows): (Vec<_>, Vec<_>) = rows.into_iter().unzip();
    json_rows.into_iter().for_each(|r| json.push_raw(r));
    print_series(
        "Ablation 4: TPC-C mix vs interleaving batch size (hotspot conflicts)",
        "config",
        "kTps",
        &rows,
    );

    // 6. Contention skew: Zipfian update transactions stress the
    // dirty-reject CC — hot keys collide across an interleaving batch, and
    // the retry cost grows with skew (a dimension the paper's uniform-key
    // YCSB never touches).
    let rows = par_map(vec![0.0f64, 0.5, 0.9, 0.99], |theta| {
        let mut y = build_ycsb(4, ExecMode::Interleaved);
        let zipf = (theta > 0.0)
            .then(|| bionicdb_workloads::Zipf::new(y.spec.records_per_partition, theta));
        let mut rng = bionicdb_bench::rng(0x55EE);
        let size = y.block_size(YcsbKind::UpdateLocal);
        let per_worker = wave / 2;
        let mut blocks = Vec::new();
        let c0 = y.machine.now();
        for w in 0..4 {
            for _ in 0..per_worker {
                let blk = y.machine.alloc_block(w, size);
                match &zipf {
                    Some(z) => y.submit_update_skewed(w, blk, z, &mut rng),
                    None => y.submit_txn(w, blk, YcsbKind::UpdateLocal, &mut rng),
                }
                blocks.push((w, blk));
            }
        }
        y.machine.run_to_quiescence();
        let out = y.machine.retry_to_completion(
            &blocks,
            bionicdb::RetryBudget {
                max_attempts: 1000,
                backoff_cycles: 0,
            },
            1 << 33,
        );
        assert!(out.all_committed(), "skewed updates failed to converge");
        let cycles = y.machine.now() - c0;
        let aborted = y.machine.stats().aborted;
        let tput = blocks.len() as f64 * y.machine.config().fpga.clock_hz as f64 / cycles as f64;
        let label = if theta == 0.0 {
            format!("uniform ({} aborts)", aborted)
        } else {
            format!("zipf {theta} ({} aborts)", aborted)
        };
        let row = render_machine_row(
            &format!("skew_{theta}"),
            Some(Tput {
                committed: blocks.len() as u64,
                aborted,
                per_sec: tput,
            }),
            &y.machine,
        );
        ((label, tput / 1e3), row)
    });
    let (rows, json_rows): (Vec<_>, Vec<_>) = rows.into_iter().unzip();
    json_rows.into_iter().for_each(|r| json.push_raw(r));
    print_series(
        "Ablation 6: update-txn throughput vs key skew (with retries)",
        "distribution",
        "kTps",
        &rows,
    );

    // 5. Hazard prevention cost on bulk inserts (lock-table stalls): a
    // small bucket array makes concurrent inserts collide, so the Hash
    // stage must stall on the lock table (paper Fig. 6b).
    let rows = par_map(vec![true, false], |hazard| {
        let cfg = BionicConfig {
            hazard_prevention: hazard,
            ..BionicConfig::default()
        };
        let spec = YcsbSpec {
            hash_buckets: Some(512),
            ..bench_ycsb_spec()
        };
        let mut y = YcsbBionic::build(cfg, spec, 60);
        let t = bionic_kv_random_insert_tput(&mut y, wave / 4);
        let stalls: u64 = (0..4)
            .map(|w| y.machine.worker(w).coproc.hash_stats().lock_stalls)
            .sum();
        let row = render_machine_row(
            &format!("hazard_{}", if hazard { "on" } else { "off" }),
            Some(t),
            &y.machine,
        );
        (
            (
                format!(
                    "locks {} ({} stall cycles)",
                    if hazard { "on" } else { "OFF (unsafe)" },
                    stalls
                ),
                t.per_sec / 1e6,
            ),
            row,
        )
    });
    let (rows, json_rows): (Vec<_>, Vec<_>) = rows.into_iter().unzip();
    json_rows.into_iter().for_each(|r| json.push_raw(r));
    print_series(
        "Ablation 5: insert Mops with/without hazard prevention",
        "config",
        "Mops",
        &rows,
    );
    json.write();
}
