//! Fig. 11 — skiplist throughput vs. index parallelism, and scan
//! comparison against software indexes (paper §5.5).
//!
//! Paper shapes: (a) insert saturates around 8 in-flight requests — the
//! pipeline depth binds, because each level stage has multiple dependent
//! memory stalls; (b) point query is similar but faster (no tower
//! installation); (c) scans deteriorate — the single scanner module
//! serializes them; (d) the HW skiplist loses the scan comparison to the
//! software indexes on the Xeon (paper: 20% behind Masstree, 5× behind the
//! SW skiplist) until more scanners are provisioned — the `--scanners N`
//! ablation shows the fix the paper proposes.

use bionicdb::{BionicConfig, ExecMode};
use bionicdb_bench::json::{render_machine_row, JsonOut};
use bionicdb_bench::*;
use bionicdb_workloads::ycsb::{YcsbBionic, YcsbKind, YcsbSilo};

const INFLIGHT: [usize; 7] = [1, 4, 8, 12, 16, 20, 24];

fn build(scanners: usize) -> YcsbBionic {
    let mut cfg = BionicConfig {
        workers: 4,
        mode: ExecMode::Interleaved,
        ..Default::default()
    };
    cfg.fpga.skiplist_scanners = scanners;
    YcsbBionic::build(cfg, bench_ycsb_spec(), 60)
}

fn main() {
    let args = BenchArgs::from_env(&ArgSpec {
        bin: "fig11_skiplist",
        flags: &[],
        options: &["--scanners"],
    });
    let wave = args.wave(40, 150);
    let scanners: usize = args.parsed("--scanners", 1);
    let mut json = JsonOut::from_env("fig11_skiplist");

    // (a) sequential loading (bulk inserts), operation throughput. Points
    // are independent machines — fan the sweep out over par_map.
    let rows = par_map(INFLIGHT.to_vec(), |n| {
        let mut y = build(scanners);
        y.machine.set_max_inflight(n);
        let t = bionic_kv_skip_tput(&mut y, true, wave / 4);
        let row = render_machine_row(&format!("skip_insert_{n}if"), Some(t), &y.machine);
        ((n.to_string(), t.per_sec / 1e3), row)
    });
    let (rows, json_rows): (Vec<_>, Vec<_>) = rows.into_iter().unzip();
    json_rows.into_iter().for_each(|r| json.push_raw(r));
    print_series(
        "Fig 11a: skiplist insert (kOps)",
        "in-flight",
        "kOps",
        &rows,
    );

    // (b) point query.
    let rows = par_map(INFLIGHT.to_vec(), |n| {
        let mut y = build(scanners);
        y.machine.set_max_inflight(n);
        let t = bionic_kv_skip_tput(&mut y, false, wave / 4);
        let row = render_machine_row(&format!("skip_query_{n}if"), Some(t), &y.machine);
        ((n.to_string(), t.per_sec / 1e3), row)
    });
    let (rows, json_rows): (Vec<_>, Vec<_>) = rows.into_iter().unzip();
    json_rows.into_iter().for_each(|r| json.push_raw(r));
    print_series(
        "Fig 11b: skiplist point query (kOps)",
        "in-flight",
        "kOps",
        &rows,
    );

    // (c) scan-only YCSB-E (range 50).
    let rows = par_map(INFLIGHT.to_vec(), |n| {
        let mut y = build(scanners);
        y.machine.set_max_inflight(n);
        let t = bionic_ycsb_tput(&mut y, YcsbKind::Scan, wave);
        let row = render_machine_row(&format!("skip_scan_{n}if"), Some(t), &y.machine);
        ((n.to_string(), t.per_sec / 1e3), row)
    });
    let (rows, json_rows): (Vec<_>, Vec<_>) = rows.into_iter().unzip();
    json_rows.into_iter().for_each(|r| json.push_raw(r));
    print_series(
        &format!("Fig 11c: YCSB-E scan-only, {scanners} scanner(s)"),
        "in-flight",
        "kTps",
        &rows,
    );

    // (d) scan comparison vs software indexes (4 workers / 4 cores).
    let mut rows = Vec::new();
    let mut y = build(scanners);
    let t = bionic_ycsb_tput(&mut y, YcsbKind::Scan, wave);
    rows.push((format!("BionicDB ({scanners} scanner)"), t.per_sec / 1e3));
    json.machine_row(&format!("scan_bionic_{scanners}sc"), Some(t), &y.machine);
    let silo = YcsbSilo::build(bench_ycsb_spec(), 4);
    let txns = args.wave(300, 1_000);
    let masstree = silo_scan_model_tput(&silo, silo.masstree, txns, 4);
    let sw_skip = silo_scan_model_tput(&silo, silo.skiplist, txns, 4);
    rows.push(("Masstree".into(), masstree / 1e3));
    rows.push(("SW skiplist".into(), sw_skip / 1e3));
    json.value_row("scan_masstree_per_sec", masstree);
    json.value_row("scan_sw_skiplist_per_sec", sw_skip);
    print_series(
        "Fig 11d: scan comparison (kTps, 4 workers)",
        "index",
        "kTps",
        &rows,
    );
    json.write();
}
