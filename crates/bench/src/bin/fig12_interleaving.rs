//! Fig. 12 — transaction interleaving vs. serial execution (paper §5.6).
//!
//! (a) YCSB-C with a varying transaction footprint (1–64 DB accesses):
//! interleaving shines for small transactions (the paper reports 3× for
//! single-access transactions) and converges toward serial as
//! intra-transaction parallelism grows.
//!
//! (b) TPC-C NewOrder and Payment: no noticeable difference — heavy data
//! dependency (NewOrder's o_id) and tiny index footprints (Payment)
//! eliminate the interleaving opportunity.

use bionicdb::{BionicConfig, ExecMode};
use bionicdb_bench::json::{render_machine_row, JsonOut};
use bionicdb_bench::*;
use bionicdb_workloads::ycsb::{YcsbBionic, YcsbKind};
use bionicdb_workloads::YcsbSpec;

fn build_with_footprint(ops: usize, mode: ExecMode) -> YcsbBionic {
    let cfg = BionicConfig {
        workers: 4,
        mode,
        ..BionicConfig::default()
    };
    let spec = YcsbSpec {
        ops_per_txn: ops,
        ..bench_ycsb_spec()
    };
    YcsbBionic::build(cfg, spec, 60)
}

fn main() {
    let args = BenchArgs::from_env(&ArgSpec::shared("fig12_interleaving"));
    let wave = args.wave(150, 400);
    let mut json = JsonOut::from_env("fig12_interleaving");

    // (a) YCSB-C footprint sweep (each point two independent machines;
    // the sweep fans out over par_map).
    let rows = par_map(vec![1usize, 16, 32, 48, 64], |ops| {
        let w = (wave * 16 / ops).max(40);
        let mut inter = build_with_footprint(ops, ExecMode::Interleaved);
        let ti = bionic_ycsb_tput(&mut inter, YcsbKind::ReadLocal, w);
        let ri = render_machine_row(&format!("ycsb_inter_{ops}ops"), Some(ti), &inter.machine);
        let mut serial = build_with_footprint(ops, ExecMode::Serial);
        let ts = bionic_ycsb_tput(&mut serial, YcsbKind::ReadLocal, w);
        let rs = render_machine_row(&format!("ycsb_serial_{ops}ops"), Some(ts), &serial.machine);
        (
            vec![
                ops.to_string(),
                format!("{:.1}", ti.per_sec / 1e3),
                format!("{:.1}", ts.per_sec / 1e3),
                format!("{:.2}x", ti.per_sec / ts.per_sec),
            ],
            [ri, rs],
        )
    });
    let (rows, json_rows): (Vec<_>, Vec<_>) = rows.into_iter().unzip();
    for pair in json_rows {
        for r in pair {
            json.push_raw(r);
        }
    }
    print_table(
        "Fig 12a: YCSB-C, interleaving vs serial (kTps)",
        &["DB accesses", "interleaving", "serial", "speedup"],
        &rows,
    );

    // (b) TPC-C NewOrder / Payment (all-local, as in §5.6: "all
    // transactions were local").
    let mut rows = Vec::new();
    for (mix, name) in [
        (TpccMix::NewOrderOnly, "NewOrder"),
        (TpccMix::PaymentOnly, "Payment"),
    ] {
        let mut inter = build_tpcc_local(4, ExecMode::Interleaved);
        let ti = bionic_tpcc_tput(&mut inter, mix, wave / 2);
        json.machine_row(&format!("tpcc_{name}_inter"), Some(ti), &inter.machine);
        let mut serial = build_tpcc_local(4, ExecMode::Serial);
        let ts = bionic_tpcc_tput(&mut serial, mix, wave / 2);
        json.machine_row(&format!("tpcc_{name}_serial"), Some(ts), &serial.machine);
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", ti.per_sec / 1e3),
            format!("{:.1}", ts.per_sec / 1e3),
            format!("{:.2}x", ti.per_sec / ts.per_sec),
        ]);
    }
    print_table(
        "Fig 12b: TPC-C, interleaving vs serial (kTps)",
        &["transaction", "interleaving", "serial", "speedup"],
        &rows,
    );
    json.write();
}
