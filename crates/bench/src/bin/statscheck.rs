//! Stats smoke test (wired into `scripts/check.sh`).
//!
//! Runs a fixed-seed YCSB wave and checks the observability layer
//! end-to-end:
//!
//! 1. **Determinism** — two identical runs produce byte-identical report
//!    JSON and byte-identical Chrome trace JSON.
//! 2. **Bit-inertness** — a run with the trace sink installed produces the
//!    same report as a run without one (the sink only buffers host-side
//!    events; nothing in the machine reads it).
//! 3. **Schema** — the `--json` document and the trace export both pass
//!    the hand-rolled JSON validator, and the report carries the required
//!    keys (latency percentiles, abort reasons, link/port counters).
//!
//! With `--json <path>` the document is also written to disk, read back,
//! and re-validated — exercising the exact code path every bench bin uses.
//! Exits nonzero on the first violation.

use bionicdb::ExecMode;
use bionicdb_bench::json::{render_machine_row, validate, JsonOut};
use bionicdb_bench::{bionic_ycsb_tput, build_ycsb, ArgSpec, BenchArgs};
use bionicdb_fpga::ChromeTraceSink;
use bionicdb_workloads::ycsb::YcsbKind;

/// One fixed-seed YCSB run; returns the rendered report row and, when a
/// sink is installed, the Chrome trace export.
fn run_once(traced: bool) -> (String, Option<String>) {
    let mut y = build_ycsb(2, ExecMode::Interleaved);
    if traced {
        y.machine.set_trace_sink(Box::new(ChromeTraceSink::new()));
    }
    let t = bionic_ycsb_tput(&mut y, YcsbKind::ReadLocal, 40);
    let row = render_machine_row("ycsb_smoke", Some(t), &y.machine);
    (row, y.machine.trace_json())
}

fn fail(msg: &str) -> ! {
    eprintln!("statscheck: FAIL: {msg}");
    std::process::exit(1);
}

fn main() {
    let args = BenchArgs::from_env(&ArgSpec::shared("statscheck"));

    // 1. Determinism: identical fixed-seed runs → byte-identical dumps.
    let (row_a, trace_a) = run_once(true);
    let (row_b, trace_b) = run_once(true);
    if row_a != row_b {
        fail("two identical runs produced different report JSON");
    }
    let trace_a = trace_a.unwrap_or_else(|| fail("trace sink produced no export"));
    let trace_b = trace_b.unwrap_or_else(|| fail("trace sink produced no export"));
    if trace_a != trace_b {
        fail("two identical runs produced different trace JSON");
    }
    println!("statscheck: determinism OK (report {} B, trace {} B)", row_a.len(), trace_a.len());

    // 2. Bit-inertness: the trace sink must not perturb the run.
    let (row_plain, trace_plain) = run_once(false);
    if trace_plain.is_some() {
        fail("NullSink produced a trace export");
    }
    if row_plain != row_a {
        fail("installing the trace sink changed the report (sink is not bit-inert)");
    }
    println!("statscheck: trace sink bit-inert OK");

    // 3. Schema: both documents are well-formed JSON with the keys the
    // downstream tooling reads.
    let mut json = JsonOut::from_env("statscheck");
    json.push_raw(row_a.clone());
    let active = json.active();
    let doc = json.render();
    if let Err(e) = validate(&doc) {
        fail(&format!("--json document is not valid JSON: {e}"));
    }
    if let Err(e) = validate(&trace_a) {
        fail(&format!("trace export is not valid JSON: {e}"));
    }
    for key in [
        "\"bin\"",
        "\"rows\"",
        "\"label\"",
        "\"per_sec\"",
        "\"report\"",
        "\"p50\"",
        "\"p95\"",
        "\"p99\"",
        "\"abort_reasons\"",
        "\"queue_wait\"",
        "\"txn_commit\"",
        "\"links\"",
        "\"ports\"",
        "\"stages\"",
    ] {
        if !doc.contains(key) {
            fail(&format!("--json document is missing required key {key}"));
        }
    }
    if !trace_a.contains("\"traceEvents\"") {
        fail("trace export is missing \"traceEvents\"");
    }
    println!("statscheck: schema OK");

    // 4. Round-trip through the file when --json was given.
    json.write();
    if active {
        let path = args.json_path().expect("--json path").to_string();
        let readback = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| fail(&format!("cannot read back {path}: {e}")));
        if readback != doc {
            fail("written --json file differs from the rendered document");
        }
        if let Err(e) = validate(&readback) {
            fail(&format!("written --json file is not valid JSON: {e}"));
        }
        println!("statscheck: file round-trip OK ({path})");
    }
    println!("statscheck: all checks passed");
}
