//! Gate for the batched-traversal subsystem (DESIGN.md §16), in three
//! parts:
//!
//! 1. **Mode-off bit-inertness** — with `batch_mode: Off` (the default)
//!    the batch knobs must be invisible: a machine configured with any
//!    `batch_width` produces a byte-identical `MachineReport` JSON to the
//!    stock configuration on the same workload. This is the structural
//!    guarantee the workload/serve/fleet goldens rely on.
//! 2. **Batched end-to-end smoke** — the same workload with
//!    `batch_mode: TxnLocal` must complete (softcore tagging → coprocessor
//!    diversion → batch engine → CP write-back) and surface the MLP
//!    histogram in the report.
//! 3. **Sweep golden** — the fixed-seed `--quick` sweep of the coproc-level
//!    harness must match `crates/bench/golden/batch_golden.json`
//!    byte-for-byte. Regenerate deliberately with `--capture` after an
//!    intended timing change.

use bionicdb::{BatchMode, BionicConfig, ExecMode, MachineReport};
use bionicdb_bench::batchbench::{sweep, to_json};
use bionicdb_bench::{bionic_ycsb_tput, ArgSpec, BenchArgs};
use bionicdb_workloads::ycsb::{YcsbBionic, YcsbKind};
use bionicdb_workloads::YcsbSpec;

const SPEC: ArgSpec = ArgSpec {
    bin: "batchcheck",
    flags: &["--capture"],
    options: &[],
};

const GOLDEN: &str = "crates/bench/golden/batch_golden.json";

/// Run a small fixed YCSB wave and return the machine report JSON.
fn ycsb_report(batch_mode: BatchMode, batch_width: usize) -> (u64, String) {
    let cfg = BionicConfig {
        workers: 2,
        mode: ExecMode::Interleaved,
        dram_bytes: 256 << 20,
        block_arena_bytes: 8 << 20,
        partition_bytes: 32 << 20,
        batch_mode,
        batch_width,
        ..BionicConfig::default()
    };
    let spec = YcsbSpec {
        records_per_partition: 2_048,
        payload_len: 64,
        ..YcsbSpec::default()
    };
    let mut y = YcsbBionic::build(cfg, spec, 60);
    let t = bionic_ycsb_tput(&mut y, YcsbKind::ReadHomed, 40);
    (t.committed, MachineReport::collect(&y.machine).to_json())
}

fn main() {
    let args = BenchArgs::from_env(&SPEC);

    // 1. Mode off is bit-inert, whatever the width knob says.
    let (c_stock, stock) = ycsb_report(BatchMode::Off, 8);
    let (_, wide) = ycsb_report(BatchMode::Off, 32);
    assert!(c_stock > 0, "the check workload commits work");
    assert_eq!(
        stock, wide,
        "batch_mode: Off must make batch_width invisible byte-for-byte"
    );
    assert!(
        !stock.contains("\"mlp\""),
        "mode-off reports carry no MLP histogram"
    );
    println!("mode-off inertness: OK ({} bytes of report, {c_stock} txns)", stock.len());

    // 2. Batching on completes the same workload end to end and surfaces
    // the MLP instrumentation. (Cycle counts legitimately differ — the
    // equivalence contract is results, not timing — so nothing else about
    // the two reports is compared.)
    let (c_batched, batched) = ycsb_report(BatchMode::TxnLocal, 8);
    assert!(c_batched > 0, "batched workload commits work");
    assert!(
        batched.contains("\"mlp\""),
        "batched reports carry the MLP histogram"
    );
    assert!(
        batched.contains("\"batch.hash\"") && batched.contains("\"batch.skip\""),
        "batched reports carry the engine stage rows"
    );
    println!("batched end-to-end: OK ({c_batched} txns committed)");

    // 3. The quick sweep matches the committed golden byte-for-byte.
    let got = to_json(&sweep(true), true);
    if args.flag("--capture") {
        std::fs::write(GOLDEN, &got).expect("write golden");
        println!("captured {GOLDEN} ({} bytes)", got.len());
        return;
    }
    let want = std::fs::read_to_string(GOLDEN)
        .unwrap_or_else(|e| panic!("read {GOLDEN}: {e}; run `batchcheck --capture` once"));
    if got != want {
        let diff = got
            .lines()
            .zip(want.lines())
            .enumerate()
            .find(|(_, (g, w))| g != w);
        if let Some((n, (g, w))) = diff {
            eprintln!("first differing line {}:\n  got:  {g}\n  want: {w}", n + 1);
        }
        panic!(
            "quick sweep diverged from {GOLDEN} ({} vs {} bytes). If the \
             timing change is intended, regenerate with `batchcheck --capture`.",
            got.len(),
            want.len()
        );
    }
    println!("sweep golden: OK ({} bytes)", got.len());
    println!("batchcheck passed.");
}
