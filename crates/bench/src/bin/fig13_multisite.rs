//! Fig. 13 — single-site vs. multisite transactions (paper §5.7).
//!
//! Cross-partition YCSB-C with uniform random keys: 75% of the DB accesses
//! in the multisite variant are remote. The paper's finding: on-chip
//! message passing makes the multisite throughput almost identical to the
//! ideal all-local case. Both variants here use the same stored procedure
//! (per-access home read from the transaction block) so the comparison
//! isolates communication, and the crossbar/ring ablation shows the
//! future-work topology's cost.

use bionicdb::{BionicConfig, ExecMode, Topology};
use bionicdb_bench::json::JsonOut;
use bionicdb_bench::*;
use bionicdb_workloads::ycsb::{YcsbBionic, YcsbKind};
use bionicdb_workloads::YcsbSpec;

fn build(remote_fraction: f64, topology: Topology) -> YcsbBionic {
    let cfg = BionicConfig {
        workers: 4,
        topology,
        mode: ExecMode::Interleaved,
        ..Default::default()
    };
    let spec = YcsbSpec {
        remote_fraction,
        ..bench_ycsb_spec()
    };
    YcsbBionic::build(cfg, spec, 60)
}

fn main() {
    let args = BenchArgs::from_env(&ArgSpec::shared("fig13_multisite"));
    let wave = args.wave(150, 400);
    let mut json = JsonOut::from_env("fig13_multisite");

    let mut rows = Vec::new();
    let mut single = build(0.0, Topology::Crossbar);
    let ts = bionic_ycsb_tput(&mut single, YcsbKind::ReadHomed, wave);
    rows.push(("Singlesite (100% local)".to_string(), ts.per_sec / 1e3));
    json.machine_row("singlesite", Some(ts), &single.machine);
    let mut multi = build(0.75, Topology::Crossbar);
    let tm = bionic_ycsb_tput(&mut multi, YcsbKind::ReadHomed, wave);
    rows.push(("Multisite (75% remote)".to_string(), tm.per_sec / 1e3));
    json.machine_row("multisite", Some(tm), &multi.machine);
    print_series(
        "Fig 13: single-site vs multisite YCSB-C (crossbar)",
        "variant",
        "kTps",
        &rows,
    );
    println!("multisite/singlesite = {:.3}", tm.per_sec / ts.per_sec);
    let noc = multi.machine.noc().stats();
    println!(
        "NoC: {} messages, mean latency {:.1} cycles",
        noc.sent,
        noc.mean_latency()
    );

    // Ablation: the ring topology the paper proposes for scaling (§4.6).
    let mut ring = build(0.75, Topology::Ring);
    let tr = bionic_ycsb_tput(&mut ring, YcsbKind::ReadHomed, wave);
    println!(
        "\nAblation — ring topology multisite: {:.1} kTps ({:.3} of crossbar)",
        tr.per_sec / 1e3,
        tr.per_sec / tm.per_sec
    );
    json.machine_row("multisite_ring", Some(tr), &ring.machine);
    json.write();
}
