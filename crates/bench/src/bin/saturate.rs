//! Saturation sweep: offered load vs goodput across the five serving
//! workloads, baseline vs controlled.
//!
//! For each workload the bin probes the engine's mean service time under
//! the core model, derives the capacity of `--servers` workers, and
//! sweeps offered load as multiples of that capacity. Each sweep point
//! runs twice through the virtual-time engine: once as the *no-control
//! baseline* (unbounded FIFO, no deadline enforcement, naive immediate
//! retry) and once as the *controlled server* (bounded deadline-aware
//! queue, commit-point deadline aborts, budgeted backoff retry). The
//! output is the paper-style degradation curve: offered load, goodput,
//! sojourn p50/p95/p99, shed rate, timeout rate.
//!
//! The headline claim is asserted, not just plotted: at 2x saturation the
//! controlled server must keep >= 85% of its peak goodput while the
//! baseline falls below 50% of its own peak. The bin exits non-zero when
//! either side fails, so `scripts/check.sh` gates on graceful
//! degradation the same way it gates on correctness.
//!
//! Everything is virtual-time and fixed-seed, so `--json` dumps are
//! byte-stable. `--wall` reruns the sweep on the wall-clock engine
//! (honest, not stable, never asserted or recorded). Full runs (no
//! `--quick`) append per-workload goodput and p99 rows to
//! `results/bench_history.jsonl` for `benchdiff`.
//!
//! Usage: `saturate [--quick] [--wall] [--kind NAME] [--servers N]
//!                  [--json PATH] [--history PATH]`

use bionicdb_bench::history::{self, Entry};
use bionicdb_bench::serve::sim::{probe_service_ns, simulate};
use bionicdb_bench::serve::wall::{probe_wall_service_ns, serve_wall};
use bionicdb_bench::serve::{ArrivalProcess, ServeConfig, ServeSummary};
use bionicdb_bench::{json::JsonOut, print_table, ArgSpec, BenchArgs};
use bionicdb_workloads::{ServeKind, ServeMix};

const SPEC: ArgSpec = ArgSpec {
    bin: "saturate",
    flags: &["--wall"],
    options: &["--servers", "--kind", "--history"],
};

/// One sweep point's results, kept for the degradation verdict.
struct Point {
    mult: f64,
    offered_per_sec: f64,
    baseline: ServeSummary,
    controlled: ServeSummary,
}

fn main() {
    let args = BenchArgs::from_env(&SPEC);
    let quick = args.quick();
    let wall = args.flag("--wall");
    let servers: usize = args.parsed("--servers", 4);
    let only = args.value("--kind").map(|s| {
        ServeKind::parse(s).unwrap_or_else(|| {
            eprintln!("saturate: unknown --kind {s} (want one of ycsb_c, ycsb_scan, tpcc_mixed, tpcc_payment, smallbank)");
            std::process::exit(2);
        })
    });
    let history_path = args
        .value("--history")
        .unwrap_or(history::DEFAULT_PATH)
        .to_string();

    let mults: &[f64] = if quick {
        &[0.5, 1.0, 2.0]
    } else {
        &[0.25, 0.5, 0.75, 1.0, 1.5, 2.0]
    };
    // The probe must run past the model's cache-warmup transient or it
    // overestimates steady-state service time (worst for scans) and the
    // sweep never actually overloads the server.
    let probe_txns = if quick { 400 } else { 1000 };
    // Long enough that the overloaded points reach steady state — with a
    // short run the pre-backlog transient dominates and the unbounded
    // queue's collapse is invisible.
    let requests = if quick { 1500 } else { 5000 };
    // Relative deadline in mean service times: loose enough that an
    // uncontended request commits with lots of slack, tight enough that a
    // backlog of a few dozen requests is unservable.
    let deadline_mults = 25.0;

    let kinds: Vec<ServeKind> = ServeKind::ALL
        .into_iter()
        .filter(|k| only.is_none_or(|o| o == *k))
        .collect();

    let mut jout = JsonOut::from_env("saturate");
    let mut failed = false;

    for kind in kinds {
        // Probe on a private build: service time depends on database
        // state, and every sweep run below also gets a fresh build so the
        // fixed seed is byte-stable. Wall-clock sweeps probe wall-clock
        // execution instead — the model's constants don't describe it.
        let svc_ns = if wall {
            probe_wall_service_ns(&ServeMix::build(kind, 1), kind.seed(), probe_txns)
        } else {
            probe_service_ns(&ServeMix::build(kind, 1), kind.seed(), probe_txns)
        };
        let capacity_per_sec = servers as f64 * 1e9 / svc_ns;
        // Wall-clock deadlines are floored well above the engines' sleep
        // and condvar granularity (~1 ms), or scheduling jitter alone
        // would time out every request.
        let deadline_ns = if wall {
            ((svc_ns * deadline_mults) as u64).max(5_000_000)
        } else {
            (svc_ns * deadline_mults) as u64
        };
        println!(
            "\n{}: mean service {:.0} ns, {} servers => capacity {:.0} req/s, deadline {:.1} us",
            kind.name(),
            svc_ns,
            servers,
            capacity_per_sec,
            deadline_ns as f64 / 1e3,
        );

        let mut points: Vec<Point> = Vec::new();
        for &mult in mults {
            let offered = mult * capacity_per_sec;
            let arrivals = ArrivalProcess::Poisson {
                rate_per_sec: offered,
            };
            let run = |cfg: &ServeConfig| {
                let mix = ServeMix::build(kind, 1);
                if wall {
                    serve_wall(&mix, cfg)
                } else {
                    simulate(&mix, cfg)
                }
            };
            let baseline = run(&ServeConfig::baseline(
                arrivals,
                requests,
                deadline_ns,
                servers,
                kind.seed(),
            ));
            let mut ctrl_cfg =
                ServeConfig::controlled(arrivals, requests, deadline_ns, servers, kind.seed());
            if wall {
                // The wall generator wakes on ~1 ms granularity and
                // offers arrivals in bursts; bound the queue by a
                // deadline's worth of servable work instead of a handful
                // of slots, or the burstiness of the *harness* (not the
                // load) dominates the shed rate.
                ctrl_cfg.queue_capacity =
                    ((servers as f64 * deadline_ns as f64 / svc_ns) as usize).max(4 * servers);
            }
            let controlled = run(&ctrl_cfg);
            points.push(Point {
                mult,
                offered_per_sec: offered,
                baseline,
                controlled,
            });
        }

        let rows: Vec<Vec<String>> = points
            .iter()
            .flat_map(|p| {
                [("baseline", &p.baseline), ("controlled", &p.controlled)].map(|(mode, s)| {
                    vec![
                        format!("{:.2}x", p.mult),
                        mode.to_string(),
                        format!("{:.0}", p.offered_per_sec),
                        format!("{:.0}", s.goodput_per_sec()),
                        format!("{:.0}", s.sojourn.p50()),
                        format!("{:.0}", s.sojourn.p95()),
                        format!("{:.0}", s.sojourn.p99()),
                        format!("{:.1}%", s.shed_rate() * 100.0),
                        format!("{:.1}%", s.timeout_rate() * 100.0),
                    ]
                })
            })
            .collect();
        print_table(
            kind.name(),
            &[
                "load", "mode", "offered/s", "goodput/s", "p50 ns", "p95 ns", "p99 ns", "shed",
                "timeout",
            ],
            &rows,
        );

        for p in &points {
            for (mode, s) in [("baseline", &p.baseline), ("controlled", &p.controlled)] {
                let label = format!("{}/{}/x{:.2}", kind.name(), mode, p.mult);
                jout.push_raw(format!(
                    "{{\"kind\":\"{}\",\"mode\":\"{mode}\",\"mult\":{:.2},\
                     \"offered_per_sec\":{:.3},\"svc_ns\":{:.1},\"sum\":{}}}",
                    kind.name(),
                    p.mult,
                    p.offered_per_sec,
                    svc_ns,
                    s.render_json(&label),
                ));
            }
        }

        // The degradation verdict (virtual-time only: wall-clock numbers
        // are honest but noisy).
        if !wall {
            // Peak = best goodput in the capacity region (load <= 1x);
            // degradation is measured against what the server could do
            // before saturation, not against its own overloaded transient.
            let peak = |f: &dyn Fn(&Point) -> f64| {
                points
                    .iter()
                    .filter(|p| p.mult <= 1.0)
                    .map(f)
                    .fold(0.0f64, f64::max)
            };
            let at_top = points.last().expect("sweep is non-empty");
            let ctrl_peak = peak(&|p| p.controlled.goodput_per_sec());
            let base_peak = peak(&|p| p.baseline.goodput_per_sec());
            let ctrl_frac = at_top.controlled.goodput_per_sec() / ctrl_peak.max(1e-9);
            let base_frac = at_top.baseline.goodput_per_sec() / base_peak.max(1e-9);
            let ok = ctrl_frac >= 0.85 && base_frac < 0.50;
            println!(
                "  degradation @{:.1}x: controlled keeps {:.0}% of peak (need >= 85%), \
                 baseline keeps {:.0}% (must be < 50%) => {}",
                at_top.mult,
                ctrl_frac * 100.0,
                base_frac * 100.0,
                if ok { "ok" } else { "FAILED" }
            );
            failed |= !ok;
            jout.push_raw(format!(
                "{{\"kind\":\"{}\",\"mode\":\"verdict\",\"ctrl_frac_of_peak\":{:.4},\
                 \"base_frac_of_peak\":{:.4},\"pass\":{}}}",
                kind.name(),
                ctrl_frac,
                base_frac,
                ok
            ));

            // Full virtual-time runs feed the regression history: goodput
            // under 2x overload is the gated throughput metric, the
            // overloaded sojourn p99 the gated tail metric.
            if !quick {
                let clock_hz = bionicdb_cpu_model::CpuConfig::default().clock_hz;
                let mut e = Entry::basic(
                    &format!("serve-{}", kind.name()),
                    at_top.controlled.goodput_per_sec(),
                    history::now_unix(),
                );
                e.p99_ns = Some(at_top.controlled.sojourn.p99());
                e.committed_cycles =
                    Some(at_top.controlled.good_busy_ns * clock_hz / 1_000_000_000);
                history::append(history_path.as_ref(), &e).expect("append bench history");
                println!("  appended serve-{} to {history_path}", kind.name());
            }
        }
    }

    jout.write();
    if failed {
        eprintln!("saturate: graceful-degradation claim FAILED (see above)");
        std::process::exit(1);
    }
    println!("\nsaturate: graceful degradation holds for every workload");
}
