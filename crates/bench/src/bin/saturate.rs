//! Saturation sweep: offered load vs goodput across the five serving
//! workloads, baseline vs controlled.
//!
//! For each workload the bin probes the execution engine's capacity,
//! derives per-request deadlines from it, and sweeps offered load as
//! multiples of that capacity. Each sweep point runs twice: once as the
//! *no-control baseline* (unbounded FIFO, no deadline enforcement, naive
//! immediate retry) and once as the *controlled server* (bounded
//! deadline-aware queue, commit-point deadline aborts, budgeted backoff
//! retry). The output is the paper-style degradation curve: offered load,
//! goodput, sojourn p50/p95/p99, shed rate, timeout rate.
//!
//! `--engine` selects what executes the transactions:
//!
//! * `sim` (default) — the Silo baseline under the calibrated core model
//!   (virtual time, byte-stable);
//! * `hw` — the cycle-accurate BionicDB machine: dispatches inject
//!   transactions mid-run through `Machine::inject_txn`/`step_until`
//!   (DESIGN.md §17), capacity comes from a closed preloaded wave, and
//!   the sweep additionally compares *batched admission* (front-end
//!   request groups feeding `BatchMode::CrossTxn` index waves) against
//!   unbatched dispatch at the saturation point — batching must not lose
//!   goodput, and on the index-bound YCSB mixes it must win;
//! * `--wall` — the wall-clock Silo engine (honest, not stable, never
//!   asserted or recorded).
//!
//! The headline claim is asserted, not just plotted: at 2x saturation the
//! controlled server must keep >= 85% of its peak goodput while the
//! baseline falls below 50% of its own peak — for the model engine *and*
//! the hardware engine. The bin exits non-zero when either side fails, so
//! `scripts/check.sh` gates on graceful degradation the same way it gates
//! on correctness.
//!
//! Everything except `--wall` is virtual-time and fixed-seed, so `--json`
//! dumps are byte-stable. Full runs (no `--quick`) append per-workload
//! goodput and p99 rows to `results/bench_history.jsonl` for `benchdiff`
//! (`serve-*` keys for the model engine, `serve-hw-*` for the hardware
//! engine).
//!
//! Usage: `saturate [--quick] [--wall] [--engine sim|hw] [--kind NAME]
//!                  [--servers N] [--json PATH] [--history PATH]`

use bionicdb_bench::history::{self, Entry};
use bionicdb_bench::serve::hw::{
    hw_config, hw_servers, probe_hw, probe_hw_variant, simulate_hw, simulate_hw_variant,
};
use bionicdb_bench::serve::sim::{probe_service_ns, simulate};
use bionicdb_bench::serve::wall::{probe_wall_service_ns, serve_wall};
use bionicdb_bench::serve::{ArrivalProcess, ServeConfig, ServeSummary};
use bionicdb_bench::{json::JsonOut, print_table, ArgSpec, BenchArgs};
use bionicdb_workloads::{ServeKind, ServeMix};

const SPEC: ArgSpec = ArgSpec {
    bin: "saturate",
    flags: &["--wall"],
    options: &["--servers", "--kind", "--history", "--engine"],
};

/// Partition workers the hardware engine simulates (its server count is
/// `workers × max_batch` context slots, workload-dependent).
const HW_WORKERS: usize = 2;

/// What executes dispatched transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Engine {
    /// Silo under the calibrated core model, virtual time.
    Sim,
    /// Silo on real threads, wall-clock time.
    Wall,
    /// The cycle-accurate BionicDB machine.
    Hw,
}

/// One sweep point's results, kept for the degradation verdict.
struct Point {
    mult: f64,
    offered_per_sec: f64,
    baseline: ServeSummary,
    controlled: ServeSummary,
}

fn main() {
    let args = BenchArgs::from_env(&SPEC);
    let quick = args.quick();
    let engine = match (args.flag("--wall"), args.value("--engine").unwrap_or("sim")) {
        (true, "sim") => Engine::Wall,
        (true, other) => {
            eprintln!("saturate: --wall cannot combine with --engine {other}");
            std::process::exit(2);
        }
        (false, "sim") => Engine::Sim,
        (false, "hw") => Engine::Hw,
        (false, other) => {
            eprintln!("saturate: unknown --engine {other} (want sim or hw)");
            std::process::exit(2);
        }
    };
    let servers: usize = args.parsed("--servers", 4);
    let only = args.value("--kind").map(|s| {
        ServeKind::parse(s).unwrap_or_else(|| {
            eprintln!("saturate: unknown --kind {s} (want one of ycsb_c, ycsb_scan, tpcc_mixed, tpcc_payment, smallbank)");
            std::process::exit(2);
        })
    });
    let history_path = args
        .value("--history")
        .unwrap_or(history::DEFAULT_PATH)
        .to_string();

    let mults: &[f64] = if quick {
        &[0.5, 1.0, 2.0]
    } else {
        &[0.25, 0.5, 0.75, 1.0, 1.5, 2.0]
    };
    // The probe must run past the model's cache-warmup transient or it
    // overestimates steady-state service time (worst for scans) and the
    // sweep never actually overloads the server.
    let probe_txns = if quick { 400 } else { 1000 };
    // The hardware probe is a closed wave per worker; far fewer
    // transactions saturate the pipelines.
    let hw_probe_txns = if quick { 48 } else { 192 };
    // Long enough that the overloaded points reach steady state — with a
    // short run the pre-backlog transient dominates and the unbounded
    // queue's collapse is invisible. The cycle-accurate engine pays real
    // simulation work per request, so its sweeps are smaller.
    let requests = match (engine, quick) {
        (Engine::Hw, true) => 1000,
        (Engine::Hw, false) => 2500,
        (_, true) => 1500,
        (_, false) => 5000,
    };
    // Relative deadline: loose enough that an uncontended request commits
    // with lots of slack, tight enough that a backlog of a few dozen
    // requests is unservable. The sim scale is *one* mean service time;
    // the hw scale is the mean *in-system* time of a fully loaded machine
    // (already `slots` service times deep), so its multiplier is smaller
    // for the same relative tightness.
    let deadline_mults = if engine == Engine::Hw { 8.0 } else { 25.0 };

    let kinds: Vec<ServeKind> = ServeKind::ALL
        .into_iter()
        .filter(|k| only.is_none_or(|o| o == *k))
        .collect();

    let mut jout = JsonOut::from_env("saturate");
    let mut failed = false;

    for kind in kinds {
        // Probe on a private build: capacity depends on database state,
        // and every sweep run below also gets a fresh build so the fixed
        // seed is byte-stable. Wall-clock sweeps probe wall-clock
        // execution instead — the model's constants don't describe it.
        let (capacity_per_sec, scale_ns, eff_servers) = match engine {
            Engine::Sim => {
                let svc = probe_service_ns(&ServeMix::build(kind, 1), kind.seed(), probe_txns);
                (servers as f64 * 1e9 / svc, svc, servers)
            }
            Engine::Wall => {
                let svc = probe_wall_service_ns(&ServeMix::build(kind, 1), kind.seed(), probe_txns);
                (servers as f64 * 1e9 / svc, svc, servers)
            }
            Engine::Hw => {
                let p = probe_hw(kind, HW_WORKERS, hw_probe_txns);
                (
                    p.capacity_per_sec,
                    p.mean_latency_ns,
                    hw_servers(kind, HW_WORKERS),
                )
            }
        };
        // Wall-clock deadlines are floored well above the engines' sleep
        // and condvar granularity (~1 ms), or scheduling jitter alone
        // would time out every request.
        let deadline_ns = if engine == Engine::Wall {
            ((scale_ns * deadline_mults) as u64).max(5_000_000)
        } else {
            (scale_ns * deadline_mults) as u64
        };
        println!(
            "\n{}: scale {:.0} ns, {} servers => capacity {:.0} req/s, deadline {:.1} us",
            kind.name(),
            scale_ns,
            eff_servers,
            capacity_per_sec,
            deadline_ns as f64 / 1e3,
        );

        let run = |cfg: &ServeConfig, cross_txn: Option<usize>| match engine {
            Engine::Sim => simulate(&ServeMix::build(kind, 1), cfg),
            Engine::Wall => serve_wall(&ServeMix::build(kind, 1), cfg),
            Engine::Hw => simulate_hw(kind, HW_WORKERS, cross_txn, cfg),
        };

        let mut points: Vec<Point> = Vec::new();
        for &mult in mults {
            let offered = mult * capacity_per_sec;
            let arrivals = ArrivalProcess::Poisson {
                rate_per_sec: offered,
            };
            let baseline = run(
                &ServeConfig::baseline(arrivals, requests, deadline_ns, eff_servers, kind.seed()),
                None,
            );
            let mut ctrl_cfg =
                ServeConfig::controlled(arrivals, requests, deadline_ns, eff_servers, kind.seed());
            if engine == Engine::Wall {
                // The wall generator wakes on ~1 ms granularity and
                // offers arrivals in bursts; bound the queue by a
                // deadline's worth of servable work instead of a handful
                // of slots, or the burstiness of the *harness* (not the
                // load) dominates the shed rate.
                ctrl_cfg.queue_capacity =
                    ((servers as f64 * deadline_ns as f64 / scale_ns) as usize).max(4 * servers);
            }
            let controlled = run(&ctrl_cfg, None);
            points.push(Point {
                mult,
                offered_per_sec: offered,
                baseline,
                controlled,
            });
        }

        let rows: Vec<Vec<String>> = points
            .iter()
            .flat_map(|p| {
                [("baseline", &p.baseline), ("controlled", &p.controlled)].map(|(mode, s)| {
                    vec![
                        format!("{:.2}x", p.mult),
                        mode.to_string(),
                        format!("{:.0}", p.offered_per_sec),
                        format!("{:.0}", s.goodput_per_sec()),
                        format!("{:.0}", s.sojourn.p50()),
                        format!("{:.0}", s.sojourn.p95()),
                        format!("{:.0}", s.sojourn.p99()),
                        format!("{:.1}%", s.shed_rate() * 100.0),
                        format!("{:.1}%", s.timeout_rate() * 100.0),
                    ]
                })
            })
            .collect();
        print_table(
            kind.name(),
            &[
                "load", "mode", "offered/s", "goodput/s", "p50 ns", "p95 ns", "p99 ns", "shed",
                "timeout",
            ],
            &rows,
        );

        let engine_tag = match engine {
            Engine::Sim => "sim",
            Engine::Wall => "wall",
            Engine::Hw => "hw",
        };
        for p in &points {
            for (mode, s) in [("baseline", &p.baseline), ("controlled", &p.controlled)] {
                let label = format!("{engine_tag}/{}/{}/x{:.2}", kind.name(), mode, p.mult);
                jout.push_raw(format!(
                    "{{\"kind\":\"{}\",\"engine\":\"{engine_tag}\",\"mode\":\"{mode}\",\
                     \"mult\":{:.2},\"offered_per_sec\":{:.3},\"svc_ns\":{:.1},\"sum\":{}}}",
                    kind.name(),
                    p.mult,
                    p.offered_per_sec,
                    scale_ns,
                    s.render_json(&label),
                ));
            }
        }

        // The degradation verdict (never wall-clock: those numbers are
        // honest but noisy).
        if engine != Engine::Wall {
            // Peak = best goodput in the capacity region (load <= 1x);
            // degradation is measured against what the server could do
            // before saturation, not against its own overloaded transient.
            let peak = |f: &dyn Fn(&Point) -> f64| {
                points
                    .iter()
                    .filter(|p| p.mult <= 1.0)
                    .map(f)
                    .fold(0.0f64, f64::max)
            };
            let at_top = points.last().expect("sweep is non-empty");
            let ctrl_peak = peak(&|p| p.controlled.goodput_per_sec());
            let base_peak = peak(&|p| p.baseline.goodput_per_sec());
            let ctrl_frac = at_top.controlled.goodput_per_sec() / ctrl_peak.max(1e-9);
            let base_frac = at_top.baseline.goodput_per_sec() / base_peak.max(1e-9);
            let ok = ctrl_frac >= 0.85 && base_frac < 0.50;
            println!(
                "  degradation @{:.1}x: controlled keeps {:.0}% of peak (need >= 85%), \
                 baseline keeps {:.0}% (must be < 50%) => {}",
                at_top.mult,
                ctrl_frac * 100.0,
                base_frac * 100.0,
                if ok { "ok" } else { "FAILED" }
            );
            failed |= !ok;
            jout.push_raw(format!(
                "{{\"kind\":\"{}\",\"engine\":\"{engine_tag}\",\"mode\":\"verdict\",\
                 \"ctrl_frac_of_peak\":{:.4},\"base_frac_of_peak\":{:.4},\"pass\":{}}}",
                kind.name(),
                ctrl_frac,
                base_frac,
                ok
            ));

            // Hardware engine: batched admission at the saturation point,
            // on the *chained-hash* YCSB-C variant (16-deep chains, the
            // regime the batched level-wise traversal engines exist for —
            // stock one-hop hash probes have nothing to wave). Front-end
            // groups ([`ServeConfig::with_batch`]) feed
            // `BatchMode::CrossTxn`, so flushed requests enter one
            // softcore interleaving batch and their index probes share
            // DRAM waves; the waves must beat unbatched dispatch on
            // goodput outright.
            if engine == Engine::Hw && kind == ServeKind::YcsbC {
                let width = 4usize;
                let p = probe_hw_variant(kind, HW_WORKERS, hw_probe_txns, true);
                let chain_deadline = (p.mean_latency_ns * deadline_mults) as u64;
                let mk = |seed| {
                    ServeConfig::controlled(
                        ArrivalProcess::Poisson {
                            rate_per_sec: 2.0 * p.capacity_per_sec,
                        },
                        requests,
                        chain_deadline,
                        eff_servers,
                        seed,
                    )
                };
                let unbatched =
                    simulate_hw_variant(kind, HW_WORKERS, None, true, &mk(kind.seed()));
                let batched_cfg = mk(kind.seed()).with_batch(width, (chain_deadline / 8).max(1));
                let batched =
                    simulate_hw_variant(kind, HW_WORKERS, Some(width), true, &batched_cfg);
                let (ug, bg) = (unbatched.goodput_per_sec(), batched.goodput_per_sec());
                let ok = bg > ug;
                println!(
                    "  batched admission @2.0x on chained-hash ycsb_c (width {width}): \
                     {bg:.0} good/s vs {ug:.0} unbatched ({:.2}x, must beat) => {}",
                    bg / ug.max(1e-9),
                    if ok { "ok" } else { "FAILED" }
                );
                failed |= !ok;
                for (mode, s) in [("chained_unbatched", &unbatched), ("chained_batched", &batched)]
                {
                    jout.push_raw(format!(
                        "{{\"kind\":\"ycsb_c_chained\",\"engine\":\"hw\",\"mode\":\"{mode}\",\
                         \"mult\":2.00,\"width\":{width},\"sum\":{}}}",
                        s.render_json(&format!("hw/ycsb_c_chained/{mode}/x2.00")),
                    ));
                }
            }

            // Full virtual-time runs feed the regression history: goodput
            // under 2x overload is the gated throughput metric, the
            // overloaded sojourn p99 the gated tail metric.
            if !quick {
                let clock_hz = match engine {
                    Engine::Hw => hw_config(kind, HW_WORKERS, None).fpga.clock_hz,
                    _ => bionicdb_cpu_model::CpuConfig::default().clock_hz,
                };
                let key = match engine {
                    Engine::Hw => format!("serve-hw-{}", kind.name()),
                    _ => format!("serve-{}", kind.name()),
                };
                let mut e = Entry::basic(
                    &key,
                    at_top.controlled.goodput_per_sec(),
                    history::now_unix(),
                );
                e.p99_ns = Some(at_top.controlled.sojourn.p99());
                e.committed_cycles =
                    Some(at_top.controlled.good_busy_ns * clock_hz / 1_000_000_000);
                history::append(history_path.as_ref(), &e).expect("append bench history");
                println!("  appended {key} to {history_path}");
            }
        }
    }

    jout.write();
    if failed {
        eprintln!("saturate: graceful-degradation claim FAILED (see above)");
        std::process::exit(1);
    }
    println!("\nsaturate: graceful degradation holds for every workload");
}
