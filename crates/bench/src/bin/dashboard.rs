//! Static benchmark dashboard generator.
//!
//! Reads the append-only history (`results/bench_history.jsonl`, or
//! `--history PATH`) and writes one self-contained HTML file
//! (`results/dashboard.html`, or `--out PATH`): no external scripts, no
//! CSS frameworks, no network — the history is embedded as
//! `window.BENCHMARK_DATA` and a small inline script draws one SVG chart
//! per bench key (cycles/sec trend, plus a dashed p99 tail-latency trend
//! for keys that record one). The file can be opened from disk or served
//! from static hosting as-is.
//!
//! Usage: `dashboard [--history PATH] [--out PATH]`

use bionicdb_bench::history;
use bionicdb_bench::{ArgSpec, BenchArgs};
use bionicdb_fpga::obs::json_escape;

const SPEC: ArgSpec = ArgSpec {
    bin: "dashboard",
    flags: &[],
    options: &["--history", "--out"],
};

fn main() {
    let args = BenchArgs::from_env(&SPEC);
    let history_path = args
        .value("--history")
        .unwrap_or(history::DEFAULT_PATH)
        .to_string();
    let out_path = args.value("--out").unwrap_or("results/dashboard.html");

    let text = match std::fs::read_to_string(&history_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("dashboard: cannot read {history_path}: {e}");
            eprintln!("dashboard: run `simperf` or `saturate` (full, not --quick) first");
            std::process::exit(2);
        }
    };
    let parsed = history::parse_salvage(&text);
    if let Some(tail) = &parsed.torn_tail {
        eprintln!(
            "dashboard: warning: {history_path} ends in a torn append, \
             skipping trailing line {tail:?}"
        );
    }
    let entries = parsed.entries;
    if entries.is_empty() {
        eprintln!("dashboard: no parseable entries in {history_path}");
        std::process::exit(2);
    }

    // Embed the history as a JS literal, one object per entry in file
    // (chronological) order. Optional fields become null, not absent, so
    // the renderer never branches on key presence.
    let mut data = String::from("[");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            data.push(',');
        }
        data.push_str(&format!(
            "{{\"bench\":\"{}\",\"cycles_per_sec\":{:.3},\"unix_secs\":{},\"p99_ns\":{},\"committed_cycles\":{},\"mlp_peak\":{}}}",
            json_escape(&e.bench),
            e.cycles_per_sec,
            e.unix_secs,
            e.p99_ns.map_or("null".to_string(), |p| format!("{p:.1}")),
            e.committed_cycles.map_or("null".to_string(), |c| c.to_string()),
            e.mlp_peak.map_or("null".to_string(), |m| m.to_string()),
        ));
    }
    data.push(']');

    let html = TEMPLATE.replace("__BENCHMARK_DATA__", &data);
    if let Some(dir) = std::path::Path::new(out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(out_path, html).expect("write dashboard");
    println!(
        "dashboard: {} entries, {} bench keys -> {out_path}",
        entries.len(),
        {
            let mut keys: Vec<&str> = entries.iter().map(|e| e.bench.as_str()).collect();
            keys.sort_unstable();
            keys.dedup();
            keys.len()
        }
    );
}

const TEMPLATE: &str = r#"<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>BionicDB benchmark dashboard</title>
<style>
  body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 980px;
         color: #1a1a2e; background: #fafafa; padding: 0 1rem; }
  h1 { font-size: 1.4rem; }
  .meta { color: #666; margin-bottom: 1.5rem; }
  .chart { background: #fff; border: 1px solid #ddd; border-radius: 8px;
           padding: 1rem; margin-bottom: 1.2rem; }
  .chart h2 { font-size: 1rem; margin: 0 0 .4rem; }
  .chart .latest { color: #666; font-size: .85rem; }
  svg { width: 100%; height: 160px; }
  .cps { stroke: #2563eb; stroke-width: 2; fill: none; }
  .p99 { stroke: #dc2626; stroke-width: 1.5; fill: none; stroke-dasharray: 5 4; }
  .mlp { stroke: #059669; stroke-width: 1.5; fill: none; stroke-dasharray: 2 3; }
  .dot { fill: #2563eb; }
  .axis { stroke: #ccc; stroke-width: 1; }
  .legend span { display: inline-block; margin-right: 1rem; font-size: .8rem; color: #444; }
  .swatch { display: inline-block; width: 14px; height: 3px; vertical-align: middle;
            margin-right: 4px; }
</style>
</head>
<body>
<h1>BionicDB benchmark dashboard</h1>
<div class="meta" id="meta"></div>
<div class="legend">
  <span><i class="swatch" style="background:#2563eb"></i>cycles/sec (higher is better)</span>
  <span><i class="swatch" style="background:#dc2626"></i>p99 sojourn ns (lower is better, own scale)</span>
  <span><i class="swatch" style="background:#059669"></i>MLP peak (outstanding DRAM reads, own scale)</span>
</div>
<div id="charts"></div>
<script>
window.BENCHMARK_DATA = __BENCHMARK_DATA__;
(function () {
  "use strict";
  var data = window.BENCHMARK_DATA;
  var byKey = {};
  var order = [];
  data.forEach(function (e) {
    if (!byKey[e.bench]) { byKey[e.bench] = []; order.push(e.bench); }
    byKey[e.bench].push(e);
  });
  var last = data.reduce(function (m, e) { return Math.max(m, e.unix_secs); }, 0);
  document.getElementById("meta").textContent =
    data.length + " entries, " + order.length + " bench keys, latest run " +
    (last ? new Date(last * 1000).toISOString() : "n/a");

  var W = 940, H = 160, PAD = 28;
  function path(vals, lo, hi, cls) {
    if (vals.length === 0) return "";
    var span = (hi - lo) || 1;
    var step = vals.length > 1 ? (W - 2 * PAD) / (vals.length - 1) : 0;
    var d = vals.map(function (v, i) {
      var x = PAD + i * step;
      var y = H - PAD - ((v - lo) / span) * (H - 2 * PAD);
      return (i ? "L" : "M") + x.toFixed(1) + " " + y.toFixed(1);
    }).join(" ");
    return '<path class="' + cls + '" d="' + d + '"/>';
  }
  function fmt(v) {
    if (v >= 1e9) return (v / 1e9).toFixed(2) + "G";
    if (v >= 1e6) return (v / 1e6).toFixed(2) + "M";
    if (v >= 1e3) return (v / 1e3).toFixed(1) + "k";
    return v.toFixed(0);
  }

  var root = document.getElementById("charts");
  order.forEach(function (key) {
    var es = byKey[key];
    var cps = es.map(function (e) { return e.cycles_per_sec; });
    var p99 = es.filter(function (e) { return e.p99_ns !== null; })
                .map(function (e) { return e.p99_ns; });
    var mlp = es.filter(function (e) { return e.mlp_peak !== null; })
                .map(function (e) { return e.mlp_peak; });
    var lo = Math.min.apply(null, cps), hi = Math.max.apply(null, cps);
    var svg = '<svg viewBox="0 0 ' + W + ' ' + H + '">' +
      '<line class="axis" x1="' + PAD + '" y1="' + (H - PAD) + '" x2="' + (W - PAD) +
        '" y2="' + (H - PAD) + '"/>' +
      path(cps, lo, hi, "cps");
    if (p99.length > 1) {
      svg += path(p99, Math.min.apply(null, p99), Math.max.apply(null, p99), "p99");
    }
    if (mlp.length > 1) {
      svg += path(mlp, 0, Math.max.apply(null, mlp), "mlp");
    }
    var lastE = es[es.length - 1];
    var lx = PAD + (cps.length > 1 ? (W - 2 * PAD) : 0);
    var ly = H - PAD - ((cps[cps.length - 1] - lo) / ((hi - lo) || 1)) * (H - 2 * PAD);
    svg += '<circle class="dot" cx="' + lx.toFixed(1) + '" cy="' + ly.toFixed(1) + '" r="3"/>';
    svg += "</svg>";

    var div = document.createElement("div");
    div.className = "chart";
    var latest = "latest " + fmt(lastE.cycles_per_sec) + " c/s";
    if (lastE.p99_ns !== null) latest += ", p99 " + fmt(lastE.p99_ns) + " ns";
    if (lastE.mlp_peak !== null) latest += ", MLP peak " + lastE.mlp_peak;
    if (es.length > 1) {
      var first = es[0].cycles_per_sec || 1;
      latest += " (" + ((lastE.cycles_per_sec / first - 1) * 100).toFixed(1) + "% vs baseline)";
    }
    div.innerHTML = "<h2>" + key + "</h2><div class='latest'>" + es.length +
      " runs, " + latest + "</div>" + svg;
    root.appendChild(div);
  });
})();
</script>
</body>
</html>
"#;
