//! Batched level-wise traversal study (DESIGN.md §16): probe throughput
//! vs. batch width for both index coprocessors.
//!
//! For each index kind the sweep streams a fixed stream of tagged SEARCH
//! probes through the batch engine at widths 1–32 and reports probes per
//! simulated cycle, the DRAM reads spent (and saved by per-wave dedup),
//! and the measured memory-level parallelism (peak outstanding reads and
//! the occupancy histogram). Width 1 degenerates to a serial pointer chase
//! per batch, so the curve is exactly the MLP claim: level-wise batching
//! must buy ≥ 2× probe throughput by width 8 on at least one index kind —
//! asserted here, not just plotted.
//!
//! Results go to `BENCH_batch.json` (override with `--out`); full
//! (non-`--quick`) runs also append one history row per sweep point for
//! `benchdiff`.

use std::time::Instant;

use bionicdb_bench::batchbench::{speedups, sweep, to_json};
use bionicdb_bench::history::{self, Entry};
use bionicdb_bench::{print_table, ArgSpec, BenchArgs};
use bionicdb_fpga::FpgaConfig;
use bionicdb_softcore::IndexKind;

const SPEC: ArgSpec = ArgSpec {
    bin: "batchsweep",
    flags: &[],
    options: &["--out", "--history"],
};

fn main() {
    let args = BenchArgs::from_env(&SPEC);
    let quick = args.quick();
    let out_path = args.value("--out").unwrap_or("BENCH_batch.json").to_string();
    let history_path = args
        .value("--history")
        .unwrap_or(history::DEFAULT_PATH)
        .to_string();
    let clock_hz = FpgaConfig::default().clock_hz;

    let wall = Instant::now();
    let points = sweep(quick);
    let wall_secs = wall.elapsed().as_secs_f64();

    let mut rows = Vec::new();
    for p in &points {
        rows.push(vec![
            p.key(),
            format!("{:.2}", p.probes_per_kcycle()),
            format!("{:.1}", p.probes_per_sec(clock_hz) / 1e6),
            format!("{}", p.reads),
            format!("{}", p.dedup_saved),
            format!("{}", p.mlp_peak),
        ]);
    }
    print_table(
        &format!("Batched traversal sweep ({} probes/point, {wall_secs:.2}s wall)", points[0].probes),
        &["point", "probes/kcycle", "Mprobes/s (sim)", "reads", "dedup saved", "mlp peak"],
        &rows,
    );

    // The headline claim, gated here so a regression in the batch engine
    // fails the bin rather than silently flattening the curve.
    let gains = speedups(&points, 8);
    for (kind, width, x) in &gains {
        println!("{kind:?}: best width {width} gives {x:.2}x over width 1");
    }
    assert!(
        gains.iter().any(|(_, _, x)| *x >= 2.0),
        "batched traversal must reach 2x probe throughput at width >= 8 \
         on at least one index kind: {gains:?}"
    );

    std::fs::write(&out_path, to_json(&points, quick)).expect("write BENCH_batch.json");
    println!("wrote {out_path}");

    // Full runs feed the regression history. The tracked metric is probes
    // per simulated second — fully deterministic, so `benchdiff` gates the
    // batch engine's simulated performance, not host speed.
    if !quick {
        let now = history::now_unix();
        for p in &points {
            let mut e = Entry::basic(
                &format!("batchsweep-{}", p.key()),
                p.probes_per_sec(clock_hz),
                now,
            );
            e.committed_cycles = Some(p.cycles);
            e.mlp_peak = Some(p.mlp_peak);
            history::append(history_path.as_ref(), &e).expect("append bench history");
        }
        println!("appended {} entries to {history_path}", points.len());
    }

    // Keep `IndexKind` in the printed rows honest (hash first).
    debug_assert_eq!(points[0].kind, IndexKind::Hash);
}
