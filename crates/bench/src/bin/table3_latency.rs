//! Table 3 — message-passing latency comparison (paper §5.7).
//!
//! Measures the on-chip request/response pair in the simulator and
//! compares with software message passing through the modelled memory
//! hierarchy (L3-resident vs DRAM-resident mailboxes).

use bionicdb_bench::json::JsonOut;
use bionicdb_bench::print_table;
use bionicdb_cpu_model::CpuConfig;
use bionicdb_fpga::FpgaConfig;
use bionicdb_noc::{Noc, Packet, Payload, Topology};
use bionicdb_softcore::catalogue::TableId;
use bionicdb_softcore::request::{CpSlot, DbOp, DbRequest, DbResponse, PartitionId};

/// The measured on-chip round trip: one-way request latency, full
/// request/response pair latency, and the response packet itself (so tests
/// can check the return leg is modelled faithfully).
struct OnchipPair {
    t_req: u64,
    t_pair: u64,
    /// Read by the regression tests, which assert the return leg's shape.
    #[cfg_attr(not(test), allow(dead_code))]
    response: Packet,
}

/// Send one request from worker 0 to worker 1 and its response back,
/// measuring both legs in the interconnect.
///
/// The response leg is a genuine [`Payload::Response`] echoing the
/// request's sequence number — not a second request. An earlier version of
/// this harness sent the return leg as `Payload::Request` with the same
/// `seq: 0` as the outbound leg, and polled the return leg from cycle 0
/// instead of from the send cycle `t_req`; the latencies happened to come
/// out right, but the measured traffic was two requests with one shared
/// sequence number — a shape the worker glue's duplicate detection would
/// discard, so the "pair" being timed could never occur on a real machine.
fn measure_onchip_pair(fpga: &FpgaConfig) -> OnchipPair {
    let mut noc = Noc::new(Topology::Crossbar, 2, fpga.noc_hop_latency);
    let req = DbRequest {
        op: DbOp::Search,
        table: TableId(0),
        key_addr: 0,
        payload_addr: 0,
        scan_count: 0,
        out_addr: 0,
        ts: 1,
        cp: CpSlot {
            worker: PartitionId(0),
            index: 0,
        },
        home: PartitionId(1),
        batch_group: 0,
    };
    // Real requests carry seq >= 1 (seq 0 is reserved for unsequenced
    // packets in the worker glue).
    noc.send(
        0,
        Packet {
            src: PartitionId(0),
            dst: PartitionId(1),
            payload: Payload::Request(req),
            seq: 1,
        },
    )
    .unwrap();
    let t_req = (0..100)
        .find(|&t| noc.poll(t, PartitionId(1)).is_some())
        .unwrap();
    // The home worker answers with a response echoing the request's seq.
    noc.send(
        t_req,
        Packet {
            src: PartitionId(1),
            dst: PartitionId(0),
            payload: Payload::Response(DbResponse {
                cp: req.cp,
                value: 0,
            }),
            seq: 1,
        },
    )
    .unwrap();
    let (t_pair, response) = (t_req..t_req + 100)
        .find_map(|t| noc.poll(t, PartitionId(0)).map(|p| (t, p)))
        .unwrap();
    OnchipPair {
        t_req,
        t_pair,
        response,
    }
}

fn main() {
    let _ = bionicdb_bench::BenchArgs::from_env(&bionicdb_bench::ArgSpec::shared(
        "table3_latency",
    ));
    let fpga = FpgaConfig::default();
    let cpu = CpuConfig::default();
    let mut json = JsonOut::from_env("table3_latency");

    let pair = measure_onchip_pair(&fpga);
    let (t_req, t_pair) = (pair.t_req, pair.t_pair);

    let ns = |cycles: u64| fpga.cycles_to_ns(cycles);
    let cpu_ns = |cycles: u64| cycles as f64 * 1e9 / cpu.clock_hz as f64;

    let rows = vec![
        vec![
            "On-chip MP".to_string(),
            format!("{:.0}", ns(t_req)),
            format!("{:.0}", ns(t_pair)),
        ],
        vec![
            "SW MP (L3 cache)".to_string(),
            format!("{:.0}", cpu_ns(cpu.l3_latency)),
            format!("{:.0}", 2.0 * cpu_ns(cpu.l3_latency)),
        ],
        vec![
            "SW MP (DDR3)".to_string(),
            format!("{:.0}", cpu_ns(cpu.dram_latency)),
            // Paper Table 3 charges two rounds of read+write per message:
            // 4 DRAM accesses per pair.
            format!("{:.0}", 4.0 * cpu_ns(cpu.dram_latency)),
        ],
    ];
    print_table(
        "Table 3: message-passing latencies (ns)",
        &["primitive", "one message", "req/resp pair"],
        &rows,
    );
    println!("\n(paper: on-chip 24/48, L3 20/40, DDR3 80/320)");

    json.value_row("onchip_one_message_ns", ns(t_req));
    json.value_row("onchip_pair_ns", ns(t_pair));
    json.value_row("sw_l3_one_message_ns", cpu_ns(cpu.l3_latency));
    json.value_row("sw_l3_pair_ns", 2.0 * cpu_ns(cpu.l3_latency));
    json.value_row("sw_ddr3_one_message_ns", cpu_ns(cpu.dram_latency));
    json.value_row("sw_ddr3_pair_ns", 4.0 * cpu_ns(cpu.dram_latency));
    json.write();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression test for the measurement bug fixed above: the return leg
    /// must be a real `Response` echoing the request's (non-zero) sequence
    /// number — the old harness sent a second `Request` reusing `seq: 0`,
    /// which the worker glue's dedup would have discarded on a real run.
    #[test]
    fn return_leg_is_a_response_echoing_the_request_seq() {
        let pair = measure_onchip_pair(&FpgaConfig::default());
        assert!(
            matches!(pair.response.payload, Payload::Response(_)),
            "return leg must be a Response, not a second Request"
        );
        assert_eq!(
            pair.response.seq, 1,
            "response echoes the request's sequence number (and real \
             requests never use the reserved seq 0)"
        );
    }

    /// The measured pair latency is exactly two crossbar hops: the poll
    /// window for the return leg starts at the response's send cycle
    /// `t_req` (the old harness scanned from cycle 0, relying on the
    /// accident that nothing was deliverable earlier).
    #[test]
    fn pair_latency_is_two_hops() {
        let fpga = FpgaConfig::default();
        let pair = measure_onchip_pair(&fpga);
        assert_eq!(pair.t_req, fpga.noc_hop_latency);
        assert_eq!(pair.t_pair, 2 * fpga.noc_hop_latency);
        assert_eq!(pair.t_pair, 6, "default config: 3-cycle hop, 6 for the pair");
    }
}
