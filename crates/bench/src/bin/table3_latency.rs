//! Table 3 — message-passing latency comparison (paper §5.7).
//!
//! Measures the on-chip request/response pair in the simulator and
//! compares with software message passing through the modelled memory
//! hierarchy (L3-resident vs DRAM-resident mailboxes).

use bionicdb_bench::print_table;
use bionicdb_cpu_model::CpuConfig;
use bionicdb_fpga::FpgaConfig;
use bionicdb_noc::{Noc, Packet, Payload, Topology};
use bionicdb_softcore::catalogue::TableId;
use bionicdb_softcore::request::{CpSlot, DbOp, DbRequest, PartitionId};

fn main() {
    let fpga = FpgaConfig::default();
    let cpu = CpuConfig::default();

    // Measure the on-chip pair latency in the interconnect itself.
    let mut noc = Noc::new(Topology::Crossbar, 2, fpga.noc_hop_latency);
    let req = DbRequest {
        op: DbOp::Search,
        table: TableId(0),
        key_addr: 0,
        payload_addr: 0,
        scan_count: 0,
        out_addr: 0,
        ts: 1,
        cp: CpSlot {
            worker: PartitionId(0),
            index: 0,
        },
        home: PartitionId(1),
    };
    noc.send(
        0,
        Packet {
            src: PartitionId(0),
            dst: PartitionId(1),
            payload: Payload::Request(req),
            seq: 0,
        },
    )
    .unwrap();
    let t_req = (0..100)
        .find(|&t| noc.poll(t, PartitionId(1)).is_some())
        .unwrap();
    noc.send(
        t_req,
        Packet {
            src: PartitionId(1),
            dst: PartitionId(0),
            payload: Payload::Request(req),
            seq: 0,
        },
    )
    .unwrap();
    let t_pair = (0..100)
        .find(|&t| noc.poll(t, PartitionId(0)).is_some())
        .unwrap();

    let ns = |cycles: u64| fpga.cycles_to_ns(cycles);
    let cpu_ns = |cycles: u64| cycles as f64 * 1e9 / cpu.clock_hz as f64;

    let rows = vec![
        vec![
            "On-chip MP".to_string(),
            format!("{:.0}", ns(t_req)),
            format!("{:.0}", ns(t_pair)),
        ],
        vec![
            "SW MP (L3 cache)".to_string(),
            format!("{:.0}", cpu_ns(cpu.l3_latency)),
            format!("{:.0}", 2.0 * cpu_ns(cpu.l3_latency)),
        ],
        vec![
            "SW MP (DDR3)".to_string(),
            format!("{:.0}", cpu_ns(cpu.dram_latency)),
            // Paper Table 3 charges two rounds of read+write per message:
            // 4 DRAM accesses per pair.
            format!("{:.0}", 4.0 * cpu_ns(cpu.dram_latency)),
        ],
    ];
    print_table(
        "Table 3: message-passing latencies (ns)",
        &["primitive", "one message", "req/resp pair"],
        &rows,
    );
    println!("\n(paper: on-chip 24/48, L3 20/40, DDR3 80/320)");
}
