//! Chaos smoke matrix: deterministic fault-injection scenarios that must
//! all pass on every build (wired into `scripts/check.sh`).
//!
//! `--smoke` runs one crash, one torn-tail crash, and one NoC-drop
//! scenario per workload with fixed seeds, plus one crash landing inside
//! a fleet barrier round (the multi-process engine). Without flags a
//! small seeded sweep of random crash points runs on top. Every scenario
//! asserts its own properties (see `bionicdb_bench::chaos`); the binary
//! exits nonzero on the first violation.

use bionicdb_bench::chaos::{run_crash, run_fleet_crash, run_noc_drop, ChaosWorkload};
use bionicdb_bench::json::JsonOut;
use bionicdb_bench::{ArgSpec, BenchArgs};

const SPEC: ArgSpec = ArgSpec {
    bin: "chaos",
    flags: &["--smoke"],
    options: &[],
};

const WORKLOADS: [ChaosWorkload; 4] = [
    ChaosWorkload::Ycsb,
    ChaosWorkload::Tpcc,
    ChaosWorkload::Multisite,
    ChaosWorkload::SmallBank,
];

fn main() {
    let smoke_only = BenchArgs::from_env(&SPEC).flag("--smoke");
    let mut json = JsonOut::from_env("chaos");
    let mut scenarios = 0u64;

    // Crash inside a *fleet* barrier round: the crash run executes on the
    // multi-process engine (2 chip processes), the clean twin and the
    // recovery replays stay in-process, so the committed-prefix contract
    // is checked straight across the process boundary. This must run
    // before any scenario spawns threads — the fleet forks.
    let r = run_fleet_crash(ChaosWorkload::Ycsb, 500, false, 0xC4A5, 2);
    println!(
        "PASS fleet-crash Ycsb: crashed@{} with {}/{} committed, salvaged {}",
        r.crash_cycle.unwrap(),
        r.committed_at_crash,
        r.total_txns,
        r.salvaged
    );
    json.value_row("fleet_crash_Ycsb_committed", r.committed_at_crash as f64);
    scenarios += 1;

    for w in WORKLOADS {
        let r = run_crash(w, 500, false, 0xC4A5);
        println!(
            "PASS crash      {w:?}: crashed@{} with {}/{} committed, salvaged {}",
            r.crash_cycle.unwrap(),
            r.committed_at_crash,
            r.total_txns,
            r.salvaged
        );
        json.value_row(&format!("crash_{w:?}_committed"), r.committed_at_crash as f64);
        scenarios += 1;
        let r = run_crash(w, 700, true, 0xC4A5);
        println!(
            "PASS torn-tail  {w:?}: crashed@{} with {} committed, salvaged {} (torn={})",
            r.crash_cycle.unwrap(),
            r.committed_at_crash,
            r.salvaged,
            r.torn
        );
        json.value_row(&format!("torn_{w:?}_salvaged"), r.salvaged as f64);
        scenarios += 1;
        let r = run_noc_drop(w, &[1, 3, 6], 0xC4A5);
        println!(
            "PASS noc-drop   {w:?}: {} txns survived {} dropped message(s)",
            r.total_txns, r.dropped
        );
        json.value_row(&format!("nocdrop_{w:?}_dropped"), r.dropped as f64);
        scenarios += 1;
    }

    if !smoke_only {
        // A wider sweep of crash points; still fully deterministic.
        for w in WORKLOADS {
            for (i, frac) in [67u64, 250, 333, 499, 811, 950].iter().enumerate() {
                let torn = i % 2 == 1;
                let r = run_crash(w, *frac, torn, 0xBEE5 + i as u64);
                println!(
                    "PASS sweep      {w:?} @{frac}permille torn={torn}: {} committed, salvaged {}",
                    r.committed_at_crash, r.salvaged
                );
                scenarios += 1;
            }
        }
    }
    println!("chaos: all scenarios passed");
    json.value_row("scenarios_passed", scenarios as f64);
    json.write();
}
