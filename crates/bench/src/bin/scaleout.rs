//! Scale-out study (paper §4.6 / §7 future work): BionicDB across multiple
//! FPGA nodes in a shared-nothing cluster.
//!
//! Eight workers run either on one chip (crossbar) or as 2×4 / 4×2 chips
//! connected by a serial link (25 hops ≈ 600 ns per message). Multisite
//! YCSB-C with a remote-fraction sweep shows where inter-node latency
//! starts to bite — the quantitative answer to the paper's "possible
//! future direction" of scaling out.
//!
//! `--chips N` switches to the *fleet* study: a 64–256-worker sweep where
//! each simulated machine is split across N chip processes (the
//! multi-process epoch engine, `Machine::set_fleet_chips`). Results go to
//! `BENCH_scaleout.json` (override with `--out`), and full (non-`--quick`)
//! runs append one row per sweep point to `results/bench_history.jsonl`
//! so `benchdiff` tracks the scaling curve over time.

use std::time::Instant;

use bionicdb::{BionicConfig, ExecMode, Topology};
use bionicdb_bench::history::{self, Entry};
use bionicdb_bench::json::JsonOut;
use bionicdb_bench::*;
use bionicdb_workloads::ycsb::{YcsbBionic, YcsbKind};
use bionicdb_workloads::YcsbSpec;

const SPEC: ArgSpec = ArgSpec {
    bin: "scaleout",
    flags: &[],
    options: &["--chips", "--out", "--history"],
};

fn build(topology: Topology, remote_fraction: f64) -> YcsbBionic {
    let cfg = BionicConfig {
        workers: 8,
        topology,
        mode: ExecMode::Interleaved,
        dram_bytes: 2 << 30,
        ..BionicConfig::default()
    };
    let spec = YcsbSpec {
        remote_fraction,
        ..bench_ycsb_spec()
    };
    let mut y = YcsbBionic::build(cfg, spec, 60);
    y.machine.set_sim_threads(sim_threads());
    y
}

/// Build one fleet sweep point: `workers` partitions split across `chips`
/// simulated chips. The per-partition scale is shrunk far below the
/// paper-figure spec (2 K records, 64 B payloads) so a 256-worker machine
/// stays in the hundreds of megabytes, not the paper's tens of gigabytes.
fn build_fleet(workers: usize, chips: usize, hops: u64) -> YcsbBionic {
    assert!(
        workers.is_multiple_of(chips),
        "worker count {workers} must divide evenly over {chips} chips"
    );
    let cfg = BionicConfig {
        workers,
        topology: Topology::MultiChip {
            workers_per_node: workers / chips,
            inter_node_hops: hops,
        },
        mode: ExecMode::Interleaved,
        // 4 MB per worker (vs the paper-figure 192 MB): 2 K records at
        // 64 B need well under 1 MB of heap, and the sweep's short waves
        // need only a few KB of block arena. The DRAM span leaves slack
        // beyond workers × 4 MB for the builder's index carves.
        dram_bytes: 2 << 30,
        block_arena_bytes: 2 << 20,
        partition_bytes: 2 << 20,
        ..BionicConfig::default()
    };
    let spec = YcsbSpec {
        records_per_partition: 2_048,
        payload_len: 64,
        remote_fraction: 0.25,
        ..YcsbSpec::default()
    };
    let mut y = YcsbBionic::build(cfg, spec, 60);
    y.machine.set_fleet_chips(chips);
    y
}

/// The `--chips N` fleet study: 64/128/256 workers across N chip
/// processes, one machine per point, wall-clock and simulated-throughput
/// rows to `out_path`, history rows (full runs only) for `benchdiff`.
fn run_fleet_study(args: &BenchArgs, chips: usize) {
    let wave = args.wave(4, 12);
    let out_path = args.value("--out").unwrap_or("BENCH_scaleout.json").to_string();
    let history_path = args
        .value("--history")
        .unwrap_or(history::DEFAULT_PATH)
        .to_string();
    let quick = args.quick();

    let mut json = format!("{{\n  \"bin\": \"scaleout-fleet\",\n  \"chips\": {chips},\n");
    let mut table = Vec::new();
    let mut points = Vec::new();
    for workers in [64usize, 128, 256] {
        let mut y = build_fleet(workers, chips, 25);
        let wall = Instant::now();
        let t = bionic_ycsb_tput(&mut y, YcsbKind::ReadHomed, wave);
        let wall_secs = wall.elapsed().as_secs_f64();
        let cycles = y.machine.now();
        let cps = cycles as f64 / wall_secs;
        json.push_str(&format!(
            "  \"{workers}w\": {{ \"workers\": {workers}, \"chips\": {chips}, \
             \"committed\": {}, \"aborted\": {}, \"tput_per_sec\": {:.0}, \
             \"wall_secs\": {wall_secs:.6}, \"cycles\": {cycles}, \
             \"cycles_per_sec\": {cps:.0}, \"epoch_rounds\": {} }},\n",
            t.committed,
            t.aborted,
            t.per_sec,
            y.machine.epoch_rounds()
        ));
        table.push(vec![
            format!("{workers} x {chips} chips"),
            format!("{:.1}", t.per_sec / 1e3),
            format!("{:.2}", wall_secs),
            format!("{:.0}", cps),
        ]);
        points.push((workers, cps, cycles));
    }

    // Inter-chip link-latency axis: the single-chip study already sweeps
    // hops for the in-process machine; this repeats it for the *fleet*
    // engine (64 workers), where a slow serial link also stretches the
    // epoch barrier, not just individual messages.
    let mut hop_table = Vec::new();
    let mut hop_points = Vec::new();
    for hops in [8u64, 25, 100, 400] {
        let mut y = build_fleet(64, chips, hops);
        let wall = Instant::now();
        let t = bionic_ycsb_tput(&mut y, YcsbKind::ReadHomed, wave);
        let wall_secs = wall.elapsed().as_secs_f64();
        let cycles = y.machine.now();
        let cps = cycles as f64 / wall_secs;
        let ns = 3.0 * hops as f64 * 8.0;
        json.push_str(&format!(
            "  \"hops{hops}\": {{ \"workers\": 64, \"chips\": {chips}, \
             \"inter_node_hops\": {hops}, \"committed\": {}, \"aborted\": {}, \
             \"tput_per_sec\": {:.0}, \"wall_secs\": {wall_secs:.6}, \
             \"cycles\": {cycles}, \"cycles_per_sec\": {cps:.0} }},\n",
            t.committed, t.aborted, t.per_sec,
        ));
        hop_table.push(vec![
            format!("{hops} hops ({ns:.0} ns)"),
            format!("{:.1}", t.per_sec / 1e3),
            format!("{:.2}", wall_secs),
        ]);
        hop_points.push((hops, cps, cycles));
    }

    json.push_str(&format!("  \"wave\": {wave}\n}}\n"));
    std::fs::write(&out_path, json).expect("write BENCH_scaleout.json");
    println!("wrote {out_path}");
    print_table(
        &format!("Fleet scale-out: YCSB-C across {chips} chip processes"),
        &["deployment", "kTps (sim)", "wall s", "sim cycles/s"],
        &table,
    );
    print_table(
        &format!("Fleet scale-out: inter-chip link latency (64 workers, {chips} chips)"),
        &["link latency", "kTps (sim)", "wall s"],
        &hop_table,
    );

    // Full runs feed the regression history `benchdiff` gates on; quick
    // waves are too small to be comparable and stay out of it (same rule
    // as `simperf`).
    if !quick {
        let now = history::now_unix();
        let mut appended = 0usize;
        for (workers, cps, cycles) in points {
            let mut e = Entry::basic(&format!("scaleout-fleet-{workers}w{chips}c"), cps, now);
            e.committed_cycles = Some(cycles);
            history::append(history_path.as_ref(), &e).expect("append bench history");
            appended += 1;
        }
        for (hops, cps, cycles) in hop_points {
            let mut e = Entry::basic(&format!("scaleout-fleet-hops{hops}-64w{chips}c"), cps, now);
            e.committed_cycles = Some(cycles);
            history::append(history_path.as_ref(), &e).expect("append bench history");
            appended += 1;
        }
        println!("appended {appended} entries to {history_path}");
    }
}

fn main() {
    let args = BenchArgs::from_env(&SPEC);
    if let Some(chips) = args.value("--chips") {
        let chips: usize = chips.parse().expect("--chips takes a chip count");
        assert!(chips > 1, "--chips needs at least 2 chips");
        run_fleet_study(&args, chips);
        return;
    }
    let wave = args.wave(100, 300);

    let topologies: [(&str, Topology); 4] = [
        ("1 chip x 8 (crossbar)", Topology::Crossbar),
        ("1 chip x 8 (ring)", Topology::Ring),
        (
            "2 chips x 4",
            Topology::MultiChip {
                workers_per_node: 4,
                inter_node_hops: 25,
            },
        ),
        (
            "4 chips x 2",
            Topology::MultiChip {
                workers_per_node: 2,
                inter_node_hops: 25,
            },
        ),
    ];
    let mut json = JsonOut::from_env("scaleout");
    let mut rows = Vec::new();
    for remote in [0.0, 0.25, 0.75] {
        for (name, topo) in topologies {
            let mut y = build(topo, remote);
            // The ring's cheapest path is one hop between ring neighbours —
            // the PDES lookahead the epoch-parallel scheduler would use.
            if topo == Topology::Ring {
                assert_eq!(
                    y.machine.noc().min_hop_latency(),
                    y.machine.config().fpga.noc_hop_latency,
                    "ring min hop latency must be one base hop"
                );
            }
            let t = bionic_ycsb_tput(&mut y, YcsbKind::ReadHomed, wave);
            json.machine_row(
                &format!("{}pct_{}", (remote * 100.0) as u32, name.replace(' ', "")),
                Some(t),
                &y.machine,
            );
            let n = y.machine.noc().stats();
            rows.push(vec![
                format!("{:.0}% remote", remote * 100.0),
                name.to_string(),
                format!("{:.1}", t.per_sec / 1e3),
                format!("{:.1}", n.mean_latency()),
            ]);
        }
    }
    print_table(
        "Scale-out: 8 workers, multisite YCSB-C",
        &["remote", "deployment", "kTps", "mean msg cycles"],
        &rows,
    );

    // How slow can the inter-node link get before the asynchronous DB
    // dispatch stops hiding it? (75% remote accesses, 2 chips x 4.)
    let mut rows = Vec::new();
    for hops in [8u64, 25, 100, 400, 1600] {
        let mut y = build(
            Topology::MultiChip {
                workers_per_node: 4,
                inter_node_hops: hops,
            },
            0.75,
        );
        let t = bionic_ycsb_tput(&mut y, YcsbKind::ReadHomed, wave);
        json.machine_row(&format!("latency_{hops}hops"), Some(t), &y.machine);
        let ns = 3.0 * hops as f64 * 8.0;
        rows.push(vec![
            format!("{hops} hops ({ns:.0} ns)"),
            format!("{:.1}", t.per_sec / 1e3),
        ]);
    }
    print_table(
        "Scale-out: inter-node link latency tolerance (75% remote)",
        &["link latency", "kTps"],
        &rows,
    );
    json.write();
}
