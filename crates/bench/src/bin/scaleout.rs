//! Scale-out study (paper §4.6 / §7 future work): BionicDB across multiple
//! FPGA nodes in a shared-nothing cluster.
//!
//! Eight workers run either on one chip (crossbar) or as 2×4 / 4×2 chips
//! connected by a serial link (25 hops ≈ 600 ns per message). Multisite
//! YCSB-C with a remote-fraction sweep shows where inter-node latency
//! starts to bite — the quantitative answer to the paper's "possible
//! future direction" of scaling out.

use bionicdb::{BionicConfig, ExecMode, Topology};
use bionicdb_bench::json::JsonOut;
use bionicdb_bench::*;
use bionicdb_workloads::ycsb::{YcsbBionic, YcsbKind};
use bionicdb_workloads::YcsbSpec;

fn build(topology: Topology, remote_fraction: f64) -> YcsbBionic {
    let cfg = BionicConfig {
        workers: 8,
        topology,
        mode: ExecMode::Interleaved,
        dram_bytes: 2 << 30,
        ..BionicConfig::default()
    };
    let spec = YcsbSpec {
        remote_fraction,
        ..bench_ycsb_spec()
    };
    let mut y = YcsbBionic::build(cfg, spec, 60);
    y.machine.set_sim_threads(sim_threads());
    y
}

fn main() {
    let args = BenchArgs::from_env();
    let wave = args.wave(100, 300);

    let topologies: [(&str, Topology); 4] = [
        ("1 chip x 8 (crossbar)", Topology::Crossbar),
        ("1 chip x 8 (ring)", Topology::Ring),
        (
            "2 chips x 4",
            Topology::MultiChip {
                workers_per_node: 4,
                inter_node_hops: 25,
            },
        ),
        (
            "4 chips x 2",
            Topology::MultiChip {
                workers_per_node: 2,
                inter_node_hops: 25,
            },
        ),
    ];
    let mut json = JsonOut::from_env("scaleout");
    let mut rows = Vec::new();
    for remote in [0.0, 0.25, 0.75] {
        for (name, topo) in topologies {
            let mut y = build(topo, remote);
            // The ring's cheapest path is one hop between ring neighbours —
            // the PDES lookahead the epoch-parallel scheduler would use.
            if topo == Topology::Ring {
                assert_eq!(
                    y.machine.noc().min_hop_latency(),
                    y.machine.config().fpga.noc_hop_latency,
                    "ring min hop latency must be one base hop"
                );
            }
            let t = bionic_ycsb_tput(&mut y, YcsbKind::ReadHomed, wave);
            json.machine_row(
                &format!("{}pct_{}", (remote * 100.0) as u32, name.replace(' ', "")),
                Some(t),
                &y.machine,
            );
            let n = y.machine.noc().stats();
            rows.push(vec![
                format!("{:.0}% remote", remote * 100.0),
                name.to_string(),
                format!("{:.1}", t.per_sec / 1e3),
                format!("{:.1}", n.mean_latency()),
            ]);
        }
    }
    print_table(
        "Scale-out: 8 workers, multisite YCSB-C",
        &["remote", "deployment", "kTps", "mean msg cycles"],
        &rows,
    );

    // How slow can the inter-node link get before the asynchronous DB
    // dispatch stops hiding it? (75% remote accesses, 2 chips x 4.)
    let mut rows = Vec::new();
    for hops in [8u64, 25, 100, 400, 1600] {
        let mut y = build(
            Topology::MultiChip {
                workers_per_node: 4,
                inter_node_hops: hops,
            },
            0.75,
        );
        let t = bionic_ycsb_tput(&mut y, YcsbKind::ReadHomed, wave);
        json.machine_row(&format!("latency_{hops}hops"), Some(t), &y.machine);
        let ns = 3.0 * hops as f64 * 8.0;
        rows.push(vec![
            format!("{hops} hops ({ns:.0} ns)"),
            format!("{:.1}", t.per_sec / 1e3),
        ]);
    }
    print_table(
        "Scale-out: inter-node link latency tolerance (75% remote)",
        &["link latency", "kTps"],
        &rows,
    );
    json.write();
}
