//! Crash-consistency chaos harness.
//!
//! The deterministic fault plan (`bionicdb_fpga::fault`) makes the classic
//! crash-recovery argument *checkable*: because a run with a given plan is
//! perfectly reproducible, we can crash a machine at an arbitrary cycle,
//! salvage only its durable bytes (command log + checkpoint), recover on a
//! fresh machine, and compare the result against an oracle that knows the
//! exact set of transactions that had committed at the crash instant.
//!
//! Every scenario here follows the same shape:
//!
//! 1. **Clean twin** — run the workload to completion with no faults to
//!    learn the run's natural length `t_end` (and the full committed log).
//! 2. **Crash run** — rebuild the identical machine, schedule a crash at
//!    `t_end · p / 1000`, and install a crash hook that plays the role of
//!    the durable medium: it serializes the committed-so-far command log
//!    (optionally tearing the in-flight tail append, as a real power loss
//!    would) plus the load-time checkpoint.
//! 3. **Recover** — decode the salvaged bytes on a fresh machine. Torn
//!    tails must be detected (never panic, never decode garbage), the
//!    committed prefix must survive byte-for-byte, and replaying it must
//!    reproduce exactly the state a reference replay of the oracle's
//!    prefix produces. Workload invariants (e.g. conservation of money
//!    across partitions) must hold on the recovered image.
//!
//! [`run_noc_drop`] covers the non-crash half of the fault model: losing
//! messages on the interconnect must be absorbed by the retry/dedup layer
//! with no wedged machine, no double-applied remote op, and a final state
//! identical to what replaying the log reproduces.
//!
//! Four workloads exercise different recovery paths: YCSB (single-site
//! updates + multisite reads), TPC-C (multi-table logic with inserts), a
//! bank-transfer multisite workload with a global conservation invariant,
//! and SmallBank (two-table transfers through the workload ABI, restricted
//! to its conserving procedures so every committed prefix preserves the
//! total balance).

use std::cell::RefCell;
use std::rc::Rc;

use bionicdb::recovery::{Checkpoint, CommandLog};
use bionicdb::{
    asm::assemble, BionicConfig, FaultPlan, Machine, NocRetryConfig, ProcId, RetryBudget,
    SystemBuilder, TableId, TableMeta, TxnBlock,
};
use bionicdb_workloads::smallbank::SmallBankBionic;
use bionicdb_workloads::tpcc::TpccBionic;
use bionicdb_workloads::ycsb::{YcsbBionic, YcsbKind};
use bionicdb_workloads::{SbOp, SmallBankSpec, TpccSpec, YcsbSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Which workload a chaos scenario drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosWorkload {
    /// YCSB: local update transactions interleaved with 75%-remote
    /// multisite reads (so both the log-replay and the NoC paths see
    /// traffic).
    Ycsb,
    /// TPC-C NewOrder/Payment mix (inserts, multi-table updates, remote
    /// payments).
    Tpcc,
    /// Cross-partition bank transfers with a global money-conservation
    /// invariant.
    Multisite,
    /// SmallBank through the workload ABI, restricted to its conserving
    /// procedures (SendPayment / Amalgamate / Balance) so the total
    /// balance is invariant over *every* committed prefix.
    SmallBank,
}

/// What a chaos scenario observed; the assertions have already run by the
/// time this is returned, so the report exists for logging and for
/// cross-checking scenario strength (e.g. "did the plan actually fire?").
#[derive(Debug, Clone, Copy)]
pub struct ChaosReport {
    /// The workload that ran.
    pub workload: ChaosWorkload,
    /// Transactions submitted in the batch.
    pub total_txns: usize,
    /// Cycle the crash was scheduled at (crash scenarios only).
    pub crash_cycle: Option<u64>,
    /// Transactions the oracle saw committed at the crash instant.
    pub committed_at_crash: usize,
    /// Log records recovered from the salvaged bytes.
    pub salvaged: usize,
    /// Whether the tail append was torn by the crash.
    pub torn: bool,
    /// Messages the interconnect dropped (NoC scenarios only).
    pub dropped: u64,
}

/// The retry configuration chaos scenarios arm when the interconnect is
/// lossy: short timeout (runs are small), a handful of attempts.
pub fn chaos_retry() -> NocRetryConfig {
    NocRetryConfig {
        timeout_cycles: 2048,
        max_attempts: 6,
    }
}

const TRANSFER: &str = r#"
proc transfer
logic:
    load g5, [blk+16]
    update 0, 0, c0, home=g5     ; debit, possibly remote
    load g6, [blk+24]
    update 0, 8, c1, home=g6     ; credit, possibly remote
commit:
    ret g0, c0
    cmp g0, 0
    blt abort
    ret g1, c1
    cmp g1, 0
    blt abort
    load g2, [blk+32]
    load g3, [g0+72]
    sub g3, g2
    store g3, [g0+72]
    load g4, [g1+72]
    add g4, g2
    store g4, [g1+72]
    getts g7
    store g7, [g0+8]
    store g7, [g1+8]
    mov g8, 0
    store g8, [g0+24]
    store g8, [g1+24]
    commit
abort:
    ret g0, c0
    cmp g0, 0
    blt s1
    mov g8, 0
    store g8, [g0+24]
s1:
    ret g1, c1
    cmp g1, 0
    blt s2
    mov g8, 0
    store g8, [g1+24]
s2:
    abort
"#;

const MULTISITE_WORKERS: usize = 3;
const MULTISITE_ACCOUNTS: u64 = 12;
const MULTISITE_BALANCE: u64 = 1_000;

/// One chaos-scale system. Builds are deterministic: two calls with the
/// same workload produce bit-identical machines, which is what lets a
/// fresh build stand in for "recover from the checkpoint".
enum Sys {
    Ycsb(YcsbBionic),
    Tpcc(TpccBionic),
    Multisite {
        db: Machine,
        table: TableId,
        proc: ProcId,
    },
    SmallBank(SmallBankBionic),
}

impl Sys {
    fn build(workload: ChaosWorkload, retry: Option<NocRetryConfig>) -> Sys {
        match workload {
            ChaosWorkload::Ycsb => {
                let cfg = BionicConfig {
                    noc_retry: retry,
                    ..BionicConfig::small(2)
                };
                let spec = YcsbSpec {
                    records_per_partition: 1_024,
                    payload_len: 64,
                    ..YcsbSpec::default()
                };
                Sys::Ycsb(YcsbBionic::build(cfg, spec, 8))
            }
            ChaosWorkload::Tpcc => {
                let cfg = BionicConfig {
                    noc_retry: retry,
                    ..BionicConfig::small(2)
                };
                // Remote fractions are raised far above TPC-C's defaults so
                // a small batch reliably generates interconnect traffic for
                // the drop schedules to land on.
                let spec = TpccSpec {
                    payment_remote_fraction: 0.6,
                    neworder_remote_fraction: 0.2,
                    ..TpccSpec::tiny()
                };
                Sys::Tpcc(TpccBionic::build(cfg, spec))
            }
            ChaosWorkload::Multisite => {
                let mut b = SystemBuilder::new(BionicConfig {
                    noc_retry: retry,
                    ..BionicConfig::small(MULTISITE_WORKERS)
                });
                let table = b.table(TableMeta::hash("accounts", 8, 8, 1 << 8));
                let proc = b.proc(assemble(TRANSFER).expect("transfer assembles"));
                let mut db = b.build();
                for w in 0..MULTISITE_WORKERS {
                    for k in 0..MULTISITE_ACCOUNTS {
                        db.loader(w)
                            .insert(table, &k.to_le_bytes(), &MULTISITE_BALANCE.to_le_bytes());
                    }
                }
                Sys::Multisite { db, table, proc }
            }
            ChaosWorkload::SmallBank => {
                let cfg = BionicConfig {
                    noc_retry: retry,
                    ..BionicConfig::small(2)
                };
                // A high transfer-remote fraction so a small conserving
                // batch reliably crosses the NoC for the drop schedules.
                let spec = SmallBankSpec {
                    accounts_per_partition: 256,
                    transfer_remote_fraction: 0.6,
                    ..SmallBankSpec::tiny()
                };
                Sys::SmallBank(SmallBankBionic::build(cfg, spec))
            }
        }
    }

    fn machine(&mut self) -> &mut Machine {
        match self {
            Sys::Ycsb(y) => &mut y.machine,
            Sys::Tpcc(t) => &mut t.machine,
            Sys::Multisite { db, .. } => db,
            Sys::SmallBank(sb) => &mut sb.machine,
        }
    }

    /// Submit the scenario's transaction batch; deterministic in `seed`.
    fn submit_batch(&mut self, seed: u64) -> Vec<(usize, TxnBlock)> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut blocks = Vec::new();
        match self {
            Sys::Ycsb(y) => {
                // Alternate local updates (replay substance) with 75%-remote
                // reads (interconnect traffic).
                for i in 0..24usize {
                    let w = i % y.machine.num_workers();
                    let kind = if i % 2 == 0 {
                        YcsbKind::UpdateLocal
                    } else {
                        YcsbKind::ReadHomed
                    };
                    let blk = y.machine.alloc_block(w, y.block_size(kind));
                    y.submit_txn(w, blk, kind, &mut rng);
                    blocks.push((w, blk));
                }
            }
            Sys::Tpcc(t) => {
                for i in 0..12usize {
                    let w = i % t.machine.num_workers();
                    let blk = if i % 2 == 0 {
                        let blk = t.machine.alloc_block(w, TpccBionic::neworder_block_size());
                        t.submit_neworder(w, blk, &mut rng);
                        blk
                    } else {
                        let blk = t.machine.alloc_block(w, TpccBionic::payment_block_size());
                        t.submit_payment(w, blk, &mut rng);
                        blk
                    };
                    blocks.push((w, blk));
                }
            }
            Sys::Multisite { db, proc, .. } => {
                let workers = MULTISITE_WORKERS as u64;
                for i in 0..18u64 {
                    let origin = (i % workers) as usize;
                    let from_w = rng.gen_range(0..workers);
                    let to_w = rng.gen_range(0..workers);
                    let from_k = rng.gen_range(0..MULTISITE_ACCOUNTS);
                    let mut to_k = rng.gen_range(0..MULTISITE_ACCOUNTS);
                    if from_w == to_w && to_k == from_k {
                        to_k = (to_k + 1) % MULTISITE_ACCOUNTS;
                    }
                    let blk = db.alloc_block(origin, 160);
                    db.init_block(blk, *proc);
                    db.write_block_u64(blk, 0, from_k);
                    db.write_block_u64(blk, 8, to_k);
                    db.write_block_u64(blk, 16, from_w);
                    db.write_block_u64(blk, 24, to_w);
                    db.write_block_u64(blk, 32, rng.gen_range(1..50));
                    db.submit(origin, blk);
                    blocks.push((origin, blk));
                }
            }
            Sys::SmallBank(sb) => {
                // Conserving ops only: any committed prefix of this batch
                // leaves the total balance at its initial value, which is
                // what lets a mid-run crash image be checked at all.
                for i in 0..18usize {
                    let w = i % sb.machine.num_workers();
                    let blk = sb.machine.alloc_block(w, SmallBankBionic::block_size());
                    sb.submit_txn(w, blk, SbOp::conserving_at(i), &mut rng);
                    blocks.push((w, blk));
                }
            }
        }
        blocks
    }

    /// Workload-level invariants that must hold on *any* recovered image
    /// (every transfer conserves money, so every committed prefix does).
    fn assert_invariants(&mut self) {
        if let Sys::SmallBank(sb) = self {
            assert_eq!(
                sb.total_balance(),
                sb.initial_total(),
                "SmallBank conserving batch keeps the total balance"
            );
        }
        if let Sys::Multisite { db, table, .. } = self {
            let total: u64 = (0..MULTISITE_WORKERS)
                .map(|w| {
                    (0..MULTISITE_ACCOUNTS)
                        .map(|k| {
                            let a = db
                                .loader(w)
                                .lookup(*table, &k.to_le_bytes())
                                .expect("account exists");
                            u64::from_le_bytes(
                                db.loader(w).payload(*table, a)[..8].try_into().unwrap(),
                            )
                        })
                        .sum::<u64>()
                })
                .sum();
            assert_eq!(
                total,
                MULTISITE_WORKERS as u64 * MULTISITE_ACCOUNTS * MULTISITE_BALANCE,
                "money conserved on the recovered image"
            );
        }
    }
}

const RUN_LIMIT: u64 = 1 << 28;

fn drive_to_completion(sys: &mut Sys, blocks: &[(usize, TxnBlock)]) {
    let m = sys.machine();
    m.run_to_quiescence_limit(RUN_LIMIT);
    if m.is_crashed() {
        return;
    }
    let out = m.retry_to_completion(
        blocks,
        RetryBudget {
            max_attempts: 128,
            backoff_cycles: 0,
        },
        RUN_LIMIT,
    );
    if !m.is_crashed() {
        assert!(out.all_committed(), "fault-free drive converges: {out:?}");
    }
}

/// Crash the workload at `t_end · frac_permille / 1000`, recover from the
/// salvaged durable bytes, and assert the recovered image is exactly the
/// committed-prefix state. With `torn`, the crash additionally interrupts
/// the append of the last in-flight log record mid-write.
///
/// Panics (test-style) on any violated property. `frac_permille` is
/// clamped to `[0, 999]` so the crash always lands inside the run.
pub fn run_crash(
    workload: ChaosWorkload,
    frac_permille: u64,
    torn: bool,
    seed: u64,
) -> ChaosReport {
    run_crash_inner(workload, frac_permille, torn, seed, 1)
}

/// Like [`run_crash`], but the crash run executes on the *fleet* engine
/// (`fleet_chips` chip processes over shared-memory rings), so the power
/// loss lands inside a fleet barrier round. The clean twin stays on the
/// in-process engine: every cross-run assertion (commit subset, salvaged
/// prefix, recovered image) then doubles as a bit-identity check across
/// the process boundary, and recovery itself replays on ordinary serial
/// machines — a crashed fleet leaves nothing behind that recovery needs.
pub fn run_fleet_crash(
    workload: ChaosWorkload,
    frac_permille: u64,
    torn: bool,
    seed: u64,
    fleet_chips: usize,
) -> ChaosReport {
    assert!(fleet_chips > 1, "a fleet needs at least two chips");
    run_crash_inner(workload, frac_permille, torn, seed, fleet_chips)
}

fn run_crash_inner(
    workload: ChaosWorkload,
    frac_permille: u64,
    torn: bool,
    seed: u64,
    fleet_chips: usize,
) -> ChaosReport {
    let frac = frac_permille.min(999);

    // 1. Clean twin: learn t_end and the full committed log (the oracle).
    let mut clean = Sys::build(workload, None);
    let blocks = clean.submit_batch(seed);
    drive_to_completion(&mut clean, &blocks);
    let t_end = clean.machine().now();
    let mut clean_log = CommandLog::new();
    for &(w, blk) in &blocks {
        clean_log.capture(clean.machine(), w, blk);
    }
    assert_eq!(clean_log.len(), blocks.len(), "clean twin commits everything");

    // 2. Crash run: identical machine + batch, power loss mid-run. The
    // hook is the durable medium: it snapshots committed work as log bytes
    // (tearing the tail append when asked) plus the load-time checkpoint.
    let crash_cycle = (t_end * frac / 1000).max(1);
    let mut crashed = Sys::build(workload, None);
    if fleet_chips > 1 {
        crashed.machine().set_fleet_chips(fleet_chips);
    }
    let ckpt_bytes = Checkpoint::dump(crashed.machine()).to_bytes();
    let truth: Rc<RefCell<Option<CommandLog>>> = Rc::new(RefCell::new(None));
    {
        let blocks = blocks.clone();
        let truth = Rc::clone(&truth);
        crashed
            .machine()
            .set_crash_hook(move |m: &Machine| -> bionicdb::DurableImage {
                let mut log = CommandLog::new();
                for &(w, blk) in &blocks {
                    log.capture(m, w, blk);
                }
                let log_bytes = if torn && !log.is_empty() {
                    // The crash caught the last record's append mid-write:
                    // its 8-byte frame landed, plus one byte of body.
                    let tear =
                        FaultPlan::none().torn_log_write(log.len() as u64 - 1, 9);
                    log.to_bytes_faulted(&tear)
                } else {
                    log.to_bytes()
                };
                *truth.borrow_mut() = Some(log);
                bionicdb::DurableImage {
                    log: log_bytes,
                    checkpoint: ckpt_bytes.clone(),
                }
            });
    }
    crashed
        .machine()
        .set_fault_plan(FaultPlan::none().crash_at(crash_cycle));
    let resub = crashed.submit_batch(seed);
    assert_eq!(resub, blocks, "identical build generates an identical batch");
    drive_to_completion(&mut crashed, &blocks);
    assert!(crashed.machine().is_crashed(), "the crash fired");
    if fleet_chips > 1 {
        // The fleet engine ran at least one coordinator/chip exchange
        // before the power loss — the crash really did land inside a
        // barrier round, not before the fleet ever engaged.
        assert!(
            crashed.machine().epoch_rounds() > 0,
            "crash landed inside a fleet barrier round"
        );
    }
    let image = crashed
        .machine()
        .take_crash_image()
        .expect("hook produced a durable image");
    let truth = truth.borrow_mut().take().expect("hook captured the oracle");

    // The crash run is bit-identical to the clean run up to the crash, so
    // everything committed at the crash instant appears, byte-for-byte, in
    // the clean twin's full log.
    for rec in truth.records() {
        assert!(
            clean_log.records().contains(rec),
            "crash-time commit is a subset of the clean run's commits"
        );
    }

    // 3. Decode the salvaged bytes; a torn tail must be detected and cut.
    let (prefix, err) = CommandLog::from_bytes_prefix(&image.log);
    let expect_torn = torn && !truth.is_empty();
    if expect_torn {
        let err = err.expect("torn tail is reported");
        assert!(err.is_torn_tail(), "torn tail classified as torn: {err}");
        assert_eq!(prefix.len(), truth.len() - 1, "all whole records salvaged");
    } else {
        assert!(err.is_none(), "clean image decodes fully: {err:?}");
        assert_eq!(prefix.len(), truth.len());
    }
    assert_eq!(
        prefix.records(),
        &truth.records()[..prefix.len()],
        "salvaged records survive byte-for-byte"
    );

    // 4. Recover on a fresh machine and compare against a reference replay
    // of the oracle prefix on another fresh machine.
    let mut rec = Sys::build(workload, None);
    assert_eq!(
        Checkpoint::from_bytes(&image.checkpoint).expect("checkpoint decodes"),
        Checkpoint::dump(rec.machine()),
        "salvaged checkpoint equals the load-time image"
    );
    assert_eq!(prefix.replay(rec.machine()), prefix.len());

    let mut reference = Sys::build(workload, None);
    let oracle = CommandLog::from_records(truth.records()[..prefix.len()].to_vec());
    oracle.replay(reference.machine());
    assert_eq!(
        Checkpoint::dump(rec.machine()),
        Checkpoint::dump(reference.machine()),
        "recovered image equals the committed-prefix re-execution"
    );
    rec.assert_invariants();

    ChaosReport {
        workload,
        total_txns: blocks.len(),
        crash_cycle: Some(crash_cycle),
        committed_at_crash: truth.len(),
        salvaged: prefix.len(),
        torn: expect_torn,
        dropped: 0,
    }
}

/// Drop the scheduled interconnect sends mid-run and assert the retry +
/// dedup layer fully absorbs the loss: every transaction commits, the NoC
/// accounting identity balances, workload invariants hold, and replaying
/// the captured log on a fresh machine reproduces the final state exactly.
pub fn run_noc_drop(workload: ChaosWorkload, drops: &[u64], seed: u64) -> ChaosReport {
    let mut sys = Sys::build(workload, Some(chaos_retry()));
    let mut plan = FaultPlan::none();
    for &n in drops {
        plan = plan.drop_nth_send(n);
    }
    sys.machine().set_fault_plan(plan);
    let blocks = sys.submit_batch(seed);
    let m = sys.machine();
    m.run_to_quiescence_limit(RUN_LIMIT);
    let out = m.retry_to_completion(
        &blocks,
        RetryBudget {
            max_attempts: 128,
            backoff_cycles: 0,
        },
        RUN_LIMIT,
    );
    assert!(out.all_committed(), "losses absorbed by retries: {out:?}");
    let s = m.noc().stats();
    assert!(s.dropped >= 1, "the drop schedule actually fired: {s:?}");
    assert_eq!(
        s.sent,
        s.delivered + s.dropped + m.noc().in_flight(),
        "NoC conservation: {s:?}"
    );
    assert_eq!(m.noc().in_flight(), 0, "quiescent interconnect");
    sys.assert_invariants();

    // The log captured from the lossy run replays to the identical image
    // on a pristine machine: lost/retried/deduplicated messages left no
    // trace in durable state.
    let mut log = CommandLog::new();
    for &(w, blk) in &blocks {
        log.capture(sys.machine(), w, blk);
    }
    assert_eq!(log.len(), blocks.len());
    let final_state = Checkpoint::dump(sys.machine());
    let decoded = CommandLog::from_bytes(&log.to_bytes()).expect("clean log decodes");
    let mut rec = Sys::build(workload, None);
    assert_eq!(decoded.replay(rec.machine()), blocks.len());
    assert_eq!(
        Checkpoint::dump(rec.machine()),
        final_state,
        "replay of the lossy run's log reproduces its final state"
    );
    rec.assert_invariants();

    ChaosReport {
        workload,
        total_txns: blocks.len(),
        crash_cycle: None,
        committed_at_crash: blocks.len(),
        salvaged: blocks.len(),
        torn: false,
        dropped: s.dropped,
    }
}
