//! Criterion microbenchmarks: one group per paper exhibit (scaled down to
//! criterion-friendly runtimes) plus substrate microbenches. The full
//! sweeps live in the `fig*`/`table*` binaries; these track regressions.

use bionicdb::ExecMode;
use bionicdb_cpu_model::{CoreModel, CpuConfig, NullTracer, Tracer};
use bionicdb_fpga::{Dram, FpgaConfig, MemKind, MemRequest, Tag};
use bionicdb_silo::{SiloDb, SwIndexKind, TableDef};
use bionicdb_workloads::ycsb::{YcsbBionic, YcsbKind, YcsbSilo};
use bionicdb_workloads::YcsbSpec;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

/// A tiny spec so each criterion iteration is milliseconds.
fn tiny_spec() -> YcsbSpec {
    YcsbSpec {
        records_per_partition: 5_000,
        payload_len: 100,
        ..YcsbSpec::default()
    }
}

fn tiny_ycsb(workers: usize) -> YcsbBionic {
    let cfg = bionicdb::BionicConfig {
        workers,
        mode: ExecMode::Interleaved,
        ..bionicdb::BionicConfig::small(workers)
    };
    YcsbBionic::build(cfg, tiny_spec(), 60)
}

/// Substrate: raw DRAM-model issue/deliver throughput.
fn bench_dram(c: &mut Criterion) {
    c.bench_function("fpga_dram_issue_tick", |b| {
        let cfg = FpgaConfig::default();
        let mut dram = Dram::new(&cfg, 1 << 24);
        let port = dram.register_port();
        let mut now = 0u64;
        b.iter(|| {
            now += 1;
            let _ = dram.issue(
                now,
                port,
                MemRequest {
                    addr: (now * 64) % (1 << 24),
                    kind: MemKind::Read { len: 8 },
                    tag: Tag(0),
                },
            );
            dram.tick(now);
            while dram.pop_response(port).is_some() {}
        });
    });
}

/// Fig 9a (scaled): simulated YCSB-C transactions on one worker.
fn bench_fig09_bionic_ycsb(c: &mut Criterion) {
    c.bench_function("fig09_bionicdb_ycsbc_txn", |b| {
        let mut y = tiny_ycsb(1);
        let size = y.block_size(YcsbKind::ReadLocal);
        let blk = y.machine.alloc_block(0, size);
        let mut rng = YcsbBionic::rng(1);
        b.iter(|| {
            y.submit_txn(0, blk, YcsbKind::ReadLocal, &mut rng);
            y.machine.run_to_quiescence_limit(1 << 24);
        });
    });
}

/// Fig 9a (scaled): modelled Silo YCSB-C transaction.
fn bench_fig09_silo_model(c: &mut Criterion) {
    c.bench_function("fig09_silo_model_ycsbc_txn", |b| {
        let sys = YcsbSilo::build(tiny_spec(), 1);
        let mut model = CoreModel::new(CpuConfig::default());
        let mut rng = YcsbBionic::rng(2);
        b.iter(|| sys.run_read_txn(&mut model, &mut rng, None));
    });
}

/// Fig 11d (scaled): wall-clock software index operations.
fn bench_fig11_sw_indexes(c: &mut Criterion) {
    let db = SiloDb::new(vec![
        TableDef::new("hash", SwIndexKind::Hash { buckets: 1 << 14 }, 64),
        TableDef::new("mass", SwIndexKind::Masstree, 64),
        TableDef::new("skip", SwIndexKind::Skiplist, 64),
    ]);
    for k in 0..10_000u64 {
        for t in 0..3 {
            db.load(t, k, vec![0u8; 64]);
        }
    }
    let mut g = c.benchmark_group("fig11_sw_index_ops");
    let mut k = 0u64;
    g.bench_function("hash_get", |b| {
        b.iter(|| {
            k = (k + 7) % 10_000;
            db.table(0).get(&mut NullTracer, k)
        })
    });
    g.bench_function("masstree_scan50", |b| {
        let mut out = Vec::with_capacity(50);
        b.iter(|| {
            k = (k + 7) % 9_000;
            out.clear();
            db.table(1).scan(&mut NullTracer, k, 50, &mut out)
        })
    });
    g.bench_function("skiplist_scan50", |b| {
        let mut out = Vec::with_capacity(50);
        b.iter(|| {
            k = (k + 7) % 9_000;
            out.clear();
            db.table(2).scan(&mut NullTracer, k, 50, &mut out)
        })
    });
    g.finish();
}

/// Silo OCC wall-clock commit path.
fn bench_silo_commit(c: &mut Criterion) {
    let db = SiloDb::new(vec![TableDef::new(
        "t",
        SwIndexKind::Hash { buckets: 1 << 14 },
        8,
    )]);
    for k in 0..10_000u64 {
        db.load(0, k, vec![0u8; 8]);
    }
    let mut k = 0u64;
    c.bench_function("silo_occ_update_commit", |b| {
        b.iter_batched(
            || {
                k = (k + 13) % 10_000;
                k
            },
            |key| {
                let mut t = db.txn();
                t.update(&mut NullTracer, 0, key, &key.to_le_bytes());
                t.commit(&mut NullTracer).unwrap()
            },
            BatchSize::SmallInput,
        )
    });
}

/// CPU cache model throughput.
fn bench_cpu_model(c: &mut Criterion) {
    c.bench_function("cpu_model_traced_read", |b| {
        let mut m = CoreModel::new(CpuConfig::default());
        let mut a = 0u64;
        b.iter(|| {
            a = a.wrapping_add(0x9e3779b97f4a7c15) & 0xffffff;
            m.read(a, 64);
        });
    });
}

/// Table 4: the resource/power model itself.
fn bench_power_model(c: &mut Criterion) {
    c.bench_function("table4_power_estimate", |b| {
        let cfg = FpgaConfig::default();
        let model = bionicdb_power::PowerModel::default();
        b.iter(|| {
            let rows = bionicdb_power::utilization(4, &cfg);
            model.estimate(&rows, cfg.clock_hz)
        });
    });
}

criterion_group!(
    benches,
    bench_dram,
    bench_fig09_bionic_ycsb,
    bench_fig09_silo_model,
    bench_fig11_sw_indexes,
    bench_silo_commit,
    bench_cpu_model,
    bench_power_model,
);
criterion_main!(benches);
