//! Integration and property tests for the serving subsystem.
//!
//! The unit tests inside `serve::{queue,arrival,sim,wall}` pin each piece;
//! these tests exercise the whole stack — workload mix, admission queue,
//! virtual-time engine, JSON rendering — together, plus two fixed-seed
//! properties over randomly drawn serving configurations:
//!
//! * **conservation** — every fresh request ends in exactly one terminal
//!   bucket, whatever the policy/retry/load combination draws;
//! * **saturation monotonicity** — past saturation, pushing the
//!   no-control baseline harder never *raises* its goodput (the collapse
//!   only deepens with overload).

use bionicdb_bench::json;
use bionicdb_bench::serve::sim::{probe_service_ns, simulate};
use bionicdb_bench::serve::{ArrivalProcess, RetryMode, ServeConfig, ShedPolicy};
use bionicdb_workloads::{ServeKind, ServeMix};
use proptest::prelude::*;

/// Mean service time for SmallBank at scale 1 — probed once per process;
/// service times are deterministic, so sharing the probe is sound.
fn smallbank_svc_ns() -> f64 {
    probe_service_ns(&ServeMix::build(ServeKind::SmallBank, 1), 1, 50)
}

#[test]
fn every_kind_serves_and_renders_valid_json() {
    for kind in ServeKind::ALL {
        let svc = probe_service_ns(&ServeMix::build(kind, 1), kind.seed(), 30);
        let cfg = ServeConfig::controlled(
            ArrivalProcess::Poisson {
                rate_per_sec: 0.8 * 2.0 * 1e9 / svc,
            },
            60,
            (svc * 30.0) as u64,
            2,
            kind.seed(),
        );
        let sum = simulate(&ServeMix::build(kind, 1), &cfg);
        assert_eq!(sum.fresh, 60, "{}: all requests born", kind.name());
        assert!(sum.good > 0, "{}: something commits in time", kind.name());
        let row = sum.render_json(kind.name());
        json::validate(&row).unwrap_or_else(|e| {
            panic!("{}: serve row must be valid JSON: {e}\n{row}", kind.name())
        });
    }
}

#[test]
fn burst_arrivals_shed_more_than_steady_at_equal_mean_rate() {
    // An MMPP with the same mean rate as a Poisson process concentrates
    // arrivals into bursts; the bounded queue must shed strictly more.
    let svc = smallbank_svc_ns();
    let cap = 2.0 * 1e9 / svc;
    let deadline = (svc * 20.0) as u64;
    let steady = simulate(
        &ServeMix::build(ServeKind::SmallBank, 1),
        &ServeConfig::controlled(
            ArrivalProcess::Poisson { rate_per_sec: cap },
            400,
            deadline,
            2,
            3,
        ),
    );
    // Burst phase at 4x capacity, base at ~0.57x: mean ~= 1x capacity.
    let bursty = simulate(
        &ServeMix::build(ServeKind::SmallBank, 1),
        &ServeConfig::controlled(
            ArrivalProcess::Mmpp {
                base_rate: 0.57 * cap,
                burst_rate: 4.0 * cap,
                mean_base_ns: (svc * 700.0) as u64,
                mean_burst_ns: (svc * 100.0) as u64,
            },
            400,
            deadline,
            2,
            3,
        ),
    );
    let lost = |s: &bionicdb_bench::serve::ServeSummary| s.shed + s.timed_out;
    assert!(
        lost(&bursty) > lost(&steady),
        "bursts must stress the queue harder: bursty {:?} vs steady {:?}",
        lost(&bursty),
        lost(&steady)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn ledger_conserved_for_arbitrary_configs(
        policy_ix in 0usize..4,
        retry_ix in 0usize..3,
        mult_tenths in 3u64..30,
        capacity in 1usize..12,
        deadline_mults in 4u64..40,
        seed in 0u64..1000,
    ) {
        let policy = [
            ShedPolicy::None,
            ShedPolicy::FailFast,
            ShedPolicy::LifoSlack,
            ShedPolicy::DeadlineDrop,
        ][policy_ix];
        let svc = smallbank_svc_ns();
        let mut cfg = ServeConfig::controlled(
            ArrivalProcess::Poisson {
                rate_per_sec: mult_tenths as f64 / 10.0 * 2.0 * 1e9 / svc,
            },
            80,
            (svc * deadline_mults as f64) as u64,
            2,
            seed,
        );
        cfg.policy = policy;
        cfg.queue_capacity = capacity;
        cfg.retry = [
            RetryMode::None,
            RetryMode::Immediate { max_attempts: 3 },
            cfg.retry, // the controlled default: budgeted backoff
        ][retry_ix];
        // `simulate` calls `assert_conserved()` before returning; the
        // property is that no drawn configuration can violate it.
        let sum = simulate(&ServeMix::build(ServeKind::SmallBank, 1), &cfg);
        prop_assert_eq!(sum.fresh, 80);
        prop_assert_eq!(sum.sojourn.count(), sum.good);
        prop_assert!(sum.good_busy_ns <= sum.busy_ns);
    }

    #[test]
    fn baseline_goodput_never_rises_past_saturation(
        lo_tenths in 13u64..25,
        extra_tenths in 5u64..20,
        seed in 0u64..100,
    ) {
        // Two overload points for the no-control baseline, the second
        // strictly deeper into overload. The server is saturated at both,
        // so its goodput can only erode further (small tolerance for the
        // discreteness of a finite run).
        let svc = smallbank_svc_ns();
        let cap = 2.0 * 1e9 / svc;
        let deadline = (svc * 25.0) as u64;
        let run = |mult: f64| {
            simulate(
                &ServeMix::build(ServeKind::SmallBank, 1),
                &ServeConfig::baseline(
                    ArrivalProcess::Poisson { rate_per_sec: mult * cap },
                    500,
                    deadline,
                    2,
                    seed,
                ),
            )
        };
        let lo = run(lo_tenths as f64 / 10.0);
        let hi = run((lo_tenths + extra_tenths) as f64 / 10.0);
        prop_assert!(
            hi.goodput_per_sec() <= lo.goodput_per_sec() * 1.05,
            "deeper overload must not raise baseline goodput: {} -> {}",
            lo.goodput_per_sec(),
            hi.goodput_per_sec()
        );
    }
}
