//! Injection-equivalence properties for the streaming machine API
//! (DESIGN.md §17): entering a whole batch through `Machine::inject_txn`
//! at cycle 0 and driving it with `Machine::step_until` is byte-identical
//! — full `MachineReport::to_json()` — to the legacy preload path
//! (`submit` everything, then `run_to_quiescence`), across the strict,
//! fast-forward, and epoch-parallel schedules.
//!
//! The only degree of freedom `step_until` adds is *where the clock
//! stops*: it lands on its target even when the machine quiesced earlier,
//! charging idle accounting for the tail. Both paths therefore finish by
//! stepping to the same chunk-aligned boundary, so the idle tails match
//! and any byte difference is a real divergence in execution, not an
//! artifact of when the report was taken.

use bionicdb::BionicConfig;
use bionicdb_workloads::{StdWorkload, Workload};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Schedules the equivalence must hold across. Epoch-parallel only
/// engages under fast-forward with >1 worker, which the config below
/// guarantees.
const SCHEDULES: [(bool, usize); 3] = [(false, 1), (true, 1), (true, 2)];

fn build(which: usize, workers: usize) -> Box<dyn Workload> {
    let all = [
        StdWorkload::Ycsb(bionicdb_workloads::ycsb::YcsbKind::ReadHomed),
        StdWorkload::Tpcc(bionicdb_workloads::TpccMix::Mixed),
        StdWorkload::SmallBank,
    ];
    all[which % all.len()].build(BionicConfig::small(workers))
}

/// Populate and enter `txns` blocks per worker at cycle 0 (worker-major,
/// one RNG from the workload seed — the same order `bench::drive` uses),
/// then drive to quiescence via `mode`, finishing at the first multiple
/// of `chunk` at/after quiescence. Returns the full report JSON.
fn run_path(
    which: usize,
    workers: usize,
    txns: usize,
    chunk: u64,
    fast_forward: bool,
    threads: usize,
    inject: bool,
) -> String {
    let mut w = build(which, workers);
    w.machine().set_fast_forward(fast_forward);
    w.machine().set_sim_threads(threads);
    let mut blocks = Vec::with_capacity(workers * txns);
    for wk in 0..workers {
        for i in 0..txns {
            let size = w.block_size(wk, i);
            let blk = w.machine().alloc_block(wk, size);
            blocks.push((wk, i, blk));
        }
    }
    let mut rng = SmallRng::seed_from_u64(w.seed());
    // `Workload::submit` populates the block and enters it through
    // `Machine::submit` — the exact call `Machine::inject_txn` aliases —
    // so at cycle 0 both paths feed the machine identically; they differ
    // only in the driver that advances the clock afterwards.
    for &(wk, i, blk) in &blocks {
        w.submit(wk, i, blk, &mut rng);
    }
    if inject {
        let mut rounds = 0u32;
        while !w.machine_ref().is_quiescent() {
            let target = w.machine_ref().now() + chunk;
            w.machine().step_until(target);
            rounds += 1;
            assert!(rounds < 1 << 16, "streamed run failed to quiesce");
        }
    } else {
        w.machine().run_to_quiescence();
        let now = w.machine_ref().now();
        let aligned = now.div_ceil(chunk) * chunk;
        w.machine().step_until(aligned);
    }
    assert!(w.machine_ref().is_quiescent());
    w.validate();
    w.machine_ref().report().to_json()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Whole-batch injection at cycle 0 reproduces the preloaded report
    /// byte-for-byte under every schedule. The preload path under serial
    /// fast-forward is the canonical reference; each schedule's streamed
    /// run (and the strict preload run) must match it exactly.
    #[test]
    fn inject_at_cycle_zero_matches_preload(
        which in 0usize..3,
        txns in 1usize..4,
        chunk in prop_oneof![Just(257u64), Just(1024u64), Just(4093u64)],
    ) {
        let workers = 2;
        let canon = run_path(which, workers, txns, chunk, true, 1, false);
        for (ff, threads) in SCHEDULES {
            let streamed = run_path(which, workers, txns, chunk, ff, threads, true);
            prop_assert_eq!(
                &streamed, &canon,
                "streamed (ff={}, threads={}) diverged from preload", ff, threads
            );
        }
        let strict_preload = run_path(which, workers, txns, chunk, false, 1, false);
        prop_assert_eq!(&strict_preload, &canon, "strict preload diverged");
    }
}
