//! Property tests for the cache simulator and timing model.

use bionicdb_cpu_model::{Cache, CoreModel, CpuConfig, Tracer};
use proptest::prelude::*;
use std::collections::VecDeque;

/// A straightforward reference LRU model for one cache set.
#[derive(Default)]
struct RefSet {
    lines: VecDeque<u64>,
}

impl RefSet {
    fn access(&mut self, tag: u64, assoc: usize) -> bool {
        if let Some(pos) = self.lines.iter().position(|&t| t == tag) {
            let t = self.lines.remove(pos).unwrap();
            self.lines.push_front(t);
            true
        } else {
            if self.lines.len() >= assoc {
                self.lines.pop_back();
            }
            self.lines.push_front(tag);
            false
        }
    }
}

proptest! {
    /// The set-associative cache agrees with a reference LRU model on any
    /// access sequence confined to one set.
    #[test]
    fn cache_matches_reference_lru(tags in proptest::collection::vec(0u64..32, 1..300)) {
        // 8 KiB, 4-way, 64 B lines -> 32 sets; confine to set 0 by striding
        // by (sets * line).
        let assoc = 4;
        let mut cache = Cache::new(8 << 10, assoc, 64);
        let mut reference = RefSet::default();
        for &tag in &tags {
            let addr = tag * 32 * 64; // same set, distinct tags
            let hit = cache.access(addr);
            let ref_hit = reference.access(tag, assoc);
            prop_assert_eq!(hit, ref_hit, "tag {}", tag);
        }
    }

    /// Timing is monotone: modelled cycles never decrease, and every access
    /// costs at least the L1 latency and at most the DRAM latency (plus
    /// streaming lines).
    #[test]
    fn model_time_is_monotone_and_bounded(addrs in proptest::collection::vec(any::<u32>(), 1..200)) {
        let cfg = CpuConfig::default();
        let mut m = CoreModel::new(cfg.clone());
        let mut last = 0;
        for &a in &addrs {
            m.read(a as u64, 8);
            let now = m.cycles();
            prop_assert!(now >= last + cfg.l1_latency);
            // An 8-byte read can straddle two lines: the second line is a
            // streaming access charged at a quarter latency.
            prop_assert!(now <= last + cfg.dram_latency + cfg.dram_latency / 4);
            last = now;
        }
    }

    /// A chain always costs at least as much as its parts would at MLP=∞
    /// and exactly the sum of its access latencies plus the chain compute
    /// at overlap 1.
    #[test]
    fn chain_cost_is_sum_of_dependent_accesses(n in 1usize..16) {
        let cfg = CpuConfig::default();
        // Two identical models; one measures individual accesses, the
        // other the chain. Cold caches, distinct lines.
        let mut single = CoreModel::new(cfg.clone());
        let mut chained = CoreModel::new(cfg.clone());
        let mut sum = 0;
        for i in 0..n {
            let before = single.cycles();
            single.read(i as u64 * (1 << 20), 8);
            sum += single.cycles() - before;
        }
        chained.begin_group(1);
        chained.begin_chain();
        for i in 0..n {
            chained.read(i as u64 * (1 << 20), 8);
        }
        chained.end_chain();
        chained.end_group();
        prop_assert_eq!(chained.cycles(), sum + cfg.chain_compute);
    }

    /// Overlap never exceeds the configured MLP, never goes below 1.
    #[test]
    fn group_overlap_is_clamped(independent in 0usize..64) {
        let cfg = CpuConfig::default();
        let mut m = CoreModel::new(cfg.clone());
        m.begin_group(independent);
        m.begin_chain();
        m.read(1 << 22, 8);
        m.end_chain();
        m.end_group();
        let t = m.cycles() as f64;
        let full = (cfg.dram_latency + cfg.chain_compute) as f64;
        prop_assert!(t >= full / cfg.mlp - 1.0, "t={t} full={full}");
        prop_assert!(t <= full + 1.0);
    }
}
