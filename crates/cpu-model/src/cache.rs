//! A set-associative LRU cache simulator.

/// One level of set-associative cache with true-LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    /// `sets[set]` = lines ordered most-recently-used first.
    sets: Vec<Vec<u64>>,
    assoc: usize,
    set_shift: u32,
    set_mask: u64,
    line_shift: u32,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Build a cache of `bytes` capacity, `assoc` ways and `line`-byte
    /// lines. Capacity must divide evenly into sets; the set count is
    /// rounded down to a power of two.
    pub fn new(bytes: u64, assoc: usize, line: u64) -> Self {
        assert!(line.is_power_of_two() && assoc > 0);
        let lines = (bytes / line).max(1);
        let sets = (lines / assoc as u64).max(1).next_power_of_two() >> 1;
        let sets = sets.max(1);
        Cache {
            sets: (0..sets).map(|_| Vec::with_capacity(assoc)).collect(),
            assoc,
            set_shift: line.trailing_zeros(),
            set_mask: sets - 1,
            line_shift: line.trailing_zeros(),
            hits: 0,
            misses: 0,
        }
    }

    fn set_of(&self, addr: u64) -> usize {
        ((addr >> self.set_shift) & self.set_mask) as usize
    }

    fn tag_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// Access the line containing `addr`: returns true on hit. Misses
    /// install the line (evicting LRU).
    pub fn access(&mut self, addr: u64) -> bool {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let lines = &mut self.sets[set];
        if let Some(pos) = lines.iter().position(|&t| t == tag) {
            let t = lines.remove(pos);
            lines.insert(0, t);
            self.hits += 1;
            true
        } else {
            if lines.len() >= self.assoc {
                lines.pop();
            }
            lines.insert(0, tag);
            self.misses += 1;
            false
        }
    }

    /// Hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate over all accesses so far.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Forget all cached lines (keeps statistics).
    pub fn flush(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(1 << 15, 8, 64);
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1038), "same 64-byte line");
        assert!(!c.access(0x1040), "next line misses");
    }

    #[test]
    fn lru_evicts_oldest() {
        // Direct-mapped-ish tiny cache: 2 ways, 1 set (128 B).
        let mut c = Cache::new(128, 2, 64);
        c.access(0); // set 0
        c.access(1 << 12); // same set, second way
        assert!(c.access(0), "still resident");
        c.access(2 << 12); // evicts LRU = 1<<12
        assert!(!c.access(1 << 12), "evicted");
    }

    #[test]
    fn working_set_larger_than_cache_misses() {
        let mut c = Cache::new(1 << 15, 8, 64); // 32 KB
                                                // Stream 1 MB twice: second pass still misses (capacity).
        for pass in 0..2 {
            let mut misses = 0;
            for i in 0..(1 << 14) {
                if !c.access(i * 64) {
                    misses += 1;
                }
            }
            assert!(misses > (1 << 13), "pass {pass}: {misses} misses");
        }
    }

    #[test]
    fn small_working_set_fits() {
        let mut c = Cache::new(1 << 15, 8, 64);
        for _ in 0..4 {
            for i in 0..256 {
                c.access(i * 64); // 16 KB working set
            }
        }
        assert!(c.hit_rate() > 0.7, "hit rate {}", c.hit_rate());
    }

    #[test]
    fn flush_empties_contents() {
        let mut c = Cache::new(1 << 15, 8, 64);
        c.access(0x40);
        c.flush();
        assert!(!c.access(0x40));
    }
}
