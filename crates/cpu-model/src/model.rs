//! The per-core timing model and the [`Tracer`] abstraction.

use crate::cache::Cache;
use crate::config::CpuConfig;

/// Interface the software engine uses to report its memory behaviour.
///
/// Engines are generic over this trait: wall-clock benchmarks pass
/// [`NullTracer`] (all methods compile to nothing), the paper-figure
/// harness passes [`CoreModel`].
pub trait Tracer {
    /// A dependent memory read of `len` bytes at `addr` (part of the
    /// current chain, or an isolated access).
    fn read(&mut self, addr: u64, len: u64);
    /// A memory write of `len` bytes at `addr`.
    fn write(&mut self, addr: u64, len: u64);
    /// Pure compute work of `cycles` cycles.
    fn compute(&mut self, cycles: u64);
    /// Begin a dependent pointer chain (one index probe).
    fn begin_chain(&mut self);
    /// End the current chain.
    fn end_chain(&mut self);
    /// Begin a group of `independent` chains the core may overlap.
    fn begin_group(&mut self, independent: usize);
    /// End the current group.
    fn end_group(&mut self);
}

/// A tracer that does nothing (for real wall-clock execution).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullTracer;

impl Tracer for NullTracer {
    #[inline(always)]
    fn read(&mut self, _addr: u64, _len: u64) {}
    #[inline(always)]
    fn write(&mut self, _addr: u64, _len: u64) {}
    #[inline(always)]
    fn compute(&mut self, _cycles: u64) {}
    #[inline(always)]
    fn begin_chain(&mut self) {}
    #[inline(always)]
    fn end_chain(&mut self) {}
    #[inline(always)]
    fn begin_group(&mut self, _independent: usize) {}
    #[inline(always)]
    fn end_group(&mut self) {}
}

/// Model statistics.
#[derive(Debug, Default, Clone, Copy)]
pub struct ModelStats {
    /// Memory accesses traced.
    pub accesses: u64,
    /// Accesses that missed all the way to DRAM.
    pub dram_accesses: u64,
    /// Chains observed.
    pub chains: u64,
}

/// The timing model for one core: a private L1/L2, a (share of the) L3 and
/// the chain/group overlap accounting.
#[derive(Debug)]
pub struct CoreModel {
    cfg: CpuConfig,
    l1: Cache,
    l2: Cache,
    l3: Cache,
    cycles: f64,
    /// Latency accumulated in the current chain.
    chain_lat: u64,
    in_chain: bool,
    /// Overlap divisor for chains in the current group.
    overlap: f64,
    stats: ModelStats,
}

impl CoreModel {
    /// Build a model from `cfg`.
    pub fn new(cfg: CpuConfig) -> Self {
        let l1 = Cache::new(cfg.l1_bytes, cfg.l1_assoc, cfg.line);
        let l2 = Cache::new(cfg.l2_bytes, cfg.l2_assoc, cfg.line);
        let l3 = Cache::new(cfg.l3_bytes, cfg.l3_assoc, cfg.line);
        CoreModel {
            cfg,
            l1,
            l2,
            l3,
            cycles: 0.0,
            chain_lat: 0,
            in_chain: false,
            overlap: 1.0,
            stats: ModelStats::default(),
        }
    }

    /// Total modelled cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles as u64
    }

    /// Modelled seconds.
    pub fn secs(&self) -> f64 {
        self.cfg.cycles_to_secs(self.cycles as u64)
    }

    /// Model statistics.
    pub fn stats(&self) -> ModelStats {
        self.stats
    }

    /// The configuration in use.
    pub fn config(&self) -> &CpuConfig {
        &self.cfg
    }

    /// Reset the clock (keeps cache contents warm — useful to measure a
    /// steady-state window after a warm-up pass).
    pub fn reset_clock(&mut self) {
        self.cycles = 0.0;
        self.stats = ModelStats::default();
    }

    fn access_latency(&mut self, addr: u64) -> u64 {
        self.stats.accesses += 1;
        if self.l1.access(addr) {
            return self.cfg.l1_latency;
        }
        if self.l2.access(addr) {
            return self.cfg.l2_latency;
        }
        if self.l3.access(addr) {
            return self.cfg.l3_latency;
        }
        self.stats.dram_accesses += 1;
        self.cfg.dram_latency
    }

    fn charge(&mut self, lat: u64) {
        if self.in_chain {
            self.chain_lat += lat;
        } else {
            self.cycles += lat as f64 / self.overlap;
        }
    }

    fn touch(&mut self, addr: u64, len: u64) {
        // One hierarchy access per touched line; lines after the first are
        // sequential (hardware prefetch hides most of their latency) so
        // only the first line pays the full dependent latency.
        let line = self.cfg.line;
        let first = addr / line;
        let last = (addr + len.max(1) - 1) / line;
        let lat = self.access_latency(addr);
        self.charge(lat);
        for l in (first + 1)..=last {
            let lat = self.access_latency(l * line);
            // Streaming accesses overlap: charge a quarter.
            self.charge(lat / 4);
        }
    }
}

impl Tracer for CoreModel {
    fn read(&mut self, addr: u64, len: u64) {
        self.touch(addr, len);
    }

    fn write(&mut self, addr: u64, len: u64) {
        self.touch(addr, len);
    }

    fn compute(&mut self, cycles: u64) {
        // Compute does not overlap with other chains in this model.
        self.cycles += cycles as f64;
    }

    fn begin_chain(&mut self) {
        debug_assert!(!self.in_chain, "chains do not nest");
        self.in_chain = true;
        self.chain_lat = 0;
    }

    fn end_chain(&mut self) {
        debug_assert!(self.in_chain);
        self.in_chain = false;
        self.stats.chains += 1;
        let lat = self.chain_lat + self.cfg.chain_compute;
        self.cycles += lat as f64 / self.overlap;
    }

    fn begin_group(&mut self, independent: usize) {
        self.overlap = self.cfg.mlp.min(independent.max(1) as f64).max(1.0);
    }

    fn end_group(&mut self) {
        self.overlap = 1.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CoreModel {
        CoreModel::new(CpuConfig::default())
    }

    #[test]
    fn cold_read_costs_dram_warm_read_costs_l1() {
        let mut m = model();
        m.read(0x10000, 8);
        let cold = m.cycles();
        m.read(0x10000, 8);
        let warm = m.cycles() - cold;
        assert_eq!(cold, CpuConfig::default().dram_latency);
        assert_eq!(warm, CpuConfig::default().l1_latency);
    }

    #[test]
    fn chain_latencies_add_up() {
        let mut m = model();
        m.begin_chain();
        m.read(0x100000, 8);
        m.read(0x200000, 8);
        m.read(0x300000, 8);
        m.end_chain();
        let cfg = CpuConfig::default();
        assert_eq!(m.cycles(), 3 * cfg.dram_latency + cfg.chain_compute);
    }

    #[test]
    fn independent_chains_overlap_up_to_mlp() {
        // 8 independent single-miss chains with MLP 4 take ~2 misses of
        // time; the same 8 chains declared dependent take ~8.
        let run = |independent: usize| {
            let mut m = model();
            m.begin_group(independent);
            for i in 0..8u64 {
                m.begin_chain();
                m.read(0x100000 + i * 0x100000, 8);
                m.end_chain();
            }
            m.end_group();
            m.cycles()
        };
        let dependent = run(1);
        let parallel = run(8);
        let mlp = CpuConfig::default().mlp;
        let ratio = dependent as f64 / parallel as f64;
        assert!(
            (mlp - 0.5..mlp + 0.5).contains(&ratio),
            "MLP-{mlp} speedup, got ratio {ratio} ({dependent} vs {parallel})"
        );
    }

    #[test]
    fn large_working_set_goes_to_dram() {
        let mut m = model();
        // Touch 64 MB once (beyond L3 share), then re-touch: still misses L1/L2
        // and mostly L3/DRAM.
        for i in 0..(1 << 16) {
            m.read(i * 1024, 8);
        }
        let s = m.stats();
        assert!(
            s.dram_accesses > (1 << 15),
            "{} DRAM accesses",
            s.dram_accesses
        );
    }

    #[test]
    fn sequential_bytes_charge_less_than_random() {
        let cfg = CpuConfig::default();
        let mut seq = model();
        seq.read(0x400000, 1024); // 16 lines, streaming
        let mut rnd = model();
        for i in 0..16u64 {
            rnd.read(0x400000 + i * 0x100000, 64);
        }
        assert!(
            seq.cycles() < rnd.cycles() / 2,
            "{} vs {}",
            seq.cycles(),
            rnd.cycles()
        );
        let _ = cfg;
    }

    #[test]
    fn reset_clock_keeps_cache_warm() {
        let mut m = model();
        m.read(0x5000, 8);
        m.reset_clock();
        assert_eq!(m.cycles(), 0);
        m.read(0x5000, 8);
        assert_eq!(m.cycles(), CpuConfig::default().l1_latency);
    }
}
