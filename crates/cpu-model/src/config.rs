//! Xeon E7-4807 model constants.

/// Configuration of the modelled CPU core and its cache hierarchy.
///
/// Defaults model one core of the paper's Intel Xeon E7-4807 (§5.2): six
/// cores per chip at 1.87 GHz, 32 KB private L1D, 256 KB private L2, 18 MB
/// L3 shared by the six cores of a chip. Latencies follow paper Table 3
/// (L3 20 ns, DDR3 80 ns) with conventional L1/L2 values.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuConfig {
    /// Core clock in Hz (1.87 GHz).
    pub clock_hz: u64,
    /// Cache line size in bytes.
    pub line: u64,
    /// L1 data cache size in bytes.
    pub l1_bytes: u64,
    /// L1 associativity.
    pub l1_assoc: usize,
    /// L1 hit latency in cycles.
    pub l1_latency: u64,
    /// L2 size in bytes.
    pub l2_bytes: u64,
    /// L2 associativity.
    pub l2_assoc: usize,
    /// L2 hit latency in cycles.
    pub l2_latency: u64,
    /// L3 capacity *available to this core* in bytes. The 18 MB L3 is
    /// shared by six cores; under a symmetric workload each core's working
    /// set effectively competes for a 1/6 share.
    pub l3_bytes: u64,
    /// L3 associativity.
    pub l3_assoc: usize,
    /// L3 hit latency in cycles (paper Table 3: 20 ns ≈ 37 cycles).
    pub l3_latency: u64,
    /// DRAM latency in cycles (paper Table 3: 80 ns ≈ 150 cycles).
    pub dram_latency: u64,
    /// Maximum independent miss chains the out-of-order window can overlap.
    /// Small, per the paper's argument that the limited instruction window
    /// binds group/dynamic prefetching (§3.1); calibrated against the
    /// paper's measured Silo rates (EXPERIMENTS.md).
    pub mlp: f64,
    /// Fixed instruction-execution cost charged per chain (index-probe
    /// bookkeeping: hashing, comparisons, branches, read-set handling).
    pub chain_compute: u64,
}

impl Default for CpuConfig {
    fn default() -> Self {
        let ghz = 1.87;
        let ns = |t: f64| (t * ghz).round() as u64;
        CpuConfig {
            clock_hz: 1_870_000_000,
            line: 64,
            l1_bytes: 32 << 10,
            l1_assoc: 8,
            l1_latency: 4,
            l2_bytes: 256 << 10,
            l2_assoc: 8,
            l2_latency: 11,
            l3_bytes: (18 << 20) / 6,
            l3_assoc: 16,
            l3_latency: ns(20.0),
            dram_latency: ns(80.0),
            mlp: 1.0,
            chain_compute: 290,
        }
    }
}

impl CpuConfig {
    /// Convert cycles to seconds.
    pub fn cycles_to_secs(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz as f64
    }

    /// Nanoseconds for a cycle count.
    pub fn cycles_to_ns(&self, cycles: u64) -> f64 {
        cycles as f64 * 1e9 / self.clock_hz as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_match_paper_table3() {
        let c = CpuConfig::default();
        assert!((c.cycles_to_ns(c.l3_latency) - 20.0).abs() < 0.5);
        assert!((c.cycles_to_ns(c.dram_latency) - 80.0).abs() < 0.5);
    }
}
