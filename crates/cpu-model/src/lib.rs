//! A trace-driven CPU timing model for the software baseline.
//!
//! The paper compares BionicDB against Silo running on four Xeon E7-4807
//! chips (paper §5.2). We cannot run on that 2011 machine, so the benchmark
//! harness times the software engine in *model time*: the software index
//! structures emit their memory accesses into this crate's cache-hierarchy
//! simulator, which charges latencies with the paper's own constants
//! (Table 3: L3 ≈ 20 ns, DDR3 ≈ 80 ns; §5.2: 32 KB L1, 256 KB L2, 18 MB
//! shared L3, 1.87 GHz).
//!
//! The central argument of the paper — that OLTP on CPUs is bound by
//! *dependent pointer chasing* that the limited instruction window cannot
//! overlap (§3.1) — is modelled directly:
//!
//! * accesses inside one **chain** (one index probe) are fully dependent and
//!   their latencies add up;
//! * chains inside one **group** are independent, and the core may overlap
//!   up to [`CpuConfig::mlp`] of them (the out-of-order window bound);
//!   a group with a single chain (data-dependent transactions like TPC-C
//!   Payment) gets no overlap at all.
//!
//! The engine code is generic over the [`Tracer`] trait; the wall-clock
//! benchmarks instantiate it with [`NullTracer`] (zero overhead), the
//! paper-figure harness with [`CoreModel`].

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod cache;
pub mod config;
pub mod model;

pub use cache::Cache;
pub use config::CpuConfig;
pub use model::{CoreModel, NullTracer, Tracer};
