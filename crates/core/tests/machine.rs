//! Machine-level integration tests: CC semantics through stored
//! procedures, scans, removes, and engine bookkeeping.

use bionicdb::{
    asm::assemble, BionicConfig, BlockStatus, Machine, ProcId, SystemBuilder, TableMeta, TxnStatus,
};

fn one_worker() -> SystemBuilder {
    SystemBuilder::new(BionicConfig::small(1))
}

fn run_one(db: &mut Machine, proc: ProcId, inputs: &[(u64, u64)]) -> bionicdb::TxnBlock {
    let blk = db.alloc_block(0, 512);
    db.init_block(blk, proc);
    for &(off, v) in inputs {
        db.write_block_u64(blk, off, v);
    }
    db.submit(0, blk);
    db.run_to_quiescence_limit(1 << 24);
    blk
}

#[test]
fn remove_tombstones_and_hides_the_tuple() {
    let mut b = one_worker();
    let t = b.table(TableMeta::hash("kv", 8, 8, 1 << 8));
    let remove = b.proc(
        assemble(
            "proc rm\nlogic:\n    remove 0, 0, c0\ncommit:\n    ret g0, c0\n    cmp g0, 0\n    blt abort\n    getts g1\n    store g1, [g0+8]\n    mov g2, 2\n    store g2, [g0+24]\n    commit\nabort:\n    abort\n",
        )
        .unwrap(),
    );
    let search = b.proc(
        assemble(
            "proc rd\nlogic:\n    search 0, 0, c0\ncommit:\n    ret g0, c0\n    cmp g0, 0\n    blt abort\n    commit\nabort:\n    abort\n",
        )
        .unwrap(),
    );
    let mut db = b.build();
    db.loader(0)
        .insert(t, &5u64.to_le_bytes(), &1u64.to_le_bytes());

    let blk = run_one(&mut db, remove, &[(0, 5)]);
    assert!(db.block_status(blk).is_committed());
    // A search for the removed key now aborts (NotFound).
    let blk = run_one(&mut db, search, &[(0, 5)]);
    assert_eq!(db.block_status(blk), TxnStatus::Aborted);
    // Host-side lookup skips the tombstone too.
    assert!(db.loader(0).lookup(t, &5u64.to_le_bytes()).is_none());
    // Removing it again also aborts.
    let blk = run_one(&mut db, remove, &[(0, 5)]);
    assert_eq!(db.block_status(blk), TxnStatus::Aborted);
}

#[test]
fn scan_results_land_in_the_result_buffer_in_order() {
    let mut b = one_worker();
    let t = b.table(TableMeta::skiplist("ordered", 8, 16));
    let scan = b.proc(
        assemble(
            "proc sc\nlogic:\n    scan 0, 0, 5, 64, c0\ncommit:\n    ret g0, c0\n    store g0, [blk+8]\n    commit\nabort:\n    abort\n",
        )
        .unwrap(),
    );
    let mut db = b.build();
    for k in 0..20u64 {
        let mut p = [0u8; 16];
        p[..8].copy_from_slice(&k.to_le_bytes());
        db.loader(0).insert(t, &k.to_be_bytes(), &p);
    }
    let blk = db.alloc_block(0, 256);
    db.init_block(blk, scan);
    db.write_block(blk, 0, &7u64.to_be_bytes()); // start key (big-endian)
    db.submit(0, blk);
    db.run_to_quiescence_limit(1 << 24);
    assert!(db.block_status(blk).is_committed());
    assert_eq!(db.read_block_u64(blk, 8), 5, "scan count via CP register");
    for i in 0..5u64 {
        let payload = db.read_block(blk, 64 + i * 16, 8);
        assert_eq!(
            u64::from_le_bytes(payload.try_into().unwrap()),
            7 + i,
            "result {i} in order"
        );
    }
}

#[test]
fn repeatable_read_violation_aborts_the_reader() {
    // T1 (worker 0) reads key K twice with a compute gap; T2 on worker 1
    // updates K *remotely* in between — its background UPDATE is granted
    // (the reader only bumped the read timestamp) and marks K dirty. T1's
    // second read hits the dirty mark and must abort: the paper's
    // repeatable-read rule (§4.7: "If the second access to a previously
    // visited tuple is denied by concurrent updates, the transaction
    // should abort"). A single softcore cannot interleave mid-logic
    // (paper §4.5: no dynamic switching), so the conflicting writer must
    // be a remote worker.
    let mut b = SystemBuilder::new(BionicConfig::small(2));
    let t = b.table(TableMeta::hash("kv", 8, 8, 1 << 8));
    // Reader: two searches of the same key with a long compute gap so the
    // writer's update lands between them.
    let reader_src = r#"
proc reader
logic:
    search 0, 0, c0
    mov g1, 0
spin:
    add g1, 1
    cmp g1, 60
    blt spin
    search 0, 0, c1
commit:
    ret g0, c0
    cmp g0, 0
    blt abort
    ret g0, c1
    cmp g0, 0
    blt abort
    commit
abort:
    abort
"#;
    let writer_src = r#"
proc writer
logic:
    update 0, 0, c0, home=0
commit:
    ret g0, c0
    cmp g0, 0
    blt abort
    load g1, [blk+8]
    store g1, [g0+72]
    getts g2
    store g2, [g0+8]
    mov g3, 0
    store g3, [g0+24]
    commit
abort:
    abort
"#;
    let reader = b.proc(assemble(reader_src).unwrap());
    let writer = b.proc(assemble(writer_src).unwrap());
    let mut db = b.build();
    db.loader(0)
        .insert(t, &1u64.to_le_bytes(), &0u64.to_le_bytes());

    // The reader runs on worker 0; the conflicting writer on worker 1,
    // targeting worker 0's partition over the on-chip channels. The
    // reader's spin loop leaves time for the remote UPDATE to land
    // between its two searches.
    let r = db.alloc_block(0, 128);
    db.init_block(r, reader);
    db.write_block_u64(r, 0, 1);
    let w = db.alloc_block(1, 128);
    db.init_block(w, writer);
    db.write_block_u64(w, 0, 1);
    db.write_block_u64(w, 8, 99);
    db.submit(0, r);
    db.submit(1, w);
    db.run_to_quiescence_limit(1 << 24);

    // The reader's first read succeeded (older read_ts), the remote write
    // was granted, and the reader's second read saw the dirty mark.
    assert_eq!(
        db.block_status(r),
        TxnStatus::Aborted,
        "reader loses repeatable read"
    );
    assert!(db.block_status(w).is_committed());
    // The committed write is visible afterwards.
    let addr = db.loader(0).lookup(t, &1u64.to_le_bytes()).unwrap();
    let v = u64::from_le_bytes(db.loader(0).payload(t, addr)[..8].try_into().unwrap());
    assert_eq!(v, 99);
}

#[test]
fn stats_account_for_every_transaction() {
    let mut b = one_worker();
    let t = b.table(TableMeta::hash("kv", 8, 8, 1 << 8));
    let p = b.proc(
        assemble(
            "proc rd\nlogic:\n    search 0, 0, c0\ncommit:\n    ret g0, c0\n    cmp g0, 0\n    blt abort\n    commit\nabort:\n    abort\n",
        )
        .unwrap(),
    );
    let mut db = b.build();
    db.loader(0)
        .insert(t, &1u64.to_le_bytes(), &0u64.to_le_bytes());
    for i in 0..10u64 {
        // Half the searches hit, half miss (miss -> abort).
        run_one(&mut db, p, &[(0, i % 2)]);
    }
    let s = db.stats();
    assert_eq!(s.committed + s.aborted, 10);
    assert_eq!(s.committed, 5);
    assert_eq!(s.db_insts, 10);
    assert!(s.cpu_insts > 0 && s.batches >= 1);
}

#[test]
fn max_inflight_one_still_completes_everything() {
    // The tightest coprocessor bound (the Fig. 10 sweep's leftmost point)
    // must not deadlock anything.
    let mut b = SystemBuilder::new(BionicConfig::small(2));
    let t = b.table(TableMeta::hash("kv", 8, 8, 1 << 8));
    let p = b.proc(
        assemble(
            "proc rd\nlogic:\n    search 0, 0, c0\n    search 0, 8, c1, home=1\ncommit:\n    ret g0, c0\n    ret g0, c1\n    commit\nabort:\n    abort\n",
        )
        .unwrap(),
    );
    let mut db = b.build();
    for w in 0..2 {
        db.loader(w)
            .insert(t, &1u64.to_le_bytes(), &0u64.to_le_bytes());
    }
    db.set_max_inflight(1);
    for _ in 0..6 {
        let blk = db.alloc_block(0, 128);
        db.init_block(blk, p);
        db.write_block_u64(blk, 0, 1);
        db.write_block_u64(blk, 8, 1);
        db.submit(0, blk);
    }
    db.run_to_quiescence_limit(1 << 25);
    assert_eq!(db.stats().committed, 6);
}

#[test]
#[should_panic(expected = "region exhausted")]
fn block_arena_exhaustion_panics_clearly() {
    let mut cfg = BionicConfig::small(1);
    cfg.block_arena_bytes = 4096;
    let mut b = SystemBuilder::new(cfg);
    b.table(TableMeta::hash("kv", 8, 8, 16));
    let mut db = b.build();
    for _ in 0..100 {
        let _ = db.alloc_block(0, 256);
    }
}

#[test]
fn prefetched_ingest_is_deterministic_and_correct() {
    // The input-queue prefetcher must not change results, only timing; and
    // timing itself must stay deterministic.
    let run = || {
        let mut b = one_worker();
        let t = b.table(TableMeta::hash("kv", 8, 8, 1 << 8));
        let p = b.proc(
            assemble(
                "proc rd\nlogic:\n    search 0, 0, c0\ncommit:\n    ret g0, c0\n    cmp g0, 0\n    blt abort\n    store g0, [blk+8]\n    commit\nabort:\n    abort\n",
            )
            .unwrap(),
        );
        let mut db = b.build();
        for k in 0..32u64 {
            db.loader(0).insert(t, &k.to_le_bytes(), &k.to_le_bytes());
        }
        let mut blocks = Vec::new();
        for k in 0..32u64 {
            let blk = db.alloc_block(0, 128);
            db.init_block(blk, p);
            db.write_block_u64(blk, 0, k);
            db.submit(0, blk);
            blocks.push(blk);
        }
        db.run_to_quiescence_limit(1 << 25);
        let addrs: Vec<u64> = blocks.iter().map(|b| db.read_block_u64(*b, 8)).collect();
        (db.now(), db.stats().committed, addrs)
    };
    let a = run();
    let b = run();
    assert_eq!(a.1, 32);
    assert_eq!(a, b, "prefetching stays deterministic");
    // Every transaction found its own key's tuple.
    assert_eq!(a.2.len(), 32);
    assert!(
        a.2.windows(2).all(|w| w[0] != w[1]),
        "distinct tuples per key"
    );
}

#[test]
fn checkpoint_of_empty_database_is_empty_and_loadable() {
    use bionicdb::recovery::Checkpoint;
    let mut b = one_worker();
    b.table(TableMeta::hash("kv", 8, 8, 1 << 8));
    b.table(TableMeta::skiplist("sl", 8, 8));
    let db = b.build();
    let cp = Checkpoint::dump(&db);
    assert!(cp.tables.iter().flatten().all(|t| t.is_empty()));

    let mut b2 = one_worker();
    b2.table(TableMeta::hash("kv", 8, 8, 1 << 8));
    b2.table(TableMeta::skiplist("sl", 8, 8));
    let mut db2 = b2.build();
    cp.load_into(&mut db2);
    assert_eq!(Checkpoint::dump(&db2), cp);
}

#[test]
fn checkpoint_excludes_dirty_and_tombstoned_records() {
    use bionicdb::recovery::Checkpoint;
    use bionicdb_coproc::layout::{FLAG_DIRTY, FLAG_TOMBSTONE, TUPLE_HEADER};
    let mut b = one_worker();
    let t = b.table(TableMeta::hash("kv", 8, 8, 1 << 8));
    let mut db = b.build();
    let a1 = db
        .loader(0)
        .insert(t, &1u64.to_le_bytes(), &1u64.to_le_bytes());
    let a2 = db
        .loader(0)
        .insert(t, &2u64.to_le_bytes(), &2u64.to_le_bytes());
    db.loader(0)
        .insert(t, &3u64.to_le_bytes(), &3u64.to_le_bytes());
    // Mark key 1 dirty (in-flight) and key 2 tombstoned (deleted).
    db.dram_mut()
        .host_write_u64(a1 + TUPLE_HEADER + 16, FLAG_DIRTY);
    db.dram_mut()
        .host_write_u64(a2 + TUPLE_HEADER + 16, FLAG_TOMBSTONE);
    let cp = Checkpoint::dump(&db);
    let table0 = &cp.tables[0][t.0 as usize];
    assert_eq!(table0.len(), 1, "only the committed live record");
    assert!(table0.contains_key(3u64.to_le_bytes().as_slice()));
}

#[test]
fn resubmit_rejects_non_aborted_blocks() {
    let mut b = one_worker();
    let t = b.table(TableMeta::hash("kv", 8, 8, 1 << 8));
    let p = b.proc(
        assemble(
            "proc rd\nlogic:\n    search 0, 0, c0\ncommit:\n    ret g0, c0\n    cmp g0, 0\n    blt abort\n    commit\nabort:\n    abort\n",
        )
        .unwrap(),
    );
    let mut db = b.build();
    db.loader(0)
        .insert(t, &1u64.to_le_bytes(), &0u64.to_le_bytes());
    let blk = run_one(&mut db, p, &[(0, 1)]);
    assert!(db.block_status(blk).is_committed());
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        db.resubmit(0, blk);
    }));
    assert!(result.is_err(), "resubmitting a committed block must panic");
}

#[test]
fn procedures_upload_as_wire_bytes() {
    // The full client path: encode the procedure to the PCIe upload
    // format, register from bytes, execute.
    use bionicdb_softcore::Catalogue;
    let mut b = one_worker();
    let t = b.table(TableMeta::hash("kv", 8, 8, 1 << 8));
    let proc = assemble(
        "proc rd\nlogic:\n    search 0, 0, c0\ncommit:\n    ret g0, c0\n    cmp g0, 0\n    blt abort\n    commit\nabort:\n    abort\n",
    )
    .unwrap();
    let bytes = Catalogue::encode_proc(&proc);
    let p = b.proc_bytes(&bytes).expect("valid upload");
    let mut db = b.build();
    db.loader(0)
        .insert(t, &9u64.to_le_bytes(), &0u64.to_le_bytes());
    let blk = run_one(&mut db, p, &[(0, 9)]);
    assert!(db.block_status(blk).is_committed());
}

#[test]
fn utilization_report_mentions_every_worker() {
    let mut b = SystemBuilder::new(BionicConfig::small(3));
    b.table(TableMeta::hash("kv", 8, 8, 16));
    let db = b.build();
    let report = db.utilization_report();
    for w in 0..3 {
        assert!(report.contains(&format!("worker {w}:")), "{report}");
    }
}

#[test]
fn runtime_procedure_upload_without_reconfiguration() {
    // The paper's §4.3 flexibility claim: a client registers a *new*
    // transaction while the machine is live — catalogue update only.
    use bionicdb_softcore::Catalogue;
    let mut b = one_worker();
    let t = b.table(TableMeta::hash("kv", 8, 8, 1 << 8));
    let read = b.proc(
        assemble(
            "proc rd\nlogic:\n    search 0, 0, c0\ncommit:\n    ret g0, c0\n    cmp g0, 0\n    blt abort\n    commit\nabort:\n    abort\n",
        )
        .unwrap(),
    );
    let mut db = b.build();
    db.loader(0)
        .insert(t, &1u64.to_le_bytes(), &5u64.to_le_bytes());
    let blk = run_one(&mut db, read, &[(0, 1)]);
    assert!(db.block_status(blk).is_committed());

    // Mid-life upload of a brand-new write transaction.
    let bump = assemble(
        "proc bump\nlogic:\n    update 0, 0, c0\ncommit:\n    ret g0, c0\n    cmp g0, 0\n    blt abort\n    load g1, [g0+72]\n    add g1, 1\n    store g1, [g0+72]\n    getts g2\n    store g2, [g0+8]\n    mov g3, 0\n    store g3, [g0+24]\n    commit\nabort:\n    abort\n",
    )
    .unwrap();
    let bump_id = db
        .register_proc_bytes(&Catalogue::encode_proc(&bump))
        .expect("runtime upload");
    let blk = run_one(&mut db, bump_id, &[(0, 1)]);
    assert!(db.block_status(blk).is_committed());
    let addr = db.loader(0).lookup(t, &1u64.to_le_bytes()).unwrap();
    let v = u64::from_le_bytes(db.loader(0).payload(t, addr)[..8].try_into().unwrap());
    assert_eq!(v, 6, "new transaction ran against live data");
}

#[test]
fn staggered_injection_is_schedule_invariant() {
    // Streaming entry points (DESIGN.md §17): transactions injected at
    // *arbitrary* cycles — not just a cycle-0 preload — must leave the
    // machine byte-identical across strict ticking, fast-forward, and the
    // epoch-parallel scheduler. Each run replays the same arrival plan:
    // step the clock to the arrival cycle, inject, repeat, then step to a
    // fixed horizon so idle accounting and the report's `now` align.
    const ARRIVALS: [(u64, usize, u64); 6] =
        [(0, 0, 1), (0, 1, 2), (700, 0, 1), (1500, 1, 2), (1501, 0, 1), (4200, 1, 2)];
    const HORIZON: u64 = 1 << 16;
    let run = |fast_forward: bool, threads: usize| {
        let mut b = SystemBuilder::new(BionicConfig::small(2));
        let t = b.table(TableMeta::hash("kv", 8, 8, 1 << 8));
        let bump = b.proc(
            assemble(
                "proc bump\nlogic:\n    update 0, 0, c0\ncommit:\n    ret g0, c0\n    cmp g0, 0\n    blt abort\n    load g1, [g0+72]\n    add g1, 1\n    store g1, [g0+72]\n    getts g2\n    store g2, [g0+8]\n    mov g3, 0\n    store g3, [g0+24]\n    commit\nabort:\n    abort\n",
            )
            .unwrap(),
        );
        let mut db = b.build();
        db.set_fast_forward(fast_forward);
        db.set_sim_threads(threads);
        for w in 0..2 {
            db.loader(w)
                .insert(t, &(w as u64 + 1).to_le_bytes(), &0u64.to_le_bytes());
        }
        let mut blocks = Vec::new();
        for (cycle, worker, key) in ARRIVALS {
            db.step_until(cycle);
            assert_eq!(db.now(), cycle, "step_until lands exactly on target");
            let blk = db.alloc_block(worker, 128);
            db.init_block(blk, bump);
            db.write_block_u64(blk, 0, key);
            db.inject_txn(worker, blk);
            blocks.push(blk);
        }
        db.step_until(HORIZON);
        assert_eq!(db.now(), HORIZON);
        assert!(db.is_quiescent(), "horizon generously exceeds all work");
        for blk in blocks {
            assert!(db.block_status(blk).is_committed());
        }
        db.report().to_json()
    };
    let strict = run(false, 1);
    assert_eq!(strict, run(true, 1), "fast-forward diverged from strict");
    assert_eq!(strict, run(true, 2), "epoch-parallel diverged from strict");
    assert_eq!(strict, run(true, 4), "epoch-parallel(4) diverged from strict");
}
