//! The whole BionicDB machine and its host-side client API.
//!
//! [`SystemBuilder`] registers tables and stored procedures (the catalogue
//! upload of paper §4.2), then [`SystemBuilder::build`] lays the partitions
//! out in simulated FPGA-side DRAM and instantiates the partition workers
//! and the on-chip interconnect. [`Machine`] then plays both roles the
//! paper describes:
//!
//! * the **host CPU** — allocating and populating transaction blocks,
//!   submitting them to worker input queues, and reading results back
//!   (the paper pre-populates input blocks from the host, §5.1);
//! * the **FPGA clock** — [`Machine::tick`] advances every component by one
//!   cycle, deterministically.

use bionicdb_fpga::fault::FaultPlan;
use bionicdb_fpga::{AbortReasons, Dram, NullSink, Region, TraceSink};
use bionicdb_noc::Noc;
use bionicdb_softcore::catalogue::{Catalogue, ProcId, TableId, TableMeta};
use bionicdb_softcore::core::SoftcoreParams;
use bionicdb_softcore::isa::Procedure;
use bionicdb_softcore::txnblock::TxnStatus;
use bionicdb_softcore::{PartitionId, SoftcoreStats, TxnBlock};

use crate::config::BionicConfig;
use crate::recovery::DurableImage;
use crate::report::MachineReport;
use crate::storage::{Loader, Partition};
use crate::worker::PartitionWorker;

mod fleet;
mod par;

/// The crash hook: called exactly once, at the crash cycle, with the
/// machine frozen in its crash-instant state. It must return the
/// [`DurableImage`] — the bytes that survive the power loss (command log +
/// checkpoint, with any scheduled durable-medium faults applied). Anything
/// it does not serialize is, by definition, lost.
pub type CrashHook = Box<dyn FnMut(&Machine) -> DurableImage>;

/// Builder for a [`Machine`]: registers the schema and the stored
/// procedures before the memory layout is fixed.
#[derive(Debug)]
pub struct SystemBuilder {
    cfg: BionicConfig,
    cat: Catalogue,
}

impl SystemBuilder {
    /// Start building a machine with the given configuration.
    pub fn new(cfg: BionicConfig) -> Self {
        cfg.validate();
        SystemBuilder {
            cfg,
            cat: Catalogue::new(),
        }
    }

    /// Register a table on every partition.
    pub fn table(&mut self, meta: TableMeta) -> TableId {
        self.cat
            .register_table(meta)
            .expect("catalogue table capacity")
    }

    /// Register (upload) a stored procedure.
    pub fn proc(&mut self, proc: Procedure) -> ProcId {
        self.cat
            .register_proc(proc)
            .expect("invalid stored procedure")
    }

    /// Register a stored procedure from its upload wire format — the exact
    /// byte stream a client ships over PCIe (paper §4.2).
    pub fn proc_bytes(
        &mut self,
        bytes: &[u8],
    ) -> Result<ProcId, bionicdb_softcore::catalogue::CatalogueError> {
        self.cat.register_proc_bytes(bytes)
    }

    /// Instantiate the machine: carve DRAM into per-worker block arenas and
    /// partitions, and construct the workers and interconnect.
    pub fn build(self) -> Machine {
        let SystemBuilder { cfg, cat } = self;
        let dram = Dram::new(&cfg.fpga, cfg.dram_bytes);
        let coproc_cfg = cfg.coproc();
        let mut sc_params = SoftcoreParams::from_fpga(&cfg.fpga, cfg.mode);
        sc_params.max_batch = cfg.max_batch;
        sc_params.batch_mode = cfg.batch_mode;
        let noc = Noc::new(cfg.topology, cfg.workers, cfg.fpga.noc_hop_latency);

        // DRAM map: [0, 64 KiB) reserved; then per-worker block arena +
        // partition, in worker order.
        let mut map = Region::new(64 * 1024, cfg.dram_bytes - 64 * 1024);
        let mut partitions = Vec::with_capacity(cfg.workers);
        let mut workers = Vec::with_capacity(cfg.workers);
        // Each worker gets its own DRAM *bank*: private controllers and
        // ports over the shared byte image (see [`Dram::bank`]). This is
        // both the HC-2's physical DIMM partitioning and what lets the
        // epoch-parallel scheduler hand a worker its memory channel on its
        // own thread. `dram` itself keeps the host/PCIe role: untimed
        // loads, block population, digests.
        let mut banks = Vec::with_capacity(cfg.workers);
        for w in 0..cfg.workers {
            let id = PartitionId(w as u16);
            let arena = map.carve(cfg.block_arena_bytes, 64);
            let pregion = map.carve(cfg.partition_bytes, 64);
            partitions.push(Partition::build(
                id,
                &cat,
                pregion,
                arena,
                cfg.fpga.skiplist_max_level,
            ));
            let mut bank = dram.bank();
            // MLP occupancy sampling is only worth its per-issue cost when
            // the batch engines are in play; leaving it off also keeps the
            // default machine's reports byte-identical to older builds.
            bank.set_mlp_tracking(cfg.batch_mode != bionicdb_softcore::BatchMode::Off);
            workers.push(PartitionWorker::new(
                id,
                sc_params,
                &coproc_cfg,
                &mut bank,
                cfg.noc_retry,
            ));
            banks.push(bank);
        }
        let lane_activity = (0..workers.len()).map(|_| LaneActivity::new()).collect();
        Machine {
            cfg,
            dram,
            banks,
            noc,
            cat,
            workers,
            partitions,
            now: 0,
            fast_forward: true,
            sim_threads: 1,
            ticks_executed: 0,
            lane_activity,
            epoch_rounds: 0,
            lookahead_mode: LookaheadMode::default(),
            fault_plan: FaultPlan::none(),
            crashed: false,
            crash_hook: None,
            crash_image: None,
            resubmits: 0,
            trace_sink: Box::new(NullSink),
            fleet_chips: 0,
            fleet: None,
        }
    }
}

/// Aggregated machine statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MachineStats {
    /// Transactions committed across all workers.
    pub committed: u64,
    /// Transactions aborted across all workers.
    pub aborted: u64,
    /// Batches completed across all workers.
    pub batches: u64,
    /// DB instructions dispatched.
    pub db_insts: u64,
    /// CPU instructions executed.
    pub cpu_insts: u64,
    /// Current simulation time in cycles.
    pub now: u64,
    /// Client-side resubmissions of aborted blocks (host instrumentation).
    pub resubmits: u64,
    /// Aborts attributable to interconnect faults: the sum of the workers'
    /// `retry_exhausted` counters (each synthesized `Timeout` aborts the
    /// waiting transaction). `aborted - fault_aborts` is the
    /// concurrency-control abort count.
    pub fault_aborts: u64,
    /// Why transactions aborted, summed across all workers (attributed
    /// from the DB status observed at the `Ret` collecting each result).
    pub abort_reasons: AbortReasons,
}

impl MachineStats {
    /// Transactions per second of simulated time over a window.
    pub fn throughput(committed_delta: u64, cycles_delta: u64, clock_hz: u64) -> f64 {
        if cycles_delta == 0 {
            return 0.0;
        }
        committed_delta as f64 * clock_hz as f64 / cycles_delta as f64
    }
}

/// Client-side retry policy for [`Machine::retry_to_completion`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryBudget {
    /// Maximum resubmit rounds before giving up on still-aborted blocks.
    pub max_attempts: u32,
    /// Cycles to let the machine idle before each retry round (client
    /// backoff; shrinks the conflict window on hot-record workloads).
    pub backoff_cycles: u64,
}

impl Default for RetryBudget {
    fn default() -> Self {
        RetryBudget {
            max_attempts: 64,
            backoff_cycles: 0,
        }
    }
}

/// What [`Machine::retry_to_completion`] achieved.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RetryOutcome {
    /// Blocks that ended committed.
    pub committed: u64,
    /// Total resubmissions performed.
    pub resubmissions: u64,
    /// Blocks still not committed when the budget ran out (or the machine
    /// crashed), with their workers — the caller decides what to do.
    pub gave_up: Vec<(usize, TxnBlock)>,
}

impl RetryOutcome {
    /// True when every block committed.
    pub fn all_committed(&self) -> bool {
        self.gave_up.is_empty()
    }
}

/// How the epoch-parallel scheduler derives its synchronization horizons
/// (see `machine/par.rs` and DESIGN.md §11). Both modes are bit-exact with
/// serial ticking; they differ only in how far each lane may run between
/// barriers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LookaheadMode {
    /// One horizon for every lane, derived from the global minimum pair
    /// latency (`Noc::min_hop_latency`) — the PR-4 scheduler's behavior,
    /// kept as the baseline the matrix scheduler is diffed against.
    Global,
    /// Per-lane horizons from the per-pair lookahead matrix
    /// (`Noc::min_latency(src, dst)`): a lane only synchronizes tightly
    /// with lanes that can actually reach it soon.
    #[default]
    Matrix,
}

/// Per-lane instrumentation from the epoch-parallel scheduler. Simulator
/// measurements, not machine state: excluded from [`MachineStats`] and
/// [`Machine::report`], surfaced only by tooling (`simperf --par`).
#[derive(Debug, Clone, Copy)]
pub struct LaneActivity {
    /// Component ticks this lane executed across all epoch rounds.
    pub ticks: u64,
    /// Cycles this lane fast-forwarded over instead of ticking.
    pub skips: u64,
    /// Epoch rounds in which this lane was scheduled (had work below its
    /// horizon). Unscheduled rounds cost the lane nothing — the work-
    /// stealing scheduler never locks an idle lane.
    pub rounds: u64,
    /// Wall-clock nanoseconds between this lane finishing its round and
    /// the round's barrier releasing — the skew the work-stealing
    /// scheduler exists to shrink. Wall-clock, hence nondeterministic;
    /// everything the machine observes stays bit-exact regardless.
    pub barrier_idle_ns: u64,
    /// Distribution of this lane's epoch lengths (cycles between its
    /// round-entry position and the horizon it was released to).
    pub epoch_len: bionicdb_fpga::obs::LatencyHistogram,
}

impl LaneActivity {
    pub(crate) fn new() -> Self {
        LaneActivity {
            ticks: 0,
            skips: 0,
            rounds: 0,
            barrier_idle_ns: 0,
            epoch_len: bionicdb_fpga::obs::LatencyHistogram::new(),
        }
    }
}

/// A fully assembled BionicDB machine.
pub struct Machine {
    cfg: BionicConfig,
    /// Host-facing DRAM view: untimed reads/writes, image digests. No
    /// simulated component issues through it.
    dram: Dram,
    /// Worker `w`'s memory bank (same byte image, private timing state),
    /// indexed like `workers`.
    banks: Vec<Dram>,
    noc: Noc,
    cat: Catalogue,
    workers: Vec<PartitionWorker>,
    partitions: Vec<Partition>,
    now: u64,
    fast_forward: bool,
    /// Worker threads for [`Machine::run_to_quiescence`]; 1 = serial.
    sim_threads: usize,
    /// Host-side instrumentation: number of `tick()` calls actually
    /// executed (simulated cycles minus skipped ones). Not part of
    /// [`MachineStats`] — it measures the simulator, not the machine, and
    /// deliberately differs between strict and fast-forward runs.
    ticks_executed: u64,
    /// Host-side instrumentation for the epoch-parallel scheduler: per
    /// lane (worker), the component ticks executed and the cycles skipped
    /// across all `run_epochs` rounds. Like [`Machine::ticks_executed`] it
    /// measures the simulator, not the machine — it stays out of
    /// [`MachineStats`] and the report, and is only surfaced by tooling
    /// (`simperf --par`).
    lane_activity: Vec<LaneActivity>,
    /// Epoch-round barriers executed by `run_epochs` (across all calls) —
    /// the denominator of the lookahead study: fewer rounds for the same
    /// simulated span means longer epochs and less synchronization.
    /// Simulator instrumentation, like `ticks_executed`.
    epoch_rounds: u64,
    /// Horizon derivation for the epoch-parallel scheduler.
    lookahead_mode: LookaheadMode,
    /// The installed fault schedule (its NoC/DRAM parts are distributed to
    /// those components at install time; the crash/log parts live here).
    fault_plan: FaultPlan,
    /// Latched once the crash cycle is reached; a crashed machine is inert.
    crashed: bool,
    /// Snapshots durable state at the crash instant.
    crash_hook: Option<CrashHook>,
    /// What the crash hook salvaged.
    crash_image: Option<DurableImage>,
    /// Client-side resubmissions (see [`Machine::resubmit`]).
    resubmits: u64,
    /// Where per-transaction trace events go. The default [`NullSink`]
    /// disables tracing entirely: no events are buffered anywhere, and the
    /// run is bit-identical to one with a real sink installed (the sink is
    /// host-side instrumentation — nothing in the machine reads it).
    trace_sink: Box<dyn TraceSink>,
    /// Chip processes requested for fleet-mode simulation (0 or 1 = off).
    /// See `machine/fleet.rs`.
    fleet_chips: usize,
    /// The spawned fleet, once the first fleet run has forked the chips.
    fleet: Option<fleet::Fleet>,
}

impl Machine {
    // ----- host-side client API -----

    /// Allocate a transaction block of `size` bytes in `worker`'s arena.
    pub fn alloc_block(&mut self, worker: usize, size: u64) -> TxnBlock {
        let addr = self.partitions[worker].block_arena.alloc(size, 64);
        TxnBlock::new(addr, size)
    }

    /// Initialize a block's header for an invocation of `proc`.
    pub fn init_block(&mut self, blk: TxnBlock, proc: ProcId) {
        blk.init(&mut self.dram, proc);
    }

    /// Write bytes into a block's user area.
    pub fn write_block(&mut self, blk: TxnBlock, user_off: u64, data: &[u8]) {
        blk.write_user(&mut self.dram, user_off, data);
    }

    /// Write a u64 into a block's user area.
    pub fn write_block_u64(&mut self, blk: TxnBlock, user_off: u64, v: u64) {
        blk.write_user_u64(&mut self.dram, user_off, v);
    }

    /// Read bytes from a block's user area.
    pub fn read_block(&self, blk: TxnBlock, user_off: u64, len: u64) -> Vec<u8> {
        blk.read_user(&self.dram, user_off, len)
    }

    /// Read a u64 from a block's user area.
    pub fn read_block_u64(&self, blk: TxnBlock, user_off: u64) -> u64 {
        blk.read_user_u64(&self.dram, user_off)
    }

    /// The execution status the softcore wrote back into the block.
    pub fn block_status(&self, blk: TxnBlock) -> TxnStatus {
        blk.status(&self.dram)
    }

    /// The commit timestamp the softcore wrote back into the block.
    pub fn block_commit_ts(&self, blk: TxnBlock) -> u64 {
        blk.commit_ts(&self.dram)
    }

    /// Submit a populated block to `worker`'s input queue, stamping the
    /// current cycle as the block's submission time so queue-wait latency
    /// is measured from here.
    pub fn submit(&mut self, worker: usize, blk: TxnBlock) {
        if let Some(f) = &mut self.fleet {
            // The live worker lives in a chip process: queue the submit for
            // relay with the next run's Sync, stamped with *this* cycle so
            // queue-wait latency is unchanged.
            f.pending_submits.push((worker, blk.addr(), self.now));
            return;
        }
        self.workers[worker].softcore.submit_at(blk.addr(), self.now);
    }

    /// Re-submit an aborted block unchanged (client-side retry): the block
    /// preserves its inputs through execution (§4.8), so resetting the
    /// status word is all a retry needs.
    pub fn resubmit(&mut self, worker: usize, blk: TxnBlock) {
        assert_eq!(
            self.block_status(blk),
            TxnStatus::Aborted,
            "only aborted blocks are retried"
        );
        self.dram
            .host_write_u64(blk.addr() + bionicdb_softcore::txnblock::STATUS_OFFSET, 0);
        self.resubmits += 1;
        self.submit(worker, blk);
    }

    /// Drive a set of executed blocks to completion under a bounded retry
    /// policy: aborted blocks are resubmitted (inputs are preserved through
    /// execution, §4.8) for up to `budget.max_attempts` rounds, advancing
    /// the clock by `budget.backoff_cycles` before each retry round, and
    /// running to quiescence (bounded by `limit` cycles per round) after.
    ///
    /// Blocks still aborted when the budget is spent — or still pending
    /// because the machine crashed mid-round — are returned in
    /// [`RetryOutcome::gave_up`] instead of looping forever. This is the
    /// client-side retry policy the harnesses use in place of ad-hoc
    /// unbounded resubmit loops.
    pub fn retry_to_completion(
        &mut self,
        blocks: &[(usize, TxnBlock)],
        budget: RetryBudget,
        limit: u64,
    ) -> RetryOutcome {
        let mut outcome = RetryOutcome::default();
        for _ in 0..budget.max_attempts {
            if self.crashed {
                break;
            }
            let aborted: Vec<(usize, TxnBlock)> = blocks
                .iter()
                .copied()
                .filter(|&(_, blk)| self.block_status(blk) == TxnStatus::Aborted)
                .collect();
            if aborted.is_empty() {
                break;
            }
            self.run(budget.backoff_cycles);
            if self.crashed {
                break;
            }
            for &(w, blk) in &aborted {
                self.resubmit(w, blk);
                outcome.resubmissions += 1;
            }
            self.run_to_quiescence_limit(limit);
        }
        for &(w, blk) in blocks {
            if self.block_status(blk) == TxnStatus::Committed {
                outcome.committed += 1;
            } else {
                outcome.gave_up.push((w, blk));
            }
        }
        outcome
    }

    /// Upload a new stored procedure at runtime (wire format). The paper's
    /// headline flexibility claim (§4.3): registering or changing a
    /// transaction updates only the catalogue — no FPGA reconfiguration.
    pub fn register_proc_bytes(
        &mut self,
        bytes: &[u8],
    ) -> Result<ProcId, bionicdb_softcore::catalogue::CatalogueError> {
        assert!(
            self.fleet.is_none(),
            "procedure uploads must precede the fleet spawn (the catalogue \
             is inherited at fork, not relayed)"
        );
        self.cat.register_proc_bytes(bytes)
    }

    /// Host-side bulk loader for `worker`'s partition.
    pub fn loader(&mut self, worker: usize) -> Loader<'_> {
        Loader::new(&mut self.dram, &mut self.partitions[worker])
    }

    // ----- simulation control -----

    /// Advance the whole machine by one cycle. A crashed machine is inert:
    /// the clock freezes and no component runs (the power is off).
    pub fn tick(&mut self) {
        if self.crashed {
            return;
        }
        assert!(
            self.fleet.is_none(),
            "strict ticking is unavailable once a fleet is spawned (worker \
             state lives in the chip processes); use run_to_quiescence"
        );
        self.ticks_executed += 1;
        self.now += 1;
        // Ordering invariants the epoch-parallel scheduler must (and does)
        // preserve — see DESIGN.md §11:
        //  1. worker `w`'s bank delivers its due responses before `w`'s
        //     tick at the same cycle (banks are worker-private, so ticking
        //     bank `w` immediately before worker `w` is exactly the old
        //     global `dram.tick()`-first order as far as `w` can observe);
        //  2. workers tick in id order within a cycle (NoC send/issue order);
        //  3. the trace drain runs after *all* workers, in worker order;
        //  4. the crash check runs last, so the crash-instant state includes
        //     every component's work at the crash cycle.
        for w in 0..self.workers.len() {
            self.banks[w].tick(self.now);
            let worker = &mut self.workers[w];
            let tables = &mut self.partitions[w].tables;
            worker.tick(self.now, &mut self.banks[w], &self.cat, &mut self.noc, tables);
        }
        if self.trace_sink.enabled() {
            for w in &mut self.workers {
                for ev in w.softcore.drain_trace() {
                    self.trace_sink.txn(&ev);
                }
            }
        }
        if let Some(c) = self.fault_plan.crash_at {
            if self.now >= c {
                self.crashed = true;
                if let Some(mut hook) = self.crash_hook.take() {
                    self.crash_image = Some(hook(self));
                }
            }
        }
    }

    /// Advance by `n` cycles.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.tick();
        }
    }

    /// Enable or disable the fast-forward scheduler used by
    /// [`Machine::run_to_quiescence`] (on by default). Fast-forwarding is
    /// bit-for-bit equivalent to strict cycle stepping — same final cycle
    /// count, same statistics, same DRAM image — it only skips spans of
    /// cycles in which provably no component could act.
    pub fn set_fast_forward(&mut self, on: bool) {
        self.fast_forward = on;
    }

    /// Run until every worker is quiescent and the interconnect is empty.
    /// Panics after 2^33 cycles (a configuration that cannot finish).
    pub fn run_to_quiescence(&mut self) -> u64 {
        self.run_to_quiescence_limit(1 << 33)
    }

    /// Run to quiescence with the fast-forward scheduler force-enabled for
    /// the duration of the call, restoring the previous setting after.
    pub fn run_fast(&mut self) -> u64 {
        let prev = self.fast_forward;
        self.fast_forward = true;
        let elapsed = self.run_to_quiescence();
        self.fast_forward = prev;
        elapsed
    }

    /// Run until quiescent, panicking after `limit` additional cycles.
    /// Returns early (without quiescing) if the machine crashes.
    pub fn run_to_quiescence_limit(&mut self, limit: u64) -> u64 {
        // Fleet mode: with chip processes requested (or already spawned),
        // the whole run is one coordinator/chip message exchange —
        // bit-exact with the engines below (see `machine/fleet.rs`). A
        // crashed fleet machine falls through: the serial loop breaks
        // immediately without ticking.
        if (self.fleet_chips > 1 || self.fleet.is_some())
            && self.workers.len() > 1
            && !self.crashed
        {
            return self.run_fleet_to_quiescence(limit);
        }
        let start = self.now;
        // Epoch-parallel phase: with more than one sim thread configured,
        // run the bulk of the work on real threads (bit-exact with the
        // serial loop below — see `par`), then let the serial loop handle
        // the uniform exit conditions (quiescence, crash, limit).
        if self.fast_forward && self.sim_threads > 1 && self.workers.len() > 1 && !self.crashed {
            self.run_epochs(start, limit);
        }
        while !self.is_quiescent() {
            if self.crashed {
                break;
            }
            assert!(
                self.now - start < limit,
                "machine did not quiesce within {limit} cycles; workers: {:?}",
                self.workers
            );
            // Fast-forward: when every component agrees nothing can happen
            // before cycle `t`, jump the clock to `t - 1` (charging the
            // skipped span's bulk accounting) and tick normally onto `t`.
            // A delivered-but-unconsumed DRAM response could be consumed on
            // the very next tick, so no skip is attempted while one exists.
            if self.fast_forward && !self.any_buffered_responses() {
                if let Some(t) = self.next_event() {
                    debug_assert!(t > self.now, "next_event returned a past cycle");
                    // Never skip past a scheduled crash: the crash cycle
                    // must be *ticked* in both strict and fast modes so the
                    // crash-instant state is bit-identical.
                    let t = match self.fault_plan.crash_at {
                        Some(c) => t.min(c).max(self.now + 1),
                        None => t,
                    };
                    let k = t - self.now - 1;
                    if k > 0 {
                        self.now += k;
                        for w in &mut self.workers {
                            w.skip(k);
                        }
                    }
                }
                // `None` while not quiescent means no component volunteered
                // a bound; fall through to a strict tick (costs speed only).
            }
            self.tick();
        }
        self.now - start
    }

    /// Inject a populated transaction block into `worker`'s input queue at
    /// the machine's *current* cycle — the streaming-arrival entry point
    /// used by the serving front end (DESIGN.md §17). Identical to
    /// [`Machine::submit`] except in intent: `submit` is the preload path
    /// (fill every queue, then run to quiescence), while `inject_txn` is
    /// called mid-run, interleaved with [`Machine::step_until`], so
    /// transactions enter the machine at arbitrary simulated cycles. The
    /// submission cycle stamped into the block is `self.now` either way,
    /// which is what makes injection at cycle 0 byte-identical to a
    /// preload (see the `inject_equivalence` proptest).
    pub fn inject_txn(&mut self, worker: usize, blk: TxnBlock) {
        self.submit(worker, blk);
    }

    /// Advance the machine to exactly cycle `target` (no-op if `target`
    /// is in the past), regardless of quiescence: an idle machine still
    /// walks its clock forward, charging idle accounting bit-identically
    /// to strict ticking. This is the streaming counterpart of
    /// [`Machine::run_to_quiescence`]: the serving front end alternates
    /// `inject_txn` (arrivals) with `step_until` (the span until the next
    /// arrival), and the machine executes work *and* absorbs new input at
    /// arbitrary simulated cycles.
    ///
    /// Composes with both accelerated schedulers:
    /// - **fast-forward** skips provably-idle spans exactly as in
    ///   `run_to_quiescence_limit`, additionally clamping every skip to
    ///   `target` so the clock lands on it precisely;
    /// - **epoch-parallel** (`sim_threads > 1`) runs the bulk of the span
    ///   via `run_epochs` with the event cap at `target - 1`, then the
    ///   serial loop ticks the final stretch onto `target`. Byte-identity
    ///   holds because injected input is only visible between calls — the
    ///   event horizon within a call is fixed, the same closed-world
    ///   assumption `run_to_quiescence` makes (DESIGN.md §17).
    ///
    /// A scheduled crash inside the span is honored: the crash cycle is
    /// ticked (never skipped), the machine freezes there, and the call
    /// returns early. Unavailable in fleet mode (the live workers are in
    /// chip processes; streaming injection would need per-arrival IPC).
    /// Returns the cycles actually advanced.
    pub fn step_until(&mut self, target: u64) -> u64 {
        assert!(
            self.fleet_chips <= 1 && self.fleet.is_none(),
            "step_until is unavailable in fleet mode (workers live in chip \
             processes); stream into an in-process machine instead"
        );
        let start = self.now;
        if target <= start {
            return 0;
        }
        // Epoch-parallel phase: the event cap `start + limit - 1` lands on
        // `target - 1`, so every event strictly before `target` runs on the
        // worker threads and the serial loop below only walks the idle tail
        // onto `target` itself (events *at* `target` belong to the tick
        // that lands there, which stays serial).
        if self.fast_forward && self.sim_threads > 1 && self.workers.len() > 1 && !self.crashed {
            self.run_epochs(start, target - start);
        }
        while self.now < target {
            if self.crashed {
                break;
            }
            if self.fast_forward && !self.any_buffered_responses() {
                // Unlike run_to_quiescence, a quiescent machine keeps
                // advancing: with no component volunteering an event the
                // span to `target` is provably idle, so skip straight to
                // it (charging the same bulk idle accounting strict
                // ticking would).
                let bound = match self.next_event() {
                    Some(t) => Some(t),
                    None if self.is_quiescent() => Some(target),
                    None => None,
                };
                if let Some(t) = bound {
                    debug_assert!(t > self.now, "next_event returned a past cycle");
                    let t = t.min(target);
                    let t = match self.fault_plan.crash_at {
                        Some(c) => t.min(c),
                        None => t,
                    };
                    let t = t.max(self.now + 1);
                    let k = t - self.now - 1;
                    if k > 0 {
                        self.now += k;
                        for w in &mut self.workers {
                            w.skip(k);
                        }
                    }
                }
            }
            self.tick();
        }
        self.now - start
    }

    /// The minimum over every component's next-event estimate: the earliest
    /// future cycle at which anything in the machine could make progress,
    /// attempt an issue, or mutate a statistic. Early-exits at `now + 1`
    /// (nothing to skip) to keep the scan cheap on busy cycles.
    fn next_event(&self) -> Option<u64> {
        let now = self.now;
        let mut best = self.noc.next_event(now);
        if best == Some(now + 1) {
            return best;
        }
        for bank in &self.banks {
            if let Some(t) = bank.next_event() {
                let t = t.max(now + 1);
                best = Some(best.map_or(t, |b| b.min(t)));
                if best == Some(now + 1) {
                    return best;
                }
            }
        }
        for w in &self.workers {
            if let Some(t) = w.next_event(now) {
                best = Some(best.map_or(t, |b| b.min(t)));
                if best == Some(now + 1) {
                    return best;
                }
            }
        }
        best
    }

    /// True when any bank holds a delivered-but-unconsumed response.
    fn any_buffered_responses(&self) -> bool {
        self.banks.iter().any(Dram::has_buffered_responses)
    }

    /// True when no work remains anywhere in the machine.
    pub fn is_quiescent(&self) -> bool {
        if let Some(f) = &self.fleet {
            // The live workers are in the chip processes; consult the
            // slices from the last phase plus anything queued since.
            return self.noc.is_idle()
                && f.pending_submits.is_empty()
                && f.slices.iter().all(|s| s.quiescent);
        }
        self.noc.is_idle() && self.workers.iter().all(PartitionWorker::is_quiescent)
    }

    // ----- fault injection & crash control -----

    /// Install a fault schedule. The NoC and DRAM parts are pushed down to
    /// those components; the crash and durable-medium parts are consulted
    /// by the machine itself (`tick`) and the crash hook. Installing
    /// [`FaultPlan::none()`] is exactly the default: a none-plan run is
    /// bit-identical to a run with no plan installed at all.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        assert!(
            self.fleet.is_none(),
            "fault plans must be installed before the fleet spawns \
             (chips inherit them at fork)"
        );
        self.noc.set_faults(plan.noc.clone());
        // Every bank gets the schedule: DRAM fault ordinals are per-bank
        // ("the nth read *on this worker's memory channel*"), which keeps
        // them deterministic regardless of how worker ticks interleave.
        self.dram.set_faults(plan.dram.clone());
        for bank in &mut self.banks {
            bank.set_faults(plan.dram.clone());
        }
        self.fault_plan = plan;
    }

    /// The installed fault schedule.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault_plan
    }

    /// True once the scheduled crash cycle has been reached. A crashed
    /// machine is inert; only [`Machine::take_crash_image`] is useful.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Install the crash hook that snapshots durable state (command log +
    /// checkpoint bytes) at the crash instant. One-shot: consumed when the
    /// crash fires.
    pub fn set_crash_hook(&mut self, hook: impl FnMut(&Machine) -> DurableImage + 'static) {
        self.crash_hook = Some(Box::new(hook));
    }

    /// The durable bytes salvaged at the crash instant, if the machine has
    /// crashed and a hook was installed. Consumes the image.
    pub fn take_crash_image(&mut self) -> Option<DurableImage> {
        self.crash_image.take()
    }

    // ----- introspection -----

    /// Current cycle count.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of `tick()` calls actually executed — simulated cycles minus
    /// the spans the fast-forward scheduler skipped. Simulator
    /// instrumentation, not machine state.
    pub fn ticks_executed(&self) -> u64 {
        self.ticks_executed
    }

    /// Per-lane [`LaneActivity`] totals from the epoch-parallel scheduler,
    /// indexed by worker. All zeros until an epoch-parallel phase has run
    /// (serial and strict schedules do not maintain it). Simulator
    /// instrumentation, not machine state: it is excluded from
    /// [`MachineStats`] and [`Machine::report`] and consumed only by
    /// tooling (`simperf --par`).
    pub fn lane_activity(&self) -> &[LaneActivity] {
        &self.lane_activity
    }

    /// Epoch-round barriers executed by the epoch-parallel scheduler so
    /// far. Simulator instrumentation, not machine state.
    pub fn epoch_rounds(&self) -> u64 {
        self.epoch_rounds
    }

    /// Posted-write acknowledgements the DRAM banks cancelled at
    /// completion instead of delivering (summed over every bank plus the
    /// host view). Simulator instrumentation, not machine state.
    pub fn cancelled_write_acks(&self) -> u64 {
        let banks: u64 = match &self.fleet {
            Some(f) => f.slices.iter().map(|s| s.cancelled_acks).sum(),
            None => self.banks.iter().map(Dram::cancelled_acks).sum(),
        };
        self.dram.cancelled_acks() + banks
    }

    /// Select how the epoch-parallel scheduler derives its horizons. Both
    /// modes are bit-exact with serial ticking (enforced by `parcheck`);
    /// [`LookaheadMode::Matrix`] is the default.
    pub fn set_lookahead_mode(&mut self, mode: LookaheadMode) {
        self.lookahead_mode = mode;
    }

    /// The configured horizon derivation.
    pub fn lookahead_mode(&self) -> LookaheadMode {
        self.lookahead_mode
    }

    /// Simulated seconds elapsed.
    pub fn elapsed_secs(&self) -> f64 {
        self.cfg.fpga.cycles_to_secs(self.now)
    }

    /// Machine configuration.
    pub fn config(&self) -> &BionicConfig {
        &self.cfg
    }

    /// The catalogue (schema + procedures).
    pub fn catalogue(&self) -> &Catalogue {
        &self.cat
    }

    /// The simulated DRAM (host view).
    pub fn dram(&self) -> &Dram {
        &self.dram
    }

    /// Mutable host access to DRAM.
    pub fn dram_mut(&mut self) -> &mut Dram {
        &mut self.dram
    }

    /// Aggregate DRAM statistics summed over every worker's bank (plus the
    /// host view, which never carries simulated traffic).
    pub fn dram_stats(&self) -> bionicdb_fpga::DramStats {
        let mut s = self.dram.stats();
        let fold = |s: &mut bionicdb_fpga::DramStats, b: bionicdb_fpga::DramStats| {
            s.reads += b.reads;
            s.writes += b.writes;
            s.bytes += b.bytes;
            s.rejections += b.rejections;
            s.transient_faults += b.transient_faults;
        };
        match &self.fleet {
            // The live banks are in the chip processes: fold their last
            // reported slices over the coordinator's host-view counters.
            Some(f) => f.slices.iter().for_each(|sl| fold(&mut s, sl.bank)),
            None => self.banks.iter().for_each(|b| fold(&mut s, b.stats())),
        }
        s
    }

    /// Per-port DRAM accounting concatenated in bank (= worker) order —
    /// the same global port order the single shared DRAM used to expose.
    pub fn dram_ports(&self) -> Vec<bionicdb_fpga::PortStats> {
        if let Some(f) = &self.fleet {
            return f
                .slices
                .iter()
                .flat_map(|s| s.ports.iter().copied())
                .collect();
        }
        self.banks
            .iter()
            .flat_map(|b| b.port_stats().iter().copied())
            .collect()
    }

    /// Blocks waiting unstarted in `worker`'s softcore input queue. Lets
    /// the serving front end observe how streamed injections distribute
    /// across partitions (in-process modes only; fleet workers live in
    /// chip processes, and streaming injection is unavailable there).
    pub fn worker_input_backlog(&self, worker: usize) -> usize {
        assert!(self.fleet.is_none(), "backlog lives in the chip processes");
        self.workers[worker].input_backlog()
    }

    /// The earliest pending DRAM completion across every worker's bank
    /// (`None` when all memory channels are drained). The host view never
    /// carries timed traffic, so it is not consulted.
    pub fn dram_next_event(&self) -> Option<u64> {
        self.banks.iter().filter_map(Dram::next_event).min()
    }

    /// Set the number of worker threads `run_to_quiescence` may use. `1`
    /// (the default) is the serial scheduler. More than one enables the
    /// epoch-parallel scheduler, which is bit-for-bit identical to serial
    /// ticking — same cycle counts, statistics, DRAM image, report JSON —
    /// for any thread count; only wall-clock time changes. It engages under
    /// fast-forward scheduling (the default); `run(n)`/`tick()` always
    /// step serially.
    pub fn set_sim_threads(&mut self, n: usize) {
        self.sim_threads = n.max(1);
    }

    /// The configured sim-thread count.
    pub fn sim_threads(&self) -> usize {
        self.sim_threads
    }

    /// Request fleet-mode simulation: `run_to_quiescence` forks `n` chip
    /// processes (lazily, at its first call) and coordinates them over the
    /// fleet transport — bit-for-bit identical to the in-process engines
    /// (enforced by `fleetcheck`). `0` or `1` disables fleet mode. Must be
    /// called from a single-threaded process (forking), and before the
    /// first fleet run; machine configuration (fault plans, trace sinks,
    /// procedure uploads) must be complete before that run spawns.
    pub fn set_fleet_chips(&mut self, n: usize) {
        assert!(
            self.fleet.is_none(),
            "fleet already spawned; chip count is fixed"
        );
        self.fleet_chips = n;
    }

    /// The requested fleet chip count (0 or 1 = fleet mode off).
    pub fn fleet_chips(&self) -> usize {
        self.fleet_chips
    }

    /// The interconnect.
    pub fn noc(&self) -> &Noc {
        &self.noc
    }

    /// Per-worker softcore statistics.
    pub fn softcore_stats(&self, worker: usize) -> SoftcoreStats {
        self.workers[worker].softcore.stats()
    }

    /// Access to a worker (read-only), for stats.
    pub fn worker(&self, worker: usize) -> &PartitionWorker {
        &self.workers[worker]
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Partition metadata (read-only).
    pub fn partition(&self, worker: usize) -> &Partition {
        &self.partitions[worker]
    }

    /// Set the in-flight DB instruction bound on every coprocessor
    /// (the Fig. 10/11 sweep knob).
    pub fn set_max_inflight(&mut self, n: usize) {
        assert!(
            self.fleet.is_none(),
            "coprocessor knobs must be set before the fleet spawns"
        );
        for w in &mut self.workers {
            w.coproc.set_max_inflight(n);
        }
    }

    /// A human-readable utilization report: per-worker softcore activity
    /// and index-pipeline statistics (used by the benches and examples to
    /// explain where cycles went).
    pub fn utilization_report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (w, worker) in self.workers.iter().enumerate() {
            let sc = worker.softcore.stats();
            let cs = worker.coproc.stats();
            let hs = worker.coproc.hash_stats();
            let ss = worker.coproc.skip_stats();
            let _ = writeln!(
                out,
                "worker {w}: {} committed / {} aborted in {} batches;                  {} DB insts ({:.1} mean in-flight);                  softcore stalls: {} cp / {} mem cycles",
                sc.committed,
                sc.aborted,
                sc.batches,
                sc.db_insts,
                cs.mean_inflight(),
                sc.cp_stall_cycles,
                sc.mem_stall_cycles,
            );
            let _ = writeln!(
                out,
                "  hash: {} completed, {} chain walks, {} lock stalls |                  skiplist: {} completed, {} scanned tuples, {} scanner waits",
                hs.completed,
                hs.traversed,
                hs.lock_stalls,
                ss.completed,
                ss.scanned_tuples,
                ss.scanner_waits,
            );
        }
        out
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> MachineStats {
        let mut s = MachineStats {
            now: self.now,
            resubmits: self.resubmits,
            ..MachineStats::default()
        };
        for w in 0..self.workers.len() {
            let (sc, glue) = match &self.fleet {
                Some(f) => (f.slices[w].softcore, f.slices[w].glue),
                None => (self.workers[w].softcore.stats(), self.workers[w].stats()),
            };
            s.committed += sc.committed;
            s.aborted += sc.aborted;
            s.batches += sc.batches;
            s.db_insts += sc.db_insts;
            s.cpu_insts += sc.cpu_insts;
            s.fault_aborts += glue.retry_exhausted;
            match &self.fleet {
                Some(f) => s.abort_reasons.merge(&f.slices[w].obs.abort_reasons),
                None => s
                    .abort_reasons
                    .merge(&self.workers[w].softcore.obs().abort_reasons),
            }
        }
        s
    }

    /// One worker's full report slice, fleet-aware: live counters in
    /// in-process modes, the last `PhaseEnd` snapshot in fleet mode.
    /// [`MachineReport::collect`] reads workers exclusively through this.
    pub fn worker_report(&self, w: usize) -> crate::report::WorkerReport {
        if let Some(f) = &self.fleet {
            let s = &f.slices[w];
            return crate::report::WorkerReport {
                softcore: s.softcore,
                obs: s.obs.clone(),
                glue: s.glue,
                stages: s.stages.clone(),
            };
        }
        let worker = &self.workers[w];
        crate::report::WorkerReport {
            softcore: worker.softcore.stats(),
            obs: worker.softcore.obs().clone(),
            glue: worker.stats(),
            stages: worker.coproc.stage_report(),
        }
    }

    /// Install a trace sink. When the sink reports itself enabled, every
    /// worker's softcore starts buffering per-transaction lifecycle events,
    /// which the machine drains into the sink at the end of each tick.
    /// Installing a [`NullSink`] (the default) turns tracing back off.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        assert!(
            self.fleet.is_none(),
            "trace sinks must be installed before the fleet spawns \
             (chips inherit the tracing flag at fork)"
        );
        let on = sink.enabled();
        for w in &mut self.workers {
            w.softcore.set_tracing(on);
        }
        self.trace_sink = sink;
    }

    /// The installed sink's JSON export, if it produces one ([`NullSink`]
    /// returns `None`).
    pub fn trace_json(&self) -> Option<String> {
        self.trace_sink.export_json()
    }

    /// The full cycle-accurate observability report: merged and per-worker
    /// latency histograms, abort attribution, pipeline stage counters, NoC
    /// link utilization, and DRAM per-port occupancy.
    pub fn report(&self) -> MachineReport {
        MachineReport::collect(self)
    }
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("now", &self.now)
            .field("workers", &self.workers.len())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bionicdb_softcore::asm::assemble;

    #[test]
    fn build_allocates_disjoint_partitions() {
        let mut b = SystemBuilder::new(BionicConfig::small(3));
        b.table(TableMeta::hash("t", 8, 8, 1 << 8));
        let mut m = b.build();
        let bases: Vec<u64> = (0..3).map(|w| m.partition(w).tables[0].dir_addr).collect();
        assert!(bases.windows(2).all(|w| w[0] != w[1]));
        let blk_a = m.alloc_block(0, 256);
        let blk_b = m.alloc_block(1, 256);
        assert_ne!(blk_a.addr(), blk_b.addr());
    }

    #[test]
    fn end_to_end_single_search() {
        let mut b = SystemBuilder::new(BionicConfig::small(1));
        let t = b.table(TableMeta::hash("kv", 8, 16, 1 << 8));
        let p = b.proc(
            assemble(
                "proc read1\nlogic:\n    search 0, 0, c0\ncommit:\n    ret g0, c0\n    cmp g0, 0\n    blt abort\n    store g0, [blk+8]\n    commit\nabort:\n    abort\n",
            )
            .unwrap(),
        );
        let mut m = b.build();
        let addr = m.loader(0).insert(t, &7u64.to_be_bytes(), &[9u8; 16]);

        let blk = m.alloc_block(0, 128);
        m.init_block(blk, p);
        m.write_block(blk, 0, &7u64.to_be_bytes());
        m.submit(0, blk);
        m.run_to_quiescence_limit(1 << 22);
        assert_eq!(m.block_status(blk), TxnStatus::Committed);
        assert_eq!(
            m.read_block_u64(blk, 8),
            addr,
            "tuple address stored by sproc"
        );
        assert_eq!(m.stats().committed, 1);
    }

    #[test]
    fn remote_search_crosses_the_noc() {
        let mut b = SystemBuilder::new(BionicConfig::small(2));
        let t = b.table(TableMeta::hash("kv", 8, 16, 1 << 8));
        // Search on partition 1, submitted to worker 0.
        let p = b.proc(
            assemble(
                "proc remote_read\nlogic:\n    search 0, 0, c0, home=1\ncommit:\n    ret g0, c0\n    cmp g0, 0\n    blt abort\n    commit\nabort:\n    abort\n",
            )
            .unwrap(),
        );
        let mut m = b.build();
        m.loader(1).insert(t, &7u64.to_be_bytes(), &[1u8; 16]);

        let blk = m.alloc_block(0, 128);
        m.init_block(blk, p);
        m.write_block(blk, 0, &7u64.to_be_bytes());
        m.submit(0, blk);
        m.run_to_quiescence_limit(1 << 22);
        assert_eq!(m.block_status(blk), TxnStatus::Committed);
        assert_eq!(m.worker(0).stats().remote_requests, 1);
        assert_eq!(m.worker(1).stats().background_requests, 1);
        assert!(
            m.noc().stats().sent >= 2,
            "request + response crossed the NoC"
        );
    }

    fn remote_read_machine(retry: Option<crate::config::NocRetryConfig>) -> (Machine, TxnBlock) {
        let mut b = SystemBuilder::new(BionicConfig {
            noc_retry: retry,
            ..BionicConfig::small(2)
        });
        let t = b.table(TableMeta::hash("kv", 8, 16, 1 << 8));
        let p = b.proc(
            assemble(
                "proc remote_read\nlogic:\n    search 0, 0, c0, home=1\ncommit:\n    ret g0, c0\n    cmp g0, 0\n    blt abort\n    commit\nabort:\n    abort\n",
            )
            .unwrap(),
        );
        let mut m = b.build();
        m.loader(1).insert(t, &7u64.to_be_bytes(), &[1u8; 16]);
        let blk = m.alloc_block(0, 128);
        m.init_block(blk, p);
        m.write_block(blk, 0, &7u64.to_be_bytes());
        m.submit(0, blk);
        (m, blk)
    }

    #[test]
    fn dropped_request_is_retransmitted_and_commits() {
        let retry = crate::config::NocRetryConfig {
            timeout_cycles: 512,
            max_attempts: 3,
        };
        let (mut m, blk) = remote_read_machine(Some(retry));
        // Drop the first accepted send (the remote request).
        m.set_fault_plan(FaultPlan::none().drop_nth_send(0));
        m.run_to_quiescence_limit(1 << 22);
        assert_eq!(m.block_status(blk), TxnStatus::Committed);
        assert_eq!(m.worker(0).stats().retries_sent, 1);
        assert_eq!(m.worker(0).stats().retry_exhausted, 0);
        // The home worker executed the request exactly once.
        assert_eq!(m.worker(1).stats().background_requests, 1);
    }

    #[test]
    fn persistent_loss_times_out_and_aborts_cleanly() {
        let retry = crate::config::NocRetryConfig {
            timeout_cycles: 512,
            max_attempts: 3,
        };
        let (mut m, blk) = remote_read_machine(Some(retry));
        // Drop every send this short run can make.
        let mut plan = FaultPlan::none();
        for n in 0..16 {
            plan = plan.drop_nth_send(n);
        }
        m.set_fault_plan(plan);
        m.run_to_quiescence_limit(1 << 22);
        // The synthesized Timeout drove the sproc's abort branch: the
        // machine quiesced instead of wedging on a lost message.
        assert_eq!(m.block_status(blk), TxnStatus::Aborted);
        let s = m.stats();
        assert_eq!(s.aborted, 1);
        assert_eq!(s.fault_aborts, 1);
        assert_eq!(m.worker(0).stats().retry_exhausted, 1);
        assert_eq!(m.worker(0).stats().retries_sent, 2);
    }

    #[test]
    fn duplicate_request_is_not_executed_twice() {
        // Tight timeout: the request round trip takes longer than the
        // timeout, so the initiator retransmits a request that was *not*
        // lost — the home worker must absorb the duplicate.
        let retry = crate::config::NocRetryConfig {
            timeout_cycles: 32,
            max_attempts: 16,
        };
        let (mut m, blk) = remote_read_machine(Some(retry));
        m.run_to_quiescence_limit(1 << 22);
        assert_eq!(m.block_status(blk), TxnStatus::Committed);
        let w1 = m.worker(1).stats();
        assert_eq!(
            w1.background_requests, 1,
            "the index op executed exactly once despite retransmits"
        );
        let w0 = m.worker(0).stats();
        assert!(w0.retries_sent >= 1, "the tight timeout forced retries");
        assert_eq!(w0.retry_exhausted, 0);
        assert_eq!(
            w1.dup_requests, w0.retries_sent,
            "every retransmit was absorbed as a duplicate at the home worker"
        );
    }

    #[test]
    fn crash_freezes_the_machine_and_salvages_durable_bytes() {
        let (mut m, blk) = remote_read_machine(None);
        m.set_fault_plan(FaultPlan::none().crash_at(50));
        m.set_crash_hook(|m| DurableImage {
            log: vec![0xAB],
            checkpoint: m.now().to_le_bytes().to_vec(),
        });
        m.run_to_quiescence_limit(1 << 22);
        assert!(m.is_crashed());
        assert_eq!(m.now(), 50, "crash fires exactly at its scheduled cycle");
        assert_ne!(m.block_status(blk), TxnStatus::Committed);
        let img = m.take_crash_image().expect("hook ran");
        assert_eq!(img.log, vec![0xAB]);
        assert_eq!(img.checkpoint, 50u64.to_le_bytes().to_vec());
        // A crashed machine is inert: ticking does nothing.
        let before = m.now();
        m.run(100);
        assert_eq!(m.now(), before);
    }

    #[test]
    fn retry_to_completion_gives_up_on_poisoned_blocks() {
        // A read of a missing key aborts deterministically every time:
        // the budget must bound the resubmissions.
        let mut b = SystemBuilder::new(BionicConfig::small(1));
        b.table(TableMeta::hash("kv", 8, 16, 1 << 8));
        let p = b.proc(
            assemble(
                "proc read1\nlogic:\n    search 0, 0, c0\ncommit:\n    ret g0, c0\n    cmp g0, 0\n    blt abort\n    commit\nabort:\n    abort\n",
            )
            .unwrap(),
        );
        let mut m = b.build();
        let blk = m.alloc_block(0, 128);
        m.init_block(blk, p);
        m.write_block(blk, 0, &7u64.to_be_bytes());
        m.submit(0, blk);
        m.run_to_quiescence_limit(1 << 22);
        assert_eq!(m.block_status(blk), TxnStatus::Aborted);
        let budget = RetryBudget {
            max_attempts: 3,
            backoff_cycles: 16,
        };
        let out = m.retry_to_completion(&[(0, blk)], budget, 1 << 22);
        assert!(!out.all_committed());
        assert_eq!(out.resubmissions, 3);
        assert_eq!(out.gave_up, vec![(0, blk)]);
        assert_eq!(m.stats().resubmits, 3);
    }
}
