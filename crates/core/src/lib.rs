//! # BionicDB
//!
//! A reproduction of *"BionicDB: Fast and Power-Efficient OLTP on FPGA"*
//! (Kim, Johnson, Pandis — EDBT 2019) as a cycle-level simulated system.
//!
//! BionicDB is an OLTP engine whose entire execution path lives on an FPGA:
//! stored procedures run on a custom **softcore**, index operations are
//! accelerated by a pipelined **index coprocessor** (hash + skiplist), and
//! cross-partition transactions ride **on-chip message-passing channels**
//! instead of shared memory. The database is partitioned DORA-style, one
//! single-threaded worker per partition, entirely resident in FPGA-side
//! DRAM.
//!
//! This crate assembles those pieces (from `bionicdb-fpga`,
//! `bionicdb-softcore`, `bionicdb-coproc`, `bionicdb-noc`) into a complete
//! machine with a host-side client API:
//!
//! ```
//! use bionicdb::{BionicConfig, BlockStatus, SystemBuilder};
//! use bionicdb_softcore::{asm::assemble, TableMeta};
//!
//! let mut b = SystemBuilder::new(BionicConfig::small(2));
//! let accounts = b.table(TableMeta::hash("accounts", 8, 16, 1 << 10));
//! let read_proc = b.proc(
//!     assemble(
//!         "proc read_one\n\
//!          logic:\n    search 0, 0, c0\n\
//!          commit:\n    ret g0, c0\n    cmp g0, 0\n    blt abort\n    commit\n\
//!          abort:\n    abort\n",
//!     )
//!     .unwrap(),
//! );
//! let mut db = b.build();
//! db.loader(0).insert(accounts, &77u64.to_be_bytes(), &[1u8; 16]);
//!
//! let blk = db.alloc_block(0, 128);
//! db.init_block(blk, read_proc);
//! db.write_block_u64(blk, 0, 0); // key bytes live at user offset 0
//! db.write_block(blk, 0, &77u64.to_be_bytes());
//! db.submit(0, blk);
//! db.run_to_quiescence();
//! assert!(db.block_status(blk).is_committed());
//! ```
//!
//! See `DESIGN.md` at the repository root for the full system inventory and
//! the experiment-by-experiment reproduction index.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod config;
pub mod machine;
pub mod recovery;
pub mod report;
pub mod storage;
pub mod worker;

pub use config::{BionicConfig, NocRetryConfig};
pub use machine::{
    LaneActivity, LookaheadMode, Machine, MachineStats, RetryBudget, RetryOutcome, SystemBuilder,
};
pub use recovery::{Checkpoint, CommandLog, DurableImage, LogRecord, RecoveryError};
pub use report::{MachineReport, WorkerReport};
pub use storage::Loader;

// Re-export the pieces users need to drive the system.
pub use bionicdb_fpga::{FaultBudget, FaultPlan, FpgaConfig};
pub use bionicdb_noc::Topology;
pub use bionicdb_softcore::txnblock::TxnStatus;
pub use bionicdb_softcore::{
    asm, builder::ProcBuilder, BatchMode, Catalogue, ExecMode, IndexKey, PartitionId, ProcId,
    TableId, TableMeta, TxnBlock,
};

/// Convenience trait for asserting on block outcomes.
pub trait BlockStatus {
    /// True when the transaction committed.
    fn is_committed(&self) -> bool;
    /// True when the transaction aborted.
    fn is_aborted(&self) -> bool;
}

impl BlockStatus for TxnStatus {
    fn is_committed(&self) -> bool {
        matches!(self, TxnStatus::Committed)
    }

    fn is_aborted(&self) -> bool {
        matches!(self, TxnStatus::Aborted)
    }
}
