//! Whole-machine configuration.

use bionicdb_coproc::CoprocConfig;
use bionicdb_fpga::FpgaConfig;
use bionicdb_noc::Topology;
use bionicdb_softcore::ExecMode;

/// Configuration of a BionicDB machine.
///
/// The default models the paper's hardware: four partition workers on one
/// Virtex-5 chip (paper §5.2: the chip's 200 K logic cells fit only four
/// workers), a crossbar interconnect, and interleaved execution.
#[derive(Debug, Clone)]
pub struct BionicConfig {
    /// Fabric timing parameters.
    pub fpga: FpgaConfig,
    /// Number of partition workers (= partitions).
    pub workers: usize,
    /// Interconnect topology for the on-chip channels.
    pub topology: Topology,
    /// Transaction interleaving (paper §4.5) or serial execution.
    pub mode: ExecMode,
    /// Total simulated FPGA-side DRAM in bytes (the HC-2 card carries
    /// 64 GB; simulations size this to the workload).
    pub dram_bytes: u64,
    /// Bytes reserved per worker for transaction blocks.
    pub block_arena_bytes: u64,
    /// Bytes of table heap per partition.
    pub partition_bytes: u64,
    /// Enable the pipelines' hazard-prevention lock tables.
    pub hazard_prevention: bool,
    /// Maximum transactions per interleaving batch (bounded by the BRAM
    /// context table). Small batches shrink the conflict window of
    /// hot-record workloads like TPC-C Payment.
    pub max_batch: usize,
}

impl Default for BionicConfig {
    fn default() -> Self {
        BionicConfig {
            fpga: FpgaConfig::default(),
            workers: 4,
            topology: Topology::Crossbar,
            mode: ExecMode::Interleaved,
            dram_bytes: 1 << 30,
            block_arena_bytes: 32 << 20,
            partition_bytes: 160 << 20,
            hazard_prevention: true,
            max_batch: 64,
        }
    }
}

impl BionicConfig {
    /// A small configuration for tests and examples: `workers` workers,
    /// modest memory.
    pub fn small(workers: usize) -> Self {
        BionicConfig {
            workers,
            dram_bytes: 256 << 20,
            block_arena_bytes: 8 << 20,
            partition_bytes: 32 << 20,
            ..BionicConfig::default()
        }
    }

    /// Derive the per-worker coprocessor configuration.
    pub fn coproc(&self) -> CoprocConfig {
        let mut c = CoprocConfig::from_fpga(&self.fpga);
        c.hazard_prevention = self.hazard_prevention;
        c
    }

    /// Validate structural constraints; called by the builder.
    pub fn validate(&self) {
        assert!(
            self.workers >= 1 && self.workers <= 1024,
            "1..=1024 workers"
        );
        let needed = self.workers as u64 * (self.block_arena_bytes + self.partition_bytes);
        assert!(
            needed <= self.dram_bytes,
            "DRAM too small: need {needed} bytes for {} workers, have {}",
            self.workers,
            self.dram_bytes
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_models_paper_hardware() {
        let c = BionicConfig::default();
        assert_eq!(c.workers, 4);
        assert_eq!(c.topology, Topology::Crossbar);
        assert_eq!(c.mode, ExecMode::Interleaved);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "DRAM too small")]
    fn oversubscribed_dram_rejected() {
        let mut c = BionicConfig::small(2);
        c.dram_bytes = 1 << 20;
        c.validate();
    }
}
