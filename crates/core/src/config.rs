//! Whole-machine configuration.

use bionicdb_coproc::CoprocConfig;
use bionicdb_fpga::FpgaConfig;
use bionicdb_noc::Topology;
use bionicdb_softcore::{BatchMode, ExecMode};

/// Remote-request retry policy for the worker glue (see
/// `worker::PartitionWorker`). When enabled, every remote DB instruction
/// carries a sequence number; the initiating worker retransmits it if no
/// response arrives within `timeout_cycles`, up to `max_attempts` total
/// sends, then synthesizes a `Timeout` error into the waiting CP register
/// so the transaction aborts cleanly instead of wedging. Receivers
/// de-duplicate by `(source, sequence)` so a retransmitted request is
/// never executed twice (remote ops stay idempotent under retry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NocRetryConfig {
    /// Cycles to wait for a response before retransmitting. Must exceed
    /// the worst-case round trip *including* concurrency-control stalls at
    /// the home partition, or healthy requests retransmit spuriously
    /// (harmless — dedup absorbs them — but wasteful).
    pub timeout_cycles: u64,
    /// Total send attempts (first transmission included) before giving up
    /// and delivering `DbStatus::Timeout`.
    pub max_attempts: u32,
}

impl Default for NocRetryConfig {
    fn default() -> Self {
        // Generous: ~64 K cycles (≈0.5 ms at 125 MHz) dwarfs any healthy
        // round trip in the simulated topologies, so with no injected
        // faults the timer never fires.
        NocRetryConfig {
            timeout_cycles: 1 << 16,
            max_attempts: 4,
        }
    }
}

/// Configuration of a BionicDB machine.
///
/// The default models the paper's hardware: four partition workers on one
/// Virtex-5 chip (paper §5.2: the chip's 200 K logic cells fit only four
/// workers), a crossbar interconnect, and interleaved execution.
#[derive(Debug, Clone)]
pub struct BionicConfig {
    /// Fabric timing parameters.
    pub fpga: FpgaConfig,
    /// Number of partition workers (= partitions).
    pub workers: usize,
    /// Interconnect topology for the on-chip channels.
    pub topology: Topology,
    /// Transaction interleaving (paper §4.5) or serial execution.
    pub mode: ExecMode,
    /// Total simulated FPGA-side DRAM in bytes (the HC-2 card carries
    /// 64 GB; simulations size this to the workload).
    pub dram_bytes: u64,
    /// Bytes reserved per worker for transaction blocks.
    pub block_arena_bytes: u64,
    /// Bytes of table heap per partition.
    pub partition_bytes: u64,
    /// Enable the pipelines' hazard-prevention lock tables.
    pub hazard_prevention: bool,
    /// Maximum transactions per interleaving batch (bounded by the BRAM
    /// context table). Small batches shrink the conflict window of
    /// hot-record workloads like TPC-C Payment.
    pub max_batch: usize,
    /// Remote-request timeout/retry policy. `None` (the default) keeps the
    /// legacy lossless-interconnect behavior bit-for-bit; `Some` arms the
    /// worker glue's bounded-retry path, required for fault plans that
    /// drop NoC messages (otherwise a dropped message wedges its
    /// transaction forever).
    pub noc_retry: Option<NocRetryConfig>,
    /// Batched level-wise index traversal (DESIGN.md §16). `Off` (the
    /// default) is bit-inert: no batch engines are constructed, no extra
    /// DRAM ports registered, and every report stays byte-identical to the
    /// unbatched machine.
    pub batch_mode: BatchMode,
    /// Maximum probes walked together by one batch engine (clamped to
    /// 1..=64). Only consulted when `batch_mode != Off`.
    pub batch_width: usize,
}

impl Default for BionicConfig {
    fn default() -> Self {
        BionicConfig {
            fpga: FpgaConfig::default(),
            workers: 4,
            topology: Topology::Crossbar,
            mode: ExecMode::Interleaved,
            dram_bytes: 1 << 30,
            block_arena_bytes: 32 << 20,
            partition_bytes: 160 << 20,
            hazard_prevention: true,
            max_batch: 64,
            noc_retry: None,
            batch_mode: BatchMode::Off,
            batch_width: 8,
        }
    }
}

impl BionicConfig {
    /// A small configuration for tests and examples: `workers` workers,
    /// modest memory.
    pub fn small(workers: usize) -> Self {
        BionicConfig {
            workers,
            dram_bytes: 256 << 20,
            block_arena_bytes: 8 << 20,
            partition_bytes: 32 << 20,
            ..BionicConfig::default()
        }
    }

    /// Derive the per-worker coprocessor configuration.
    pub fn coproc(&self) -> CoprocConfig {
        let mut c = CoprocConfig::from_fpga(&self.fpga);
        c.hazard_prevention = self.hazard_prevention;
        c.batch_mode = self.batch_mode;
        c.batch_width = self.batch_width;
        c
    }

    /// Validate structural constraints; called by the builder.
    pub fn validate(&self) {
        assert!(
            self.workers >= 1 && self.workers <= 1024,
            "1..=1024 workers"
        );
        let needed = self.workers as u64 * (self.block_arena_bytes + self.partition_bytes);
        assert!(
            needed <= self.dram_bytes,
            "DRAM too small: need {needed} bytes for {} workers, have {}",
            self.workers,
            self.dram_bytes
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_models_paper_hardware() {
        let c = BionicConfig::default();
        assert_eq!(c.workers, 4);
        assert_eq!(c.topology, Topology::Crossbar);
        assert_eq!(c.mode, ExecMode::Interleaved);
        assert_eq!(c.batch_mode, BatchMode::Off);
        assert_eq!(c.batch_width, 8);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "DRAM too small")]
    fn oversubscribed_dram_rejected() {
        let mut c = BionicConfig::small(2);
        c.dram_bytes = 1 << 20;
        c.validate();
    }
}
