//! The partition worker: softcore + index coprocessor + channel glue.
//!
//! A partition worker (paper Fig. 2) couples one softcore with one index
//! coprocessor and the worker's communication link. Each cycle the glue:
//!
//! 1. runs the **background unit** — catches inbound packets from the
//!    on-chip channels: requests go into the coprocessor as background
//!    requests (overlapping freely with local foreground requests in the
//!    pipelines), responses are written back into the local CP registers;
//! 2. scans the retransmit table (only when a [`NocRetryConfig`] is armed):
//!    overdue remote requests are resent, exhausted ones synthesize a
//!    `Timeout` error into the waiting CP register;
//! 3. ticks the softcore;
//! 4. routes the softcore's dispatched DB instructions — local home
//!    partition to the local coprocessor, remote home onto the request
//!    channel;
//! 5. ticks the coprocessor;
//! 6. routes completed results — local initiators to the CP register file,
//!    remote initiators onto the response channel.
//!
//! ## Loss tolerance (retry + idempotent remote ops)
//!
//! The paper's on-chip channels are lossless, and by default so are ours —
//! with `retry: None` the glue behaves bit-for-bit as a lossless design.
//! The fault-injection subsystem can drop packets, though, and a dropped
//! request or response would wedge its transaction forever. Arming a
//! [`NocRetryConfig`] turns the glue into a classic at-least-once /
//! execute-at-most-once endpoint:
//!
//! * every remote request carries a per-source **sequence number**;
//! * the initiator keeps it in a pending table and **retransmits** after
//!   `timeout_cycles`, up to `max_attempts` sends, then delivers
//!   `DbStatus::Timeout` so the stored procedure's error branch aborts the
//!   transaction cleanly;
//! * the home worker **de-duplicates** by `(source, seq)`: a retransmit of
//!   an in-flight request is discarded, a retransmit of a completed one is
//!   answered from a bounded cache of recent responses — the index
//!   operation itself is never executed twice;
//! * responses echo the request's seq, so a stale or duplicated response
//!   can never complete the wrong wait.

use std::collections::VecDeque;

use bionicdb_coproc::layout::TableState;
use bionicdb_coproc::{CoprocConfig, IndexCoproc};
use bionicdb_fpga::{Dram, Fifo};
use bionicdb_noc::{Link, Packet, Payload};
use bionicdb_softcore::catalogue::Catalogue;
use bionicdb_softcore::core::SoftcoreParams;
use bionicdb_softcore::request::DbRequest;
use bionicdb_softcore::{DbResult, DbStatus, PartitionId, Softcore};

use crate::config::NocRetryConfig;

/// Completed remote responses remembered for duplicate-request replay.
/// Bounded so a long run cannot grow without limit; old entries are evicted
/// FIFO. 256 far exceeds the number of retransmits that can be in flight
/// under any configured timeout.
const COMPLETED_CACHE: usize = 256;

/// Statistics of one worker's channel glue.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WorkerStats {
    /// Requests dispatched to the local coprocessor.
    pub local_requests: u64,
    /// Requests sent to remote workers.
    pub remote_requests: u64,
    /// Background requests received from remote workers.
    pub background_requests: u64,
    /// Duplicate remote requests absorbed by the dedup table (discarded or
    /// answered from the completed-response cache, never re-executed).
    pub dup_requests: u64,
    /// Duplicate / stale responses discarded at the initiator.
    pub dup_responses: u64,
    /// Retransmissions of remote requests.
    pub retries_sent: u64,
    /// Remote requests that exhausted their retry budget and delivered a
    /// synthesized `Timeout` to the waiting CP register.
    pub retry_exhausted: u64,
}

/// A remote request awaiting its response at the initiator.
#[derive(Debug, Clone, Copy)]
struct PendingRemote {
    seq: u64,
    pkt: Packet,
    sent_at: u64,
    attempts: u32,
}

/// A remote request currently executing in the local coprocessor on behalf
/// of `src`, keyed by the CP slot its response will carry.
#[derive(Debug, Clone, Copy)]
struct InflightRemote {
    cp_worker: PartitionId,
    cp_index: u16,
    src: PartitionId,
    seq: u64,
}

/// One partition worker.
pub struct PartitionWorker {
    /// Worker / partition id.
    pub id: PartitionId,
    /// The stored-procedure execution engine.
    pub softcore: Softcore,
    /// The index coprocessor.
    pub coproc: IndexCoproc,
    /// DB instructions dispatched by the softcore, awaiting routing.
    db_chan: Fifo<DbRequest>,
    stats: WorkerStats,
    /// Retry policy; `None` = legacy lossless glue, bit-for-bit.
    retry: Option<NocRetryConfig>,
    /// Next sequence number for outgoing remote requests.
    next_seq: u64,
    /// Outgoing remote requests awaiting responses (initiator side).
    pending_remote: Vec<PendingRemote>,
    /// Remote requests executing locally (home side), for dedup.
    bg_inflight: Vec<InflightRemote>,
    /// Recently completed remote responses (home side), replayed to
    /// duplicate requests whose response was lost.
    bg_completed: VecDeque<(PartitionId, u64, i64)>,
}

impl PartitionWorker {
    /// Build a worker, registering its ports on `dram`.
    pub fn new(
        id: PartitionId,
        sc_params: SoftcoreParams,
        coproc_cfg: &CoprocConfig,
        dram: &mut Dram,
        retry: Option<NocRetryConfig>,
    ) -> Self {
        PartitionWorker {
            id,
            softcore: Softcore::new(id, sc_params, dram),
            coproc: IndexCoproc::new(coproc_cfg, dram),
            db_chan: Fifo::new(16),
            stats: WorkerStats::default(),
            retry,
            // Seq 0 is reserved for unsequenced packets (legacy glue,
            // defensive fallbacks); real requests start at 1.
            next_seq: 1,
            pending_remote: Vec::new(),
            bg_inflight: Vec::new(),
            bg_completed: VecDeque::new(),
        }
    }

    /// Glue statistics.
    pub fn stats(&self) -> WorkerStats {
        self.stats
    }

    /// True when the worker has no pending work of any kind. A non-empty
    /// retransmit table counts as work: it always resolves on its own
    /// (response, retransmit, or synthesized timeout).
    pub fn is_quiescent(&self) -> bool {
        self.softcore.is_quiescent()
            && self.coproc.is_idle()
            && self.db_chan.is_empty()
            && self.pending_remote.is_empty()
    }

    /// Number of submitted blocks waiting in the softcore's input queue —
    /// admitted work the worker has not yet begun executing. The serving
    /// front end (DESIGN.md §17) uses this to observe how streamed
    /// injections distribute across partitions.
    pub fn input_backlog(&self) -> usize {
        self.softcore.input_len()
    }

    /// Fast-forward support: the earliest future cycle at which this worker
    /// could make progress or mutate a statistic on its own — i.e. without
    /// a NoC delivery or DRAM completion, which the machine bounds
    /// separately. `None` when both softcore and coprocessor are purely
    /// waiting (or idle) and no routing work is queued.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        // Queued routing work retries a coproc push / NoC send every tick
        // (a NoC send attempt mutates `busy_rejects`): never skip it.
        if !self.db_chan.is_empty() || !self.coproc.out.is_empty() {
            return Some(now + 1);
        }
        let mut next = match (
            self.softcore.next_event(now),
            self.coproc.next_event(now),
        ) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        // Retransmit deadlines are self-generated events: a skipped machine
        // must still wake to resend or to synthesize a timeout.
        if let Some(cfg) = self.retry {
            for p in &self.pending_remote {
                let deadline = (p.sent_at + cfg.timeout_cycles).max(now + 1);
                next = Some(next.map_or(deadline, |n| n.min(deadline)));
            }
        }
        next
    }

    /// Fast-forward support: account for `k` skipped cycles in both halves.
    pub fn skip(&mut self, k: u64) {
        self.softcore.skip(k);
        self.coproc.skip(k);
    }

    /// Whether `(src, seq)` duplicates an in-flight or completed remote
    /// request. Returns the cached response value when completed.
    fn dedup_lookup(&self, src: PartitionId, seq: u64) -> Option<Option<i64>> {
        if let Some(&(_, _, v)) = self
            .bg_completed
            .iter()
            .find(|&&(s, q, _)| s == src && q == seq)
        {
            return Some(Some(v));
        }
        if self
            .bg_inflight
            .iter()
            .any(|e| e.src == src && e.seq == seq)
        {
            return Some(None);
        }
        None
    }

    /// One cycle of the whole worker.
    ///
    /// `noc` is any [`Link`]: the shared [`bionicdb_noc::Noc`] under serial
    /// ticking, or this worker's detached [`bionicdb_noc::EpochLink`] under
    /// the epoch-parallel scheduler — the glue cannot tell the difference,
    /// which is precisely what makes the parallel schedule bit-exact.
    pub fn tick(
        &mut self,
        now: u64,
        dram: &mut Dram,
        cat: &Catalogue,
        noc: &mut impl Link,
        tables: &mut [TableState],
    ) {
        // Tick-order invariant 1 (see `Machine::tick`): the bank must have
        // been ticked at `now` before its worker — a response completing
        // at `now` has to be consumable this very cycle, in serial and
        // epoch-parallel schedules alike. An unticked bank would still
        // report a due completion at or before `now`.
        debug_assert!(
            dram.next_event().is_none_or(|t| t > now),
            "DRAM bank ticked after its worker at cycle {now}"
        );
        // 1. Background unit: drain deliverable inbound packets.
        while let Some(pkt) = noc.peek(now, self.id) {
            match pkt.payload {
                Payload::Response(resp) => {
                    debug_assert_eq!(resp.cp.worker, self.id, "response misrouted");
                    if self.retry.is_some() {
                        let seq = pkt.seq;
                        noc.poll(now, self.id);
                        if let Some(i) =
                            self.pending_remote.iter().position(|p| p.seq == seq)
                        {
                            self.pending_remote.swap_remove(i);
                            self.softcore.deliver_cp(now, resp.cp.index, resp.value);
                        } else {
                            // Stale: a retransmitted request produced a
                            // second response, or the wait already timed
                            // out. Either way the CP slot may be reused —
                            // never write it.
                            self.stats.dup_responses += 1;
                        }
                    } else {
                        self.softcore.deliver_cp(now, resp.cp.index, resp.value);
                        noc.poll(now, self.id);
                    }
                }
                Payload::Request(_) => {
                    if self.retry.is_some() {
                        if let Some(done) = self.dedup_lookup(pkt.src, pkt.seq) {
                            let (src, seq) = (pkt.src, pkt.seq);
                            let Payload::Request(req) =
                                noc.poll(now, self.id).expect("peeked").payload
                            else {
                                unreachable!("peeked a request")
                            };
                            self.stats.dup_requests += 1;
                            if let Some(value) = done {
                                // Response was lost: replay it from cache.
                                // If the channel is busy the replay is lost
                                // too and the initiator simply retries.
                                let _ = noc.send(
                                    now,
                                    Packet {
                                        src: self.id,
                                        dst: src,
                                        payload: Payload::Response(
                                            bionicdb_softcore::request::DbResponse {
                                                cp: req.cp,
                                                value,
                                            },
                                        ),
                                        seq,
                                    },
                                );
                            }
                            continue;
                        }
                    }
                    if !self.coproc.input.has_space() {
                        break; // back-pressure into the channel
                    }
                    let seq = pkt.seq;
                    let src = pkt.src;
                    let Payload::Request(req) = noc.poll(now, self.id).expect("peeked").payload
                    else {
                        unreachable!("peeked a request")
                    };
                    debug_assert_eq!(req.home, self.id, "request misrouted");
                    if self.retry.is_some() {
                        self.bg_inflight.push(InflightRemote {
                            cp_worker: req.cp.worker,
                            cp_index: req.cp.index,
                            src,
                            seq,
                        });
                    }
                    self.coproc.input.push(req).expect("space checked");
                    self.stats.background_requests += 1;
                }
            }
        }

        // 2. Retransmit scan (armed glue only).
        if let Some(cfg) = self.retry {
            let mut i = 0;
            while i < self.pending_remote.len() {
                let p = self.pending_remote[i];
                if now.saturating_sub(p.sent_at) < cfg.timeout_cycles {
                    i += 1;
                    continue;
                }
                if p.attempts >= cfg.max_attempts {
                    // Budget exhausted: synthesize a Timeout into the
                    // waiting CP register so the sproc's error branch
                    // aborts the transaction instead of wedging.
                    let Payload::Request(req) = p.pkt.payload else {
                        unreachable!("pending entries are requests")
                    };
                    self.softcore.deliver_cp(
                        now,
                        req.cp.index,
                        DbResult::Err(DbStatus::Timeout).encode(),
                    );
                    self.stats.retry_exhausted += 1;
                    self.pending_remote.swap_remove(i);
                    continue; // swap_remove moved a new entry into slot i
                }
                // On a busy channel, leave the entry and retry next tick.
                if noc.send(now, p.pkt).is_ok() {
                    self.pending_remote[i].attempts += 1;
                    self.pending_remote[i].sent_at = now;
                    self.stats.retries_sent += 1;
                }
                i += 1;
            }
        }

        // 3. Softcore.
        self.softcore.tick(now, dram, cat, &mut self.db_chan);

        // 4. Route dispatched DB instructions.
        while let Some(req) = self.db_chan.peek().copied() {
            if req.home == self.id {
                if !self.coproc.input.has_space() {
                    break;
                }
                self.coproc.input.push(req).expect("space checked");
                self.stats.local_requests += 1;
            } else {
                let seq = self.next_seq;
                let pkt = Packet {
                    src: self.id,
                    dst: req.home,
                    payload: Payload::Request(req),
                    seq,
                };
                if noc.send(now, pkt).is_err() {
                    break;
                }
                self.next_seq += 1;
                if self.retry.is_some() {
                    self.pending_remote.push(PendingRemote {
                        seq,
                        pkt,
                        sent_at: now,
                        attempts: 1,
                    });
                }
                self.stats.remote_requests += 1;
            }
            self.db_chan.pop();
        }

        // 5. Coprocessor.
        self.coproc.tick(now, dram, tables);

        // 6. Route completed results.
        while let Some(resp) = self.coproc.out.peek().copied() {
            if resp.cp.worker == self.id {
                self.softcore.deliver_cp(now, resp.cp.index, resp.value);
            } else {
                // Echo the originating request's seq so the initiator can
                // match the response against its pending table.
                let (dst, seq, inflight_idx) = if self.retry.is_some() {
                    let idx = self.bg_inflight.iter().position(|e| {
                        e.cp_worker == resp.cp.worker && e.cp_index == resp.cp.index
                    });
                    match idx {
                        Some(i) => (self.bg_inflight[i].src, self.bg_inflight[i].seq, Some(i)),
                        None => (resp.cp.worker, 0, None),
                    }
                } else {
                    (resp.cp.worker, 0, None)
                };
                let pkt = Packet {
                    src: self.id,
                    dst,
                    payload: Payload::Response(resp),
                    seq,
                };
                if noc.send(now, pkt).is_err() {
                    break;
                }
                if let Some(i) = inflight_idx {
                    let e = self.bg_inflight.swap_remove(i);
                    self.bg_completed.push_back((e.src, e.seq, resp.value));
                    if self.bg_completed.len() > COMPLETED_CACHE {
                        self.bg_completed.pop_front();
                    }
                }
            }
            self.coproc.out.pop();
        }
    }
}

impl std::fmt::Debug for PartitionWorker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PartitionWorker")
            .field("id", &self.id)
            .field("softcore", &self.softcore)
            .field("db_chan", &self.db_chan.len())
            .field("pending_remote", &self.pending_remote.len())
            .field("stats", &self.stats)
            .finish()
    }
}
