//! The partition worker: softcore + index coprocessor + channel glue.
//!
//! A partition worker (paper Fig. 2) couples one softcore with one index
//! coprocessor and the worker's communication link. Each cycle the glue:
//!
//! 1. runs the **background unit** — catches inbound packets from the
//!    on-chip channels: requests go into the coprocessor as background
//!    requests (overlapping freely with local foreground requests in the
//!    pipelines), responses are written back into the local CP registers;
//! 2. ticks the softcore;
//! 3. routes the softcore's dispatched DB instructions — local home
//!    partition to the local coprocessor, remote home onto the request
//!    channel;
//! 4. ticks the coprocessor;
//! 5. routes completed results — local initiators to the CP register file,
//!    remote initiators onto the response channel.

use bionicdb_coproc::layout::TableState;
use bionicdb_coproc::{CoprocConfig, IndexCoproc};
use bionicdb_fpga::{Dram, Fifo};
use bionicdb_noc::{Noc, Packet, Payload};
use bionicdb_softcore::catalogue::Catalogue;
use bionicdb_softcore::core::SoftcoreParams;
use bionicdb_softcore::request::DbRequest;
use bionicdb_softcore::{PartitionId, Softcore};

/// Statistics of one worker's channel glue.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WorkerStats {
    /// Requests dispatched to the local coprocessor.
    pub local_requests: u64,
    /// Requests sent to remote workers.
    pub remote_requests: u64,
    /// Background requests received from remote workers.
    pub background_requests: u64,
}

/// One partition worker.
pub struct PartitionWorker {
    /// Worker / partition id.
    pub id: PartitionId,
    /// The stored-procedure execution engine.
    pub softcore: Softcore,
    /// The index coprocessor.
    pub coproc: IndexCoproc,
    /// DB instructions dispatched by the softcore, awaiting routing.
    db_chan: Fifo<DbRequest>,
    stats: WorkerStats,
}

impl PartitionWorker {
    /// Build a worker, registering its ports on `dram`.
    pub fn new(
        id: PartitionId,
        sc_params: SoftcoreParams,
        coproc_cfg: &CoprocConfig,
        dram: &mut Dram,
    ) -> Self {
        PartitionWorker {
            id,
            softcore: Softcore::new(id, sc_params, dram),
            coproc: IndexCoproc::new(coproc_cfg, dram),
            db_chan: Fifo::new(16),
            stats: WorkerStats::default(),
        }
    }

    /// Glue statistics.
    pub fn stats(&self) -> WorkerStats {
        self.stats
    }

    /// True when the worker has no pending work of any kind.
    pub fn is_quiescent(&self) -> bool {
        self.softcore.is_quiescent() && self.coproc.is_idle() && self.db_chan.is_empty()
    }

    /// Fast-forward support: the earliest future cycle at which this worker
    /// could make progress or mutate a statistic on its own — i.e. without
    /// a NoC delivery or DRAM completion, which the machine bounds
    /// separately. `None` when both softcore and coprocessor are purely
    /// waiting (or idle) and no routing work is queued.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        // Queued routing work retries a coproc push / NoC send every tick
        // (a NoC send attempt mutates `busy_rejects`): never skip it.
        if !self.db_chan.is_empty() || !self.coproc.out.is_empty() {
            return Some(now + 1);
        }
        match (
            self.softcore.next_event(now),
            self.coproc.next_event(now),
        ) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Fast-forward support: account for `k` skipped cycles in both halves.
    pub fn skip(&mut self, k: u64) {
        self.softcore.skip(k);
        self.coproc.skip(k);
    }

    /// One cycle of the whole worker.
    pub fn tick(
        &mut self,
        now: u64,
        dram: &mut Dram,
        cat: &Catalogue,
        noc: &mut Noc,
        tables: &mut [TableState],
    ) {
        // 1. Background unit: drain deliverable inbound packets.
        while let Some(pkt) = noc.peek(now, self.id) {
            match pkt.payload {
                Payload::Response(resp) => {
                    debug_assert_eq!(resp.cp.worker, self.id, "response misrouted");
                    self.softcore.deliver_cp(resp.cp.index, resp.value);
                    noc.poll(now, self.id);
                }
                Payload::Request(_) => {
                    if !self.coproc.input.has_space() {
                        break; // back-pressure into the channel
                    }
                    let Payload::Request(req) = noc.poll(now, self.id).expect("peeked").payload
                    else {
                        unreachable!("peeked a request")
                    };
                    debug_assert_eq!(req.home, self.id, "request misrouted");
                    self.coproc.input.push(req).expect("space checked");
                    self.stats.background_requests += 1;
                }
            }
        }

        // 2. Softcore.
        self.softcore.tick(now, dram, cat, &mut self.db_chan);

        // 3. Route dispatched DB instructions.
        while let Some(req) = self.db_chan.peek().copied() {
            if req.home == self.id {
                if !self.coproc.input.has_space() {
                    break;
                }
                self.coproc.input.push(req).expect("space checked");
                self.stats.local_requests += 1;
            } else {
                let pkt = Packet {
                    src: self.id,
                    dst: req.home,
                    payload: Payload::Request(req),
                };
                if noc.send(now, pkt).is_err() {
                    break;
                }
                self.stats.remote_requests += 1;
            }
            self.db_chan.pop();
        }

        // 4. Coprocessor.
        self.coproc.tick(now, dram, tables);

        // 5. Route completed results.
        while let Some(resp) = self.coproc.out.peek().copied() {
            if resp.cp.worker == self.id {
                self.softcore.deliver_cp(resp.cp.index, resp.value);
            } else {
                let pkt = Packet {
                    src: self.id,
                    dst: resp.cp.worker,
                    payload: Payload::Response(resp),
                };
                if noc.send(now, pkt).is_err() {
                    break;
                }
            }
            self.coproc.out.pop();
        }
    }
}

impl std::fmt::Debug for PartitionWorker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PartitionWorker")
            .field("id", &self.id)
            .field("softcore", &self.softcore)
            .field("db_chan", &self.db_chan.len())
            .field("stats", &self.stats)
            .finish()
    }
}
