//! Command logging and recovery (paper §4.8).
//!
//! The paper sketches VoltDB-style command logging: after BionicDB executes
//! a transaction, its block contains the commit state and timestamp while
//! preserving the input arguments. The host persists executed blocks before
//! returning them to clients; after a failure it loads the last checkpoint
//! image and **replays the committed transaction blocks in commit-timestamp
//! order**, then re-initializes the hardware clocks.
//!
//! We implement that protocol end to end, hardened for the adverse
//! conditions the fault-injection subsystem (`bionicdb_fpga::fault`) can
//! create:
//!
//! * [`CommandLog`] captures executed blocks into durable log records. The
//!   serialization frames every record with an explicit length and a CRC-32,
//!   so a torn tail or a flipped bit is *detected*, never silently decoded
//!   into garbage; [`CommandLog::from_bytes_prefix`] recovers the exact
//!   valid prefix of a damaged log (truncate-to-last-valid-record).
//! * [`Checkpoint`] dumps the committed logical database image (walking the
//!   indexes host-side), serializes it under a whole-image CRC-32, and can
//!   reload it into a fresh machine.
//! * [`CommandLog::replay`] re-executes committed records in commit-ts
//!   order against a recovered machine, skipping uncommitted ones.
//! * [`DurableImage`] is what survives a crash — the log and checkpoint
//!   bytes only — snapshotted by the machine's crash hook with any
//!   scheduled torn-write/corruption faults applied.

use std::collections::BTreeMap;

use bionicdb_coproc::layout::{read_header, TOWER_NEXTS, TUPLE_HEADER, TUPLE_NEXT};
use bionicdb_fpga::fault::{CorruptByte, FaultPlan, TornWrite};
use bionicdb_softcore::catalogue::{IndexKind, ProcId, TableId};
use bionicdb_softcore::txnblock::TxnStatus;
use bionicdb_softcore::TxnBlock;

use crate::machine::Machine;

const LOG_MAGIC: &[u8; 8] = b"BDBLOG2\0";
const CKPT_MAGIC: &[u8; 8] = b"BDBCKP1\0";

/// Why decoding a durable image failed. Every variant that can occur
/// mid-log carries `valid_prefix`: the number of fully-validated records
/// before the damage, i.e. exactly how much [`CommandLog::from_bytes_prefix`]
/// will salvage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryError {
    /// The image does not start with the expected magic — not a log /
    /// checkpoint at all, or a different format version.
    BadMagic,
    /// The image ends before the fixed header completes.
    TruncatedHeader,
    /// Record `index` is cut short (torn tail): the medium ends inside its
    /// framing or body.
    TruncatedRecord {
        /// The record the damage was detected in.
        index: usize,
        /// Fully-validated records before it.
        valid_prefix: usize,
    },
    /// Record `index` fails its CRC-32 (bit rot / injected corruption).
    ChecksumMismatch {
        /// The record the damage was detected in.
        index: usize,
        /// Fully-validated records before it.
        valid_prefix: usize,
    },
    /// Record `index` is internally inconsistent (framing length does not
    /// match the body's declared sizes).
    MalformedRecord {
        /// The record the damage was detected in.
        index: usize,
        /// Fully-validated records before it.
        valid_prefix: usize,
    },
    /// Bytes remain after the last declared record — the header's record
    /// count was damaged, or the image was concatenated with junk.
    TrailingGarbage {
        /// Fully-validated records decoded before the excess bytes.
        valid_prefix: usize,
    },
    /// The checkpoint image fails its whole-image CRC-32.
    CheckpointChecksum,
    /// The checkpoint image ends before its declared contents.
    CheckpointTruncated,
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::BadMagic => write!(f, "bad magic: not a BionicDB durable image"),
            RecoveryError::TruncatedHeader => write!(f, "image truncated inside the header"),
            RecoveryError::TruncatedRecord {
                index,
                valid_prefix,
            } => write!(
                f,
                "log record {index} torn ({valid_prefix} valid records precede it)"
            ),
            RecoveryError::ChecksumMismatch {
                index,
                valid_prefix,
            } => write!(
                f,
                "log record {index} fails CRC ({valid_prefix} valid records precede it)"
            ),
            RecoveryError::MalformedRecord {
                index,
                valid_prefix,
            } => write!(
                f,
                "log record {index} malformed ({valid_prefix} valid records precede it)"
            ),
            RecoveryError::TrailingGarbage { valid_prefix } => write!(
                f,
                "trailing bytes after the last of {valid_prefix} log records"
            ),
            RecoveryError::CheckpointChecksum => {
                write!(f, "checkpoint image fails its CRC")
            }
            RecoveryError::CheckpointTruncated => {
                write!(f, "checkpoint image truncated")
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

impl RecoveryError {
    /// The number of fully-validated log records preceding the damage
    /// (zero for header-level failures).
    pub fn valid_prefix(&self) -> usize {
        match *self {
            RecoveryError::TruncatedRecord { valid_prefix, .. }
            | RecoveryError::ChecksumMismatch { valid_prefix, .. }
            | RecoveryError::MalformedRecord { valid_prefix, .. }
            | RecoveryError::TrailingGarbage { valid_prefix } => valid_prefix,
            _ => 0,
        }
    }

    /// True when the damage is a torn *tail*: every record before the
    /// failure point validated, so the prefix is trustworthy committed
    /// history (the crash interrupted the final append).
    pub fn is_torn_tail(&self) -> bool {
        matches!(
            self,
            RecoveryError::TruncatedRecord { .. } | RecoveryError::ChecksumMismatch { .. }
        )
    }
}

/// CRC-32 (IEEE 802.3, reflected), the classic durable-storage checksum.
/// Self-contained: the repo builds without registry access.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// What survives a crash: the durable log and checkpoint bytes, nothing
/// else. Produced by the crash hook installed on [`Machine`] (see
/// `Machine::set_crash_hook`); the in-DRAM state is lost with the power.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DurableImage {
    /// Serialized [`CommandLog`] bytes, with any scheduled torn-write or
    /// corruption faults already applied.
    pub log: Vec<u8>,
    /// Serialized [`Checkpoint`] bytes, with any scheduled corruption
    /// faults already applied.
    pub checkpoint: Vec<u8>,
}

/// One durable log record: the preserved transaction block of a committed
/// transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Worker the block was submitted to.
    pub worker: u16,
    /// The invoked procedure.
    pub proc: ProcId,
    /// Commit timestamp (replay order).
    pub commit_ts: u64,
    /// The block's user area (inputs preserved through execution).
    pub user_data: Vec<u8>,
    /// Total block size (for re-allocation at replay).
    pub block_size: u64,
}

impl LogRecord {
    /// Serialize the record body (the CRC-protected part).
    fn body_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(30 + self.user_data.len());
        out.extend_from_slice(&self.worker.to_le_bytes());
        out.extend_from_slice(&self.proc.0.to_le_bytes());
        out.extend_from_slice(&self.commit_ts.to_le_bytes());
        out.extend_from_slice(&self.block_size.to_le_bytes());
        out.extend_from_slice(&(self.user_data.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.user_data);
        out
    }

    /// Serialize the whole framed record: `len | crc | body`.
    fn framed_bytes(&self) -> Vec<u8> {
        let body = self.body_bytes();
        let mut out = Vec::with_capacity(8 + body.len());
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Decode a record body (already CRC-validated).
    fn from_body(body: &[u8], index: usize, valid_prefix: usize) -> Result<LogRecord, RecoveryError> {
        let malformed = RecoveryError::MalformedRecord {
            index,
            valid_prefix,
        };
        if body.len() < 30 {
            return Err(malformed);
        }
        let worker = u16::from_le_bytes(body[0..2].try_into().expect("2"));
        let proc = ProcId(u32::from_le_bytes(body[2..6].try_into().expect("4")));
        let commit_ts = u64::from_le_bytes(body[6..14].try_into().expect("8"));
        let block_size = u64::from_le_bytes(body[14..22].try_into().expect("8"));
        let user_len = u64::from_le_bytes(body[22..30].try_into().expect("8")) as usize;
        if body.len() != 30 + user_len {
            return Err(malformed);
        }
        Ok(LogRecord {
            worker,
            proc,
            commit_ts,
            block_size,
            user_data: body[30..].to_vec(),
        })
    }
}

/// The simulated durable command log.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CommandLog {
    records: Vec<LogRecord>,
}

impl CommandLog {
    /// Create an empty log.
    pub fn new() -> Self {
        CommandLog::default()
    }

    /// Build a log from records (test/replay plumbing).
    pub fn from_records(records: Vec<LogRecord>) -> Self {
        CommandLog { records }
    }

    /// The captured records, in capture order.
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// Capture the outcome of an executed block. Aborted/pending blocks are
    /// ignored (only committed work is replayed).
    pub fn capture(&mut self, m: &Machine, worker: usize, blk: TxnBlock) {
        if m.block_status(blk) != TxnStatus::Committed {
            return;
        }
        let user_len = blk.size() - bionicdb_softcore::BLOCK_HEADER_SIZE;
        self.records.push(LogRecord {
            worker: worker as u16,
            proc: blk.proc_id(m.dram()),
            commit_ts: m.block_commit_ts(blk),
            user_data: m.read_block(blk, 0, user_len),
            block_size: blk.size(),
        });
    }

    /// Number of captured records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Serialize to the simulated durable medium. Every record is framed
    /// with an explicit length and a CRC-32 of its body, so damage is
    /// always detectable and a torn tail truncates to the last whole
    /// record instead of poisoning the decode.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(LOG_MAGIC);
        out.extend_from_slice(&(self.records.len() as u64).to_le_bytes());
        for r in &self.records {
            out.extend_from_slice(&r.framed_bytes());
        }
        out
    }

    /// Serialize with the durable-medium faults of `plan` applied: a
    /// scheduled [`TornWrite`] interrupts the append of the scheduled
    /// record (keeping only its first `valid_bytes` bytes and dropping
    /// everything after), then any scheduled byte corruptions are XORed in.
    /// This is what the crash hook persists.
    pub fn to_bytes_faulted(&self, plan: &FaultPlan) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(LOG_MAGIC);
        out.extend_from_slice(&(self.records.len() as u64).to_le_bytes());
        for (i, r) in self.records.iter().enumerate() {
            let framed = r.framed_bytes();
            if let Some(TornWrite {
                record,
                valid_bytes,
            }) = plan.torn_log
            {
                if i as u64 == record {
                    let keep = (valid_bytes as usize).min(framed.len());
                    out.extend_from_slice(&framed[..keep]);
                    break; // nothing after a torn append reaches the medium
                }
            }
            out.extend_from_slice(&framed);
        }
        CorruptByte::apply_all(&plan.corrupt_log, &mut out);
        out
    }

    /// Strict deserialization: any damage anywhere is an error.
    pub fn from_bytes(data: &[u8]) -> Result<CommandLog, RecoveryError> {
        let (log, err) = CommandLog::from_bytes_prefix(data);
        match err {
            None => Ok(log),
            Some(e) => Err(e),
        }
    }

    /// Tolerant deserialization with truncate-to-last-valid-record
    /// semantics: returns every fully-validated record from the front of
    /// the image, plus the error that stopped the decode (if any). This is
    /// the recovery path's entry point — after a crash with a torn tail,
    /// the valid prefix *is* the durable committed history.
    pub fn from_bytes_prefix(data: &[u8]) -> (CommandLog, Option<RecoveryError>) {
        let mut records = Vec::new();
        let header = 16usize;
        if data.len() < 8 || &data[..8] != LOG_MAGIC {
            return (CommandLog { records }, Some(RecoveryError::BadMagic));
        }
        if data.len() < header {
            return (CommandLog { records }, Some(RecoveryError::TruncatedHeader));
        }
        let declared = u64::from_le_bytes(data[8..16].try_into().expect("8")) as usize;
        let mut pos = header;
        for index in 0..declared {
            let valid_prefix = records.len();
            let torn = RecoveryError::TruncatedRecord {
                index,
                valid_prefix,
            };
            let Some(frame) = data.get(pos..pos + 8) else {
                return (CommandLog { records }, Some(torn));
            };
            let len = u32::from_le_bytes(frame[0..4].try_into().expect("4")) as usize;
            let crc = u32::from_le_bytes(frame[4..8].try_into().expect("4"));
            let Some(body) = data.get(pos + 8..pos + 8 + len) else {
                return (CommandLog { records }, Some(torn));
            };
            if crc32(body) != crc {
                return (
                    CommandLog { records },
                    Some(RecoveryError::ChecksumMismatch {
                        index,
                        valid_prefix,
                    }),
                );
            }
            match LogRecord::from_body(body, index, valid_prefix) {
                Ok(r) => records.push(r),
                Err(e) => return (CommandLog { records }, Some(e)),
            }
            pos += 8 + len;
        }
        if pos != data.len() {
            let valid_prefix = records.len();
            return (
                CommandLog { records },
                Some(RecoveryError::TrailingGarbage { valid_prefix }),
            );
        }
        (CommandLog { records }, None)
    }

    /// Replay the committed records against a recovered machine, strictly
    /// in commit-timestamp order. Each record is re-executed to completion
    /// before the next starts, which guarantees the replayed history is the
    /// same serial order the original timestamps encoded.
    ///
    /// Returns the number of replayed transactions. Panics if a replayed
    /// transaction does not commit (the checkpoint and log disagree).
    pub fn replay(&self, m: &mut Machine) -> usize {
        let mut ordered: Vec<&LogRecord> = self.records.iter().collect();
        ordered.sort_by_key(|r| r.commit_ts);
        for r in &ordered {
            let blk = m.alloc_block(r.worker as usize, r.block_size);
            m.init_block(blk, r.proc);
            m.write_block(blk, 0, &r.user_data);
            m.submit(r.worker as usize, blk);
            m.run_to_quiescence_limit(1 << 26);
            assert_eq!(
                m.block_status(blk),
                TxnStatus::Committed,
                "replayed transaction failed to commit (checkpoint/log mismatch)"
            );
        }
        ordered.len()
    }
}

/// A logical checkpoint image: every committed, live record of every table
/// on every partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// `tables[worker][table] = key bytes -> payload bytes`, ordered by key.
    pub tables: Vec<Vec<BTreeMap<Vec<u8>, Vec<u8>>>>,
}

impl Checkpoint {
    /// Dump the committed logical state of `m` (host-side index walks).
    pub fn dump(m: &Machine) -> Checkpoint {
        let mut tables = Vec::with_capacity(m.num_workers());
        for w in 0..m.num_workers() {
            let part = m.partition(w);
            let mut per_table = Vec::with_capacity(part.tables.len());
            for state in &part.tables {
                let mut records = BTreeMap::new();
                match state.meta.kind {
                    IndexKind::Hash => {
                        for b in 0..state.meta.hash_buckets {
                            let mut cur = m.dram().host_read_u64(state.bucket_addr(b));
                            while cur != 0 {
                                let hdr = read_header(m.dram(), cur + TUPLE_HEADER);
                                if !hdr.is_dirty() && !hdr.is_tombstone() {
                                    let payload = m.dram().host_read(
                                        cur + bionicdb_coproc::layout::TUPLE_PAYLOAD,
                                        state.meta.payload_len as usize,
                                    );
                                    records
                                        .entry(hdr.key.as_bytes().to_vec())
                                        .or_insert(payload);
                                }
                                cur = m.dram().host_read_u64(cur + TUPLE_NEXT);
                            }
                        }
                    }
                    IndexKind::Skiplist => {
                        let mut cur = m.dram().host_read_u64(state.head_next_addr(0));
                        while cur != 0 {
                            let hdr = read_header(m.dram(), cur);
                            if !hdr.is_dirty() && !hdr.is_tombstone() {
                                let h = m.dram().host_read_u64(cur + 64) as usize;
                                let payload = m.dram().host_read(
                                    cur + bionicdb_coproc::layout::TableState::tower_payload_off(h),
                                    state.meta.payload_len as usize,
                                );
                                records
                                    .entry(hdr.key.as_bytes().to_vec())
                                    .or_insert(payload);
                            }
                            cur = m.dram().host_read_u64(cur + TOWER_NEXTS);
                        }
                    }
                }
                per_table.push(records);
            }
            tables.push(per_table);
        }
        Checkpoint { tables }
    }

    /// Load this image into a freshly built machine (bulk loads every
    /// record as committed data).
    pub fn load_into(&self, m: &mut Machine) {
        for (w, per_table) in self.tables.iter().enumerate() {
            for (t, records) in per_table.iter().enumerate() {
                let mut loader = m.loader(w);
                for (key, payload) in records {
                    loader.insert(TableId(t as u8), key, payload);
                }
            }
        }
    }

    /// Serialize to the simulated durable medium under a whole-image
    /// CRC-32 (trailing), so a corrupted checkpoint is *detected* at
    /// recovery rather than silently loaded as garbage data.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(CKPT_MAGIC);
        out.extend_from_slice(&(self.tables.len() as u32).to_le_bytes());
        for per_table in &self.tables {
            out.extend_from_slice(&(per_table.len() as u32).to_le_bytes());
            for records in per_table {
                out.extend_from_slice(&(records.len() as u64).to_le_bytes());
                for (key, payload) in records {
                    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
                    out.extend_from_slice(key);
                    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                    out.extend_from_slice(payload);
                }
            }
        }
        let crc = crc32(&out[8..]);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Serialize with the durable-medium faults of `plan` applied.
    pub fn to_bytes_faulted(&self, plan: &FaultPlan) -> Vec<u8> {
        let mut out = self.to_bytes();
        CorruptByte::apply_all(&plan.corrupt_checkpoint, &mut out);
        out
    }

    /// Deserialize a checkpoint, verifying the whole-image CRC first.
    pub fn from_bytes(data: &[u8]) -> Result<Checkpoint, RecoveryError> {
        if data.len() < 8 || &data[..8] != CKPT_MAGIC {
            return Err(RecoveryError::BadMagic);
        }
        if data.len() < 16 {
            return Err(RecoveryError::CheckpointTruncated);
        }
        let (content, tail) = data.split_at(data.len() - 4);
        let stored = u32::from_le_bytes(tail.try_into().expect("4"));
        if crc32(&content[8..]) != stored {
            return Err(RecoveryError::CheckpointChecksum);
        }
        // Past the CRC, structural damage would have tripped the checksum;
        // any inconsistency left is a truncation-style error.
        let mut pos = 8usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], RecoveryError> {
            let s = content
                .get(*pos..*pos + n)
                .ok_or(RecoveryError::CheckpointTruncated)?;
            *pos += n;
            Ok(s)
        };
        let workers = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4")) as usize;
        let mut tables = Vec::with_capacity(workers);
        for _ in 0..workers {
            let ntables = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4")) as usize;
            let mut per_table = Vec::with_capacity(ntables);
            for _ in 0..ntables {
                let nrec = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8")) as usize;
                let mut records = BTreeMap::new();
                for _ in 0..nrec {
                    let klen =
                        u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4")) as usize;
                    let key = take(&mut pos, klen)?.to_vec();
                    let plen =
                        u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4")) as usize;
                    let payload = take(&mut pos, plen)?.to_vec();
                    records.insert(key, payload);
                }
                per_table.push(records);
            }
            tables.push(per_table);
        }
        if pos != content.len() {
            return Err(RecoveryError::CheckpointTruncated);
        }
        Ok(Checkpoint { tables })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> CommandLog {
        CommandLog {
            records: vec![
                LogRecord {
                    worker: 1,
                    proc: ProcId(3),
                    commit_ts: 999,
                    user_data: vec![1, 2, 3, 4],
                    block_size: 128,
                },
                LogRecord {
                    worker: 0,
                    proc: ProcId(0),
                    commit_ts: 100,
                    user_data: vec![],
                    block_size: 64,
                },
            ],
        }
    }

    #[test]
    fn log_serialization_roundtrip() {
        let log = sample_log();
        let bytes = log.to_bytes();
        assert_eq!(CommandLog::from_bytes(&bytes).unwrap(), log);
    }

    #[test]
    fn log_rejects_garbage() {
        assert_eq!(
            CommandLog::from_bytes(b"NOTALOG!"),
            Err(RecoveryError::BadMagic)
        );
        let mut bytes = CommandLog::new().to_bytes();
        bytes.truncate(4);
        assert_eq!(
            CommandLog::from_bytes(&bytes),
            Err(RecoveryError::BadMagic)
        );
        let mut bytes = CommandLog::new().to_bytes();
        bytes.truncate(12);
        assert_eq!(
            CommandLog::from_bytes(&bytes),
            Err(RecoveryError::TruncatedHeader)
        );
    }

    #[test]
    fn torn_tail_recovers_the_valid_prefix() {
        let log = sample_log();
        let bytes = log.to_bytes();
        // Tear the last record: cut 3 bytes off the medium.
        let torn = &bytes[..bytes.len() - 3];
        let err = CommandLog::from_bytes(torn).unwrap_err();
        assert_eq!(
            err,
            RecoveryError::TruncatedRecord {
                index: 1,
                valid_prefix: 1
            }
        );
        assert!(err.is_torn_tail());
        let (prefix, perr) = CommandLog::from_bytes_prefix(torn);
        assert_eq!(perr, Some(err));
        assert_eq!(prefix.records(), &log.records[..1]);
    }

    #[test]
    fn bit_flip_is_a_checksum_mismatch() {
        let log = sample_log();
        let mut bytes = log.to_bytes();
        // Flip one bit inside the first record's body.
        bytes[16 + 8 + 2] ^= 0x40;
        let err = CommandLog::from_bytes(&bytes).unwrap_err();
        assert_eq!(
            err,
            RecoveryError::ChecksumMismatch {
                index: 0,
                valid_prefix: 0
            }
        );
        assert_eq!(err.valid_prefix(), 0);
    }

    #[test]
    fn torn_write_fault_matches_manual_truncation() {
        let log = sample_log();
        let plan = FaultPlan::none().torn_log_write(1, 5);
        let faulted = log.to_bytes_faulted(&plan);
        let clean = log.to_bytes();
        // Record 0 occupies 8 (frame) + 30 + 4 (body) bytes after the
        // 16-byte header; record 1's first 5 bytes survive.
        assert_eq!(faulted.len(), 16 + 42 + 5);
        assert_eq!(&faulted[..16 + 42 + 5], &clean[..16 + 42 + 5]);
        let (prefix, err) = CommandLog::from_bytes_prefix(&faulted);
        assert_eq!(prefix.len(), 1);
        assert!(err.expect("torn").is_torn_tail());
        // The none-plan faulted serialization is the clean serialization.
        assert_eq!(log.to_bytes_faulted(&FaultPlan::none()), clean);
    }

    #[test]
    fn trailing_garbage_is_detected() {
        let mut bytes = sample_log().to_bytes();
        bytes.extend_from_slice(&[0xAB; 7]);
        assert_eq!(
            CommandLog::from_bytes(&bytes),
            Err(RecoveryError::TrailingGarbage { valid_prefix: 2 })
        );
    }

    #[test]
    fn checkpoint_roundtrip_and_corruption_detection() {
        let mut t0 = BTreeMap::new();
        t0.insert(vec![1, 2, 3], vec![9, 9]);
        t0.insert(vec![4], vec![]);
        let ckpt = Checkpoint {
            tables: vec![vec![t0, BTreeMap::new()], vec![BTreeMap::new(); 2]],
        };
        let bytes = ckpt.to_bytes();
        assert_eq!(Checkpoint::from_bytes(&bytes).unwrap(), ckpt);

        for i in [8, 13, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert_eq!(
                Checkpoint::from_bytes(&bad),
                Err(RecoveryError::CheckpointChecksum),
                "flip at {i}"
            );
        }
        assert_eq!(
            Checkpoint::from_bytes(&bytes[..10]),
            Err(RecoveryError::CheckpointTruncated)
        );
        assert_eq!(
            Checkpoint::from_bytes(b"NOTACKPT"),
            Err(RecoveryError::BadMagic)
        );
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
