//! Command logging and recovery (paper §4.8).
//!
//! The paper sketches VoltDB-style command logging: after BionicDB executes
//! a transaction, its block contains the commit state and timestamp while
//! preserving the input arguments. The host persists executed blocks before
//! returning them to clients; after a failure it loads the last checkpoint
//! image and **replays the committed transaction blocks in commit-timestamp
//! order**, then re-initializes the hardware clocks.
//!
//! We implement that protocol end to end:
//!
//! * [`CommandLog`] captures executed blocks into durable log records, with
//!   a binary serialization for the simulated durable store;
//! * [`Checkpoint`] dumps the committed logical database image (walking the
//!   indexes host-side) and can reload it into a fresh machine;
//! * [`CommandLog::replay`] re-executes committed records in commit-ts
//!   order against a recovered machine, skipping uncommitted ones.

use std::collections::BTreeMap;

use bionicdb_coproc::layout::{read_header, TOWER_NEXTS, TUPLE_HEADER, TUPLE_NEXT};
use bionicdb_softcore::catalogue::{IndexKind, ProcId, TableId};
use bionicdb_softcore::txnblock::TxnStatus;
use bionicdb_softcore::TxnBlock;

use crate::machine::Machine;

/// One durable log record: the preserved transaction block of a committed
/// transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Worker the block was submitted to.
    pub worker: u16,
    /// The invoked procedure.
    pub proc: ProcId,
    /// Commit timestamp (replay order).
    pub commit_ts: u64,
    /// The block's user area (inputs preserved through execution).
    pub user_data: Vec<u8>,
    /// Total block size (for re-allocation at replay).
    pub block_size: u64,
}

/// The simulated durable command log.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CommandLog {
    records: Vec<LogRecord>,
}

impl CommandLog {
    /// Create an empty log.
    pub fn new() -> Self {
        CommandLog::default()
    }

    /// Capture the outcome of an executed block. Aborted/pending blocks are
    /// ignored (only committed work is replayed).
    pub fn capture(&mut self, m: &Machine, worker: usize, blk: TxnBlock) {
        if m.block_status(blk) != TxnStatus::Committed {
            return;
        }
        let user_len = blk.size() - bionicdb_softcore::BLOCK_HEADER_SIZE;
        self.records.push(LogRecord {
            worker: worker as u16,
            proc: blk.proc_id(m.dram()),
            commit_ts: m.block_commit_ts(blk),
            user_data: m.read_block(blk, 0, user_len),
            block_size: blk.size(),
        });
    }

    /// Number of captured records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Serialize to the simulated durable medium.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"BDBLOG1\0");
        out.extend_from_slice(&(self.records.len() as u64).to_le_bytes());
        for r in &self.records {
            out.extend_from_slice(&r.worker.to_le_bytes());
            out.extend_from_slice(&r.proc.0.to_le_bytes());
            out.extend_from_slice(&r.commit_ts.to_le_bytes());
            out.extend_from_slice(&r.block_size.to_le_bytes());
            out.extend_from_slice(&(r.user_data.len() as u64).to_le_bytes());
            out.extend_from_slice(&r.user_data);
        }
        out
    }

    /// Deserialize from the simulated durable medium.
    pub fn from_bytes(data: &[u8]) -> Result<CommandLog, String> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], String> {
            let s = data.get(*pos..*pos + n).ok_or("truncated log")?;
            *pos += n;
            Ok(s)
        };
        if take(&mut pos, 8)? != b"BDBLOG1\0" {
            return Err("bad log magic".into());
        }
        let n = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8")) as usize;
        let mut records = Vec::with_capacity(n);
        for _ in 0..n {
            let worker = u16::from_le_bytes(take(&mut pos, 2)?.try_into().expect("2"));
            let proc = ProcId(u32::from_le_bytes(
                take(&mut pos, 4)?.try_into().expect("4"),
            ));
            let commit_ts = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8"));
            let block_size = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8"));
            let len = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8")) as usize;
            let user_data = take(&mut pos, len)?.to_vec();
            records.push(LogRecord {
                worker,
                proc,
                commit_ts,
                block_size,
                user_data,
            });
        }
        Ok(CommandLog { records })
    }

    /// Replay the committed records against a recovered machine, strictly
    /// in commit-timestamp order. Each record is re-executed to completion
    /// before the next starts, which guarantees the replayed history is the
    /// same serial order the original timestamps encoded.
    ///
    /// Returns the number of replayed transactions. Panics if a replayed
    /// transaction does not commit (the checkpoint and log disagree).
    pub fn replay(&self, m: &mut Machine) -> usize {
        let mut ordered: Vec<&LogRecord> = self.records.iter().collect();
        ordered.sort_by_key(|r| r.commit_ts);
        for r in &ordered {
            let blk = m.alloc_block(r.worker as usize, r.block_size);
            m.init_block(blk, r.proc);
            m.write_block(blk, 0, &r.user_data);
            m.submit(r.worker as usize, blk);
            m.run_to_quiescence_limit(1 << 26);
            assert_eq!(
                m.block_status(blk),
                TxnStatus::Committed,
                "replayed transaction failed to commit (checkpoint/log mismatch)"
            );
        }
        ordered.len()
    }
}

/// A logical checkpoint image: every committed, live record of every table
/// on every partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// `tables[worker][table] = key bytes -> payload bytes`, ordered by key.
    pub tables: Vec<Vec<BTreeMap<Vec<u8>, Vec<u8>>>>,
}

impl Checkpoint {
    /// Dump the committed logical state of `m` (host-side index walks).
    pub fn dump(m: &Machine) -> Checkpoint {
        let mut tables = Vec::with_capacity(m.num_workers());
        for w in 0..m.num_workers() {
            let part = m.partition(w);
            let mut per_table = Vec::with_capacity(part.tables.len());
            for state in &part.tables {
                let mut records = BTreeMap::new();
                match state.meta.kind {
                    IndexKind::Hash => {
                        for b in 0..state.meta.hash_buckets {
                            let mut cur = m.dram().host_read_u64(state.bucket_addr(b));
                            while cur != 0 {
                                let hdr = read_header(m.dram(), cur + TUPLE_HEADER);
                                if !hdr.is_dirty() && !hdr.is_tombstone() {
                                    let payload = m.dram().host_read(
                                        cur + bionicdb_coproc::layout::TUPLE_PAYLOAD,
                                        state.meta.payload_len as usize,
                                    );
                                    records
                                        .entry(hdr.key.as_bytes().to_vec())
                                        .or_insert(payload);
                                }
                                cur = m.dram().host_read_u64(cur + TUPLE_NEXT);
                            }
                        }
                    }
                    IndexKind::Skiplist => {
                        let mut cur = m.dram().host_read_u64(state.head_next_addr(0));
                        while cur != 0 {
                            let hdr = read_header(m.dram(), cur);
                            if !hdr.is_dirty() && !hdr.is_tombstone() {
                                let h = m.dram().host_read_u64(cur + 64) as usize;
                                let payload = m.dram().host_read(
                                    cur + bionicdb_coproc::layout::TableState::tower_payload_off(h),
                                    state.meta.payload_len as usize,
                                );
                                records
                                    .entry(hdr.key.as_bytes().to_vec())
                                    .or_insert(payload);
                            }
                            cur = m.dram().host_read_u64(cur + TOWER_NEXTS);
                        }
                    }
                }
                per_table.push(records);
            }
            tables.push(per_table);
        }
        Checkpoint { tables }
    }

    /// Load this image into a freshly built machine (bulk loads every
    /// record as committed data).
    pub fn load_into(&self, m: &mut Machine) {
        for (w, per_table) in self.tables.iter().enumerate() {
            for (t, records) in per_table.iter().enumerate() {
                let mut loader = m.loader(w);
                for (key, payload) in records {
                    loader.insert(TableId(t as u8), key, payload);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_serialization_roundtrip() {
        let log = CommandLog {
            records: vec![
                LogRecord {
                    worker: 1,
                    proc: ProcId(3),
                    commit_ts: 999,
                    user_data: vec![1, 2, 3, 4],
                    block_size: 128,
                },
                LogRecord {
                    worker: 0,
                    proc: ProcId(0),
                    commit_ts: 100,
                    user_data: vec![],
                    block_size: 64,
                },
            ],
        };
        let bytes = log.to_bytes();
        assert_eq!(CommandLog::from_bytes(&bytes).unwrap(), log);
    }

    #[test]
    fn log_rejects_garbage() {
        assert!(CommandLog::from_bytes(b"NOTALOG!").is_err());
        let mut bytes = CommandLog::new().to_bytes();
        bytes.truncate(4);
        assert!(CommandLog::from_bytes(&bytes).is_err());
    }
}
