//! Partition layout and host-side bulk loading.
//!
//! The database is partitioned and entirely resident in FPGA-side DRAM
//! (paper §4.2): each partition worker exclusively owns one partition with
//! its own index directories and tuple heap, plus an arena the host carves
//! transaction blocks from.
//!
//! [`Loader`] performs *host-side* bulk loading: it builds exactly the
//! same hash chains and skiplist towers the index pipelines would (same
//! sdbm bucket placement, same deterministic tower heights), but through
//! untimed host writes — the way the paper's experiments populate the
//! database before starting the clock (§5.1). A property test in
//! `tests/loader_equivalence.rs` verifies load-vs-pipeline equivalence.

use bionicdb_coproc::layout::{RecordHeader, TableState, TOWER_NEXTS, TUPLE_HEADER, TUPLE_NEXT};
use bionicdb_coproc::sdbm_hash;
use bionicdb_coproc::skiplist::tower_height;
use bionicdb_fpga::{Dram, Region};
use bionicdb_softcore::catalogue::{Catalogue, IndexKind};
use bionicdb_softcore::{IndexKey, PartitionId, TableId};

/// Commit timestamp given to bulk-loaded records. Any hardware transaction
/// timestamp is larger (they embed the cycle counter), so loaded data is
/// visible to every transaction.
pub const LOAD_TS: u64 = 1;

/// One partition: per-table physical state plus the transaction-block
/// arena the host allocates from.
#[derive(Debug)]
pub struct Partition {
    /// The owning worker.
    pub id: PartitionId,
    /// Physical state of every table, indexed by `TableId`.
    pub tables: Vec<TableState>,
    /// Arena for transaction blocks submitted to this worker.
    pub block_arena: Region,
}

impl Partition {
    /// Lay out a partition inside `region`: index directories first, then
    /// the tuple heap; the block arena is carved separately by the caller.
    pub fn build(
        id: PartitionId,
        cat: &Catalogue,
        mut region: Region,
        block_arena: Region,
        max_level: usize,
    ) -> Partition {
        let mut tables = Vec::with_capacity(cat.num_tables());
        for (_tid, meta) in cat.tables() {
            let dir_addr = match meta.kind {
                IndexKind::Hash => region.alloc(8 * meta.hash_buckets, 64),
                IndexKind::Skiplist => region.alloc(8 * max_level as u64, 64),
            };
            tables.push(TableState {
                meta: meta.clone(),
                dir_addr,
                heap: Region::new(0, 0), // placeholder, fixed below
                max_level,
            });
        }
        // Split the remaining space evenly into per-table heaps, leaving
        // headroom for carve alignment.
        let n = tables.len().max(1) as u64;
        let share = (region.remaining() / n).saturating_sub(64) & !63;
        for t in &mut tables {
            t.heap = region.carve(share, 64);
        }
        Partition {
            id,
            tables,
            block_arena,
        }
    }
}

/// Host-side bulk loader for one partition.
pub struct Loader<'a> {
    dram: &'a mut Dram,
    partition: &'a mut Partition,
}

impl<'a> Loader<'a> {
    /// Create a loader over `partition`.
    pub fn new(dram: &'a mut Dram, partition: &'a mut Partition) -> Self {
        Loader { dram, partition }
    }

    /// Insert a committed record. The payload length must match the table
    /// schema exactly.
    pub fn insert(&mut self, table: TableId, key: &[u8], payload: &[u8]) -> u64 {
        let state = &mut self.partition.tables[table.0 as usize];
        assert_eq!(
            payload.len() as u32,
            state.meta.payload_len,
            "payload length must match schema of table {:?}",
            table
        );
        assert_eq!(
            key.len(),
            state.meta.key_len as usize,
            "key length must match schema"
        );
        let key = IndexKey::from_bytes(key);
        match state.meta.kind {
            IndexKind::Hash => Self::hash_insert(self.dram, state, key, payload),
            IndexKind::Skiplist => Self::skiplist_insert(self.dram, state, key, payload),
        }
    }

    fn header(key: IndexKey) -> RecordHeader {
        RecordHeader {
            write_ts: LOAD_TS,
            read_ts: 0,
            flags: 0,
            key,
        }
    }

    fn hash_insert(dram: &mut Dram, state: &mut TableState, key: IndexKey, payload: &[u8]) -> u64 {
        let bucket = sdbm_hash(key.as_bytes()) & (state.meta.hash_buckets - 1);
        let bucket_addr = state.bucket_addr(bucket);
        let head = dram.host_read_u64(bucket_addr);
        let addr = state.alloc_tuple();
        dram.host_write_u64(addr + TUPLE_NEXT, head);
        dram.host_write(addr + TUPLE_HEADER, &Self::header(key).encode());
        dram.host_write(addr + bionicdb_coproc::layout::TUPLE_PAYLOAD, payload);
        dram.host_write_u64(bucket_addr, addr);
        addr
    }

    fn skiplist_insert(
        dram: &mut Dram,
        state: &mut TableState,
        key: IndexKey,
        payload: &[u8],
    ) -> u64 {
        let h = tower_height(&key, state.max_level);
        let head = state.dir_addr;
        let max_level = state.max_level;
        // Walk from the top, collecting the predecessor at each level.
        let next_of = move |dram: &Dram, tower: u64, level: usize| -> u64 {
            if tower == 0 {
                dram.host_read_u64(head + 8 * level as u64)
            } else {
                dram.host_read_u64(tower + TOWER_NEXTS + 8 * level as u64)
            }
        };
        let mut preds = vec![0u64; max_level];
        let mut cur = 0u64;
        for level in (0..max_level).rev() {
            loop {
                let next = next_of(dram, cur, level);
                if next == 0 {
                    break;
                }
                let hdr = bionicdb_coproc::layout::read_header(dram, next);
                if hdr.key < key {
                    cur = next;
                } else {
                    break;
                }
            }
            preds[level] = cur;
        }
        let addr = state.alloc_tower(h);
        dram.host_write(addr, &Self::header(key).encode());
        dram.host_write_u64(addr + 64, h as u64);
        for (level, &pred) in preds.iter().enumerate().take(h) {
            let succ = next_of(dram, pred, level);
            dram.host_write_u64(addr + TOWER_NEXTS + 8 * level as u64, succ);
        }
        dram.host_write(addr + TableState::tower_payload_off(h), payload);
        for (level, &pred) in preds.iter().enumerate().take(h) {
            let slot = if pred == 0 {
                state.head_next_addr(level)
            } else {
                pred + TOWER_NEXTS + 8 * level as u64
            };
            dram.host_write_u64(slot, addr);
        }
        addr
    }

    /// Host-side point lookup (untimed), for verification: returns the
    /// tuple address.
    pub fn lookup(&self, table: TableId, key: &[u8]) -> Option<u64> {
        let state = &self.partition.tables[table.0 as usize];
        let key = IndexKey::from_bytes(key);
        match state.meta.kind {
            IndexKind::Hash => {
                let bucket = sdbm_hash(key.as_bytes()) & (state.meta.hash_buckets - 1);
                let mut cur = self.dram.host_read_u64(state.bucket_addr(bucket));
                while cur != 0 {
                    let hdr = bionicdb_coproc::layout::read_header(self.dram, cur + TUPLE_HEADER);
                    if hdr.key == key && !hdr.is_tombstone() {
                        return Some(cur);
                    }
                    cur = self.dram.host_read_u64(cur + TUPLE_NEXT);
                }
                None
            }
            IndexKind::Skiplist => {
                let mut cur = 0u64;
                for level in (0..state.max_level).rev() {
                    loop {
                        let next = if cur == 0 {
                            self.dram.host_read_u64(state.head_next_addr(level))
                        } else {
                            self.dram
                                .host_read_u64(cur + TOWER_NEXTS + 8 * level as u64)
                        };
                        if next == 0 {
                            break;
                        }
                        let hdr = bionicdb_coproc::layout::read_header(self.dram, next);
                        match hdr.key.cmp(&key) {
                            std::cmp::Ordering::Less => cur = next,
                            std::cmp::Ordering::Equal if level == 0 && !hdr.is_tombstone() => {
                                return Some(next)
                            }
                            _ => break,
                        }
                    }
                }
                None
            }
        }
    }

    /// Read a record's payload bytes by tuple/tower address.
    pub fn payload(&self, table: TableId, record_addr: u64) -> Vec<u8> {
        let state = &self.partition.tables[table.0 as usize];
        match state.meta.kind {
            IndexKind::Hash => self.dram.host_read(
                record_addr + bionicdb_coproc::layout::TUPLE_PAYLOAD,
                state.meta.payload_len as usize,
            ),
            IndexKind::Skiplist => {
                let h = self.dram.host_read_u64(record_addr + 64) as usize;
                self.dram.host_read(
                    record_addr + TableState::tower_payload_off(h),
                    state.meta.payload_len as usize,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bionicdb_fpga::FpgaConfig;
    use bionicdb_softcore::catalogue::TableMeta;

    fn setup() -> (Dram, Partition) {
        let mut cat = Catalogue::new();
        cat.register_table(TableMeta::hash("h", 8, 16, 1 << 8))
            .unwrap();
        cat.register_table(TableMeta::skiplist("s", 8, 16)).unwrap();
        let dram = Dram::new(&FpgaConfig::default(), 64 << 20);
        let part = Partition::build(
            PartitionId(0),
            &cat,
            Region::new(8 << 20, 40 << 20),
            Region::new(1 << 20, 4 << 20),
            20,
        );
        (dram, part)
    }

    #[test]
    fn hash_load_and_lookup() {
        let (mut dram, mut part) = setup();
        let mut loader = Loader::new(&mut dram, &mut part);
        let addrs: Vec<u64> = (0..500u64)
            .map(|k| loader.insert(TableId(0), &k.to_be_bytes(), &[k as u8; 16]))
            .collect();
        for k in 0..500u64 {
            let found = loader
                .lookup(TableId(0), &k.to_be_bytes())
                .expect("present");
            assert_eq!(found, addrs[k as usize]);
            assert_eq!(loader.payload(TableId(0), found), vec![k as u8; 16]);
        }
        assert!(loader.lookup(TableId(0), &999u64.to_be_bytes()).is_none());
    }

    #[test]
    fn skiplist_load_orders_keys() {
        let (mut dram, mut part) = setup();
        let mut loader = Loader::new(&mut dram, &mut part);
        // Insert in a scrambled order.
        for k in [5u64, 1, 9, 3, 7, 2, 8, 4, 6, 0] {
            loader.insert(TableId(1), &k.to_be_bytes(), &[0u8; 16]);
        }
        for k in 0..10u64 {
            assert!(
                loader.lookup(TableId(1), &k.to_be_bytes()).is_some(),
                "key {k}"
            );
        }
        // Bottom chain is sorted.
        let state = &part.tables[1];
        let mut cur = dram.host_read_u64(state.head_next_addr(0));
        let mut prev = None;
        let mut n = 0;
        while cur != 0 {
            let hdr = bionicdb_coproc::layout::read_header(&dram, cur);
            let k = hdr.key.to_u64();
            if let Some(p) = prev {
                assert!(k > p);
            }
            prev = Some(k);
            n += 1;
            cur = dram.host_read_u64(cur + TOWER_NEXTS);
        }
        assert_eq!(n, 10);
    }

    #[test]
    #[should_panic(expected = "payload length")]
    fn wrong_payload_length_rejected() {
        let (mut dram, mut part) = setup();
        let mut loader = Loader::new(&mut dram, &mut part);
        loader.insert(TableId(0), &1u64.to_be_bytes(), &[0u8; 5]);
    }

    #[test]
    fn partition_tables_get_disjoint_heaps() {
        let (_dram, part) = setup();
        let a = &part.tables[0].heap;
        let b = &part.tables[1].heap;
        assert!(a.base() + a.size() <= b.base() || b.base() + b.size() <= a.base());
    }
}
