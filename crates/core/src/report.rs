//! The machine-wide observability report: one structure that gathers every
//! counter the simulator keeps — per-phase latency histograms, abort
//! attribution, pipeline stage activity, NoC link utilization, and DRAM
//! per-port occupancy — plus a hand-rolled JSON serializer so benchmark
//! binaries can dump machine-readable results without any external
//! dependency.
//!
//! Everything in a [`MachineReport`] is collected from counters that are
//! updated at event time (issue, send, poll, retire), never from the
//! scheduler, so a report taken after a strict run is identical to one
//! taken after a fast-forward run of the same workload
//! (`tests/fast_forward.rs` asserts this structure-deep).

use bionicdb_fpga::dram::{DramStats, PortStats};
use bionicdb_fpga::stats::StageStats;
use bionicdb_noc::{LinkStats, NocStats};
use bionicdb_softcore::core::SoftcoreObs;
use bionicdb_softcore::SoftcoreStats;

use crate::machine::{Machine, MachineStats};
use crate::worker::WorkerStats;

/// Everything one worker reports: softcore counters, its observability
/// histograms, the channel-glue counters, and the named pipeline stages of
/// its index coprocessor.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerReport {
    /// Softcore execution counters.
    pub softcore: SoftcoreStats,
    /// Per-phase latency histograms and abort attribution.
    pub obs: SoftcoreObs,
    /// Channel-glue counters (remote traffic, retries, dedup).
    pub glue: WorkerStats,
    /// Named coprocessor pipeline stages with busy/stalled/idle cycles.
    pub stages: Vec<(String, StageStats)>,
}

/// The full machine observability report. `PartialEq` is derived so the
/// fast-forward equivalence tests can compare strict and skipping runs in
/// one assertion.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineReport {
    /// Cycle at which the report was taken.
    pub now: u64,
    /// The aggregate counters ([`Machine::stats`]).
    pub stats: MachineStats,
    /// All workers' observability histograms merged into one.
    pub obs: SoftcoreObs,
    /// Per-worker breakdown.
    pub workers: Vec<WorkerReport>,
    /// Interconnect aggregate counters.
    pub noc: NocStats,
    /// Per-destination link counters.
    pub links: Vec<LinkStats>,
    /// DRAM aggregate counters.
    pub dram: DramStats,
    /// Per-port DRAM traffic and bus occupancy.
    pub ports: Vec<PortStats>,
}

impl MachineReport {
    /// Gather the report from a machine (read-only).
    pub fn collect(m: &Machine) -> MachineReport {
        let mut obs = SoftcoreObs::default();
        let mut workers = Vec::with_capacity(m.num_workers());
        for w in 0..m.num_workers() {
            // `worker_report` is fleet-aware: in fleet mode the counters
            // come from the chips' last PhaseEnd slices, not the (stale)
            // coordinator-side worker objects.
            let wr = m.worker_report(w);
            obs.merge(&wr.obs);
            workers.push(wr);
        }
        MachineReport {
            now: m.now(),
            stats: m.stats(),
            obs,
            workers,
            noc: m.noc().stats(),
            links: m.noc().link_stats().to_vec(),
            dram: m.dram_stats(),
            ports: m.dram_ports(),
        }
    }

    /// Serialize the whole report as a JSON object. Hand-rolled (the build
    /// is offline; no serde): keys are emitted in a fixed order so two
    /// identical runs produce byte-identical dumps — the determinism smoke
    /// test in `scripts/check.sh` relies on this.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut o = String::with_capacity(4096);
        let s = &self.stats;
        let _ = write!(
            o,
            "{{\"now\":{},\"committed\":{},\"aborted\":{},\"batches\":{},\
             \"db_insts\":{},\"cpu_insts\":{},\"resubmits\":{},\"fault_aborts\":{}",
            self.now,
            s.committed,
            s.aborted,
            s.batches,
            s.db_insts,
            s.cpu_insts,
            s.resubmits,
            s.fault_aborts
        );
        o.push_str(",\"abort_reasons\":{");
        s.abort_reasons.write_json_fields(&mut o);
        o.push('}');

        o.push_str(",\"latency\":{");
        write_obs_json(&self.obs, &mut o);
        o.push('}');

        let n = &self.noc;
        let _ = write!(
            o,
            ",\"noc\":{{\"sent\":{},\"delivered\":{},\"dropped\":{},\"rejected\":{},\
             \"delayed\":{},\"total_latency\":{},\"links\":[",
            n.sent, n.delivered, n.dropped, n.rejected, n.delayed, n.total_latency
        );
        for (i, l) in self.links.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            let _ = write!(
                o,
                "{{\"sent\":{},\"delivered\":{},\"queue_high_water\":{}}}",
                l.sent, l.delivered, l.queue_high_water
            );
        }
        o.push_str("]}");

        let d = &self.dram;
        let _ = write!(
            o,
            ",\"dram\":{{\"reads\":{},\"writes\":{},\"bytes\":{},\"rejections\":{},\
             \"transient_faults\":{},\"ports\":[",
            d.reads, d.writes, d.bytes, d.rejections, d.transient_faults
        );
        for (i, p) in self.ports.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            let _ = write!(
                o,
                "{{\"reads\":{},\"writes\":{},\"bytes\":{},\"occupancy_cycles\":{}",
                p.reads, p.writes, p.bytes, p.occupancy_cycles
            );
            // MLP occupancy is sampled only when the machine enables
            // `Dram::set_mlp_tracking` (batch mode); emitting the histogram
            // conditionally keeps default-config reports byte-identical to
            // pre-batching builds.
            if p.mlp_peak > 0 {
                o.push_str(",\"mlp\":{\"peak\":");
                let _ = write!(o, "{}", p.mlp_peak);
                o.push_str(",\"hist\":[");
                for (j, c) in p.mlp_hist.iter().enumerate() {
                    if j > 0 {
                        o.push(',');
                    }
                    let _ = write!(o, "{c}");
                }
                o.push_str("]}");
            }
            o.push('}');
        }
        o.push_str("]}");

        o.push_str(",\"workers\":[");
        for (i, w) in self.workers.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            let sc = &w.softcore;
            let g = &w.glue;
            let _ = write!(
                o,
                "{{\"id\":{i},\"committed\":{},\"aborted\":{},\"batches\":{},\
                 \"db_insts\":{},\"cpu_insts\":{},\"switches\":{},\
                 \"cp_stall_cycles\":{},\"mem_stall_cycles\":{},\
                 \"local_requests\":{},\"remote_requests\":{},\
                 \"background_requests\":{},\"retries_sent\":{},\
                 \"retry_exhausted\":{}",
                sc.committed,
                sc.aborted,
                sc.batches,
                sc.db_insts,
                sc.cpu_insts,
                sc.switches,
                sc.cp_stall_cycles,
                sc.mem_stall_cycles,
                g.local_requests,
                g.remote_requests,
                g.background_requests,
                g.retries_sent,
                g.retry_exhausted
            );
            o.push_str(",\"latency\":{");
            write_obs_json(&w.obs, &mut o);
            o.push('}');
            o.push_str(",\"stages\":[");
            for (j, (name, st)) in w.stages.iter().enumerate() {
                if j > 0 {
                    o.push(',');
                }
                let _ = write!(
                    o,
                    "{{\"name\":\"{}\",\"busy\":{},\"stalled\":{},\"idle\":{},\"items\":{}}}",
                    bionicdb_fpga::obs::json_escape(name),
                    st.busy,
                    st.stalled,
                    st.idle,
                    st.items
                );
            }
            o.push_str("]}");
        }
        o.push_str("]}");
        o
    }
}

/// Append a [`SoftcoreObs`]'s histograms as JSON object members (no outer
/// braces): one object per phase plus the abort-reason counters.
fn write_obs_json(obs: &SoftcoreObs, o: &mut String) {
    let phases: [(&str, &bionicdb_fpga::LatencyHistogram); 7] = [
        ("queue_wait", &obs.queue_wait),
        ("logic", &obs.logic),
        ("commit_wait", &obs.commit_wait),
        ("commit", &obs.commit),
        ("txn_commit", &obs.txn_commit),
        ("txn_abort", &obs.txn_abort),
        ("db_op", &obs.db_op),
    ];
    for (i, (name, h)) in phases.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push('"');
        o.push_str(name);
        o.push_str("\":{");
        h.write_json_fields(o);
        o.push('}');
    }
    o.push_str(",\"abort_reasons\":{");
    obs.abort_reasons.write_json_fields(o);
    o.push('}');
}

#[cfg(test)]
mod tests {
    #[test]
    fn empty_machine_report_serializes_to_valid_shape() {
        let mut b = crate::machine::SystemBuilder::new(crate::config::BionicConfig::small(2));
        b.table(bionicdb_softcore::TableMeta::hash("t", 8, 8, 1 << 8));
        let m = b.build();
        let r = m.report();
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "balanced braces"
        );
        assert!(j.contains("\"latency\""));
        assert!(j.contains("\"queue_wait\""));
        assert!(j.contains("\"abort_reasons\""));
        assert!(j.contains("\"links\""));
        assert!(j.contains("\"ports\""));
        assert_eq!(r.workers.len(), 2);
    }

    #[test]
    fn report_is_deterministic_for_identical_runs() {
        let run = || {
            let mut b = crate::machine::SystemBuilder::new(crate::config::BionicConfig::small(1));
            let t = b.table(bionicdb_softcore::TableMeta::hash("kv", 8, 16, 1 << 8));
            let p = b.proc(
                bionicdb_softcore::asm::assemble(
                    "proc read1\nlogic:\n    search 0, 0, c0\ncommit:\n    ret g0, c0\n    cmp g0, 0\n    blt abort\n    commit\nabort:\n    abort\n",
                )
                .unwrap(),
            );
            let mut m = b.build();
            m.loader(0).insert(t, &7u64.to_be_bytes(), &[9u8; 16]);
            let blk = m.alloc_block(0, 128);
            m.init_block(blk, p);
            m.write_block(blk, 0, &7u64.to_be_bytes());
            m.submit(0, blk);
            m.run_to_quiescence_limit(1 << 22);
            m.report().to_json()
        };
        assert_eq!(run(), run(), "byte-identical JSON across identical runs");
    }
}
